(* S1: the scale sweep.

   Node count × target density × adversary mix over the two graph
   classes the scale campaign measures: geometric uniform deployments
   under a disk radio (the paper's setting, map sized so the expected
   degree matches the target) and synthetic expanders (no geometry at
   all, degree set directly).  The same cell construction backs the
   `scale` campaign driver (lib/run/campaign.ml), so the registry row
   and a campaign run of the same cell simulate the same spec. *)

type klass = Uniform_radio | Expander_synthetic

let klass_name = function Uniform_radio -> "uniform" | Expander_synthetic -> "expander"
let all_classes = [ Uniform_radio; Expander_synthetic ]
let known_adversaries = [ "honest"; "crash"; "lying"; "jam" ]

let faults_of_adversary = function
  | "honest" -> Some Scenario.No_faults
  | "crash" -> Some (Scenario.Crash 0.1)
  | "lying" -> Some (Scenario.Lying 0.1)
  | "jam" -> Some (Scenario.Jamming { fraction = 0.05; budget = 50; probability = 0.3 })
  | _ -> None

(* Geometric cells fix the radius and size the map so that the expected
   degree n·πR²/W² matches the requested density; synthetic cells round
   the density to the expander degree (ring + matchings needs >= 3).
   Sparse cells may be disconnected — scale sweeps deliberately measure
   partial coverage, so every cell allows unreachable nodes. *)
let cell_spec ~base ~klass ~nodes ~density =
  let base = { base with Scenario.allow_unreachable = true } in
  match klass with
  | Uniform_radio ->
    let radius = 4.0 in
    let side = sqrt (float_of_int nodes *. Float.pi *. radius *. radius /. density) in
    {
      base with
      Scenario.deployment = Scenario.Uniform nodes;
      radio = Scenario.Disk_l2;
      radius;
      map_w = side;
      map_h = side;
    }
  | Expander_synthetic ->
    let degree = max 3 (int_of_float (Float.round density)) in
    { base with Scenario.deployment = Scenario.Expander { n = nodes; degree } }

let pick scale ~quick ~paper = match scale with Experiment.Quick -> quick | Paper -> paper

let sweep =
  Experiment.job ~id:"s1" ~title:"S1: scale sweep — nodes × density × adversary per graph class"
    ~columns:[ "graph"; "nodes"; "target deg"; "adversary"; "completed"; "correct"; "rounds" ]
    (fun scale ->
      let node_counts = pick scale ~quick:[ 300; 1_000 ] ~paper:[ 2_000; 10_000 ] in
      let densities = pick scale ~quick:[ 12.0; 40.0 ] ~paper:[ 12.0; 40.0 ] in
      let adversaries =
        pick scale ~quick:[ "honest"; "lying" ] ~paper:[ "honest"; "lying"; "jam" ]
      in
      let message = pick scale ~quick:(Bitvec.of_string "10") ~paper:(Bitvec.of_string "1011") in
      List.concat_map
        (fun klass ->
          List.concat_map
            (fun nodes ->
              List.concat_map
                (fun density ->
                  List.map
                    (fun adversary ->
                      let faults =
                        match faults_of_adversary adversary with
                        | Some faults -> faults
                        | None -> assert false
                      in
                      let base = { Scenario.default with message; faults } in
                      let spec = cell_spec ~base ~klass ~nodes ~density in
                      Experiment.grid1 spec (fun agg ->
                          Experiment.row
                            ~values:
                              [
                                ("graph", Json.String (klass_name klass));
                                ("nodes", Json.Int nodes);
                                ("density", Json.Float density);
                                ("adversary", Json.String adversary);
                                ("completion_rate", Json.Float agg.Experiment.completion_rate);
                                ("correct_rate", Json.Float agg.Experiment.correct_rate);
                                ("rounds", Json.Float agg.Experiment.rounds);
                              ]
                            [
                              klass_name klass;
                              Table.cell_i nodes;
                              Table.cell_f ~decimals:0 density;
                              adversary;
                              Table.cell_pct agg.Experiment.completion_rate;
                              Table.cell_pct agg.Experiment.correct_rate;
                              Table.cell_f ~decimals:0 agg.Experiment.rounds;
                            ]))
                    adversaries)
                densities)
            node_counts)
        all_classes)
