(* G1: the graph-class protocol comparison.

   The paper evaluates on uniform deployments in a square, where the
   radio model makes the decode graph a unit-disk-like graph.  The
   explicit graph families (Graphs, plumbed through
   Scenario.deployment_kind) remove that assumption: grid-with-holes and
   corridor maps break the "every square is populated" premise of the
   NeighborWatchRB analysis, triangulations keep planarity but lose the
   lattice, expanders have no geometry at all, and the Moore lattice is
   the best case.  One experiment runs the four protocol families over
   each class so the comparison lands in one table. *)

let pick scale ~quick ~paper = match scale with Experiment.Quick -> quick | Paper -> paper

(* (label, deployment, nominal node count); nominal because grid-with-holes
   may skip a removal that would disconnect the component. *)
let classes scale =
  [
    ( "grid-holes",
      pick scale
        ~quick:(Scenario.Grid_holes { width = 12; height = 10; holes = 8 }, 112)
        ~paper:(Scenario.Grid_holes { width = 24; height = 20; holes = 40 }, 440) );
    ( "corridor",
      pick scale
        ~quick:(Scenario.Corridor { rooms = 3; room_w = 4; room_h = 5; hall_len = 3 }, 66)
        ~paper:(Scenario.Corridor { rooms = 5; room_w = 6; room_h = 8; hall_len = 4 }, 256) );
    ( "triangulated",
      pick scale
        ~quick:(Scenario.Triangulated { cols = 9; rows = 9; jitter = 0.25 }, 100)
        ~paper:(Scenario.Triangulated { cols = 20; rows = 20; jitter = 0.25 }, 441) );
    ( "expander",
      pick scale
        ~quick:(Scenario.Expander { n = 120; degree = 4 }, 120)
        ~paper:(Scenario.Expander { n = 450; degree = 4 }, 450) );
    ( "lattice",
      pick scale
        ~quick:(Scenario.Lattice { width = 10; height = 10 }, 100)
        ~paper:(Scenario.Lattice { width = 21; height = 21 }, 441) );
  ]

let protocols =
  [
    Scenario.Neighbor_watch { votes = 1 };
    Scenario.Neighbor_watch { votes = 2 };
    Scenario.Multi_path { tolerance = 1 };
    Scenario.Certified { tolerance = 1 };
  ]

let comparison =
  Experiment.job ~id:"g1" ~title:"G1: protocol comparison across explicit graph classes"
    ~columns:[ "graph"; "protocol"; "nodes"; "completed"; "correct"; "rounds" ]
    (fun scale ->
      let message = pick scale ~quick:(Bitvec.of_string "101") ~paper:(Bitvec.of_string "1011") in
      let cap = pick scale ~quick:200_000 ~paper:600_000 in
      List.concat_map
        (fun (label, (deployment, nominal)) ->
          List.map
            (fun protocol ->
              let spec =
                {
                  Scenario.default with
                  deployment;
                  message;
                  protocol;
                  cap;
                  heard_relay_limit =
                    (match protocol with
                    | Scenario.Multi_path { tolerance } ->
                      Figures.relay_limit scale ~tolerance
                    | Scenario.Neighbor_watch _ | Scenario.Epidemic | Scenario.Certified _ ->
                      None);
                }
              in
              Experiment.grid1 spec (fun agg ->
                  Experiment.row
                    ~values:
                      [
                        ("graph", Json.String label);
                        ("completion_rate", Json.Float agg.Experiment.completion_rate);
                        ("correct_rate", Json.Float agg.Experiment.correct_rate);
                        ("rounds", Json.Float agg.Experiment.rounds);
                      ]
                    [
                      label;
                      Figures.protocol_name protocol;
                      Table.cell_i nominal;
                      Table.cell_pct agg.Experiment.completion_rate;
                      Table.cell_pct agg.Experiment.correct_rate;
                      Table.cell_f ~decimals:0 agg.Experiment.rounds;
                    ]))
            protocols)
        (classes scale))
