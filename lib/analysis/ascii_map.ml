(* Cell states, ordered by display severity. *)
type cell_state =
  | Empty
  | Correct
  | Silent  (** has nodes, none delivered *)
  | Fake
  | Jammer
  | Liar
  | Source_cell

let severity = function
  | Empty -> 0
  | Correct -> 1
  | Silent -> 2
  | Fake -> 3
  | Jammer -> 4
  | Liar -> 5
  | Source_cell -> 6

let glyph = function
  | Empty -> ' '
  | Correct -> '#'
  | Silent -> '.'
  | Fake -> 'x'
  | Jammer -> 'J'
  | Liar -> 'L'
  | Source_cell -> 'S'

let render ?(cell = 1.0) (result : Scenario.result) =
  let deployment = Topology.deployment result.Scenario.topology in
  let cols = max 1 (int_of_float (ceil (deployment.Deployment.width /. cell))) in
  let rows = max 1 (int_of_float (ceil (deployment.Deployment.height /. cell))) in
  let grid = Array.make_matrix rows cols Empty in
  let message = result.Scenario.spec.Scenario.message in
  let is_jamming =
    match result.Scenario.spec.Scenario.faults with Scenario.Jamming _ -> true | _ -> false
  in
  Array.iteri
    (fun i (node : Node.t) ->
      let cx = min (cols - 1) (int_of_float (node.Node.pos.Point.x /. cell)) in
      let cy = min (rows - 1) (int_of_float (node.Node.pos.Point.y /. cell)) in
      let state =
        if i = result.Scenario.source then Source_cell
        else if not result.Scenario.honest.(i) then
          if is_jamming then Jammer else Liar
        else begin
          match result.Scenario.engine.Engine.delivered.(i) with
          | Some bits when Bitvec.equal bits message -> Correct
          | Some _ -> Fake
          | None -> Silent
        end
      in
      if severity state > severity grid.(cy).(cx) then grid.(cy).(cx) <- state)
    deployment.Deployment.nodes;
  let buf = Buffer.create (rows * (cols + 1)) in
  (* Draw with y increasing upwards, like the map coordinates. *)
  for y = rows - 1 downto 0 do
    for x = 0 to cols - 1 do
      Buffer.add_char buf (glyph grid.(y).(x))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    "S source  # correct  x fake  . no delivery  L liar  J jammer\n";
  Buffer.contents buf

let print ?cell result = print_string (render ?cell result)
