type config = { repetitions : int; base_seed : int }

let quick = { repetitions = 3; base_seed = 1000 }
let paper = { repetitions = 6; base_seed = 1000 }

let seeds config = List.init config.repetitions (fun i -> config.base_seed + (7919 * i))

let run config spec =
  List.map (fun seed -> Scenario.summarize (Scenario.run { spec with Scenario.seed })) (seeds config)

type aggregate = {
  completion_rate : float;
  correct_of_delivered : float;
  correct_rate : float;
  rounds : float;
  broadcasts : float;
  runs : int;
}

let aggregate summaries =
  let f sel = List.map sel summaries in
  let trimmed_mean sel = Stats.mean (Stats.trimmed (f sel)) in
  {
    completion_rate = Stats.mean (f (fun s -> s.Scenario.completion_rate));
    correct_of_delivered = Stats.mean (f (fun s -> s.Scenario.correct_of_delivered));
    correct_rate = Stats.mean (f (fun s -> s.Scenario.correct_rate));
    rounds = trimmed_mean (fun s -> float_of_int s.Scenario.rounds);
    broadcasts = trimmed_mean (fun s -> float_of_int s.Scenario.total_broadcasts);
    runs = List.length summaries;
  }

let measure config spec = aggregate (run config spec)

let json_of_aggregate a =
  Json.Obj
    [
      ("completion_rate", Json.Float a.completion_rate);
      ("correct_of_delivered", Json.Float a.correct_of_delivered);
      ("correct_rate", Json.Float a.correct_rate);
      ("rounds", Json.Float a.rounds);
      ("broadcasts", Json.Float a.broadcasts);
      ("runs", Json.Int a.runs);
    ]

(* ------------------------------------------------------------------ *)
(* Declarative experiments                                            *)
(* ------------------------------------------------------------------ *)

type scale = Quick | Paper

let config_of_scale = function Quick -> quick | Paper -> paper

type row = {
  cells : string list;
  points : (string * (float * float)) list;
  values : (string * Json.t) list;
}

let row ?(points = []) ?(values = []) cells = { cells; points; values }

type cell =
  | Grid of { specs : Scenario.spec list; render : aggregate list -> row }
  | Thunk of (unit -> row)

let grid1 spec render =
  Grid
    {
      specs = [ spec ];
      render = (function [ a ] -> render a | _ -> invalid_arg "Experiment.grid1");
    }

let grid2 spec_a spec_b render =
  Grid
    {
      specs = [ spec_a; spec_b ];
      render = (function [ a; b ] -> render a b | _ -> invalid_arg "Experiment.grid2");
    }

type job = {
  id : string;
  title : string;
  columns : string list;
  config : scale -> config;
  cells : scale -> cell list;
  fits : (string * string) list;
  notes : fits:(string * Stats.fit) list -> series:(string -> (float * float) list) -> string list;
}

let job ?config ?(fits = []) ?(notes = fun ~fits:_ ~series:_ -> []) ~id ~title ~columns cells =
  {
    id;
    title;
    columns;
    config = (match config with Some c -> c | None -> config_of_scale);
    cells;
    fits;
    notes;
  }
