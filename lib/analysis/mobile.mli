(** Epoch-based mobile authenticated broadcast — the natural adaptation of
    NeighborWatchRB to mobile nodes, listed as future work in Section 7.

    Time is divided into epochs.  Within an epoch, positions are treated as
    static: the localisation service gives each node its current location,
    from which squares, schedules and neighbour sets are derived exactly as
    in the static protocol.  Between epochs, nodes move (random waypoint)
    and everything location-derived is recomputed — but each node keeps the
    message prefix it has already committed, because commitment is a local,
    already-authenticated fact (Theorem 3 part 1 does not depend on where
    the node goes next).

    Safety is therefore unaffected by mobility; what mobility can cost is
    liveness per epoch (a node may move away mid-exchange and waste the
    tail of an epoch), and what it can buy is connectivity: moving nodes
    ferry committed bits across gaps that would partition a static
    deployment. *)

type config = {
  map : float;
  nodes : int;
  radius : float;
  message : Bitvec.t;
  epoch_rounds : int;
      (** rounds of protocol execution per epoch; clamped up to
          (msg_len + 2) schedule cycles — shorter epochs cannot advance the
          frontier, because a re-clustered square must re-stream its whole
          committed prefix for its new neighbours *)
  max_epochs : int;
  model : Mobility.model;
  liar_fraction : float;  (** pre-committed fake devices, as in E3 *)
  seed : int;
}

val default : config
(** 12×12 map, 200 nodes, R = 3, 4-bit message, 3000-round epochs, speed
    0.002 units/round, no liars. *)

val scaled_config : Experiment.scale -> config
(** The benchmark configuration per scale: sparse deployments, so the
    table shows the interesting regime (static partitions that movement
    ferries the message across). *)

type result = {
  epochs_used : int;
  rounds_total : int;
  completion_rate : float;  (** honest nodes that delivered *)
  correct_rate : float;  (** honest nodes that delivered the true message *)
  mean_displacement : float;  (** distance travelled per node over the run *)
}

val run : config -> result

val table : config -> speeds:float list -> Table.t
(** Completion/correctness vs speed (one row per speed), for the mobile
    example and bench. *)
