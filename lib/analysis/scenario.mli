(** Assembly of complete simulation scenarios.

    A {!spec} describes one simulated broadcast exactly the way the paper's
    experiments do: a map, a deployment, a radio model, a protocol variant,
    and a fault model.  [run] builds the deployment and topology, attaches
    per-node machines (honest protocol or adversary), runs the engine, and
    returns everything needed to compute the reported metrics. *)

type protocol =
  | Neighbor_watch of { votes : int }
      (** the NeighborWatchRB protocol; [votes = 2] is the 2-voting variant *)
  | Multi_path of { tolerance : int }  (** MultiPathRB tuned for t faults per region *)
  | Epidemic  (** the unauthenticated flooding baseline *)
  | Certified of { tolerance : int }
      (** CPA over the radio engine (slot-authenticated announcements) *)

type deployment_kind =
  | Uniform of int  (** n nodes uniformly at random *)
  | Clustered of { n : int; clusters : int; stddev : float }
  | Grid  (** one node per integer grid point (the analytic model) *)
  | Grid_holes of { width : int; height : int; holes : int }
      (** 4-adjacent grid with up to [holes] nodes removed, still connected *)
  | Corridor of { rooms : int; room_w : int; room_h : int; hall_len : int }
      (** dense rooms chained by width-one halls (loosely connected) *)
  | Triangulated of { cols : int; rows : int; jitter : float }
      (** planar triangulation of a jittered point grid *)
  | Expander of { n : int; degree : int }
      (** ring plus [degree - 2] random matchings *)
  | Lattice of { width : int; height : int }  (** 8-adjacent (Moore) grid *)

val geometric_deployment : deployment_kind -> bool
(** [true] for the kinds that deploy on the [map_w × map_h] square and
    derive edges from the radio model; the synthetic graph families ignore
    map size, radio and radius. *)

type radio = Friis | Disk_l2 | Disk_linf

type faults =
  | No_faults
  | Crash of float  (** fraction of devices that take no steps *)
  | Jamming of { fraction : float; budget : int; probability : float }
      (** veto-round jammers with a per-device broadcast budget
          ([budget < 0] = unlimited) *)
  | Lying of float  (** fraction of devices pre-committed to a fake message *)
  | Selective_jam of { fraction : float; budget : int; probability : float }
      (** schedule-aware jammers concentrating on the source's slot *)

type spec = {
  map_w : float;
  map_h : float;
  deployment : deployment_kind;
  radio : radio;
  radius : float;
  channel : Channel.params;
  message : Bitvec.t;
  protocol : protocol;
  faults : faults;
  cap : int;  (** round cap *)
  heard_relay_limit : int option;  (** MultiPathRB relay cap (None = paper) *)
  square_side : float option;
      (** NeighborWatchRB square-size override (default: R/3, the paper's
          simulation sizing) *)
  pipelined : bool;  (** [false]: store-and-forward ablation (DESIGN.md) *)
  allow_unreachable : bool;
      (** [false] (the default): {!run} raises {!Unreachable} when the
          source cannot reach the whole deployment.  Set for sweeps that
          deliberately measure partial coverage. *)
  seed : int;
}

exception Unreachable of { unreachable : int; total : int }
(** Raised by {!run} (before any round executes) when the source cannot
    reach [unreachable] of the [total] nodes and the spec does not set
    [allow_unreachable] — otherwise those nodes would be reported as
    silent delivery failures, indistinguishable from protocol defects. *)

val default : spec
(** 20×20 map, 600 uniform nodes, Friis radio with R=4, ideal channel,
    4-bit message, NeighborWatchRB, no faults — the paper's most common
    configuration. *)

type result = {
  spec : spec;
  topology : Topology.t;
  source : Node.id;
  honest : bool array;  (** honest *and* active (not crashed) *)
  fake : Bitvec.t option;  (** the liars' message, if any *)
  engine : Engine.result;
}

val run :
  ?tap:(Engine.round_digest -> unit) ->
  ?mode:Engine.mode ->
  ?tile_of:int array ->
  ?topology:Topology.t ->
  ?boxed:bool ->
  spec ->
  result
(** [tap] is forwarded to {!Engine.run}: one digest per executed round.
    [mode] selects the engine loop (default [`Sparse]; results are
    mode-independent — the equivalence suite holds all loops, including
    every [`Sharded] tile count, byte-identical — so [`Dense] is only
    interesting as the reference and [`Sharded] as the parallel engine).
    [tile_of] is forwarded to {!Engine.run} (sharded runs only).
    [topology], if given, skips the deployment build and runs on the
    supplied topology instead: it must be the very topology this spec
    builds (campaign warm rounds reuse the cold round's); the rng split
    order is unchanged either way, so faults and channel draws are
    identical.  [boxed] (default false) runs every machine through
    {!Engine.boxed_machine}, disabling the packed observation fast path —
    the equivalence suite holds packed and boxed runs byte-identical. *)

val presets : (string * spec) list
(** Named specs mirroring the bundled examples ([examples/<name>.ml]); the
    [securebit_lint] checkers and the [@lint] alias run over these.  The
    examples build their specs from these entries (via {!preset_exn}), so
    the scenario linter's preset pass covers exactly what the examples
    run. *)

val preset : string -> spec option
(** Look up a preset by name. *)

val preset_exn : string -> spec
(** Like {!preset}; raises [Invalid_argument] naming the known presets.
    For the bundled examples, where a missing preset is a bug. *)

type summary = {
  honest_nodes : int;  (** honest nodes other than the source *)
  delivered_any : int;
  delivered_correct : int;
  completion_rate : float;  (** delivered_any / honest_nodes *)
  correct_of_delivered : float;  (** delivered_correct / delivered_any (1 if none) *)
  correct_rate : float;  (** delivered_correct / honest_nodes *)
  rounds : int;
  active_rounds : int;  (** rounds with at least one transmission *)
  hit_cap : bool;
  total_broadcasts : int;
  mean_completion_round : float;  (** over honest nodes that completed *)
}

val summarize : result -> summary

val fake_message : Bitvec.t -> Bitvec.t
(** A canonical fake message for lying experiments: the bitwise complement
    of the real one (maximally different, so mixing is visible). *)
