let grid_spec ~side ~message =
  {
    Scenario.default with
    map_w = float_of_int (side - 1);
    map_h = float_of_int (side - 1);
    deployment = Scenario.Grid;
    radio = Scenario.Disk_linf;
    radius = 2.0;
    (* The analytic square sizing ⌈R/2⌉: on the unit grid every square is
       non-empty, which the R/3 simulation sizing does not guarantee. *)
    square_side = Some (Squares.analytic_side ~radius:2.0);
    message;
  }

let budget_sweep =
  Experiment.job ~id:"e8a" ~title:"E8a (Theorem 5): rounds vs adversary budget (grid)"
    ~columns:[ "budget"; "rounds"; "completed" ]
    ~fits:[ ("fit (rounds vs budget)", "budget") ]
    (fun scale ->
      let side = match scale with Experiment.Quick -> 11 | Experiment.Paper -> 17 in
      let budgets =
        match scale with
        | Experiment.Quick -> [ 0; 30; 60; 120 ]
        | Experiment.Paper -> [ 0; 50; 100; 200; 400 ]
      in
      List.map
        (fun budget ->
          let spec =
            {
              (grid_spec ~side ~message:(Bitvec.of_string "1011")) with
              Scenario.faults =
                (if budget = 0 then Scenario.No_faults
                 else Scenario.Jamming { fraction = 0.05; budget; probability = 1.0 });
            }
          in
          Experiment.grid1 spec (fun agg ->
              Experiment.row
                ~points:[ ("budget", (float_of_int budget, agg.Experiment.rounds)) ]
                [
                  Table.cell_i budget;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                  Table.cell_pct agg.Experiment.completion_rate;
                ]))
        budgets)

let diameter_sweep =
  Experiment.job ~id:"e8b" ~title:"E8b (Theorem 5): rounds vs hop diameter (grids)"
    ~columns:[ "grid"; "hop diameter"; "rounds"; "completed" ]
    ~fits:[ ("fit (rounds vs diameter)", "diameter") ]
    (fun scale ->
      let sides =
        match scale with
        | Experiment.Quick -> [ 7; 11; 15; 19 ]
        | Experiment.Paper -> [ 9; 15; 21; 27; 33 ]
      in
      let config = Experiment.config_of_scale scale in
      List.map
        (fun side ->
          let spec = grid_spec ~side ~message:(Bitvec.of_string "1011") in
          Experiment.Thunk
            (fun () ->
              let result = Scenario.run spec in
              let diameter =
                float_of_int
                  (Topology.hop_diameter_from result.Scenario.topology result.Scenario.source)
              in
              let agg = Experiment.measure config spec in
              Experiment.row
                ~points:[ ("diameter", (diameter, agg.Experiment.rounds)) ]
                ~values:[ ("aggregate", Experiment.json_of_aggregate agg) ]
                [
                  Printf.sprintf "%dx%d" side side;
                  Table.cell_f ~decimals:0 diameter;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                  Table.cell_pct agg.Experiment.completion_rate;
                ]))
        sides)

let length_sweep =
  Experiment.job ~id:"e8c" ~title:"E8c (Theorem 5): rounds vs message length (grid)"
    ~columns:[ "message bits"; "rounds"; "completed" ]
    ~fits:[ ("fit (rounds vs length)", "length") ]
    (fun scale ->
      let side = match scale with Experiment.Quick -> 11 | Experiment.Paper -> 15 in
      let lengths =
        match scale with
        | Experiment.Quick -> [ 2; 4; 8; 16 ]
        | Experiment.Paper -> [ 2; 4; 8; 16; 32; 64 ]
      in
      List.map
        (fun len ->
          let message = Bitvec.random (Rng.create (50 + len)) len in
          let spec = grid_spec ~side ~message in
          Experiment.grid1 spec (fun agg ->
              Experiment.row
                ~points:[ ("length", (float_of_int len, agg.Experiment.rounds)) ]
                [
                  Table.cell_i len;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                  Table.cell_pct agg.Experiment.completion_rate;
                ]))
        lengths)

let jobs = [ budget_sweep; diameter_sweep; length_sweep ]
