(** G1: the graph-class protocol comparison.

    Runs NeighborWatchRB, 2-vote NeighborWatchRB, MultiPathRB and CPA
    over the explicit graph families ({!Graphs} via
    {!Scenario.deployment_kind}): grid-with-holes, corridor, planar
    triangulation, expander and Moore lattice.  The square-geometry
    deployments the paper evaluates on are the protocols' home turf;
    this table shows what survives when the unit-disk assumption goes
    away (the scenario linter flags the analytic bounds that no longer
    apply — see the [non-geometric-bound] diagnostic). *)

val comparison : Experiment.job
(** Experiment id ["g1"]. *)
