(** Repetition harness and the declarative experiment model.

    The paper repeats each experiment 6–20 times with outliers discarded
    (Section 6, "Methodology"); the first half of this module runs a
    scenario across seeds and aggregates the per-run summaries the same
    way.

    The second half defines experiments as data: a {!job} is a parameter
    grid of {!Scenario.spec}s plus per-cell renderers, registered under a
    stable id in {!Registry}.  Jobs are pure descriptions — {!Runner} (in
    [lib/run]) executes their trial cells, possibly on a domain pool, and
    merges deterministically. *)

type config = { repetitions : int; base_seed : int }

val quick : config
(** 3 repetitions — the scaled-down default of the benchmark harness. *)

val paper : config
(** 6 repetitions, as in most of the paper's experiments. *)

val seeds : config -> int list

val run : config -> Scenario.spec -> Scenario.summary list
(** Run the spec once per seed (spec seed replaced). *)

type aggregate = {
  completion_rate : float;
  correct_of_delivered : float;
  correct_rate : float;
  rounds : float;  (** outlier-trimmed mean over runs *)
  broadcasts : float;  (** outlier-trimmed mean over runs *)
  runs : int;
}

val aggregate : Scenario.summary list -> aggregate

val measure : config -> Scenario.spec -> aggregate
(** [aggregate] of [run]. *)

val json_of_aggregate : aggregate -> Json.t

(** {1 Declarative experiments} *)

type scale = Quick | Paper
(** [Quick] is the scaled-down configuration sized so the whole suite
    completes in minutes; [Paper] reproduces the paper's parameters. *)

val config_of_scale : scale -> config

type row = {
  cells : string list;  (** rendered table cells, one per job column *)
  points : (string * (float * float)) list;
      (** contributions to named fit series, e.g. [("budget", (b, rounds))] *)
  values : (string * Json.t) list;
      (** extra machine-readable metrics carried into the JSON results *)
}

val row :
  ?points:(string * (float * float)) list -> ?values:(string * Json.t) list -> string list -> row

type cell =
  | Grid of { specs : Scenario.spec list; render : aggregate list -> row }
      (** One table row: every spec is run once per seed of the job's
          config ([spec.seed] replaced); [render] receives one aggregate
          per spec, in order.  Each (spec, seed) pair is an independent
          trial the runner may execute on any worker. *)
  | Thunk of (unit -> row)
      (** One table row computed by arbitrary code (adaptive scans,
          derived measurements).  A thunk is a single trial; it must
          derive all randomness from seeds it owns. *)

val grid1 : Scenario.spec -> (aggregate -> row) -> cell
val grid2 : Scenario.spec -> Scenario.spec -> (aggregate -> aggregate -> row) -> cell

type job = {
  id : string;  (** stable experiment id, lowercase (["e1"], ["a4"], …) *)
  title : string;  (** printed table title *)
  columns : string list;
  config : scale -> config;  (** repetitions for [Grid] cells *)
  cells : scale -> cell list;  (** the parameter grid, one cell per row *)
  fits : (string * string) list;
      (** derived linear fits: (printed label, point-series name) *)
  notes :
    fits:(string * Stats.fit) list -> series:(string -> (float * float) list) -> string list;
      (** extra printed lines, given the computed fits and point series *)
}

val job :
  ?config:(scale -> config) ->
  ?fits:(string * string) list ->
  ?notes:
    (fits:(string * Stats.fit) list -> series:(string -> (float * float) list) -> string list) ->
  id:string ->
  title:string ->
  columns:string list ->
  (scale -> cell list) ->
  job
(** Smart constructor; [config] defaults to {!config_of_scale}, [fits] and
    [notes] to empty. *)
