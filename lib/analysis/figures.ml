type scale = Experiment.scale = Quick | Paper

(* Deprecated fallback: the explicit `--scale quick|paper` CLI flag is the
   supported switch; FULL=1 is honoured for old scripts. *)
let scale_of_env () =
  match Sys.getenv_opt "FULL" with
  | Some "" | Some "0" | None -> Quick
  | Some _ -> Paper

let pick scale ~quick ~paper = match scale with Quick -> quick | Paper -> paper

let protocol_name = function
  | Scenario.Neighbor_watch { votes = 1 } -> "NeighborWatchRB"
  | Scenario.Neighbor_watch { votes } -> Printf.sprintf "%d-vote NW" votes
  | Scenario.Multi_path { tolerance } -> Printf.sprintf "MultiPathRB t=%d" tolerance
  | Scenario.Epidemic -> "Epidemic"
  | Scenario.Certified { tolerance } -> Printf.sprintf "CPA t=%d" tolerance

(* MultiPathRB relay cap used at Quick scale: just above the quorum size,
   so the voting rule still has redundancy but the HEARD flood is bounded
   (DESIGN.md).  Paper scale relays everything, as the protocol says. *)
let relay_limit scale ~tolerance =
  match scale with Quick -> Some (tolerance + 3) | Paper -> None

let tolerance_of = function Scenario.Multi_path { tolerance } -> tolerance | _ -> 0

(* ------------------------------------------------------------------ *)
(* E1 / Figure 5: crash resilience                                     *)
(* ------------------------------------------------------------------ *)

let fig5_crash =
  Experiment.job ~id:"e1" ~title:"E1 (Figure 5): completion under crash failures"
    ~columns:[ "protocol"; "density"; "nodes"; "completed"; "rounds" ]
    (fun scale ->
      let map = pick scale ~quick:10.0 ~paper:24.0 in
      let radius = pick scale ~quick:2.5 ~paper:4.0 in
      let densities =
        pick scale ~quick:[ 0.4; 0.6; 0.8; 1.2; 1.6 ]
          ~paper:[ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0 ]
      in
      let message = pick scale ~quick:(Bitvec.of_string "101") ~paper:(Bitvec.of_string "1011") in
      let protocols density =
        let nw = [ Scenario.Neighbor_watch { votes = 1 }; Scenario.Neighbor_watch { votes = 2 } ] in
        let mp = [ Scenario.Multi_path { tolerance = 3 }; Scenario.Multi_path { tolerance = 5 } ] in
        match scale with
        | Paper -> nw @ mp
        | Quick -> if density >= 0.8 then nw @ mp else nw
        (* Quick scale skips MultiPathRB where it cannot complete anyway; it
           would only burn its round cap. *)
      in
      List.concat_map
        (fun density ->
          let n = int_of_float (density *. map *. map) in
          List.map
            (fun protocol ->
              let spec =
                {
                  Scenario.default with
                  allow_unreachable = true;
                  map_w = map;
                  map_h = map;
                  deployment = Scenario.Uniform n;
                  radius;
                  message;
                  protocol;
                  heard_relay_limit = relay_limit scale ~tolerance:(tolerance_of protocol);
                }
              in
              Experiment.grid1 spec (fun agg ->
                  Experiment.row
                    [
                      protocol_name protocol;
                      Table.cell_f ~decimals:2 density;
                      Table.cell_i n;
                      Table.cell_pct agg.Experiment.completion_rate;
                      Table.cell_f ~decimals:0 agg.Experiment.rounds;
                    ]))
            (protocols density))
        densities)

(* ------------------------------------------------------------------ *)
(* E2: jamming                                                         *)
(* ------------------------------------------------------------------ *)

let jamming =
  Experiment.job ~id:"e2" ~title:"E2 (sec 6.1): completion time under veto-round jamming"
    ~columns:[ "budget/jammer"; "rounds"; "broadcasts"; "completed" ]
    ~fits:[ ("linearity (rounds vs budget)", "budget") ]
    (fun scale ->
      let map = pick scale ~quick:12.0 ~paper:24.0 in
      let n = pick scale ~quick:220 ~paper:800 in
      let budgets =
        pick scale ~quick:[ 0; 20; 40; 80; 160 ] ~paper:[ 0; 50; 100; 200; 400; 800 ]
      in
      List.map
        (fun budget ->
          let spec =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius = 4.0;
              faults = Scenario.Jamming { fraction = 0.1; budget; probability = 0.2 };
            }
          in
          Experiment.grid1 spec (fun agg ->
              Experiment.row
                ~points:[ ("budget", (float_of_int budget, agg.Experiment.rounds)) ]
                [
                  Table.cell_i budget;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                  Table.cell_f ~decimals:0 agg.Experiment.broadcasts;
                  Table.cell_pct agg.Experiment.completion_rate;
                ]))
        budgets)

(* ------------------------------------------------------------------ *)
(* E3 / Figure 6: lying devices                                        *)
(* ------------------------------------------------------------------ *)

let fig6_lying =
  Experiment.job ~id:"e3" ~title:"E3 (Figure 6): correctness under lying devices"
    ~columns:[ "protocol"; "byzantine"; "delivered"; "correct of delivered"; "correct overall" ]
    (fun scale ->
      (* The map must be genuinely multi-hop relative to R (the paper uses a
         20×20 map with R = 4), otherwise most devices authenticate directly
         from the source and lying has no purchase at all. *)
      let map = pick scale ~quick:10.0 ~paper:20.0 in
      let radius = pick scale ~quick:2.5 ~paper:4.0 in
      let n = pick scale ~quick:200 ~paper:600 in
      let message = pick scale ~quick:(Bitvec.of_string "101") ~paper:(Bitvec.of_string "1011") in
      let fractions =
        pick scale ~quick:[ 0.0; 0.025; 0.05; 0.10; 0.15; 0.20 ]
          ~paper:[ 0.0; 0.025; 0.05; 0.075; 0.10; 0.125; 0.15 ]
      in
      let protocols =
        pick scale
          ~quick:
            [
              Scenario.Neighbor_watch { votes = 1 };
              Scenario.Neighbor_watch { votes = 2 };
              Scenario.Multi_path { tolerance = 1 };
              Scenario.Multi_path { tolerance = 3 };
            ]
          ~paper:
            [
              Scenario.Neighbor_watch { votes = 1 };
              Scenario.Neighbor_watch { votes = 2 };
              Scenario.Multi_path { tolerance = 3 };
              Scenario.Multi_path { tolerance = 5 };
            ]
      in
      let fractions_for protocol =
        match (scale, protocol) with
        | Quick, Scenario.Multi_path _ -> [ 0.0; 0.05; 0.10 ]
        | (Quick | Paper), _ -> fractions
      in
      List.concat_map
        (fun protocol ->
          List.map
            (fun fraction ->
              let spec =
                {
                  Scenario.default with
                  allow_unreachable = true;
                  map_w = map;
                  map_h = map;
                  deployment = Scenario.Uniform n;
                  radius;
                  message;
                  protocol;
                  faults = Scenario.Lying fraction;
                  heard_relay_limit = relay_limit scale ~tolerance:(tolerance_of protocol);
                }
              in
              Experiment.grid1 spec (fun agg ->
                  Experiment.row
                    [
                      protocol_name protocol;
                      Table.cell_pct fraction;
                      Table.cell_pct agg.Experiment.completion_rate;
                      Table.cell_pct agg.Experiment.correct_of_delivered;
                      Table.cell_pct agg.Experiment.correct_rate;
                    ]))
            (fractions_for protocol))
        protocols)

(* ------------------------------------------------------------------ *)
(* E4 / Figure 7: tolerated Byzantine fraction vs density              *)
(* ------------------------------------------------------------------ *)

let fig7_density =
  Experiment.job ~id:"e4"
    ~title:"E4 (Figure 7): max Byzantine fraction with >=90% correct delivery"
    ~columns:[ "protocol"; "density"; "max byzantine" ]
    (fun scale ->
      (* The map must stay genuinely multi-hop (map/R = 5, as in the paper)
         and quick-scale densities must start above the R/3-square percolation
         point (≈1.2 nodes per square, i.e. density ≈2.5 at R = 2); below
         that, incompletion — not lying — dominates the 90% criterion. *)
      let map = pick scale ~quick:12.0 ~paper:20.0 in
      let radius = pick scale ~quick:2.5 ~paper:4.0 in
      let densities = pick scale ~quick:[ 2.0; 4.0; 8.0 ] ~paper:[ 0.75; 1.5; 3.0; 5.0; 9.0 ] in
      let probe_step = 0.05 in
      let threshold = 0.9 in
      let protocols =
        match scale with
        | Quick -> [ Scenario.Neighbor_watch { votes = 1 }; Scenario.Neighbor_watch { votes = 2 } ]
        | Paper ->
          [
            Scenario.Neighbor_watch { votes = 1 };
            Scenario.Neighbor_watch { votes = 2 };
            Scenario.Multi_path { tolerance = 3 };
          ]
      in
      let config =
        (* Each probe is a full experiment; two repetitions keep the scan
           tractable at quick scale. *)
        match scale with
        | Quick -> { Experiment.quick with repetitions = 2 }
        | Paper -> Experiment.paper
      in
      let max_tolerated protocol density =
        let n = int_of_float (density *. map *. map) in
        (* MultiPathRB at paper scale stops at density 5, as in the paper. *)
        if (match protocol with Scenario.Multi_path _ -> density > 5.0 | _ -> false) then None
        else begin
          let ok fraction =
            let spec =
              {
                Scenario.default with
                allow_unreachable = true;
                map_w = map;
                map_h = map;
                deployment = Scenario.Uniform n;
                radius;
                message = Bitvec.of_string "101";
                protocol;
                faults = (if fraction = 0.0 then Scenario.No_faults else Scenario.Lying fraction);
                heard_relay_limit = relay_limit scale ~tolerance:(tolerance_of protocol);
              }
            in
            (Experiment.measure config spec).Experiment.correct_rate >= threshold
          in
          let rec scan best fraction =
            if fraction > 0.5 then best
            else if ok fraction then scan fraction (fraction +. probe_step)
            else best
          in
          Some (scan 0.0 0.0)
        end
      in
      List.concat_map
        (fun protocol ->
          List.map
            (fun density ->
              Experiment.Thunk
                (fun () ->
                  let cell, value =
                    match max_tolerated protocol density with
                    | None -> ("-", Json.Null)
                    | Some fraction -> (Table.cell_pct fraction, Json.Float fraction)
                  in
                  Experiment.row
                    ~values:[ ("max_byzantine_fraction", value) ]
                    [ protocol_name protocol; Table.cell_f ~decimals:2 density; cell ]))
            densities)
        protocols)

(* ------------------------------------------------------------------ *)
(* E5: clustered deployments                                           *)
(* ------------------------------------------------------------------ *)

let clustered =
  Experiment.job ~id:"e5"
    ~title:"E5 (sec 6.2): uniform vs clustered deployment (NeighborWatchRB)"
    ~columns:[ "deployment"; "faults"; "completed"; "correct of delivered"; "rounds" ]
    (fun scale ->
      (* Clustering helps correctness only when clusters are tight relative to
         the radio range (each watch square then holds many honest witnesses);
         with loose clusters the sparse inter-cluster bridges become the attack
         surface.  The paper's setup (R = 4, dense clusters) is the former
         regime. *)
      let map = pick scale ~quick:15.0 ~paper:30.0 in
      let radius = 4.0 in
      let stddev = pick scale ~quick:1.2 ~paper:1.5 in
      let n = pick scale ~quick:400 ~paper:1200 in
      let clusters = pick scale ~quick:8 ~paper:20 in
      let deployments =
        [
          ("uniform", Scenario.Uniform n);
          ("clustered", Scenario.Clustered { n; clusters; stddev });
        ]
      in
      let fault_models = [ ("none", Scenario.No_faults); ("lying 10%", Scenario.Lying 0.10) ] in
      List.concat_map
        (fun (dep_name, deployment) ->
          List.map
            (fun (fault_name, faults) ->
              let spec =
                {
                  Scenario.default with
                  allow_unreachable = true;
                  map_w = map;
                  map_h = map;
                  deployment;
                  radius;
                  faults;
                }
              in
              Experiment.grid1 spec (fun agg ->
                  Experiment.row
                    [
                      dep_name;
                      fault_name;
                      Table.cell_pct agg.Experiment.completion_rate;
                      Table.cell_pct agg.Experiment.correct_of_delivered;
                      Table.cell_f ~decimals:0 agg.Experiment.rounds;
                    ]))
            fault_models)
        deployments)

(* ------------------------------------------------------------------ *)
(* E6: varying map size                                                *)
(* ------------------------------------------------------------------ *)

let hop_diameter spec =
  let result = Scenario.run spec in
  Topology.hop_diameter_from result.Scenario.topology result.Scenario.source

let map_size =
  Experiment.job ~id:"e6" ~title:"E6 (sec 6.2): scaling with map size (NeighborWatchRB)"
    ~columns:[ "map"; "nodes"; "hop diameter"; "rounds"; "broadcasts"; "completed" ]
    ~fits:
      [ ("rounds vs hop diameter", "rounds"); ("broadcasts vs hop diameter", "broadcasts") ]
    (fun scale ->
      let maps =
        pick scale ~quick:[ 10.0; 14.0; 18.0; 22.0 ] ~paper:[ 20.0; 30.0; 40.0; 50.0; 60.0 ]
      in
      let density = 1.25 in
      let config = Experiment.config_of_scale scale in
      List.map
        (fun map ->
          let n = int_of_float (density *. map *. map) in
          let spec =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius = 3.0;
              message = Bitvec.of_string "10110";
            }
          in
          Experiment.Thunk
            (fun () ->
              let diameter = float_of_int (hop_diameter spec) in
              let agg = Experiment.measure config spec in
              Experiment.row
                ~points:
                  [
                    ("rounds", (diameter, agg.Experiment.rounds));
                    ("broadcasts", (diameter, agg.Experiment.broadcasts));
                  ]
                ~values:[ ("aggregate", Experiment.json_of_aggregate agg) ]
                [
                  Printf.sprintf "%.0fx%.0f" map map;
                  Table.cell_i n;
                  Table.cell_f ~decimals:0 diameter;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                  Table.cell_f ~decimals:0 agg.Experiment.broadcasts;
                  Table.cell_pct agg.Experiment.completion_rate;
                ]))
        maps)

(* ------------------------------------------------------------------ *)
(* E7: comparison with the epidemic baseline                           *)
(* ------------------------------------------------------------------ *)

let epidemic_comparison =
  Experiment.job ~id:"e7" ~title:"E7 (sec 6.2): NeighborWatchRB vs epidemic flooding"
    ~columns:[ "map"; "nodes"; "NW rounds"; "epidemic rounds"; "slowdown" ]
    ~notes:(fun ~fits:_ ~series ->
      let slowdowns = List.map snd (series "slowdown") in
      [ Printf.sprintf "mean slowdown: %.1fx (paper: ~7.7x)" (Stats.mean slowdowns) ])
    (fun scale ->
      let maps = pick scale ~quick:[ 12.0; 16.0; 20.0 ] ~paper:[ 30.0; 40.0; 50.0 ] in
      let density = 1.25 in
      List.map
        (fun map ->
          let n = int_of_float (density *. map *. map) in
          let base =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius = 3.0;
              message = Bitvec.of_string "10110";
            }
          in
          Experiment.grid2 base
            { base with Scenario.protocol = Scenario.Epidemic }
            (fun nw epi ->
              let slowdown =
                if epi.Experiment.rounds > 0.0 then nw.Experiment.rounds /. epi.Experiment.rounds
                else 0.0
              in
              Experiment.row
                ~points:[ ("slowdown", (map, slowdown)) ]
                [
                  Printf.sprintf "%.0fx%.0f" map map;
                  Table.cell_i n;
                  Table.cell_f ~decimals:0 nw.Experiment.rounds;
                  Table.cell_f ~decimals:0 epi.Experiment.rounds;
                  Table.cell_f ~decimals:1 slowdown ^ "x";
                ]))
        maps)

(* ------------------------------------------------------------------ *)
(* A1: pipelining ablation                                             *)
(* ------------------------------------------------------------------ *)

let ablation_pipeline =
  Experiment.job ~id:"a1" ~title:"A1: pipelined vs store-and-forward NeighborWatchRB"
    ~columns:[ "message bits"; "pipelined rounds"; "store-and-forward rounds"; "ratio" ]
    (fun scale ->
      let map = pick scale ~quick:14.0 ~paper:30.0 in
      let n = int_of_float (1.25 *. map *. map) in
      let lengths = pick scale ~quick:[ 2; 4; 8 ] ~paper:[ 2; 4; 8; 16; 32 ] in
      List.map
        (fun len ->
          let message = Bitvec.random (Rng.create (100 + len)) len in
          let base =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius = 3.0;
              message;
            }
          in
          Experiment.grid2 base
            { base with Scenario.pipelined = false }
            (fun piped naive ->
              let ratio =
                if piped.Experiment.rounds > 0.0 then
                  naive.Experiment.rounds /. piped.Experiment.rounds
                else 0.0
              in
              Experiment.row
                [
                  Table.cell_i len;
                  Table.cell_f ~decimals:0 piped.Experiment.rounds;
                  Table.cell_f ~decimals:0 naive.Experiment.rounds;
                  Table.cell_f ~decimals:2 ratio ^ "x";
                ]))
        lengths)

(* ------------------------------------------------------------------ *)
(* A2: square-size ablation                                            *)
(* ------------------------------------------------------------------ *)

let ablation_square =
  Experiment.job ~id:"a2" ~title:"A2: NeighborWatchRB square side (Euclidean radio)"
    ~columns:[ "square side"; "completed"; "correct of delivered"; "rounds" ]
    (fun scale ->
      let map = pick scale ~quick:12.0 ~paper:24.0 in
      let n = int_of_float (1.5 *. map *. map) in
      let radius = 4.0 in
      let sides =
        [
          ("R/3 (simulation)", Squares.simulation_side ~radius);
          ("R/2 (analytic)", Squares.analytic_side ~radius);
          ("R", radius);
          ("2R (broken)", 2.0 *. radius);
        ]
      in
      List.map
        (fun (name, side) ->
          let spec =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius;
              square_side = Some side;
            }
          in
          Experiment.grid1 spec (fun agg ->
              Experiment.row
                [
                  name;
                  Table.cell_pct agg.Experiment.completion_rate;
                  Table.cell_pct agg.Experiment.correct_of_delivered;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                ]))
        sides)

(* ------------------------------------------------------------------ *)
(* A3: jamming-probability ablation                                    *)
(* ------------------------------------------------------------------ *)

let ablation_jamprob =
  Experiment.job ~id:"a3" ~title:"A3: jammer veto-round probability (fixed budget)"
    ~columns:[ "probability"; "rounds"; "completed" ]
    (fun scale ->
      let map = pick scale ~quick:12.0 ~paper:24.0 in
      let n = pick scale ~quick:220 ~paper:800 in
      let budget = pick scale ~quick:60 ~paper:200 in
      List.map
        (fun probability ->
          let spec =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius = 4.0;
              faults = Scenario.Jamming { fraction = 0.1; budget; probability };
            }
          in
          Experiment.grid1 spec (fun agg ->
              Experiment.row
                [
                  Table.cell_f ~decimals:2 probability;
                  Table.cell_f ~decimals:0 agg.Experiment.rounds;
                  Table.cell_pct agg.Experiment.completion_rate;
                ]))
        [ 0.05; 0.1; 0.2; 0.5; 1.0 ])

(* ------------------------------------------------------------------ *)
(* A4: dual-mode digest sweep                                          *)
(* ------------------------------------------------------------------ *)

let ablation_dualmode =
  Experiment.job ~id:"a4" ~title:"A4: dual-mode digest size (32-bit payload, 10% liars)"
    ~columns:[ "digest bits"; "accepted correct"; "fakes rejected"; "total rounds"; "slowdown" ]
    (fun scale ->
      let map = pick scale ~quick:12.0 ~paper:24.0 in
      let n = int_of_float (1.5 *. map *. map) in
      let full_len = 32 in
      let message = Bitvec.random (Rng.create 7) full_len in
      let digest_lens = pick scale ~quick:[ 2; 4; 8 ] ~paper:[ 2; 4; 8; 16 ] in
      List.map
        (fun digest_len ->
          let base =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius = 4.0;
              message;
              faults = Scenario.Lying 0.10;
            }
          in
          Experiment.Thunk
            (fun () ->
              let result = Dual_mode.run { Dual_mode.base; digest_len } in
              Experiment.row
                ~values:
                  [
                    ("accepted_correct_rate", Json.Float result.Dual_mode.accepted_correct_rate);
                    ("rejected_fake_rate", Json.Float result.Dual_mode.rejected_fake_rate);
                    ("total_rounds", Json.Int result.Dual_mode.total_rounds);
                    ("slowdown", Json.Float result.Dual_mode.slowdown);
                  ]
                [
                  Table.cell_i digest_len;
                  Table.cell_pct result.Dual_mode.accepted_correct_rate;
                  Table.cell_pct result.Dual_mode.rejected_fake_rate;
                  Table.cell_i result.Dual_mode.total_rounds;
                  Table.cell_f ~decimals:1 result.Dual_mode.slowdown ^ "x";
                ]))
        digest_lens)

(* ------------------------------------------------------------------ *)
(* A5: the price of a Byzantine radio — CPA vs MultiPathRB             *)
(* ------------------------------------------------------------------ *)

let ablation_cpa =
  Experiment.job ~id:"a5"
    ~title:"A5: CPA (ideal authenticated channel) vs MultiPathRB (radio)"
    ~columns:[ "seed"; "CPA rounds"; "CPA reached"; "MP rounds"; "MP reached"; "radio cost factor" ]
    (fun scale ->
      (* Identical topology and tolerance; CPA runs on the idealised
         authenticated reliable channel of Koo/Bhandari–Vaidya, MultiPathRB on
         the Byzantine radio.  The gap is what jamming/spoofing resistance
         costs. *)
      let map = pick scale ~quick:8.0 ~paper:16.0 in
      let n = pick scale ~quick:100 ~paper:400 in
      let tolerance = pick scale ~quick:1 ~paper:3 in
      let radius = 2.0 in
      let message = Bitvec.of_string "101" in
      List.map
        (fun seed ->
          let spec =
            {
              Scenario.default with
              allow_unreachable = true;
              map_w = map;
              map_h = map;
              deployment = Scenario.Uniform n;
              radius;
              message;
              protocol = Scenario.Multi_path { tolerance };
              heard_relay_limit = relay_limit scale ~tolerance;
              seed;
            }
          in
          Experiment.Thunk
            (fun () ->
              let mp_result = Scenario.run spec in
              let mp = Scenario.summarize mp_result in
              let topology = mp_result.Scenario.topology in
              let roles =
                Array.init (Topology.size topology) (fun i ->
                    if i = mp_result.Scenario.source then Certified_propagation.Reference.Source
                    else Certified_propagation.Reference.Honest)
              in
              let cpa =
                Certified_propagation.Reference.run
                  { Certified_propagation.Reference.radius; tolerance }
                  ~topology ~source:mp_result.Scenario.source ~message ~roles ~max_rounds:10_000
              in
              let cpa_reached =
                Array.fold_left
                  (fun acc c -> if c = Some message then acc + 1 else acc)
                  0 cpa.Certified_propagation.Reference.committed
              in
              let factor =
                if cpa.Certified_propagation.Reference.rounds > 0 then
                  float_of_int mp.Scenario.rounds /. float_of_int cpa.Certified_propagation.Reference.rounds
                else 0.0
              in
              Experiment.row
                ~values:
                  [
                    ("cpa_rounds", Json.Int cpa.Certified_propagation.Reference.rounds);
                    ("mp_rounds", Json.Int mp.Scenario.rounds);
                    ("radio_cost_factor", Json.Float factor);
                  ]
                [
                  Table.cell_i seed;
                  Table.cell_i cpa.Certified_propagation.Reference.rounds;
                  Printf.sprintf "%d/%d" cpa_reached (Topology.size topology);
                  Table.cell_i mp.Scenario.rounds;
                  Table.cell_pct mp.Scenario.completion_rate;
                  Table.cell_f ~decimals:0 factor ^ "x";
                ]))
        [ 1; 2; 3 ])

let jobs =
  [
    fig5_crash;
    jamming;
    fig6_lying;
    fig7_density;
    clustered;
    map_size;
    epidemic_comparison;
    ablation_pipeline;
    ablation_square;
    ablation_jamprob;
    ablation_dualmode;
    ablation_cpa;
  ]
