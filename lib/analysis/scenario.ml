type protocol =
  | Neighbor_watch of { votes : int }
  | Multi_path of { tolerance : int }
  | Epidemic
  | Certified of { tolerance : int }

type deployment_kind =
  | Uniform of int
  | Clustered of { n : int; clusters : int; stddev : float }
  | Grid
  | Grid_holes of { width : int; height : int; holes : int }
  | Corridor of { rooms : int; room_w : int; room_h : int; hall_len : int }
  | Triangulated of { cols : int; rows : int; jitter : float }
  | Expander of { n : int; degree : int }
  | Lattice of { width : int; height : int }

(* The geometric kinds deploy on the [map_w × map_h] square and derive
   their edges from the radio model; everything else is an explicit graph
   family from {!Graphs}, for which map size, radio and radius are
   ignored. *)
let geometric_deployment = function
  | Uniform _ | Clustered _ | Grid -> true
  | Grid_holes _ | Corridor _ | Triangulated _ | Expander _ | Lattice _ -> false

type radio = Friis | Disk_l2 | Disk_linf

type faults =
  | No_faults
  | Crash of float
  | Jamming of { fraction : float; budget : int; probability : float }
  | Lying of float
  | Selective_jam of { fraction : float; budget : int; probability : float }

type spec = {
  map_w : float;
  map_h : float;
  deployment : deployment_kind;
  radio : radio;
  radius : float;
  channel : Channel.params;
  message : Bitvec.t;
  protocol : protocol;
  faults : faults;
  cap : int;
  heard_relay_limit : int option;
  square_side : float option;  (* NeighborWatchRB square-size override *)
  pipelined : bool;  (* false = store-and-forward ablation *)
  allow_unreachable : bool;  (* accept sources that cannot cover the deployment *)
  seed : int;
}

let default =
  {
    map_w = 20.0;
    map_h = 20.0;
    deployment = Uniform 600;
    radio = Friis;
    radius = 4.0;
    channel = Channel.ideal;
    message = Bitvec.of_string "1011";
    protocol = Neighbor_watch { votes = 1 };
    faults = No_faults;
    cap = 2_000_000;
    heard_relay_limit = None;
    square_side = None;
    pipelined = true;
    allow_unreachable = false;
    seed = 42;
  }

exception Unreachable of { unreachable : int; total : int }

let () =
  Printexc.register_printer (function
    | Unreachable { unreachable; total } ->
      Some
        (Printf.sprintf
           "Scenario.Unreachable: the source cannot reach %d of %d nodes; a run would \
            silently report them undelivered (set allow_unreachable = true to accept \
            partial coverage)"
           unreachable total)
    | _ -> None)

type result = {
  spec : spec;
  topology : Topology.t;
  source : Node.id;
  honest : bool array;
  fake : Bitvec.t option;
  engine : Engine.result;
}

let fake_message message = Bitvec.init (Bitvec.length message) (fun i -> not (Bitvec.get message i))

let build_deployment rng spec =
  match spec.deployment with
  | Uniform n -> Deployment.uniform rng ~n ~width:spec.map_w ~height:spec.map_h
  | Clustered { n; clusters; stddev } ->
    Deployment.clustered rng ~n ~clusters ~stddev ~width:spec.map_w ~height:spec.map_h
  | Grid ->
    Deployment.grid
      ~width:(1 + int_of_float spec.map_w)
      ~height:(1 + int_of_float spec.map_h)
  | Grid_holes _ | Corridor _ | Triangulated _ | Expander _ | Lattice _ ->
    invalid_arg "Scenario.build_deployment: synthetic kinds build whole topologies"

let build_propagation spec =
  match spec.radio with
  | Friis -> Propagation.friis spec.radius
  | Disk_l2 -> Propagation.disk_l2 spec.radius
  | Disk_linf -> Propagation.disk_linf spec.radius

let build_topology rng spec =
  match spec.deployment with
  | Uniform _ | Clustered _ | Grid -> Topology.build (build_deployment rng spec) (build_propagation spec)
  | Grid_holes { width; height; holes } -> Graphs.grid_with_holes rng ~width ~height ~holes
  | Corridor { rooms; room_w; room_h; hall_len } ->
    Graphs.corridor ~rooms ~room_w ~room_h ~hall_len
  | Triangulated { cols; rows; jitter } -> Graphs.triangulation rng ~cols ~rows ~jitter
  | Expander { n; degree } -> Graphs.expander rng ~n ~degree
  | Lattice { width; height } -> Graphs.lattice ~width ~height

(* Draw the Byzantine set: a random fraction of the non-source nodes. *)
let pick_byzantine rng ~n ~source ~fraction =
  let eligible = List.filter (fun i -> i <> source) (List.init n (fun i -> i)) in
  let count =
    min (List.length eligible) (int_of_float (Float.round (fraction *. float_of_int n)))
  in
  let arr = Array.of_list eligible in
  Rng.shuffle rng arr;
  let byz = Array.make n false in
  for k = 0 to count - 1 do
    byz.(arr.(k)) <- true
  done;
  byz

(* Every protocol places the same four kinds of machine — source, liar,
   other adversary, honest relay — and only the machine constructors
   differ; one shared assignment pass keeps the three protocol arms in
   [run] from drifting apart. *)
type role = Role_source | Role_liar of Bitvec.t | Role_relay

let assign_machines ~n ~source ~byzantine ~faults ~fake ~adversary_machine make =
  Array.init n (fun i ->
      if i = source then make i Role_source
      else if byzantine.(i) then begin
        match (faults, fake) with
        | Lying _, Some fake_msg -> make i (Role_liar fake_msg)
        | _ -> adversary_machine i
      end
      else make i Role_relay)

let run ?tap ?(mode = (`Sparse : Engine.mode)) ?tile_of ?topology ?(boxed = false) spec =
  let rng = Rng.create spec.seed in
  (* The split order is part of the deterministic contract: it must stay
     fixed — and the splits must happen — whether or not a prebuilt
     topology is supplied, or a warm re-run would draw different fault and
     channel streams than the cold run it repeats. *)
  let deployment_rng = Rng.split rng in
  let faults_rng = Rng.split rng in
  let channel_rng = Rng.split rng in
  let topology =
    (* An override must be the topology this spec builds (same seed, same
       deployment) or results are meaningless; campaign warm rounds reuse
       the cold round's topology this way to skip the rebuild. *)
    match topology with
    | Some t -> t
    | None -> build_topology deployment_rng spec
  in
  let deployment = Topology.deployment topology in
  let n = Deployment.size deployment in
  let source = Deployment.center_node deployment in
  (* Fail fast on a source that cannot cover the deployment: every honest
     node beyond reach would be reported as a silent delivery failure,
     indistinguishable from a protocol defect.  Sweeps that deliberately
     measure partial coverage (sparse random deployments, crash faults)
     opt out via [allow_unreachable]. *)
  if not spec.allow_unreachable then begin
    let unreachable = n - Topology.reachable_from topology source in
    if unreachable > 0 then raise (Unreachable { unreachable; total = n })
  end;
  let byzantine =
    match spec.faults with
    | No_faults -> Array.make n false
    | Crash fraction | Lying fraction -> pick_byzantine faults_rng ~n ~source ~fraction
    | Jamming { fraction; _ } | Selective_jam { fraction; _ } ->
      pick_byzantine faults_rng ~n ~source ~fraction
  in
  let fake =
    match spec.faults with Lying _ -> Some (fake_message spec.message) | _ -> None
  in
  let honest = Array.init n (fun i -> not byzantine.(i)) in
  (* Protocol length scale: the configured radius where the topology is
     geometric, the longest embedded decode edge where it is an explicit
     graph (so voting windows and frame lattices still cover the
     one-hop neighbourhood). *)
  let eff_radius =
    if Topology.is_geometric topology then spec.radius else Topology.rx_reach topology
  in
  let adversary_machine schedule i =
    match spec.faults with
    | No_faults -> Engine.silent_machine
    | Crash _ -> Engine.silent_machine
    | Jamming { budget; probability; _ } ->
      let jam_rng = Rng.split faults_rng in
      ignore i;
      ignore schedule;
      Jammer.veto_jammer ~rng:jam_rng ~budget:(Budget.create budget) ~probability
    | Selective_jam { budget; probability; _ } ->
      let jam_rng = Rng.split faults_rng in
      ignore i;
      Selective.source_jammer ~schedule ~rng:jam_rng ~budget:(Budget.create budget) ~probability
    | Lying _ -> Engine.silent_machine (* replaced below per protocol *)
  in
  let msg_len = Bitvec.length spec.message in
  let assign ~schedule make =
    assign_machines ~n ~source ~byzantine ~faults:spec.faults ~fake
      ~adversary_machine:(adversary_machine schedule) make
  in
  let machines, cycle_rounds, progress =
    match spec.protocol with
    | Neighbor_watch { votes } ->
      let config =
        let base = Neighbor_watch.default_config ~radius:eff_radius ~msg_len in
        {
          base with
          Neighbor_watch.votes;
          pipelined = spec.pipelined;
          square_side =
            (match spec.square_side with
            | Some side -> side
            | None -> base.Neighbor_watch.square_side);
        }
      in
      let ctx = Neighbor_watch.make_ctx config ~topology ~source in
      ( assign ~schedule:(Neighbor_watch.schedule ctx) (fun i -> function
          | Role_source -> Neighbor_watch.machine ctx i (Neighbor_watch.Source spec.message)
          | Role_liar fake_msg -> Neighbor_watch.machine ctx i (Neighbor_watch.Liar fake_msg)
          | Role_relay -> Neighbor_watch.machine ctx i Neighbor_watch.Relay),
        Schedule.cycle (Neighbor_watch.schedule ctx) * Schedule.rounds_per_interval,
        fun () -> Neighbor_watch.progress ctx )
    | Multi_path { tolerance } ->
      let config =
        {
          (Multi_path.default_config ~radius:eff_radius ~tolerance ~msg_len) with
          heard_relay_limit = spec.heard_relay_limit;
        }
      in
      let ctx = Multi_path.make_ctx config ~topology ~source in
      ( assign ~schedule:(Multi_path.schedule ctx) (fun i -> function
          | Role_source -> Multi_path.machine ctx i (Multi_path.Source spec.message)
          | Role_liar fake_msg -> Multi_path.machine ctx i (Multi_path.Liar fake_msg)
          | Role_relay -> Multi_path.machine ctx i Multi_path.Relay),
        Schedule.cycle (Multi_path.schedule ctx) * Schedule.rounds_per_interval,
        fun () -> Multi_path.progress ctx )
    | Epidemic ->
      let ctx = Epidemic.make_ctx Epidemic.default_config ~topology ~source in
      ( assign ~schedule:(Epidemic.schedule ctx) (fun i -> function
          | Role_source -> Epidemic.machine ctx i (Epidemic.Source spec.message)
          | Role_liar fake_msg -> Epidemic.machine ctx i (Epidemic.Liar fake_msg)
          | Role_relay -> Epidemic.machine ctx i Epidemic.Relay),
        Epidemic.cycle_rounds ctx,
        fun () -> 0 )
    | Certified { tolerance } ->
      let ctx =
        Certified_propagation.make_ctx
          (Certified_propagation.default_config ~tolerance)
          ~topology ~source
      in
      ( assign ~schedule:(Certified_propagation.schedule ctx) (fun i -> function
          | Role_source ->
            Certified_propagation.machine ctx i (Certified_propagation.Source spec.message)
          | Role_liar fake_msg ->
            Certified_propagation.machine ctx i (Certified_propagation.Liar fake_msg)
          | Role_relay -> Certified_propagation.machine ctx i Certified_propagation.Relay),
        Certified_propagation.cycle_rounds ctx,
        fun () -> Certified_propagation.progress ctx )
  in
  (* [boxed] strips every packed observer so the engine exercises the
     variant-observation bridge; the equivalence suite holds both paths
     byte-identical. *)
  let machines = if boxed then Array.map Engine.boxed_machine machines else machines in
  let waiters = Array.init n (fun i -> honest.(i) && i <> source) in
  (* Three silent schedule cycles mean the run is permanently stuck (one
     cycle can legitimately be silent under all-zero parity/data pairs). *)
  let idle_stop = (3 * cycle_rounds) + 64 in
  (* A wedged protocol can also keep transmitting forever (honest square
     members vetoing liars); cut the run when the bit-level progress
     counter has been flat for a long stretch of schedule cycles. *)
  let stall_window = 25 * cycle_rounds in
  let stop_when =
    let last_progress = ref (-1) in
    let checks_since_change = ref 0 in
    let checks_allowed = max 1 (stall_window / 96) in
    fun () ->
      let p = progress () in
      if p <> !last_progress then begin
        last_progress := p;
        checks_since_change := 0;
        false
      end
      else begin
        incr checks_since_change;
        !checks_since_change >= checks_allowed
      end
  in
  let engine =
    Engine.run ~mode ~rng:channel_rng ~channel:spec.channel ~idle_stop ~stop_when ?tap ?tile_of
      ~topology ~machines ~waiters ~cap:spec.cap ()
  in
  { spec; topology; source; honest; fake; engine }

(* Named specs mirroring the bundled examples (examples/<name>.ml), so the
   static checkers ship with the exact configurations the demos run.  Keep
   in sync when an example changes its parameters. *)
let presets =
  [
    ( "quickstart",
      {
        default with
        map_w = 10.0;
        map_h = 10.0;
        deployment = Uniform 120;
        radius = 3.0;
        seed = 2024;
      } );
    ( "lying_attack",
      {
        default with
        map_w = 12.0;
        map_h = 12.0;
        deployment = Uniform 300;
        radius = 2.5;
        faults = Lying 0.05;
        seed = 7;
      } );
    ( "jamming_attack",
      {
        default with
        map_w = 12.0;
        map_h = 12.0;
        deployment = Uniform 220;
        radius = 4.0;
        faults = Jamming { fraction = 0.1; budget = 100; probability = 0.2 };
        seed = 5;
      } );
    ( "clustered_network",
      {
        default with
        map_w = 15.0;
        map_h = 15.0;
        deployment = Clustered { n = 400; clusters = 9; stddev = 1.2 };
        radius = 4.0;
        seed = 21;
      } );
    ( "dual_mode_digest",
      {
        default with
        map_w = 12.0;
        map_h = 12.0;
        deployment = Uniform 250;
        radius = 3.0;
        message = Bitvec.random (Rng.create 99) 32;
        faults = Lying 0.12;
        seed = 11;
      } );
    ( "multi_path",
      {
        default with
        map_w = 8.0;
        map_h = 8.0;
        deployment = Uniform 80;
        radius = 2.5;
        protocol = Multi_path { tolerance = 1 };
        heard_relay_limit = Some 4;
        seed = 3;
      } );
    ( "epidemic_baseline",
      {
        default with
        map_w = 10.0;
        map_h = 10.0;
        deployment = Uniform 150;
        radius = 3.0;
        protocol = Epidemic;
        seed = 11;
      } );
    ( "graph_corridor",
      {
        default with
        deployment = Corridor { rooms = 3; room_w = 4; room_h = 5; hall_len = 3 };
        protocol = Certified { tolerance = 1 };
        message = Bitvec.of_string "101";
        cap = 500_000;
        seed = 9;
      } );
  ]

let preset name = List.assoc_opt name presets

let preset_exn name =
  match preset name with
  | Some spec -> spec
  | None ->
    invalid_arg
      (Printf.sprintf "Scenario.preset_exn: unknown preset %s (known: %s)" name
         (String.concat ", " (List.map fst presets)))

type summary = {
  honest_nodes : int;
  delivered_any : int;
  delivered_correct : int;
  completion_rate : float;
  correct_of_delivered : float;
  correct_rate : float;
  rounds : int;
  active_rounds : int;
  hit_cap : bool;
  total_broadcasts : int;
  mean_completion_round : float;
}

let summarize result =
  let n = Array.length result.honest in
  let honest_nodes = ref 0 in
  let delivered_any = ref 0 in
  let delivered_correct = ref 0 in
  let completion_rounds = ref [] in
  for i = 0 to n - 1 do
    if result.honest.(i) && i <> result.source then begin
      incr honest_nodes;
      match result.engine.Engine.delivered.(i) with
      | Some bits ->
        incr delivered_any;
        if Bitvec.equal bits result.spec.message then incr delivered_correct;
        completion_rounds :=
          float_of_int result.engine.Engine.completion_round.(i) :: !completion_rounds
      | None -> ()
    end
  done;
  let ratio a b = if b = 0 then if a = 0 then 1.0 else 0.0 else float_of_int a /. float_of_int b in
  {
    honest_nodes = !honest_nodes;
    delivered_any = !delivered_any;
    delivered_correct = !delivered_correct;
    completion_rate = ratio !delivered_any !honest_nodes;
    correct_of_delivered = ratio !delivered_correct !delivered_any;
    correct_rate = ratio !delivered_correct !honest_nodes;
    rounds = result.engine.Engine.rounds_used;
    active_rounds = result.engine.Engine.active_rounds;
    hit_cap = result.engine.Engine.hit_cap;
    total_broadcasts = Array.fold_left ( + ) 0 result.engine.Engine.broadcasts;
    mean_completion_round = Stats.mean !completion_rounds;
  }
