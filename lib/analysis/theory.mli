(** Validation of the running-time bound of Theorem 5:
    delivery in O(β·D + log|Σ|) rounds.

    The theorem is asymptotic, so the check is empirical linearity on the
    analytic model (L-infinity grid): completion time should grow linearly
    (high r²) in each of

    - the adversary's broadcast budget β at fixed diameter and message,
    - the network diameter D at fixed β and message,
    - the message length (≈ log|Σ|) at fixed β and D,

    which is exactly what a tight O(βD + log|Σ|) bound predicts for
    one-variable sweeps.  Each sweep is a declarative {!Experiment.job}
    carrying the corresponding linear fit. *)

val grid_spec : side:int -> message:Bitvec.t -> Scenario.spec
(** The analytic setting: a [side × side] unit grid under the L∞ disk
    radio with R = 2 and the ⌈R/2⌉ square sizing. *)

val budget_sweep : Experiment.job
(** E8a: rounds vs per-jammer budget on a grid. *)

val diameter_sweep : Experiment.job
(** E8b: rounds vs hop diameter across grid sizes. *)

val length_sweep : Experiment.job
(** E8c: rounds vs message length on a fixed grid. *)

val jobs : Experiment.job list
(** [e8a; e8b; e8c]. *)
