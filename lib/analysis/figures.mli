(** The paper's evaluation (Section 6) and the DESIGN.md ablations as
    declarative {!Experiment.job}s — grid definitions plus row renderers.

    Each job describes the same rows/series the paper reports; execution
    (sequential or domain-parallel) lives in [lib/run].  [Quick] is a
    scaled-down configuration (smaller maps, fewer repetitions, a HEARD
    relay cap for MultiPathRB) sized so the whole suite completes in
    minutes; [Paper] reproduces the paper's parameters — at MultiPathRB's
    paper scale this is overnight-slow, exactly as the authors report
    ("the simulation becomes prohibitively slow").  EXPERIMENTS.md records
    paper-vs-measured for each experiment id. *)

type scale = Experiment.scale = Quick | Paper

val scale_of_env : unit -> scale
(** Deprecated fallback for the pre-flag interface: [Paper] when the
    environment variable [FULL] is set to a non-empty value other than
    ["0"], else [Quick].  New code should pass [--scale quick|paper]. *)

val protocol_name : Scenario.protocol -> string

val relay_limit : scale -> tolerance:int -> int option
(** MultiPathRB HEARD relay cap used at Quick scale (just above the quorum
    size); Paper scale relays everything, as the protocol says. *)

val fig5_crash : Experiment.job
(** E1 — Figure 5: completion rate vs deployment density under crash
    failures, for NW, 2-vote NW, and MultiPathRB (t = 3, 5). *)

val jamming : Experiment.job
(** E2 — §6.1 jamming: completion time vs per-jammer broadcast budget (10%
    jammers hitting veto rounds with probability 1/5); the fit documents
    the linear budget→delay relation the paper describes. *)

val fig6_lying : Experiment.job
(** E3 — Figure 6: fraction of delivered messages that are correct vs the
    fraction of lying devices. *)

val fig7_density : Experiment.job
(** E4 — Figure 7: maximum Byzantine fraction tolerated while ≥90% of
    honest nodes still receive the correct message, per (protocol,
    density).  MultiPathRB rows only at [Paper] scale (as in the paper,
    which stops it at density 5). *)

val clustered : Experiment.job
(** E5 — §6.2 non-uniform deployments: NW completion/correctness under
    uniform vs clustered placement, with and without liars. *)

val map_size : Experiment.job
(** E6 — §6.2 varying map size: NW rounds and broadcasts vs hop diameter;
    the two fits document the linear scaling the paper reports. *)

val epidemic_comparison : Experiment.job
(** E7 — §6.2: NW completion time relative to the epidemic baseline across
    map sizes; a note reports the mean slowdown (paper: ≈7.7×). *)

val ablation_pipeline : Experiment.job
(** A1: pipelined forwarding vs naive store-and-forward, across message
    lengths — the paper's central performance claim (Section 5). *)

val ablation_square : Experiment.job
(** A2: square side R/2 (analytic sizing) vs R/3 (simulation sizing) on
    the Euclidean radio — why the implementation shrinks the squares. *)

val ablation_jamprob : Experiment.job
(** A3: jammer veto-round probability sweep at fixed budget (the paper
    found 1/5 near-optimal for the attacker). *)

val ablation_dualmode : Experiment.job
(** A4: the dual-mode scheme (§1 "Interpretation"): slowdown over plain
    epidemic flooding as a function of digest size. *)

val ablation_cpa : Experiment.job
(** A5: certified propagation (Koo/Bhandari–Vaidya) on its idealised
    authenticated channel vs MultiPathRB on the Byzantine radio, on
    identical topologies — the cost of hardening the radio. *)

val jobs : Experiment.job list
(** Every job above, in experiment order (E1–E7, then A1–A5). *)
