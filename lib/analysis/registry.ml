let bounds =
  Experiment.job ~id:"bounds"
    ~title:"per-neighbourhood Byzantine tolerance (analytic bounds)"
    ~columns:
      [ "R"; "neighbourhood"; "Koo impossibility"; "MultiPathRB"; "NeighborWatchRB"; "2-vote NW" ]
    (fun _scale ->
      List.map
        (fun radius ->
          Experiment.Thunk
            (fun () ->
              let nb = Bounds.neighbourhood_size ~radius in
              let cell t =
                Printf.sprintf "%d (%.0f%%)" t (100.0 *. float_of_int t /. float_of_int nb)
              in
              Experiment.row
                ~values:
                  [
                    ("koo_bound", Json.Int (Bounds.koo_bound ~radius));
                    ("multi_path_tolerance", Json.Int (Bounds.multi_path_tolerance ~radius));
                    ("neighbor_watch_tolerance", Json.Int (Bounds.neighbor_watch_tolerance ~radius));
                    ("two_voting_tolerance", Json.Int (Bounds.two_voting_tolerance ~radius));
                  ]
                [
                  Table.cell_i radius;
                  Table.cell_i nb;
                  Printf.sprintf ">= %d" (Bounds.koo_bound ~radius);
                  cell (Bounds.multi_path_tolerance ~radius);
                  cell (Bounds.neighbor_watch_tolerance ~radius);
                  cell (Bounds.two_voting_tolerance ~radius);
                ]))
        [ 2; 3; 4; 6; 8 ])

let mobile =
  Experiment.job ~id:"mobile"
    ~title:"mobile NeighborWatchRB (random waypoint, epoch-based)"
    ~columns:[ "speed"; "epochs"; "rounds"; "completed"; "correct"; "mean travel" ]
    (fun scale ->
      let config = Mobile.scaled_config scale in
      List.map
        (fun speed ->
          Experiment.Thunk
            (fun () ->
              let result =
                Mobile.run { config with model = { config.Mobile.model with Mobility.speed } }
              in
              Experiment.row
                ~values:
                  [
                    ("speed", Json.Float speed);
                    ("epochs", Json.Int result.Mobile.epochs_used);
                    ("rounds", Json.Int result.Mobile.rounds_total);
                    ("completion_rate", Json.Float result.Mobile.completion_rate);
                    ("correct_rate", Json.Float result.Mobile.correct_rate);
                  ]
                [
                  Printf.sprintf "%g/round" speed;
                  Table.cell_i result.Mobile.epochs_used;
                  Table.cell_i result.Mobile.rounds_total;
                  Table.cell_pct result.Mobile.completion_rate;
                  Table.cell_pct result.Mobile.correct_rate;
                  Table.cell_f ~decimals:2 result.Mobile.mean_displacement;
                ]))
        [ 0.0; 0.003; 0.01 ])

(* The canonical experiment order: the paper's evaluation (E1–E7), the
   Theorem 5 sweeps (E8a–E8c), the DESIGN.md ablations (A1–A5), then the
   analytic bounds table, the mobile extension, the graph-class
   comparison (G1), and the scale sweep (S1). *)
let all =
  [
    Figures.fig5_crash;
    Figures.jamming;
    Figures.fig6_lying;
    Figures.fig7_density;
    Figures.clustered;
    Figures.map_size;
    Figures.epidemic_comparison;
  ]
  @ Theory.jobs
  @ [
      Figures.ablation_pipeline;
      Figures.ablation_square;
      Figures.ablation_jamprob;
      Figures.ablation_dualmode;
      Figures.ablation_cpa;
      bounds;
      mobile;
      Graph_family.comparison;
      Scale_sweep.sweep;
    ]

let ids = List.map (fun job -> job.Experiment.id) all

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun job -> job.Experiment.id = id) all

let () =
  (* Ids are the registry's primary key; catch duplicates at startup. *)
  if List.length (List.sort_uniq String.compare ids) <> List.length ids then
    invalid_arg "Registry: duplicate experiment ids"
