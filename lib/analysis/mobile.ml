type config = {
  map : float;
  nodes : int;
  radius : float;
  message : Bitvec.t;
  epoch_rounds : int;
  max_epochs : int;
  model : Mobility.model;
  liar_fraction : float;
  seed : int;
}

let default =
  {
    map = 12.0;
    nodes = 200;
    radius = 3.0;
    message = Bitvec.of_string "1011";
    epoch_rounds = 3000;
    max_epochs = 12;
    model = { Mobility.speed = 0.002; pause = 200 };
    liar_fraction = 0.0;
    seed = 42;
  }

(* Sparse deployments, so the benchmark shows the interesting regime:
   static partitions that movement ferries the message across. *)
let scaled_config = function
  | Experiment.Quick -> { default with nodes = 60; map = 16.0; epoch_rounds = 3000; max_epochs = 20 }
  | Experiment.Paper -> { default with nodes = 240; map = 32.0; epoch_rounds = 4000; max_epochs = 30 }

type result = {
  epochs_used : int;
  rounds_total : int;
  completion_rate : float;
  correct_rate : float;
  mean_displacement : float;
}

let run config =
  let rng = Rng.create config.seed in
  let deploy_rng = Rng.split rng in
  let liar_rng = Rng.split rng in
  let initial =
    Deployment.uniform deploy_rng ~n:config.nodes ~width:config.map ~height:config.map
  in
  let mobility = Mobility.create (Rng.split rng) config.model initial in
  let n = config.nodes in
  let source = Deployment.center_node initial in
  let liars = Array.make n false in
  let liar_count = int_of_float (Float.round (config.liar_fraction *. float_of_int n)) in
  List.iter
    (fun i -> if i <> source then liars.(i) <- true)
    (Rng.sample_without_replacement liar_rng (min liar_count (n - 1)) n);
  let fake = Scenario.fake_message config.message in
  let msg_len = Bitvec.length config.message in
  (* Committed prefixes carried across epochs. *)
  let carried = Array.make n Bitvec.empty in
  let epochs_used = ref 0 in
  let rounds_total = ref 0 in
  let all_done = ref false in
  while (not !all_done) && !epochs_used < config.max_epochs do
    incr epochs_used;
    let deployment = Mobility.deployment mobility in
    let topology = Topology.build deployment (Propagation.friis config.radius) in
    let nw_config = Neighbor_watch.default_config ~radius:config.radius ~msg_len in
    let ctx = Neighbor_watch.make_ctx nw_config ~topology ~source in
    (* After re-clustering, a square must re-stream its whole committed
       prefix (its new neighbours may lack the early bits), so an epoch
       shorter than about (L + 2) schedule cycles can never advance the
       frontier; clamp to that minimum. *)
    let cycle_rounds =
      Schedule.cycle (Neighbor_watch.schedule ctx) * Schedule.rounds_per_interval
    in
    let epoch_rounds = max config.epoch_rounds ((msg_len + 2) * cycle_rounds) in
    let machines =
      Array.init n (fun i ->
          if i = source then Neighbor_watch.machine ctx i (Neighbor_watch.Source config.message)
          else if liars.(i) then Neighbor_watch.machine ctx i (Neighbor_watch.Liar fake)
          else Neighbor_watch.machine ~initial_commit:carried.(i) ctx i Neighbor_watch.Relay)
    in
    let waiters = Array.init n (fun i -> (not liars.(i)) && i <> source) in
    let epoch =
      Engine.run ~mode:`Sparse ~idle_stop:(3 * cycle_rounds) ~topology ~machines ~waiters
        ~cap:epoch_rounds ()
    in
    rounds_total := !rounds_total + epoch.Engine.rounds_used;
    for i = 0 to n - 1 do
      if (not liars.(i)) && i <> source then carried.(i) <- Neighbor_watch.committed_bits ctx i
    done;
    all_done :=
      Array.for_all
        (fun x -> x)
        (Array.mapi
           (fun i w -> (not w) || Bitvec.length carried.(i) >= msg_len)
           waiters);
    if not !all_done then Mobility.advance mobility ~rounds:epoch.Engine.rounds_used
  done;
  let honest_total = ref 0 and completed = ref 0 and correct = ref 0 in
  for i = 0 to n - 1 do
    if (not liars.(i)) && i <> source then begin
      incr honest_total;
      if Bitvec.length carried.(i) >= msg_len then begin
        incr completed;
        if Bitvec.equal carried.(i) config.message then incr correct
      end
    end
  done;
  let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  {
    epochs_used = !epochs_used;
    rounds_total = !rounds_total;
    completion_rate = ratio !completed !honest_total;
    correct_rate = ratio !correct !honest_total;
    mean_displacement = Mobility.displacement mobility initial;
  }

let table config ~speeds =
  let t =
    Table.create ~title:"mobile NeighborWatchRB (random waypoint, epoch-based)"
      ~columns:[ "speed"; "epochs"; "rounds"; "completed"; "correct"; "mean travel" ]
  in
  List.iter
    (fun speed ->
      let result = run { config with model = { config.model with Mobility.speed } } in
      Table.add_row t
        [
          Printf.sprintf "%g/round" speed;
          Table.cell_i result.epochs_used;
          Table.cell_i result.rounds_total;
          Table.cell_pct result.completion_rate;
          Table.cell_pct result.correct_rate;
          Table.cell_f ~decimals:2 result.mean_displacement;
        ])
    speeds;
  t
