(** The experiment registry: every table the benchmark harness prints —
    the paper's evaluation (E1–E7), the Theorem 5 sweeps (E8a–E8c), the
    DESIGN.md ablations (A1–A5), the analytic bounds table and the mobile
    extension — registered as a declarative {!Experiment.job} under a
    stable id.  The bench and CLI front ends select and execute jobs
    through this module only. *)

val bounds : Experiment.job
(** Analytic per-neighbourhood Byzantine tolerance bounds (no simulation). *)

val mobile : Experiment.job
(** Epoch-based mobile NeighborWatchRB across waypoint speeds. *)

val all : Experiment.job list
(** Every registered job, in canonical print order.  Ids are unique. *)

val ids : string list
(** The ids of {!all}, in order. *)

val find : string -> Experiment.job option
(** Case-insensitive lookup by id. *)
