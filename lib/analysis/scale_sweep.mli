(** S1: the scale sweep — node count × target density × adversary mix
    over the two graph classes of the scale campaign.  The cell
    construction here also backs [lib/run/campaign.ml], so a registry row
    and a campaign run of the same cell simulate the same spec. *)

type klass = Uniform_radio | Expander_synthetic

val klass_name : klass -> string
val all_classes : klass list

val known_adversaries : string list
(** ["honest"; "crash"; "lying"; "jam"]. *)

val faults_of_adversary : string -> Scenario.faults option
(** The fault model each adversary-mix name stands for: 10% crashed, 10%
    lying, or 5% jamming with budget 50 at probability 0.3. *)

val cell_spec :
  base:Scenario.spec -> klass:klass -> nodes:int -> density:float -> Scenario.spec
(** One sweep cell on top of [base] (which supplies protocol, message,
    faults, cap and seed).  Geometric cells fix the radius at 4.0 and
    size the map for the target degree; expander cells round the density
    to the node degree.  Always sets [allow_unreachable]. *)

val sweep : Experiment.job
(** The registered S1 job. *)
