type origin = int * int
type item = { origin : origin; value : bool; points : Point.t list }

let distinct_origins ~value items =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun item -> if item.value = value then Hashtbl.replace seen item.origin ())
    items;
  Hashtbl.length seen

let window_inside ~x0 ~y0 ~size (p : Point.t) =
  p.x >= x0 -. 1e-9 && p.x <= x0 +. size +. 1e-9 && p.y >= y0 -. 1e-9
  && p.y <= y0 +. size +. 1e-9

let rec all_inside ~x0 ~y0 ~size points =
  match points with
  | [] -> true
  | p :: rest -> window_inside ~x0 ~y0 ~size p && all_inside ~x0 ~y0 ~size rest

let rec tally_window seen items ~x0 ~y0 ~size =
  match items with
  | [] -> Hashtbl.length seen
  | item :: rest ->
    if (not (Hashtbl.mem seen item.origin)) && all_inside ~x0 ~y0 ~size item.points then
      Hashtbl.replace seen item.origin ();
    tally_window seen rest ~x0 ~y0 ~size

let count_in_window items ~x0 ~y0 ~size = tally_window (Hashtbl.create 16) items ~x0 ~y0 ~size

(* The candidate anchors walk the evidence points in place — a (points,
   pending items) cursor pair instead of materialized coordinate lists, so
   the scan allocates nothing.  Duplicate coordinates retest the same
   window; the scan is an [exists], so the result is unaffected. *)
let rec scan_ys voting ~size ~need ~x0 points pending =
  match points with
  | (p : Point.t) :: rest ->
    count_in_window voting ~x0 ~y0:p.y ~size >= need
    || scan_ys voting ~size ~need ~x0 rest pending
  | [] -> (
    match pending with
    | [] -> false
    | item :: rest -> scan_ys voting ~size ~need ~x0 item.points rest)

let rec scan_xs voting ~size ~need points pending =
  match points with
  | (p : Point.t) :: rest ->
    scan_ys voting ~size ~need ~x0:p.x [] voting || scan_xs voting ~size ~need rest pending
  | [] -> (
    match pending with
    | [] -> false
    | item :: rest -> scan_xs voting ~size ~need item.points rest)

(* The window scan proper, over items already filtered to one value.  The
   result does not depend on the order of [voting].  A minimal window has
   its left edge at some point's x and its top edge at some point's y, so
   anchoring candidates at every such pair is complete.  The scan is
   reachable from the protocol hot path (Voting.Index.decide), so every
   helper above is a top-level function — nested or anonymous functions
   here would count as per-call closure allocations against that hot
   root. *)
let window_scan ~radius ~need voting =
  let size = 2.0 *. radius in
  scan_xs voting ~size ~need [] voting

let quorum ~radius ~need ~value items =
  let voting = List.filter (fun item -> item.value = value) items in
  if need <= 0 then true
  else if distinct_origins ~value voting < need then false
  else window_scan ~radius ~need voting

module Reference = struct
  (* An independently derived quorum used by the Vote_check verifier to
     cross-validate [quorum] and [Index.decide].  Instead of sliding
     candidate windows anchored at evidence coordinates, it works in the
     dual space: the window anchors admitting one item form an axis-aligned
     rectangle, and a set of origins shares a window iff a common anchor
     point lies in one rectangle per origin.  Closed rectangles intersect
     iff the corner (max of left edges, max of bottom edges) is common, so
     testing the pairwise corners of the rectangles is complete. *)

  let eps = 1e-9

  type box = { xlo : float; xhi : float; ylo : float; yhi : float }

  (* Anchors (x0, y0) of the [size] x [size] windows containing every point
     of one item; [None] when the points alone exceed the window.  An item
     without points fits every window (mirroring [count_in_window]). *)
  let anchor_box ~size points =
    match points with
    | [] -> Some { xlo = neg_infinity; xhi = infinity; ylo = neg_infinity; yhi = infinity }
    | (first : Point.t) :: rest ->
      let xmin = ref first.x and xmax = ref first.x in
      let ymin = ref first.y and ymax = ref first.y in
      List.iter
        (fun (p : Point.t) ->
          if p.x < !xmin then xmin := p.x;
          if p.x > !xmax then xmax := p.x;
          if p.y < !ymin then ymin := p.y;
          if p.y > !ymax then ymax := p.y)
        rest;
      let b = { xlo = !xmax -. size; xhi = !xmin; ylo = !ymax -. size; yhi = !ymin } in
      if b.xlo > b.xhi +. eps || b.ylo > b.yhi +. eps then None else Some b

  let contains b ~x ~y =
    x >= b.xlo -. eps && x <= b.xhi +. eps && y >= b.ylo -. eps && y <= b.yhi +. eps

  let quorum ~radius ~need ~value items =
    if need <= 0 then true
    else begin
      let size = 2.0 *. radius in
      let boxed =
        List.filter_map
          (fun item ->
            if item.value = value then
              match anchor_box ~size item.points with
              | Some b -> Some (item.origin, b)
              | None -> None
            else None)
          items
      in
      let finite v = Float.is_finite v in
      let corners axis = List.sort_uniq Float.compare (List.filter finite (List.map axis boxed)) in
      let xs = match corners (fun (_, b) -> b.xlo) with [] -> [ 0.0 ] | xs -> xs in
      let ys = match corners (fun (_, b) -> b.ylo) with [] -> [ 0.0 ] | ys -> ys in
      let origins_at ~x ~y =
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (origin, b) -> if contains b ~x ~y then Hashtbl.replace seen origin ())
          boxed;
        Hashtbl.length seen
      in
      List.exists (fun x -> List.exists (fun y -> origins_at ~x ~y >= need) ys) xs
    end
end

module Tally = struct
  type t = { mutable pro : int; mutable con : int }

  let create () = { pro = 0; con = 0 }

  let reset t =
    t.pro <- 0;
    t.con <- 0

  let add t value = if value then t.pro <- t.pro + 1 else t.con <- t.con + 1
  let count t ~value = if value then t.pro else t.con
end

module Index = struct
  type t = {
    seen : (item, unit) Hashtbl.t;  (* replay / duplicate suppression *)
    (* one origin table per value instead of a (value, origin) key: [add] is
       on the protocol hot path and must not box a tuple per call *)
    origins_for : (origin, unit) Hashtbl.t;
    origins_against : (origin, unit) Hashtbl.t;
    votes : Tally.t;  (* distinct origins per value, maintained on add *)
    mutable items_for : item list;
    mutable items_against : item list;
    mutable dirty : bool;
  }

  let create () =
    {
      seen = Hashtbl.create 8;
      origins_for = Hashtbl.create 8;
      origins_against = Hashtbl.create 8;
      votes = Tally.create ();
      items_for = [];
      items_against = [];
      dirty = false;
    }

  let add t item =
    if not (Hashtbl.mem t.seen item) then begin
      Hashtbl.add t.seen item ();
      let origins = if item.value then t.origins_for else t.origins_against in
      if not (Hashtbl.mem origins item.origin) then begin
        Hashtbl.add origins item.origin ();
        Tally.add t.votes item.value
      end;
      if item.value then t.items_for <- item :: t.items_for
      else t.items_against <- item :: t.items_against;
      t.dirty <- true
    end

  let votes t ~value = Tally.count t.votes ~value
  let items t ~value = if value then t.items_for else t.items_against
  let all_items t = t.items_for @ t.items_against
  let dirty t = t.dirty
  let clear_dirty t = t.dirty <- false

  let decide t ~radius ~need ~value =
    if need <= 0 then true
    else if votes t ~value < need then false
    else window_scan ~radius ~need (items t ~value)
end
