(** The certified propagation algorithm (CPA) of Koo (PODC'04) and
    Bhandari–Vaidya (PODC'05) — the protocol MultiPathRB descends from.

    A node commits when it hears the message directly from the source, or
    when [tolerance + 1] distinct already-committed neighbours vouch for
    the same value: Byzantine nodes can lie about their own commitment but
    cannot impersonate others, and at most [tolerance] of any
    neighbourhood lie.

    The main API runs CPA over the radio {!Engine} as a comparison
    protocol: announcements occupy whole TDMA slots (as in {!Epidemic}),
    and the single-hop authentication CPA assumes is realised
    positionally — each slot has at most one owner among any receiver's
    decodable neighbours, so a clear packet is attributable to its sender
    by the slot it arrived in.  What this cannot harden against is
    physical-layer interference (collisions and jamming destroy packets
    silently), which is precisely the gap the paper's bit-level protocols
    close; the graph-class experiments measure that gap.

    {!Reference} keeps the original synchronous baseline in CPA's native
    model (reliable, authenticated single-hop delivery, no radio), used by
    the A5 ablation for the idealised round count. *)

type config = {
  tolerance : int;  (** t: commit quorum is [t + 1] distinct vouchers *)
  repeats : int;  (** announcements per committed node (default 3) *)
  conflict_factor : float;
      (** TDMA conflict range as a multiple of the decode range, for
          geometric topologies (default 3.0) *)
  slot_rounds : int;  (** rounds per slot (default 6, one interval) *)
}

val default_config : tolerance:int -> config

type ctx

val make_ctx : config -> topology:Topology.t -> source:Node.id -> ctx
(** Build the per-run context: geometric topologies get the spatial
    conflict colouring, synthetic ones the decode-graph colouring. *)

val schedule : ctx -> Schedule.t
val cycle_rounds : ctx -> int

val progress : ctx -> int
(** Number of commits so far — monotone, for stall detection. *)

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

val machine : ctx -> Node.id -> role -> Msg.t Engine.machine
(** The CPA state machine, honouring the sparse wakeup contract: an
    uncommitted node sleeps until a reception re-queries its contract; a
    committed one wakes only for the first round of its own slots until
    its repeat budget is spent. *)

(** The original synchronous reference in CPA's native friendly model:
    every announcement reaches all decode neighbours reliably in one
    round, attributed to its true sender.  Not runnable over a Byzantine
    radio — the natural baseline for what radio hardening costs. *)
module Reference : sig
  type config = {
    radius : float;  (** neighbourhood radius of the commit rule *)
    tolerance : int;  (** t *)
  }

  type role = Source | Honest | Liar of Bitvec.t

  type result = {
    rounds : int;  (** rounds until quiescence *)
    committed : Bitvec.t option array;  (** per-node committed value *)
    messages : int;  (** total messages sent *)
  }

  val run :
    config -> topology:Topology.t -> source:Node.id -> message:Bitvec.t ->
    roles:role array -> max_rounds:int -> result
  (** Synchronous execution: each round, every node that committed in the
      previous round announces its value to all its decode neighbours;
      liars announce their fake value from the start and never relay.
      Stops at quiescence (no new commitment) or [max_rounds]. *)
end
