type config = { repeats : int; conflict_factor : float; slot_rounds : int }

let default_config = { repeats = 3; conflict_factor = 3.0; slot_rounds = 6 }

type ctx = {
  config : config;
  schedule : Schedule.t;
  states : (Node.id, state) Hashtbl.t;
}

and state = {
  my_slot : int;
  mutable have : Bitvec.t option;
  mutable sent : int;
  mutable packet : Msg.t Engine.action;
      (** the [Transmit] action, allocated once at adoption; [Silent] until
          the node has the message *)
}

let make_ctx config ~topology ~source =
  let schedule =
    if Topology.is_geometric topology then begin
      let conflict_range = config.conflict_factor *. Topology.rx_reach topology in
      Schedule.for_nodes topology ~conflict_range ~source
    end
    else Schedule.for_graph topology ~source
  in
  { config; schedule; states = Hashtbl.create 64 }

let schedule ctx = ctx.schedule
let cycle ctx = Schedule.cycle ctx.schedule
let cycle_rounds ctx = cycle ctx * ctx.config.slot_rounds

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

let machine ctx id role =
  let s =
    {
      my_slot = Schedule.slot_of ctx.schedule id;
      have = (match role with Source m | Liar m -> Some m | Relay -> None);
      sent = 0;
      packet = Engine.Silent;
    }
  in
  (match s.have with Some m -> s.packet <- Engine.Transmit (Msg.Packet m) | None -> ());
  Hashtbl.replace ctx.states id s;
  let slot_rounds = ctx.config.slot_rounds in
  let cyc = cycle ctx in
  let repeats = ctx.config.repeats in
  let adopt message =
    if s.have = None then begin
      s.have <- Some message;
      s.packet <- Engine.Transmit (Msg.Packet message)
    end
  in
  let act round =
    (* The packet occupies a whole slot; it goes on the air in the slot's
       first round. *)
    match s.packet with
    | Engine.Silent -> Engine.Silent
    | Engine.Transmit _ as tx ->
      if
        round mod slot_rounds = 0
        && round / slot_rounds mod cyc = s.my_slot
        && s.sent < repeats
      then begin
        s.sent <- s.sent + 1;
        tx
      end
      else Engine.Silent
  in
  let observe _round obs =
    match obs with
    | Channel.Clear (Msg.Packet message) -> adopt message
    | Channel.Clear Msg.Blip | Channel.Silence | Channel.Busy -> ()
  in
  let observe_packed _round code slots =
    if Channel.Packed.is_clear code then begin
      match slots.Engine.payloads.(Channel.Packed.slot code) with
      | Msg.Packet message -> adopt message
      | Msg.Blip -> ()
    end
  in
  (* Wakeup contract: nothing to do until the packet arrives (reception
     happens through the engine's touched set, which re-queries this after
     every poll); with the packet in hand, wake at the first round of each
     of my slots until the repeat budget is spent, then never again. *)
  let next_active round =
    match s.have with
    | None -> max_int
    | Some _ ->
      if s.sent >= repeats then max_int
      else begin
        let q = (round + slot_rounds - 1) / slot_rounds in
        let j = q + ((((s.my_slot - q) mod cyc) + cyc) mod cyc) in
        j * slot_rounds
      end
  in
  {
    Engine.act;
    observe;
    observe_packed = Some observe_packed;
    delivered = (fun () -> s.have);
    next_active;
  }
