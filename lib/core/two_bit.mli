(** The 2Bit-Protocol (Section 4, Level 1).

    Transmits two bits [⟨b1, b2⟩] from a sender to every honest receiver in
    its neighbourhood within one 6-round broadcast interval:

    - R1 (phase 0): sender transmits iff [b1 = 1];
    - R2 (phase 1): every receiver that sensed activity in R1 acknowledges;
    - R3 (phase 2): sender transmits iff [b2 = 1];
    - R4 (phase 3): receivers that sensed activity in R3 acknowledge;
    - R5 (phase 4): the sender vetoes if the acknowledgement pattern does
      not match what it sent;
    - R6 (phase 5): receivers relay any veto they sensed in R5 back to the
      sender.

    A receiver returns success (with its bit estimates) iff R5 was silent; a
    sender returns success iff it did not veto and R6 was silent.  The
    sub-machines here are pure per-interval state machines; the engine
    adapter drives [act] then [observe] for each phase.  All three ignore
    observations in a phase where they themselves transmitted (half-duplex
    radios).

    [Blocker] is the neighbourhood-watch role (Section 4, Level 2): a
    square member with nothing new to send vetoes any transmission it
    detects during its own square's data rounds, so data leaves a square
    only when every member has committed to it. *)

type outcome = Success | Failure

module Sender : sig
  type t

  val create : b1:bool -> b2:bool -> t
  val reset : t -> b1:bool -> b2:bool -> unit
  (** In-place re-arm for a new interval, so one sender per machine can be
      reused instead of allocating one per interval. *)

  val act : t -> phase:int -> bool
  (** Whether to transmit in this phase (phases are 0–5). *)

  val observe : t -> phase:int -> activity:bool -> unit
  val outcome : t -> outcome option
  (** Available after phase 5 has been observed. *)

  val vetoed : t -> bool
  (** Whether the sender itself vetoed in R5. *)
end

module Receiver : sig
  type t

  val create : unit -> t
  val act : t -> phase:int -> bool
  val observe : t -> phase:int -> activity:bool -> unit

  val outcome : t -> (outcome * (bool * bool)) option
  (** Available after phase 4 has been observed: the result and the
      estimates of [(b1, b2)]. *)

  (** Flat projections of [outcome] for per-round callers — no boxing. *)

  val finished : t -> bool
  (** Phase 4 has been observed. *)

  val veto_seen : t -> bool
  val bit1 : t -> bool
  val bit2 : t -> bool

  val reset : t -> unit
  (** In-place re-arm for a new interval. *)
end

module Blocker : sig
  type t

  val create : unit -> t
  val reset : t -> unit
  val act : t -> phase:int -> bool
  val observe : t -> phase:int -> activity:bool -> unit

  val saw_data : t -> bool
  (** Whether any activity was detected in the data rounds R1/R3 (i.e. the
      blocker had something to veto). *)
end
