(** NeighborWatchRB (Section 4, Level 2): authenticated multi-hop broadcast
    by neighbourhood watch.

    The plane is partitioned into squares small enough that any node in a
    square can communicate with any node in an adjacent square.  All honest
    members of a square act as one meta-node running the 1Hop-Protocol
    towards the nodes of adjacent squares: members that have committed to
    the next bit transmit it together; a member that has not vetoes the
    exchange (the "neighbourhood watch"), so corrupt data can leave a
    square only if the square contains no honest node at all — hence the
    tolerance [t < ⌈R/2⌉²] per neighbourhood, or roughly [t < R²/2] for the
    2-voting variant ([votes = 2]), where a node commits a bit only after
    receiving it from two different adjacent squares.

    A node commits to bit [i] when some adjacent square's stream (or the
    source itself, which is authenticated directly by Theorem 2) agrees
    with its whole committed prefix and extends it; committed bits are
    queued on the node's own square stream for forwarding.  The message is
    delivered once all [msg_len] bits are committed.

    The [`Liar] role reproduces the paper's lying experiments: the device
    runs this exact protocol but starts out committed to a fake message —
    it "appears correct" to its neighbours. *)

type config = {
  radius : float;  (** communication radius R *)
  square_side : float;  (** side of the meta-node squares *)
  votes : int;  (** 1 (default protocol) or 2 (2-voting variant) *)
  msg_len : int;  (** broadcast message length, known to all nodes *)
  catchup_failures : int;
      (** consecutive 2Bit failures after which a member that already knows
          the next bit skips forward (square catch-up rule, DESIGN.md) *)
  pipelined : bool;
      (** [true] (the protocol): forward each bit as soon as it commits.
          [false]: store-and-forward ablation — forward only once the whole
          message has been committed, the naive layering whose running time
          is Ω(β·D·log|Σ|) (Section 1, "Analysis"). *)
}

val default_config : radius:float -> msg_len:int -> config
(** Simulation sizing: squares of side R/3, 1-voting, catch-up after 25
    failures. *)

val analytic_config : radius:float -> msg_len:int -> config
(** Analytic sizing: squares of side ⌈R/2⌉. *)

(** The safety-critical voting kernel of the protocol, exposed so that the
    {!Vote_check} exhaustive verifier can drive exactly the code the
    protocol runs — the monotone agreement pointers, the once-per-frontier
    tally and the source override — on enumerated Byzantine stream
    patterns.  A {!stream} is one adjacent-square (or source) bit stream; a
    {!t} holds the node-wide frontier vote state.  Protocol semantics: a
    stream is a candidate for the frontier bit only while it agrees with
    the node's entire committed prefix; the source stream alone decides
    (Theorem 2 authenticates it); otherwise [votes] distinct square streams
    must agree on the frontier bit. *)
module Vote : sig
  type provider = Src | Sq of int  (** the source, or an adjacent square *)

  type stream

  val stream : provider -> stream
  (** A fresh stream with an empty receiver and clean agreement state. *)

  val receiver : stream -> One_hop.Receiver.t
  (** The underlying 1Hop receiver; push decoded bits here. *)

  val provider : stream -> provider

  val agreed : stream -> int
  (** Bits verified equal to the committed prefix (monotone). *)

  val disagrees : stream -> bool
  (** A verified bit differed: the stream is never a candidate again. *)

  val reset_stream : stream -> unit
  (** Restart agreement state (liar give-up: the committed prefix is
      cleared, so agreement must be re-established from scratch). *)

  type t

  val create : votes:int -> t
  (** Frontier vote state for the 1-voting ([votes = 1]) or 2-voting
      ([votes = 2]) protocol variant. *)

  val votes : t -> int
  val reset : t -> unit

  val poll : t -> committed:Buffer.t -> stream array -> bool option
  (** One frontier decision at [Buffer.length committed]: advance every
      stream's agreement pointer, tally candidate streams' frontier bits
      (each at most once per frontier), and return [Some bit] when the
      source stream has spoken or [votes] square streams agree. *)
end

type ctx

val make_ctx : config -> topology:Topology.t -> source:Node.id -> ctx
val schedule : ctx -> Schedule.t
val squares : ctx -> Squares.t

type role =
  | Source of Bitvec.t  (** the broadcast source and its message *)
  | Relay  (** an ordinary honest device *)
  | Liar of Bitvec.t  (** runs the protocol pre-committed to a fake message *)

val machine : ?initial_commit:Bitvec.t -> ctx -> Node.id -> role -> Msg.t Engine.machine
(** The engine machine for one node.  [Source]/[Liar] payloads must have
    length [msg_len].  [initial_commit] pre-seeds a [Relay] with a prefix
    it committed earlier (epoch hand-over in mobile runs, see {!Mobile});
    commitment is a local fact, so it survives re-clustering. *)

val committed_bits : ctx -> Node.id -> Bitvec.t
(** Prefix committed so far by a node built with [machine] (for tests and
    progress inspection).  Requires that the node's machine exists. *)

val progress : ctx -> int
(** Monotone progress counter over all machines of this context: total
    committed bits plus total stream bits received.  When it stops growing
    for a long time the network is wedged (e.g. honest square members
    permanently vetoing liars) and a simulation can be cut short. *)
