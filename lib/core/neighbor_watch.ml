type config = {
  radius : float;
  square_side : float;
  votes : int;
  msg_len : int;
  catchup_failures : int;
  pipelined : bool;
}

let default_config ~radius ~msg_len =
  {
    radius;
    square_side = Squares.simulation_side ~radius;
    votes = 1;
    msg_len;
    catchup_failures = 25;
    pipelined = true;
  }

let analytic_config ~radius ~msg_len =
  { (default_config ~radius ~msg_len) with square_side = Squares.analytic_side ~radius }

(* The safety-critical voting kernel, factored out so the Vote_check
   exhaustive verifier can drive exactly the code the protocol runs (the
   monotone agreement pointers, the once-per-frontier tally, the source
   override) on enumerated Byzantine stream patterns. *)
module Vote = struct
  type provider = Src | Sq of int

  type stream = {
    provider : provider;
    receiver : One_hop.Receiver.t;
    mutable agreed : int;
        (* bits verified equal to the committed prefix — both sides are
           append-only, so agreement never needs re-checking *)
    mutable disagrees : bool;  (* a verified bit differed: never a candidate again *)
    mutable counted : int;
        (* frontier index at which this stream's vote was tallied; -1 = none *)
  }

  let stream provider =
    { provider; receiver = One_hop.Receiver.create (); agreed = 0; disagrees = false; counted = -1 }

  let receiver st = st.receiver
  let provider st = st.provider
  let agreed st = st.agreed
  let disagrees st = st.disagrees

  let reset_stream st =
    st.agreed <- 0;
    st.disagrees <- false;
    st.counted <- -1

  type t = {
    votes : int;
    tally : Voting.Tally.t;  (* square votes at the current frontier *)
    mutable frontier : int;  (* frontier index the tally counts for *)
    mutable src_vote : bool option;  (* the source stream's frontier bit, if heard *)
  }

  let create ~votes = { votes; tally = Voting.Tally.create (); frontier = -1; src_vote = None }
  let votes (t : t) = t.votes

  let reset t =
    t.frontier <- -1;
    Voting.Tally.reset t.tally;
    t.src_vote <- None

  let committed_bit (committed : Buffer.t) i = Buffer.nth committed i = '1'

  (* A provider stream can justify bit [c] only if it extends the node's own
     committed prefix: mixing prefixes of disagreeing streams would deliver a
     message nobody sent.  Both the committed prefix and the stream are
     append-only, so the agreement pointer advances monotonically instead of
     re-walking the whole prefix on every poll. *)
  let advance_agreement ~committed st =
    let c = Buffer.length committed in
    let received = One_hop.Receiver.received st.receiver in
    while (not st.disagrees) && st.agreed < c && st.agreed < received do
      if One_hop.Receiver.get st.receiver st.agreed = committed_bit committed st.agreed then
        st.agreed <- st.agreed + 1
      else st.disagrees <- true
    done

  (* One frontier decision.  While the frontier stays at [Buffer.length
     committed], a stream's candidacy is monotone (its bit there is
     immutable once received, disagreement is final), so each stream's vote
     is tallied at most once per frontier index. *)
  let poll t ~committed streams =
    let c = Buffer.length committed in
    if t.frontier <> c then begin
      t.frontier <- c;
      Voting.Tally.reset t.tally;
      t.src_vote <- None
    end;
    for k = 0 to Array.length streams - 1 do
      let st = streams.(k) in
      if st.counted <> c then begin
        advance_agreement ~committed st;
        if (not st.disagrees) && st.agreed = c && One_hop.Receiver.received st.receiver > c
        then begin
          st.counted <- c;
          let v = One_hop.Receiver.get st.receiver c in
          match st.provider with
          | Src -> t.src_vote <- Some v
          | Sq _ -> Voting.Tally.add t.tally v
        end
      end
    done;
    match t.src_vote with
    (* Direct reception from the source is authenticated by Theorem 2
       and needs no corroboration, whatever the voting threshold. *)
    | Some v -> Some v
    | None ->
      if Voting.Tally.count t.tally ~value:true >= t.votes then Some true
      else if Voting.Tally.count t.tally ~value:false >= t.votes then Some false
      else None
end

(* Interval roles as int codes over preallocated sub-machines (see
   Multi_path for the same pattern): the role switch at an interval
   boundary re-arms 2Bit state in place instead of boxing a fresh
   (role, sub-machine) pair. *)
let role_idle = 0
let role_sending = 1
let role_blocking = 2
let role_receiving = 3
let role_passive = 4  (* catch-up fired: stay silent for the rest of the interval *)

type state = {
  my_slot : int;
  is_source : bool;
  listen_by_slot : Vote.stream option array;  (** slot -> provider stream, O(1) *)
  committed : Buffer.t;  (** '0'/'1' chars *)
  mutable sender : One_hop.Sender.t;
  streams : Vote.stream array;
  vote : Vote.t;  (** the frontier tally (see {!Vote}) *)
  mutable role : int;  (** one of the [role_*] codes *)
  tb_sender : Two_bit.Sender.t;
  tb_blocker : Two_bit.Blocker.t;
  tb_receiver : Two_bit.Receiver.t;
  mutable send_parity : bool;  (** the parity bit of the current 2Bit send *)
  mutable rx_stream : Vote.stream option;  (** stream listened to while receiving *)
  mutable cur_interval : int;
  mutable failures : int;
  mutable liar_attempts : int;
      (** [> 0]: a lying device that will abandon its fake message and
          fall back to honest relaying after that many more vetoed
          exchanges; [0]: honest (or a liar that has given up).
          The paper's liars "appear correct": a square's honest watch
          detects and vetoes the injection, after which a rational liar
          stops burning budget on a detected attack (otherwise it is just a
          jammer, measured separately).  This matches the paper's stated
          success condition — only squares with no honest member spread the
          fake (Section 6.1). *)
  msg_len : int;
  catchup_failures : int;
  pipelined : bool;
}

type ctx = {
  config : config;
  topology : Topology.t;
  squares : Squares.t;
  schedule : Schedule.t;
  source : Node.id;
  states : (Node.id, state) Hashtbl.t;
}

let make_ctx config ~topology ~source =
  let deployment = Topology.deployment topology in
  let squares =
    Squares.make ~side:config.square_side
      ~width:(deployment.Deployment.width +. 1e-6)
      ~height:(deployment.Deployment.height +. 1e-6)
  in
  let schedule = Schedule.for_squares squares ~radius:config.radius in
  { config; topology; squares; schedule; source; states = Hashtbl.create 64 }

let schedule ctx = ctx.schedule
let squares ctx = ctx.squares

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

let committed_len s = Buffer.length s.committed
let committed_bit s i = Buffer.nth s.committed i = '1'

let commit_bit s bit =
  Buffer.add_char s.committed (if bit then '1' else '0');
  (* Committed bits are what the node's square is allowed to forward.  The
     non-pipelined ablation (DESIGN.md) holds bits back until the whole
     message has been committed — the "natural" store-and-forward layering
     whose running time the paper shows to be asymptotically worse. *)
  if s.pipelined then One_hop.Sender.push s.sender bit
  else if Buffer.length s.committed = s.msg_len then
    String.iter (fun c -> One_hop.Sender.push s.sender (c = '1')) (Buffer.contents s.committed)

(* Try to extend the committed prefix; repeats until no rule applies.  The
   frontier decision proper lives in {!Vote.poll}. *)
let rec try_commit s =
  if committed_len s < s.msg_len then begin
    match Vote.poll s.vote ~committed:s.committed s.streams with
    | Some v ->
      commit_bit s v;
      try_commit s
    | None -> ()
  end

let delivered s =
  if committed_len s >= s.msg_len then
    Some (Bitvec.init s.msg_len (fun i -> committed_bit s i))
  else None

(* --- interval roles ------------------------------------------------- *)

let setup_interval ctx s interval =
  s.cur_interval <- interval;
  let slot = Schedule.active_slot ctx.schedule ~interval in
  let sending_here =
    if s.is_source then slot = Schedule.source_slot
    else slot = s.my_slot
  in
  if sending_here then begin
    if One_hop.Sender.has_current s.sender then begin
      let parity = One_hop.Sender.current_parity s.sender in
      s.role <- role_sending;
      s.send_parity <- parity;
      Two_bit.Sender.reset s.tb_sender ~b1:parity ~b2:(One_hop.Sender.current_data s.sender)
    end
    else begin
      s.role <- role_blocking;
      Two_bit.Blocker.reset s.tb_blocker
    end
  end
  else begin
    match s.listen_by_slot.(slot) with
    | Some _ as stream ->
      s.role <- role_receiving;
      s.rx_stream <- stream;
      Two_bit.Receiver.reset s.tb_receiver
    | None -> s.role <- role_idle
  end

(* A detected liar abandons the fake and relays honestly from scratch.  The
   committed prefix restarts, so every stream's agreement state restarts
   with it. *)
let liar_give_up s =
  s.liar_attempts <- 0;
  Buffer.clear s.committed;
  s.sender <- One_hop.Sender.create ();
  s.failures <- 0;
  Array.iter Vote.reset_stream s.streams;
  Vote.reset s.vote;
  try_commit s

let finish_interval s =
  if s.role = role_sending then begin
    match Two_bit.Sender.outcome s.tb_sender with
    | Some Two_bit.Success ->
      One_hop.Sender.advance s.sender;
      s.failures <- 0
    | Some Two_bit.Failure when s.liar_attempts > 0 ->
      if s.liar_attempts <= 1 then liar_give_up s
      else s.liar_attempts <- s.liar_attempts - 1
    | Some Two_bit.Failure ->
      s.failures <- s.failures + 1;
      (* Square catch-up, trigger 2: persistently failing on bit [i] while
         already knowing bit [i+1] means either the rest of the square has
         moved on, or a jammer is spending a broadcast per interval; skip
         forward rather than deadlock (see DESIGN.md). *)
      let pointer = One_hop.Sender.sent s.sender in
      if s.failures >= s.catchup_failures && One_hop.Sender.total s.sender > pointer + 1
      then begin
        One_hop.Sender.skip_to s.sender (pointer + 1);
        s.failures <- 0
      end
    | None -> ()
  end
  else if s.role = role_receiving then begin
    let r = s.tb_receiver in
    if Two_bit.Receiver.finished r && not (Two_bit.Receiver.veto_seen r) then begin
      match s.rx_stream with
      | Some stream ->
        One_hop.Receiver.push_two_bit (Vote.receiver stream)
          ~parity:(Two_bit.Receiver.bit1 r) ~data:(Two_bit.Receiver.bit2 r);
        try_commit s
      | None -> ()
    end
  end

let tx_blip = Engine.Transmit Msg.Blip

let act ctx s round =
  let interval = Schedule.interval_of_round round in
  let phase = Schedule.phase_of_round round in
  if interval <> s.cur_interval then setup_interval ctx s interval;
  let transmit =
    if s.role = role_sending then Two_bit.Sender.act s.tb_sender ~phase
    else if s.role = role_receiving then Two_bit.Receiver.act s.tb_receiver ~phase
    else if s.role = role_blocking then Two_bit.Blocker.act s.tb_blocker ~phase
    else false
  in
  if transmit then tx_blip else Engine.Silent

let observe_activity ctx s round activity =
  let interval = Schedule.interval_of_round round in
  let phase = Schedule.phase_of_round round in
  if interval <> s.cur_interval then setup_interval ctx s interval;
  if s.role = role_sending then begin
    (* Square catch-up, trigger 1: silent in the parity round but heard
       parity activity, and the next bit is already committed — the rest
       of the square is one bit ahead; join them. *)
    if phase = 0 && (not s.send_parity) && activity
       && One_hop.Sender.total s.sender > One_hop.Sender.sent s.sender + 1
    then begin
      One_hop.Sender.skip_to s.sender (One_hop.Sender.sent s.sender + 1);
      s.failures <- 0;
      s.role <- role_passive
    end
    else Two_bit.Sender.observe s.tb_sender ~phase ~activity
  end
  else if s.role = role_receiving then Two_bit.Receiver.observe s.tb_receiver ~phase ~activity
  else if s.role = role_blocking then Two_bit.Blocker.observe s.tb_blocker ~phase ~activity;
  if phase = Schedule.rounds_per_interval - 1 then finish_interval s

let observe ctx s round obs = observe_activity ctx s round (Channel.is_activity obs)

(* --- construction ---------------------------------------------------- *)

let machine ?initial_commit ctx id role =
  let config = ctx.config in
  let pos = Topology.position ctx.topology id in
  let my_square = Squares.square_of ctx.squares pos in
  let is_source = id = ctx.source in
  let senses_source =
    Array.exists (fun { Topology.peer; _ } -> peer = ctx.source) (Topology.sensed ctx.topology).(id)
  in
  let adjacent = Squares.neighbors ctx.squares my_square in
  let listen =
    let squares_listen =
      List.map (fun sq -> (Schedule.slot_of ctx.schedule sq, Vote.Sq sq)) adjacent
    in
    if (not is_source) && senses_source then (Schedule.source_slot, Vote.Src) :: squares_listen
    else squares_listen
  in
  let streams = List.map (fun (_, provider) -> Vote.stream provider) listen in
  let stream_arr = Array.of_list streams in
  (* Adjacent squares of one 3x3 block get pairwise-distinct slots (the
     schedule's reuse distance k >= 3), so slot -> stream is injective. *)
  let listen_by_slot = Array.make (Schedule.cycle ctx.schedule) None in
  List.iter2
    (fun (slot, _) stream ->
      match listen_by_slot.(slot) with
      | None -> listen_by_slot.(slot) <- Some stream
      | Some _ -> ())
    listen streams;
  let my_slot = Schedule.slot_of ctx.schedule my_square in
  (* Wakeup contract: the machine does something other than idle exactly
     in the intervals of its own sending slot (the source sends in slot 0
     instead of its square's) and of the slots it listens to; everywhere
     else [setup_interval] would pick [Idle], which ignores the channel. *)
  let relevant = Array.make (Schedule.cycle ctx.schedule) false in
  relevant.(if is_source then Schedule.source_slot else my_slot) <- true;
  Array.iteri (fun slot stream -> if stream <> None then relevant.(slot) <- true) listen_by_slot;
  let next_active = Schedule.next_relevant_round ctx.schedule ~relevant in
  let s =
    {
      my_slot;
      is_source;
      listen_by_slot;
      committed = Buffer.create 16;
      sender = One_hop.Sender.create ();
      streams = stream_arr;
      vote = Vote.create ~votes:config.votes;
      role = role_idle;
      tb_sender = Two_bit.Sender.create ~b1:false ~b2:false;
      tb_blocker = Two_bit.Blocker.create ();
      tb_receiver = Two_bit.Receiver.create ();
      send_parity = false;
      rx_stream = None;
      cur_interval = -1;
      failures = 0;
      liar_attempts = (match role with Liar _ -> 3 | Source _ | Relay -> 0);
      msg_len = config.msg_len;
      catchup_failures = config.catchup_failures;
      pipelined = config.pipelined;
    }
  in
  begin
    match role with
    | Source message | Liar message ->
      assert (Bitvec.length message = config.msg_len);
      Bitvec.fold_left (fun () bit -> commit_bit s bit) () message
    | Relay -> begin
      (* Bits this node committed in a previous epoch of a mobile run stay
         committed: commitment is a local, already-authenticated fact. *)
      match initial_commit with
      | Some prefix ->
        assert (Bitvec.length prefix <= config.msg_len);
        Bitvec.fold_left (fun () bit -> commit_bit s bit) () prefix
      | None -> ()
    end
  end;
  Hashtbl.replace ctx.states id s;
  {
    Engine.act = (fun round -> act ctx s round);
    observe = (fun round obs -> observe ctx s round obs);
    observe_packed =
      Some
        (fun round code _slots ->
          observe_activity ctx s round (Channel.Packed.is_activity code));
    delivered = (fun () -> delivered s);
    next_active;
  }

let committed_bits ctx id =
  match Hashtbl.find_opt ctx.states id with
  | None -> invalid_arg "Neighbor_watch.committed_bits: unknown node"
  | Some s -> Bitvec.init (committed_len s) (committed_bit s)

let progress ctx =
  Hashtbl.fold
    (fun _ s acc ->
      Array.fold_left
        (fun acc st -> acc + One_hop.Receiver.received (Vote.receiver st))
        (acc + committed_len s) s.streams)
    ctx.states 0
