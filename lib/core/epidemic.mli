(** The simple epidemic flooding baseline (Section 6.2).

    No authentication and no fault tolerance: the whole message travels in
    a single packet; a node that has the message rebroadcasts it a fixed
    number of times in its own TDMA slot; receivers adopt the first packet
    they decode, whoever sent it.  Any Byzantine interference can suppress
    packets (collisions) or inject fake ones.  The paper compares
    NeighborWatchRB against this protocol (≈7.7× slower) and uses it as the
    fast channel of the dual-mode scheme.

    The baseline runs under the same MAC model as the protocols
    (Section 3): a fixed TDMA schedule with the 3R conflict rule, and a
    slot long enough for one packet of a few bits — i.e. one 6-round
    broadcast interval.  Giving the baseline an idealised 1-round,
    interference-free schedule instead would overstate the cost of
    authentication by an order of magnitude (see EXPERIMENTS.md, E7). *)

type config = {
  repeats : int;  (** rebroadcasts per node (default 3) *)
  conflict_factor : float;
      (** TDMA conflict range as a multiple of the decode range (default
          3.0, the same spatial-reuse rule the protocols use) *)
  slot_rounds : int;
      (** rounds per slot — the time to transmit one packet (default 6,
          one broadcast interval) *)
}

val default_config : config

type ctx

val make_ctx : config -> topology:Topology.t -> source:Node.id -> ctx

val schedule : ctx -> Schedule.t
(** The TDMA schedule the packets ride on (slot ids are node ids). *)

val cycle : ctx -> int
(** Slots per schedule cycle. *)

val cycle_rounds : ctx -> int
(** Rounds per schedule cycle ([cycle × slot_rounds]). *)

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

val machine : ctx -> Node.id -> role -> Msg.t Engine.machine
