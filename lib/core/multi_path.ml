type config = {
  radius : float;
  tolerance : int;
  msg_len : int;
  coord_step : float;
  heard_relay_limit : int option;
}

let default_config ~radius ~tolerance ~msg_len =
  { radius; tolerance; msg_len; coord_step = 0.5; heard_relay_limit = None }

type peer = {
  peer_id : Node.id;
  peer_pos : Point.t;
  stream : One_hop.Receiver.t;
  mutable parsed : int;  (** stream bits consumed by the frame parser *)
  mutable poisoned : bool;  (** an invalid frame appeared: stop parsing *)
}

(* Interval roles as int codes over preallocated sub-machines: the role
   switch at an interval boundary re-arms the machine's own 2Bit state in
   place instead of boxing a fresh (role, sub-machine) pair. *)
let role_idle = 0
let role_sending = 1
let role_blocking = 2
let role_receiving = 3

type state = {
  pos : Point.t;
  my_slot : int;
  relay_heard : bool;
  committed : Buffer.t;
  sender : One_hop.Sender.t;
  peers : peer array;  (** every sensed peer, in sensed order *)
  peer_by_slot : peer option array;  (** listening slot -> peer, O(1) *)
  evidence : Voting.Index.t array;
  source_bits : Buffer.t;  (** bits received directly from the source *)
  heard_relayed : int array;
  enqueue_commits : bool;  (** sources stream SOURCE frames instead *)
  mutable role : int;  (** one of the [role_*] codes *)
  tb_sender : Two_bit.Sender.t;
  tb_blocker : Two_bit.Blocker.t;
  tb_receiver : Two_bit.Receiver.t;
  mutable rx_peer : peer option;  (** the peer listened to while receiving *)
  mutable cur_interval : int;
}

type ctx = {
  config : config;
  topology : Topology.t;
  schedule : Schedule.t;
  source : Node.id;
  codec : Frame.codec;
  states : (Node.id, state) Hashtbl.t;
}

let make_ctx config ~topology ~source =
  (* Geometric topologies keep the spatial conflict colouring; an explicit
     graph has no distances to colour by, so conflicts are read off the
     decode graph itself (shared-receiver = within two hops). *)
  let schedule =
    if Topology.is_geometric topology then begin
      let conflict_range = max (3.0 *. config.radius) (2.0 *. Topology.sense_reach topology) in
      Schedule.for_nodes topology ~conflict_range ~source
    end
    else Schedule.for_graph topology ~source
  in
  let codec =
    Frame.codec ~msg_len:config.msg_len
      ~coord_range:(Topology.sense_reach topology)
      ~coord_step:config.coord_step
  in
  { config; topology; schedule; source; codec; states = Hashtbl.create 64 }

let schedule ctx = ctx.schedule

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

let committed_len s = Buffer.length s.committed
let committed_bit s i = Buffer.nth s.committed i = '1'

let push_frame ctx s frame =
  Bitvec.fold_left (fun () bit -> One_hop.Sender.push s.sender bit) () (Frame.encode ctx.codec frame)

let commit_bit ctx s bit =
  let index = committed_len s in
  Buffer.add_char s.committed (if bit then '1' else '0');
  if s.enqueue_commits then push_frame ctx s (Frame.Commit { index; value = bit })

let rec try_commit ctx s =
  let c = committed_len s in
  if c < ctx.config.msg_len then begin
    if Buffer.length s.source_bits > c then begin
      (* Directly from the source: authenticated by Theorem 2. *)
      commit_bit ctx s (Buffer.nth s.source_bits c = '1');
      try_commit ctx s
    end
    else begin
      let index = s.evidence.(c) in
      (* The quorum answer is a pure function of the evidence set: a clean
         index cannot have changed its mind since the last scan. *)
      if Voting.Index.dirty index then begin
        Voting.Index.clear_dirty index;
        let need = ctx.config.tolerance + 1 in
        let decide value =
          if Voting.Index.decide index ~radius:ctx.config.radius ~need ~value then Some value
          else None
        in
        match (match decide true with Some v -> Some v | None -> decide false) with
        | Some v ->
          commit_bit ctx s v;
          try_commit ctx s
        | None -> ()
      end
    end
  end

let add_evidence s index item = Voting.Index.add s.evidence.(index) item

let handle_frame ctx s peer frame =
  match frame with
  | Frame.Source value ->
    (* SOURCE frames are only meaningful from the source's own slot. *)
    if peer.peer_id = ctx.source then Buffer.add_char s.source_bits (if value then '1' else '0')
  | Frame.Commit { index; value } ->
    let origin = Frame.snap ctx.codec peer.peer_pos in
    add_evidence s index { Voting.origin; value; points = [ peer.peer_pos ] };
    let under_cap =
      match ctx.config.heard_relay_limit with
      | None -> true
      | Some cap -> s.heard_relayed.(index) < cap
    in
    if s.relay_heard && under_cap then begin
      s.heard_relayed.(index) <- s.heard_relayed.(index) + 1;
      let ox, oy = origin and mx, my = Frame.snap ctx.codec s.pos in
      push_frame ctx s (Frame.Heard { index; value; cause = (ox - mx, oy - my) })
    end
  | Frame.Heard { index; value; cause = dx, dy } ->
    let wx, wy = Frame.snap ctx.codec peer.peer_pos in
    let origin = (wx + dx, wy + dy) in
    add_evidence s index
      { Voting.origin; value; points = [ peer.peer_pos; Frame.lattice_point ctx.codec origin ] }

(* Consume complete frames from a peer's stream. *)
let parse_frames ctx s peer =
  let continue = ref (not peer.poisoned) in
  while !continue do
    let available = One_hop.Receiver.received peer.stream - peer.parsed in
    if available < 2 then continue := false
    else begin
      let tag =
        (One_hop.Receiver.get peer.stream peer.parsed,
         One_hop.Receiver.get peer.stream (peer.parsed + 1))
      in
      match Frame.length_from_tag ctx.codec tag with
      | None ->
        (* Gibberish can only come from a Byzantine slot owner; there is no
           way to resynchronise, so stop listening to this peer. *)
        peer.poisoned <- true;
        continue := false
      | Some len ->
        if available < len then continue := false
        else begin
          let bits = Bitvec.init len (fun i -> One_hop.Receiver.get peer.stream (peer.parsed + i)) in
          peer.parsed <- peer.parsed + len;
          match Frame.decode ctx.codec bits with
          | Some frame -> handle_frame ctx s peer frame
          | None -> peer.poisoned <- true
        end
    end
  done;
  try_commit ctx s

(* --- interval roles -------------------------------------------------- *)

let setup_interval ctx s interval =
  s.cur_interval <- interval;
  let slot = Schedule.active_slot ctx.schedule ~interval in
  if slot = s.my_slot then begin
    if One_hop.Sender.has_current s.sender then begin
      s.role <- role_sending;
      Two_bit.Sender.reset s.tb_sender
        ~b1:(One_hop.Sender.current_parity s.sender)
        ~b2:(One_hop.Sender.current_data s.sender)
    end
    else begin
      s.role <- role_blocking;
      Two_bit.Blocker.reset s.tb_blocker
    end
  end
  else begin
    match s.peer_by_slot.(slot) with
    | Some _ as p ->
      s.role <- role_receiving;
      s.rx_peer <- p;
      Two_bit.Receiver.reset s.tb_receiver
    | None -> s.role <- role_idle
  end

let finish_interval ctx s =
  if s.role = role_sending then begin
    match Two_bit.Sender.outcome s.tb_sender with
    | Some Two_bit.Success -> One_hop.Sender.advance s.sender
    | Some Two_bit.Failure | None -> ()
  end
  else if s.role = role_receiving then begin
    let r = s.tb_receiver in
    if Two_bit.Receiver.finished r && not (Two_bit.Receiver.veto_seen r) then begin
      match s.rx_peer with
      | Some peer ->
        One_hop.Receiver.push_two_bit peer.stream ~parity:(Two_bit.Receiver.bit1 r)
          ~data:(Two_bit.Receiver.bit2 r);
        parse_frames ctx s peer
      | None -> ()
    end
  end

let tx_blip = Engine.Transmit Msg.Blip

let act ctx s round =
  let interval = Schedule.interval_of_round round in
  let phase = Schedule.phase_of_round round in
  if interval <> s.cur_interval then setup_interval ctx s interval;
  let transmit =
    if s.role = role_sending then Two_bit.Sender.act s.tb_sender ~phase
    else if s.role = role_receiving then Two_bit.Receiver.act s.tb_receiver ~phase
    else if s.role = role_blocking then Two_bit.Blocker.act s.tb_blocker ~phase
    else false
  in
  if transmit then tx_blip else Engine.Silent

let observe_activity ctx s round activity =
  let interval = Schedule.interval_of_round round in
  let phase = Schedule.phase_of_round round in
  if interval <> s.cur_interval then setup_interval ctx s interval;
  if s.role = role_sending then Two_bit.Sender.observe s.tb_sender ~phase ~activity
  else if s.role = role_receiving then Two_bit.Receiver.observe s.tb_receiver ~phase ~activity
  else if s.role = role_blocking then Two_bit.Blocker.observe s.tb_blocker ~phase ~activity;
  if phase = Schedule.rounds_per_interval - 1 then finish_interval ctx s

let observe ctx s round obs = observe_activity ctx s round (Channel.is_activity obs)

let delivered ctx s =
  if committed_len s >= ctx.config.msg_len then
    Some (Bitvec.init ctx.config.msg_len (fun i -> committed_bit s i))
  else None

(* --- construction ---------------------------------------------------- *)

let machine ctx id role =
  let config = ctx.config in
  let pos = Topology.position ctx.topology id in
  let peers =
    Array.map
      (fun { Topology.peer; _ } ->
        {
          peer_id = peer;
          peer_pos = Topology.position ctx.topology peer;
          stream = One_hop.Receiver.create ();
          parsed = 0;
          poisoned = false;
        })
      (Topology.sensed ctx.topology).(id)
  in
  (* The schedule gives conflicting (hence mutually sensed) nodes distinct
     slots, so this map is injective; first-wins mirrors the defunct assoc
     list all the same. *)
  let peer_by_slot = Array.make (Schedule.cycle ctx.schedule) None in
  Array.iter
    (fun p ->
      let slot = Schedule.slot_of ctx.schedule p.peer_id in
      match peer_by_slot.(slot) with
      | None -> peer_by_slot.(slot) <- Some p
      | Some _ -> ())
    peers;
  let my_slot = Schedule.slot_of ctx.schedule id in
  (* Wakeup contract: active exactly in the intervals of my own slot and
     of my sensed peers' slots; every other interval resolves to [Idle]. *)
  let relevant = Array.make (Schedule.cycle ctx.schedule) false in
  relevant.(my_slot) <- true;
  Array.iteri (fun slot p -> if p <> None then relevant.(slot) <- true) peer_by_slot;
  let next_active = Schedule.next_relevant_round ctx.schedule ~relevant in
  let s =
    {
      pos;
      my_slot;
      relay_heard = (match role with Liar _ -> false | Source _ | Relay -> true);
      committed = Buffer.create 16;
      sender = One_hop.Sender.create ();
      peers;
      peer_by_slot;
      evidence = Array.init config.msg_len (fun _ -> Voting.Index.create ());
      source_bits = Buffer.create 16;
      heard_relayed = Array.make config.msg_len 0;
      enqueue_commits = (match role with Source _ -> false | Relay | Liar _ -> true);
      role = role_idle;
      tb_sender = Two_bit.Sender.create ~b1:false ~b2:false;
      tb_blocker = Two_bit.Blocker.create ();
      tb_receiver = Two_bit.Receiver.create ();
      rx_peer = None;
      cur_interval = -1;
    }
  in
  begin
    match role with
    | Source message ->
      assert (Bitvec.length message = config.msg_len);
      Bitvec.fold_left
        (fun () bit ->
          Buffer.add_char s.committed (if bit then '1' else '0');
          push_frame ctx s (Frame.Source bit))
        () message
    | Liar message ->
      assert (Bitvec.length message = config.msg_len);
      Bitvec.fold_left (fun () bit -> commit_bit ctx s bit) () message
    | Relay -> ()
  end;
  Hashtbl.replace ctx.states id s;
  {
    Engine.act = (fun round -> act ctx s round);
    observe = (fun round obs -> observe ctx s round obs);
    observe_packed =
      Some
        (fun round code _slots ->
          observe_activity ctx s round (Channel.Packed.is_activity code));
    delivered = (fun () -> delivered ctx s);
    next_active;
  }

let committed_bits ctx id =
  match Hashtbl.find_opt ctx.states id with
  | None -> invalid_arg "Multi_path.committed_bits: unknown node"
  | Some s -> Bitvec.init (committed_len s) (committed_bit s)

let progress ctx =
  Hashtbl.fold
    (fun _ s acc ->
      Array.fold_left
        (fun acc peer -> acc + One_hop.Receiver.received peer.stream)
        (acc + committed_len s) s.peers)
    ctx.states 0
