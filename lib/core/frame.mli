(** Wire frames of MultiPathRB.

    Each protocol message (Section 4/5) is a constant-size frame streamed
    bit-by-bit over the 1Hop-Protocol: a 2-bit type tag, the bit index, the
    message bit, and — for HEARD — the cause's location relative to the
    frame's sender (O(log R) bits, as in the paper's analysis).  Frames are
    self-delimiting within a stream: the tag determines the total length.

    Two deliberate deviations from the paper's terse description, both
    recorded in DESIGN.md:

    - COMMIT/HEARD frames carry an explicit bit index (⌈log₂ msg_len⌉
      bits).  The paper's implicit in-order numbering is exact on the
      analytic grid, but under continuous random deployments the cause
      location must be quantised, and quantisation collisions would corrupt
      the per-cause ordering (observed as wrong deliveries with zero
      adversaries).  SOURCE frames stay implicit — they come from a single
      totally-ordered stream.
    - Cause locations are exchanged as *lattice deltas*: positions snap to
      a canonical grid of pitch [coord_step], and the frame carries the
      integer difference between the cause's and the sender's lattice
      cells.  Every receiver can reconstruct the same canonical cell, so an
      origin has one identity network-wide (no vote splitting).
    - Frames whose payload is an odd number of bits carry one trailing
      1-bit of padding, keeping every frame — and hence every stream
      position at which a sender's queue can drain — even.  The 1Hop
      parity convention only lets receivers reject a silent interval
      outright at even stream positions (where the parity blip is due); a
      sender silently blocking its slot after draining at an odd position
      would instead be read as a transmitted (parity=0, data=0) pair,
      injecting a spurious 0-bit
      that misaligns every later frame (observed as wrong deliveries with
      zero adversaries on sparse explicit-graph topologies). *)

type t =
  | Source of bool  (** ⟨SOURCE, bᵢ⟩; the index is the stream order *)
  | Commit of { index : int; value : bool }  (** ⟨COMMIT, bᵢ⟩ *)
  | Heard of { index : int; value : bool; cause : int * int }
      (** ⟨HEARD, v, bᵢ⟩; [cause] is the lattice delta from the sender to
          the committing node [v] *)

type codec

val codec : msg_len:int -> coord_range:float -> coord_step:float -> codec
(** Cause deltas are clamped to [±coord_range] and quantised to
    [coord_step]; indices range over [\[0, msg_len)]. *)

val index_bits : codec -> int
val coord_bits : codec -> int
(** Bits per delta coordinate. *)

val snap : codec -> Point.t -> int * int
(** Canonical lattice cell of a position. *)

val lattice_point : codec -> int * int -> Point.t
(** Centre of a lattice cell (the approximate position of an origin). *)

val encode : codec -> t -> Bitvec.t

val length_from_tag : codec -> bool * bool -> int option
(** Total frame length given the first two stream bits; [None] for the
    unused tag (a malformed stream). *)

val decode : codec -> Bitvec.t -> t option
(** Decode a full frame; [None] if the tag is invalid, the length is wrong
    for the tag, or the index is out of range. *)
