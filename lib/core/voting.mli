(** The MultiPathRB commit rule (Section 4, Level 2).

    A node may commit to a bit value once it holds at least [t + 1] pieces
    of evidence — COMMIT messages and HEARD messages — whose senders and
    causes all lie in one common neighbourhood [N]: since at most [t] nodes
    of any neighbourhood are Byzantine, at least one piece must then come
    from an honest node, which authenticates the value.

    Evidence items are keyed by their *origin* (the committing node: the
    sender of a COMMIT, or the cause of a HEARD), because [t + 1] copies
    must arrive through node-disjoint paths; multiple items from the same
    origin count once.  Each item carries the set of points that must fit
    in [N]: the origin's position, plus the witness's position for HEARD
    evidence.

    A point set fits some L-infinity ball of radius [R] iff it fits a
    [2R × 2R] window; [quorum] scans candidate windows anchored at evidence
    coordinates.  (For the Euclidean simulation model this box test is the
    standard L-infinity approximation of the neighbourhood; the analytic
    model is exactly L-infinity.)

    {!Index} is the incremental form used on the protocol hot path: one
    index per message bit, with O(1) amortized evidence insertion, O(1)
    distinct-origin counts, and a dirty bit so the window scan only re-runs
    when new evidence actually arrived.  It is extensionally equal to
    {!quorum} over the same evidence (property-tested). *)

type origin = int * int
(** Quantised position used as the identity of a committing node. *)

type item = { origin : origin; value : bool; points : Point.t list }

val quorum : radius:float -> need:int -> value:bool -> item list -> bool
(** [quorum ~radius ~need ~value items]: is there a set of at least [need]
    items with distinct origins, all carrying [value], whose point sets fit
    together in one L-infinity ball of radius [radius]?  Reference
    implementation: filters and scans the full list on every call. *)

val distinct_origins : value:bool -> item list -> int
(** Number of distinct origins voting for [value] (the cheap pre-check). *)

(** An independently derived quorum implementation for cross-validation.

    Where {!quorum} slides candidate windows anchored at evidence
    coordinates, [Reference.quorum] works in the dual space: the anchors of
    the windows admitting one item form an axis-aligned rectangle, and a
    quorum exists iff ≥ [need] origins own rectangles sharing a point —
    decided by testing the pairwise corners of the rectangles.  The two
    algorithms share no scanning code; {!Vote_check} asserts they agree on
    every exhaustively enumerated Byzantine evidence pattern, and the
    randomized traces of [test_voting.ml] cross-validate them as well. *)
module Reference : sig
  val quorum : radius:float -> need:int -> value:bool -> item list -> bool
  (** Same contract (and, by the checkers, the same answers) as {!quorum}. *)
end

(** A running for/against vote count.  Shared by {!Index} (distinct-origin
    counts per value) and NeighborWatchRB's per-bit stream voting, where
    callers deduplicate voters before calling [add]. *)
module Tally : sig
  type t

  val create : unit -> t
  val reset : t -> unit
  val add : t -> bool -> unit
  val count : t -> value:bool -> int
end

(** Incrementally maintained evidence for one message bit. *)
module Index : sig
  type t

  val create : unit -> t

  val add : t -> item -> unit
  (** O(1) amortized.  Structurally duplicate items (Byzantine replays) are
      dropped, exactly like the reference list's membership check; a fresh
      item marks the index dirty and updates the per-value origin count. *)

  val votes : t -> value:bool -> int
  (** Distinct origins voting for [value]; O(1), equals
      [distinct_origins ~value (all_items t)]. *)

  val items : t -> value:bool -> item list
  (** The deduplicated items carrying [value], newest first. *)

  val all_items : t -> item list
  (** Every deduplicated item, for reference-scan comparison in tests. *)

  val dirty : t -> bool
  (** True iff evidence arrived since the last {!clear_dirty}.  While an
      index is clean, [decide] cannot change its answer, so callers skip
      the scan entirely. *)

  val clear_dirty : t -> unit

  val decide : t -> radius:float -> need:int -> value:bool -> bool
  (** Same answer as [quorum ~radius ~need ~value (all_items t)], but the
      origin-count pre-check is O(1) and the window scan runs over the
      pre-filtered per-value items. *)
end
