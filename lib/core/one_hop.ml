let parity_of_index i = i mod 2 = 0

module Sender = struct
  type t = { queue : Buffer.t; mutable pointer : int }
  (* [queue] stores stream bits as '0'/'1' bytes: cheap append and random
     access without a functional-queue rebuild per interval. *)

  let create () = { queue = Buffer.create 16; pointer = 0 }
  let push t bit = Buffer.add_char t.queue (if bit then '1' else '0')
  let total t = Buffer.length t.queue
  let has_current t = t.pointer < total t

  let current t =
    assert (has_current t);
    (parity_of_index t.pointer, Buffer.nth t.queue t.pointer = '1')

  (* Tuple-free projections of [current] for the engine hot path. *)
  let current_parity t =
    assert (has_current t);
    parity_of_index t.pointer

  let current_data t =
    assert (has_current t);
    Buffer.nth t.queue t.pointer = '1'

  let advance t = if has_current t then t.pointer <- t.pointer + 1
  let skip_to t n = if n > t.pointer then t.pointer <- min n (total t)
  let sent t = t.pointer
end

module Receiver = struct
  type t = { stream : Buffer.t }

  let create () = { stream = Buffer.create 16 }
  let received t = Buffer.length t.stream

  let push_two_bit t ~parity ~data =
    let expected = parity_of_index (received t) in
    if parity = expected then Buffer.add_char t.stream (if data then '1' else '0')

  let get t i = Buffer.nth t.stream i = '1'
  let bits t = Bitvec.init (received t) (get t)

  let prefix t n =
    assert (received t >= n);
    Bitvec.init n (get t)
end
