type outcome = Success | Failure

module Sender = struct
  type t = {
    mutable b1 : bool;
    mutable b2 : bool;
    mutable ack1 : bool;
    mutable ack2 : bool;
    mutable veto_sent : bool;
    mutable result : outcome option;
  }

  let create ~b1 ~b2 =
    { b1; b2; ack1 = false; ack2 = false; veto_sent = false; result = None }

  (* In-place re-arm for a new interval: callers keep one sender per machine
     instead of allocating one per interval. *)
  let reset t ~b1 ~b2 =
    t.b1 <- b1;
    t.b2 <- b2;
    t.ack1 <- false;
    t.ack2 <- false;
    t.veto_sent <- false;
    t.result <- None

  let mismatch t = t.ack1 <> t.b1 || t.ack2 <> t.b2

  let act t ~phase =
    match phase with
    | 0 -> t.b1
    | 2 -> t.b2
    | 4 ->
      let veto = mismatch t in
      t.veto_sent <- veto;
      veto
    | 1 | 3 | 5 -> false
    | _ -> invalid_arg "Two_bit.Sender.act: bad phase"

  let observe t ~phase ~activity =
    match phase with
    | 1 -> t.ack1 <- activity
    | 3 -> t.ack2 <- activity
    | 5 -> t.result <- Some (if t.veto_sent || activity then Failure else Success)
    | 0 | 2 | 4 -> ()
    | _ -> invalid_arg "Two_bit.Sender.observe: bad phase"

  let outcome t = t.result
  let vetoed t = t.veto_sent
end

module Receiver = struct
  type t = {
    mutable act1 : bool;
    mutable act2 : bool;
    mutable veto_seen : bool;
    mutable done_ : bool;
  }

  let create () = { act1 = false; act2 = false; veto_seen = false; done_ = false }

  let act t ~phase =
    match phase with
    | 1 -> t.act1
    | 3 -> t.act2
    | 5 -> t.veto_seen
    | 0 | 2 | 4 -> false
    | _ -> invalid_arg "Two_bit.Receiver.act: bad phase"

  let observe t ~phase ~activity =
    match phase with
    | 0 -> t.act1 <- activity
    | 2 -> t.act2 <- activity
    | 4 ->
      t.veto_seen <- activity;
      t.done_ <- true
    | 1 | 3 | 5 -> ()
    | _ -> invalid_arg "Two_bit.Receiver.observe: bad phase"

  let outcome t : (outcome * (bool * bool)) option =
    if not t.done_ then None
    else if t.veto_seen then Some (Failure, (t.act1, t.act2))
    else Some (Success, (t.act1, t.act2))

  (* Flat accessors for the engine hot path: everything [outcome] reports,
     without boxing an option of tuples per poll. *)
  let finished t = t.done_
  let veto_seen t = t.veto_seen
  let bit1 t = t.act1
  let bit2 t = t.act2

  let reset t =
    t.act1 <- false;
    t.act2 <- false;
    t.veto_seen <- false;
    t.done_ <- false
end

module Blocker = struct
  type t = { mutable saw_data : bool }

  let create () = { saw_data = false }
  let reset t = t.saw_data <- false

  let act t ~phase =
    match phase with
    | 4 | 5 -> t.saw_data
    | 0 | 1 | 2 | 3 -> false
    | _ -> invalid_arg "Two_bit.Blocker.act: bad phase"

  let observe t ~phase ~activity =
    match phase with
    | 0 | 2 -> if activity then t.saw_data <- true
    | 1 | 3 | 4 | 5 -> ()
    | _ -> invalid_arg "Two_bit.Blocker.observe: bad phase"

  let saw_data t = t.saw_data
end
