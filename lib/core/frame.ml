type t =
  | Source of bool
  | Commit of { index : int; value : bool }
  | Heard of { index : int; value : bool; cause : int * int }

type codec = { msg_len : int; coord_step : float; index_bits : int; coord_bits : int; max_delta : int }

let bits_for n = max 1 (int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0)))

let codec ~msg_len ~coord_range ~coord_step =
  assert (msg_len > 0 && coord_range > 0.0 && coord_step > 0.0);
  let max_delta = int_of_float (ceil (coord_range /. coord_step)) in
  {
    msg_len;
    coord_step;
    index_bits = bits_for msg_len;
    coord_bits = bits_for ((2 * max_delta) + 1);
    max_delta;
  }

let index_bits c = c.index_bits
let coord_bits c = c.coord_bits

let snap c (p : Point.t) =
  ( int_of_float (Float.round (p.x /. c.coord_step)),
    int_of_float (Float.round (p.y /. c.coord_step)) )

let lattice_point c (kx, ky) =
  Point.make (float_of_int kx *. c.coord_step) (float_of_int ky *. c.coord_step)

let encode_delta c d =
  let clamped = max (-c.max_delta) (min c.max_delta d) in
  clamped + c.max_delta

let decode_delta c e = e - c.max_delta

let tag = function
  | Source _ -> (false, false)
  | Commit _ -> (false, true)
  | Heard _ -> (true, false)

(* Frames are padded to EVEN length (one trailing 1-bit on odd payloads).
   The 1Hop stream can only reject a silent interval as "no exchange"
   when the expected stream position has an even index (its parity blip
   is due); at odd positions, a slot owner with a drained queue that
   simply blocks its slot is indistinguishable from a transmitted
   (parity=0, data=0) pair and injects a spurious 0-bit, misaligning
   every later frame.  Even frame lengths keep the queue total — hence
   every drain position — even, so the hazardous case never arises. *)
let padded len = len + (len land 1)

let pad_to_even v = if Bitvec.length v land 1 = 1 then Bitvec.concat [ v; Bitvec.of_list [ true ] ] else v

let encode c frame =
  let b0, b1 = tag frame in
  pad_to_even
    (match frame with
    | Source value -> Bitvec.of_list [ b0; b1; value ]
    | Commit { index; value } ->
      Bitvec.concat
        [ Bitvec.of_list [ b0; b1 ]; Bitvec.of_int ~width:c.index_bits index;
          Bitvec.of_list [ value ] ]
    | Heard { index; value; cause = dx, dy } ->
      Bitvec.concat
        [
          Bitvec.of_list [ b0; b1 ];
          Bitvec.of_int ~width:c.index_bits index;
          Bitvec.of_list [ value ];
          Bitvec.of_int ~width:c.coord_bits (encode_delta c dx);
          Bitvec.of_int ~width:c.coord_bits (encode_delta c dy);
        ])

let base_length_from_tag c = function
  | false, false -> Some 3
  | false, true -> Some (3 + c.index_bits)
  | true, false -> Some (3 + c.index_bits + (2 * c.coord_bits))
  | true, true -> None

let length_from_tag c tag = Option.map padded (base_length_from_tag c tag)

let decode c bits =
  if Bitvec.length bits < 3 then None
  else begin
    let b0 = Bitvec.get bits 0 and b1 = Bitvec.get bits 1 in
    match (base_length_from_tag c (b0, b1), Bitvec.length bits) with
    | Some base, actual
      when padded base = actual && (base = actual || Bitvec.get bits (actual - 1)) ->
      if not (b0 || b1) then Some (Source (Bitvec.get bits 2))
      else begin
        let index = Bitvec.to_int (Bitvec.sub bits ~pos:2 ~len:c.index_bits) in
        if index >= c.msg_len then None
        else begin
          let value = Bitvec.get bits (2 + c.index_bits) in
          if b1 then Some (Commit { index; value })
          else begin
            let off = 3 + c.index_bits in
            let dx = Bitvec.to_int (Bitvec.sub bits ~pos:off ~len:c.coord_bits) in
            let dy = Bitvec.to_int (Bitvec.sub bits ~pos:(off + c.coord_bits) ~len:c.coord_bits) in
            Some
              (Heard { index; value; cause = (decode_delta c dx, decode_delta c dy) })
          end
        end
      end
    | _ -> None
  end
