(* --- CPA over the radio engine ---------------------------------------- *)

type config = {
  tolerance : int;
  repeats : int;
  conflict_factor : float;
  slot_rounds : int;
}

let default_config ~tolerance =
  { tolerance; repeats = 3; conflict_factor = 3.0; slot_rounds = 6 }

type state = {
  my_slot : int;
  is_liar : bool;
  peer_by_slot : Node.id option array;  (** listening slot -> decodable peer *)
  mutable committed : Bitvec.t option;
  mutable sent : int;
  mutable packet : Msg.t Engine.action;
      (** the [Transmit] action, allocated once at commitment; [Silent]
          until then *)
  mutable vouches : (string * Node.id list) list;
      (** candidate value -> distinct vouching neighbours *)
}

type ctx = {
  config : config;
  topology : Topology.t;
  schedule : Schedule.t;
  source : Node.id;
  states : (Node.id, state) Hashtbl.t;
}

let make_ctx config ~topology ~source =
  let schedule =
    if Topology.is_geometric topology then begin
      let conflict_range = config.conflict_factor *. Topology.rx_reach topology in
      Schedule.for_nodes topology ~conflict_range ~source
    end
    else Schedule.for_graph topology ~source
  in
  { config; topology; schedule; source; states = Hashtbl.create 64 }

let schedule ctx = ctx.schedule
let cycle ctx = Schedule.cycle ctx.schedule
let cycle_rounds ctx = cycle ctx * ctx.config.slot_rounds
(* Derived from the states instead of a counter the machines would bump:
   commits can land on different engine tiles in the same round, and a
   shared increment would race.  The count includes construction-time
   commitments (source, liars) the old counter skipped — a constant offset
   the stall detector, which only watches for change, cannot see.  The fold
   is a commutative count, so table order does not matter. *)
let progress ctx =
  Hashtbl.fold (fun _ s acc -> if s.committed <> None then acc + 1 else acc) ctx.states 0

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

(* CPA assumes authenticated single-hop channels.  Over the radio that
   authentication is positional: each slot of the TDMA cycle has at most
   one owner among any receiver's decodable neighbours (both schedulers
   guarantee it — two decode neighbours of the same node are within two
   hops of each other, hence conflict), so a clear packet in slot [s] can
   only have come from the receiver's unique slot-[s] neighbour.  A
   Byzantine node can therefore lie about its own commitment but cannot
   impersonate anyone else, which is exactly CPA's fault model. *)
let machine ctx id role =
  let peer_by_slot = Array.make (cycle ctx) None in
  Array.iter
    (fun p ->
      let slot = Schedule.slot_of ctx.schedule p in
      if peer_by_slot.(slot) = None then peer_by_slot.(slot) <- Some p)
    (Topology.rx ctx.topology).(id);
  let s =
    {
      my_slot = Schedule.slot_of ctx.schedule id;
      is_liar = (match role with Liar _ -> true | Source _ | Relay -> false);
      peer_by_slot;
      committed = (match role with Source m | Liar m -> Some m | Relay -> None);
      sent = 0;
      packet = Engine.Silent;
      vouches = [];
    }
  in
  (match s.committed with
  | Some m -> s.packet <- Engine.Transmit (Msg.Packet m)
  | None -> ());
  Hashtbl.replace ctx.states id s;
  let slot_rounds = ctx.config.slot_rounds in
  let cyc = cycle ctx in
  let repeats = ctx.config.repeats in
  let commit value =
    if s.committed = None then begin
      s.committed <- Some value;
      s.packet <- Engine.Transmit (Msg.Packet value)
    end
  in
  let vouch voucher value =
    let key = Bitvec.to_string value in
    let entry = match List.assoc_opt key s.vouches with Some e -> e | None -> [] in
    if not (List.mem voucher entry) then begin
      let entry = voucher :: entry in
      s.vouches <- (key, entry) :: List.remove_assoc key s.vouches;
      if List.length entry >= ctx.config.tolerance + 1 then commit value
    end
  in
  let act round =
    match s.packet with
    | Engine.Silent -> Engine.Silent
    | Engine.Transmit _ as tx ->
      if
        round mod slot_rounds = 0
        && round / slot_rounds mod cyc = s.my_slot
        && s.sent < repeats
      then begin
        s.sent <- s.sent + 1;
        tx
      end
      else Engine.Silent
  in
  let on_clear round value =
    if (not s.is_liar) && s.committed = None && round mod slot_rounds = 0 then begin
      let slot = round / slot_rounds mod cyc in
      (* Attribute by slot ownership; a packet in a slot none of my
         decodable neighbours owns is spoofed air and carries no
         authentication, so it is dropped. *)
      match s.peer_by_slot.(slot) with
      | Some p when p = ctx.source -> commit value
      | Some p -> vouch p value
      | None -> ()
    end
  in
  let observe round obs =
    match obs with
    | Channel.Clear (Msg.Packet value) -> on_clear round value
    | Channel.Clear Msg.Blip | Channel.Silence | Channel.Busy -> ()
  in
  let observe_packed round code slots =
    if Channel.Packed.is_clear code then begin
      match slots.Engine.payloads.(Channel.Packed.slot code) with
      | Msg.Packet value -> on_clear round value
      | Msg.Blip -> ()
    end
  in
  (* Wakeup contract, mirroring Epidemic: an uncommitted node has nothing
     scheduled (receptions always arrive through the engine's touched set,
     which re-queries the contract afterwards); a committed one wakes at
     the first round of each of its own slots until the repeat budget is
     spent, then never again. *)
  let next_active round =
    match s.committed with
    | None -> max_int
    | Some _ ->
      if s.sent >= repeats then max_int
      else begin
        let q = (round + slot_rounds - 1) / slot_rounds in
        let j = q + ((((s.my_slot - q) mod cyc) + cyc) mod cyc) in
        j * slot_rounds
      end
  in
  {
    Engine.act;
    observe;
    observe_packed = Some observe_packed;
    delivered = (fun () -> s.committed);
    next_active;
  }

(* --- synchronous reference baseline ----------------------------------- *)

module Reference = struct
  type config = { radius : float; tolerance : int }
  type role = Source | Honest | Liar of Bitvec.t

  type result = {
    rounds : int;
    committed : Bitvec.t option array;
    messages : int;
  }

  (* Evidence a node holds about one candidate value. *)
  type vouch = { voucher : Node.id; value : Bitvec.t }

  let run config ~topology ~source ~message ~(roles : role array) ~max_rounds =
    let n = Topology.size topology in
    if Array.length roles <> n then
      invalid_arg "Certified_propagation.Reference.run: roles size mismatch";
    let committed = Array.make n None in
    let vouches : vouch list array = Array.make n [] in
    let announce_queue = Queue.create () in
    let messages = ref 0 in
    let commit i value round_commits =
      if committed.(i) = None then begin
        committed.(i) <- Some value;
        Queue.add i round_commits
      end
    in
    (* Round 0: the source announces; liars are born "committed" to their
       fake value and announce alongside it. *)
    let pending = Queue.create () in
    committed.(source) <- Some message;
    Queue.add source pending;
    Array.iteri
      (fun i (role : role) ->
        match role with
        | Liar fake ->
          committed.(i) <- Some fake;
          Queue.add i pending
        | Source | Honest -> ())
      roles;
    let quorum_commit i =
      if committed.(i) = None then begin
        (* Group the vouches by value and apply the common-neighbourhood
           quorum rule. *)
        let values =
          List.sort_uniq String.compare (List.map (fun v -> Bitvec.to_string v.value) vouches.(i))
        in
        let decide value_str =
          let items =
            List.filter_map
              (fun v ->
                if Bitvec.to_string v.value = value_str then
                  Some
                    {
                      Voting.origin = (v.voucher, 0);
                      value = true;
                      points = [ Topology.position topology v.voucher ];
                    }
                else None)
              vouches.(i)
          in
          Voting.quorum ~radius:config.radius ~need:(config.tolerance + 1) ~value:true items
        in
        match List.find_opt decide values with
        | Some value_str -> Some (Bitvec.of_string value_str)
        | None -> None
      end
      else None
    in
    let round = ref 0 in
    let continue = ref true in
    while !continue && !round < max_rounds do
      (* Deliver every queued announcement reliably to all decode
         neighbours, attributed to its true sender. *)
      Queue.transfer pending announce_queue;
      let round_commits = Queue.create () in
      let any_message = not (Queue.is_empty announce_queue) in
      while not (Queue.is_empty announce_queue) do
        let sender = Queue.pop announce_queue in
        match committed.(sender) with
        | None -> ()
        | Some value ->
          incr messages;
          Array.iter
            (fun receiver ->
              (* Direct reception from the source is authenticated by the
                 model itself. *)
              if receiver <> source then begin
                if sender = source then commit receiver value round_commits
                else begin
                  let is_liar = match roles.(receiver) with Liar _ -> true | _ -> false in
                  if not is_liar then begin
                    vouches.(receiver) <- { voucher = sender; value } :: vouches.(receiver);
                    match quorum_commit receiver with
                    | Some decided -> commit receiver decided round_commits
                    | None -> ()
                  end
                end
              end)
            (Topology.rx topology).(sender)
      done;
      Queue.transfer round_commits pending;
      incr round;
      if (not any_message) && Queue.is_empty pending then continue := false
    done;
    { rounds = !round; committed; messages = !messages }
end
