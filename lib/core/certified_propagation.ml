type config = { radius : float; tolerance : int }
type role = Source | Honest | Liar of Bitvec.t

type result = {
  rounds : int;
  committed : Bitvec.t option array;
  messages : int;
}

(* Evidence a node holds about one candidate value. *)
type vouch = { voucher : Node.id; value : Bitvec.t }

let run config ~topology ~source ~message ~roles ~max_rounds =
  let n = Topology.size topology in
  if Array.length roles <> n then invalid_arg "Certified_propagation.run: roles size mismatch";
  let committed = Array.make n None in
  let vouches : vouch list array = Array.make n [] in
  let announce_queue = Queue.create () in
  let messages = ref 0 in
  let commit i value round_commits =
    if committed.(i) = None then begin
      committed.(i) <- Some value;
      Queue.add i round_commits
    end
  in
  (* Round 0: the source announces; liars are born "committed" to their
     fake value and announce alongside it. *)
  let pending = Queue.create () in
  committed.(source) <- Some message;
  Queue.add source pending;
  Array.iteri
    (fun i role ->
      match role with
      | Liar fake ->
        committed.(i) <- Some fake;
        Queue.add i pending
      | Source | Honest -> ())
    roles;
  let quorum_commit i =
    if committed.(i) = None then begin
      (* Group the vouches by value and apply the common-neighbourhood
         quorum rule. *)
      let values =
        List.sort_uniq String.compare (List.map (fun v -> Bitvec.to_string v.value) vouches.(i))
      in
      let decide value_str =
        let items =
          List.filter_map
            (fun v ->
              if Bitvec.to_string v.value = value_str then
                Some
                  {
                    Voting.origin = (v.voucher, 0);
                    value = true;
                    points = [ Topology.position topology v.voucher ];
                  }
              else None)
            vouches.(i)
        in
        Voting.quorum ~radius:config.radius ~need:(config.tolerance + 1) ~value:true items
      in
      match List.find_opt decide values with
      | Some value_str -> Some (Bitvec.of_string value_str)
      | None -> None
    end
    else None
  in
  let round = ref 0 in
  let continue = ref true in
  while !continue && !round < max_rounds do
    (* Deliver every queued announcement reliably to all decode
       neighbours, attributed to its true sender. *)
    Queue.transfer pending announce_queue;
    let round_commits = Queue.create () in
    let any_message = not (Queue.is_empty announce_queue) in
    while not (Queue.is_empty announce_queue) do
      let sender = Queue.pop announce_queue in
      match committed.(sender) with
      | None -> ()
      | Some value ->
        incr messages;
        Array.iter
          (fun receiver ->
            (* Direct reception from the source is authenticated by the
               model itself. *)
            if receiver <> source then begin
              if sender = source then commit receiver value round_commits
              else begin
                let is_liar = match roles.(receiver) with Liar _ -> true | _ -> false in
                if not is_liar then begin
                  vouches.(receiver) <- { voucher = sender; value } :: vouches.(receiver);
                  match quorum_commit receiver with
                  | Some decided -> commit receiver decided round_commits
                  | None -> ()
                end
              end
            end)
          topology.Topology.rx.(sender)
    done;
    Queue.transfer round_commits pending;
    incr round;
    if (not any_message) && Queue.is_empty pending then continue := false
  done;
  { rounds = !round; committed; messages = !messages }
