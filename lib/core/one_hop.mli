(** The 1Hop-Protocol (Section 4, Level 1): a reliable, authenticated bit
    stream across one hop.

    Each scheduled interval, the sender runs one 2Bit exchange carrying
    [⟨parity, data⟩]: an alternating control bit plus one payload bit.  The
    parity bit (starting at 1) lets receivers tell a retransmission of the
    current bit from the next bit of the stream, and prevents sender
    silence from being read as a ⟨0,0⟩ transmission.  A failed 2Bit
    exchange is simply retried — so a Byzantine device must spend at least
    one broadcast per 6-round interval of delay it causes (the energy
    property of Theorem 2).

    The stream is infinite: framing (message boundaries) is handled by the
    layer above, and parity alternates with the global bit index so that
    frame boundaries cannot desynchronise sender and receivers.

    [Sender.skip_to] implements the square catch-up rule described in
    DESIGN.md: a meta-node member that detects (via parity activity plus
    its own committed bits) that the rest of its square has advanced moves
    its pointer forward rather than deadlocking the square. *)

val parity_of_index : int -> bool
(** Parity of the [i]-th stream bit (0-based): [true] for even [i]. *)

module Sender : sig
  type t

  val create : unit -> t
  val push : t -> bool -> unit
  (** Append a bit to the outgoing stream. *)

  val has_current : t -> bool
  (** Is there an unacknowledged bit to (re)transmit? *)

  val current : t -> bool * bool
  (** [(parity, data)] of the current bit; requires [has_current]. *)

  val current_parity : t -> bool
  val current_data : t -> bool
  (** Tuple-free projections of [current] for per-interval callers. *)

  val advance : t -> unit
  (** The current bit's 2Bit exchange succeeded. *)

  val skip_to : t -> int -> unit
  (** Move the send pointer forward to index [n] (never backwards). *)

  val sent : t -> int
  (** Number of stream bits confirmed so far. *)

  val total : t -> int
  (** Number of stream bits pushed so far. *)
end

module Receiver : sig
  type t

  val create : unit -> t

  val push_two_bit : t -> parity:bool -> data:bool -> unit
  (** Feed one successful 2Bit result; retransmissions (stale parity) are
      ignored. *)

  val received : t -> int
  val get : t -> int -> bool
  val bits : t -> Bitvec.t
  (** The whole stream received so far. *)

  val prefix : t -> int -> Bitvec.t
  (** First [n] bits; requires [received >= n]. *)
end
