let available_cores () = Domain.recommended_domain_count ()

(* Work-stealing-free static pool: workers pull task indices from a shared
   atomic counter and write results into per-index slots, so the output
   order is the input order no matter which domain ran which task.  On a
   task exception the first failure is kept, the remaining tasks are
   abandoned, and the exception is re-raised after every domain joined. *)
let map_array ~jobs f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f xs.(i) with
        | v -> results.(i) <- Some v
        | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
        worker ()
      end
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some e -> raise e
    | None ->
      Array.map (function Some v -> v | None -> invalid_arg "Pool.map_array: missing result") results
  end

let map_list ~jobs f xs = Array.to_list (map_array ~jobs f (Array.of_list xs))
