let available_cores () = Domain.recommended_domain_count ()

exception Nondeterministic of { index : int; divergent : int }

let () =
  Printexc.register_printer (function
    | Nondeterministic { index; divergent } ->
      Some
        (Printf.sprintf
           "Pool.Nondeterministic { index = %d; divergent = %d } — parallel and sequential runs \
            of the same task array disagree; a task shares mutable state"
           index divergent)
    | _ -> None)

type worker_stat = {
  domain_index : int;
  tasks_run : int;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  top_heap_words : int;
}

(* Structural digest of one task result, used by [~sanitize] to compare the
   parallel run against a sequential re-run.  [Hashtbl.hash_param] with a
   deep meaningful/total budget so large result records (summaries, rows)
   do not collide on a shallow prefix. *)
let digest v = Hashtbl.hash_param 256 256 v

(* Work-stealing-free static pool: workers pull task indices from a shared
   atomic counter and write results into per-index slots, so the output
   order is the input order no matter which domain ran which task.  On a
   task exception the first failure is kept with its backtrace, the
   remaining tasks are abandoned, and the exception is re-raised from the
   original raise site after every domain joined. *)
let run_parallel ~jobs f xs =
  let n = Array.length xs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let stats =
    Array.init jobs (fun w ->
        {
          domain_index = w;
          tasks_run = 0;
          minor_words = 0.0;
          major_words = 0.0;
          promoted_words = 0.0;
          top_heap_words = 0;
        })
  in
  (* Each worker owns slot [w] of [stats] and the result slots of the task
     indices it drew — disjoint cells, never two domains on one cell. *)
  let worker w =
    let g0 = Gc.quick_stat () in
    let ran = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f xs.(i) with
        | v ->
          results.(i) <- Some v;
          incr ran
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        loop ()
      end
    in
    loop ();
    let g1 = Gc.quick_stat () in
    stats.(w) <-
      {
        domain_index = w;
        tasks_run = !ran;
        minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        (* Process-lifetime major-heap high-water mark as this domain saw
           it when it finished — a peak, not a delta (heap space is shared
           across domains, so no per-domain subtraction is meaningful). *)
        top_heap_words = g1.Gc.top_heap_words;
      }
  in
  let spawned = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
  worker 0;
  List.iter Domain.join spawned;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    ( Array.map
        (function Some v -> v | None -> invalid_arg "Pool.map_array: missing result")
        results,
      Array.to_list stats )

let run_sequential f xs =
  let g0 = Gc.quick_stat () in
  let results = Array.map f xs in
  let g1 = Gc.quick_stat () in
  ( results,
    [
      {
        domain_index = 0;
        tasks_run = Array.length xs;
        minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        top_heap_words = g1.Gc.top_heap_words;
      };
    ] )

let map_array_stats ?(sanitize = false) ~jobs f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then run_sequential f xs
  else begin
    let results, stats = run_parallel ~jobs f xs in
    if sanitize then begin
      (* Dynamic counterpart of Share_lint: re-run the whole task array on
         the calling domain and structurally diff the results.  A task that
         raced on shared mutable state either produced a different value in
         parallel, or left residue that skews the sequential re-run — both
         diverge. *)
      let sequential, _ = run_sequential f xs in
      let bad = ref [] in
      for i = n - 1 downto 0 do
        if digest results.(i) <> digest sequential.(i) then bad := i :: !bad
      done;
      match !bad with
      | [] -> ()
      | first :: _ -> raise (Nondeterministic { index = first; divergent = List.length !bad })
    end;
    (results, stats)
  end

let map_array ?sanitize ~jobs f xs = fst (map_array_stats ?sanitize ~jobs f xs)
let map_list ?sanitize ~jobs f xs = Array.to_list (map_array ?sanitize ~jobs f (Array.of_list xs))
