type options = {
  scale : Experiment.scale;
  jobs : int;
  only : string list;  (* empty = every registered job *)
  json_path : string option;
}

let default_options () =
  { scale = Figures.scale_of_env (); jobs = 1; only = []; json_path = None }

let selection only =
  match only with
  | [] -> Ok Registry.all
  | ids ->
    let missing = List.filter (fun id -> Registry.find id = None) ids in
    if missing <> [] then
      Error
        (Printf.sprintf "unknown experiment id%s: %s (known: %s)"
           (if List.length missing > 1 then "s" else "")
           (String.concat ", " missing)
           (String.concat " " Registry.ids))
    else
      (* Keep the canonical registry order, not the order given. *)
      Ok
        (List.filter
           (fun job ->
             List.exists
               (fun id -> String.lowercase_ascii id = job.Experiment.id)
               ids)
           Registry.all)

let scale_name = function Experiment.Quick -> "quick" | Experiment.Paper -> "paper"

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty json);
  close_out oc

let run options =
  match selection options.only with
  | Error message -> Error message
  | Ok selected ->
    Printf.printf "securebit benchmark harness — scale: %s, jobs: %d\n\n%!"
      (scale_name options.scale) options.jobs;
    let t0 = Unix.gettimeofday () in
    let outcomes =
      List.map
        (fun job ->
          let outcome = Runner.run_job ~jobs:options.jobs ~scale:options.scale job in
          print_string (Runner.render outcome);
          Printf.printf "[%s: %.1fs, elapsed %.1fs]\n\n%!" job.Experiment.id
            outcome.Runner.wall_seconds
            (Unix.gettimeofday () -. t0);
          outcome)
        selected
    in
    Option.iter
      (fun path ->
        write_json path (Runner.results_json ~scale:options.scale ~jobs:options.jobs outcomes);
        Printf.printf "results written to %s\n%!" path)
      options.json_path;
    Ok outcomes
