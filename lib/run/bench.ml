type options = {
  scale : Experiment.scale;
  jobs : int;
  only : string list;  (* empty = every registered job *)
  json_path : string option;
  profile : bool;
  sanitize : bool;
}

let default_options () =
  {
    scale = Figures.scale_of_env ();
    jobs = 1;
    only = [];
    json_path = None;
    profile = false;
    sanitize = false;
  }

let selection only =
  match only with
  | [] -> Ok Registry.all
  | ids ->
    let missing = List.filter (fun id -> Registry.find id = None) ids in
    if missing <> [] then
      Error
        (Printf.sprintf "unknown experiment id%s: %s (known: %s)"
           (if List.length missing > 1 then "s" else "")
           (String.concat ", " missing)
           (String.concat " " Registry.ids))
    else
      (* Keep the canonical registry order, not the order given. *)
      Ok
        (List.filter
           (fun job ->
             List.exists
               (fun id -> String.lowercase_ascii id = job.Experiment.id)
               ids)
           Registry.all)

let scale_name = function Experiment.Quick -> "quick" | Experiment.Paper -> "paper"

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty json);
  close_out oc

(* --- wall-time comparison ("bench compare") ---------------------------- *)

let regression_tolerance = 0.20
(** A run counts as regressed when it is more than this fraction slower
    than the baseline. *)

let noise_floor = 0.05
(** Experiments where both sides run faster than this (seconds) are too
    short to time reliably; they are reported but never flagged. *)

type comparison = {
  cmp_id : string;
  base_seconds : float option;  (** [None]: experiment absent from the baseline *)
  current_seconds : float option;  (** [None]: experiment absent from the current run *)
}

let speedup c =
  match (c.base_seconds, c.current_seconds) with
  | Some b, Some cur when cur > 0.0 -> Some (b /. cur)
  | Some _, Some _ | Some _, None | None, Some _ | None, None -> None

let regressed ?(tolerance = regression_tolerance) c =
  match (c.base_seconds, c.current_seconds) with
  | Some b, Some cur ->
    (b >= noise_floor || cur >= noise_floor) && cur > b *. (1.0 +. tolerance)
  | Some _, None | None, Some _ | None, None -> false

let wall_times_of_results json =
  match Json.member "experiments" json |> Option.map Json.to_list_opt with
  | Some (Some experiments) ->
    let entry e =
      match
        ( Option.bind (Json.member "id" e) Json.to_string_opt,
          Option.bind (Json.member "wall_seconds" e) Json.to_float_opt )
      with
      | Some id, Some seconds -> Ok (id, seconds)
      | Some id, None -> Error (Printf.sprintf "experiment %s has no wall_seconds" id)
      | None, _ -> Error "experiment entry without an id"
    in
    List.fold_left
      (fun acc e ->
        match (acc, entry e) with
        | Ok entries, Ok entry -> Ok (entry :: entries)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) experiments
    |> Result.map List.rev
  | Some None | None -> Error "no \"experiments\" list (not a securebit-bench results file?)"

let load_wall_times path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
    match Json.of_string contents with
    | Ok json -> wall_times_of_results json
    | Error message -> Error (Printf.sprintf "%s: %s" path message))
  | exception Sys_error message -> Error message

(* Pair the two runs up, keeping the current run's order; baseline-only
   experiments are appended so nothing disappears silently. *)
let compare_wall_times ~base ~current =
  let of_current (id, seconds) =
    { cmp_id = id; base_seconds = List.assoc_opt id base; current_seconds = Some seconds }
  in
  let removed (id, seconds) =
    if List.mem_assoc id current then None
    else Some { cmp_id = id; base_seconds = Some seconds; current_seconds = None }
  in
  List.map of_current current @ List.filter_map removed base

let render_comparison ?(tolerance = regression_tolerance) comparisons =
  let table =
    Table.create ~title:"wall-time comparison vs baseline"
      ~columns:[ "experiment"; "base (s)"; "current (s)"; "speedup"; "verdict" ]
  in
  let cell = function Some seconds -> Table.cell_f ~decimals:3 seconds | None -> "-" in
  List.iter
    (fun c ->
      let verdict =
        match (c.base_seconds, c.current_seconds) with
        | None, _ -> "new"
        | _, None -> "removed"
        | Some _, Some _ when regressed ~tolerance c ->
          Printf.sprintf "REGRESSED (>%.0f%%)" (100.0 *. tolerance)
        | Some b, Some cur when b < noise_floor && cur < noise_floor -> "below noise floor"
        | Some _, Some _ -> "ok"
      in
      Table.add_row table
        [
          c.cmp_id;
          cell c.base_seconds;
          cell c.current_seconds;
          (match speedup c with Some s -> Printf.sprintf "%.2fx" s | None -> "-");
          verdict;
        ])
    comparisons;
  let total side =
    List.fold_left (fun acc c -> acc +. Option.value ~default:0.0 (side c)) 0.0 comparisons
  in
  let base_total = total (fun c -> c.base_seconds) in
  let current_total = total (fun c -> c.current_seconds) in
  Table.add_row table
    [
      "total";
      Table.cell_f ~decimals:3 base_total;
      Table.cell_f ~decimals:3 current_total;
      (if current_total > 0.0 then Printf.sprintf "%.2fx" (base_total /. current_total) else "-");
      "";
    ];
  Table.render table

let regressions ?tolerance comparisons = List.filter (regressed ?tolerance) comparisons

(* Shared driver for the two compare entry points: report text plus whether
   anything regressed (callers turn that into a non-zero exit). *)
let compare_against ?tolerance ~base current =
  match load_wall_times base with
  | Error message -> Error (Printf.sprintf "baseline %s: %s" base message)
  | Ok base_times ->
    let comparisons = compare_wall_times ~base:base_times ~current in
    let regressed = regressions ?tolerance comparisons in
    let report =
      render_comparison ?tolerance comparisons
      ^
      match regressed with
      | [] -> "no wall-time regressions\n"
      | some ->
        Printf.sprintf "%d experiment(s) regressed: %s\n" (List.length some)
          (String.concat ", " (List.map (fun c -> c.cmp_id) some))
    in
    Ok (report, regressed <> [])

let compare_files ?tolerance ~base ~current () =
  match load_wall_times current with
  | Error message -> Error (Printf.sprintf "current %s: %s" current message)
  | Ok current_times -> compare_against ?tolerance ~base current_times

let compare_outcomes ?tolerance ~base outcomes =
  compare_against ?tolerance ~base
    (List.map (fun o -> (o.Runner.job.Experiment.id, o.Runner.wall_seconds)) outcomes)

let run options =
  match selection options.only with
  | Error message -> Error message
  | Ok selected ->
    Printf.printf "securebit benchmark harness — scale: %s, jobs: %d\n\n%!"
      (scale_name options.scale) options.jobs;
    let t0 = Unix.gettimeofday () in
    let outcomes =
      List.map
        (fun job ->
          let outcome =
            Runner.run_job ~jobs:options.jobs ~profile:options.profile
              ~sanitize:options.sanitize ~scale:options.scale job
          in
          print_string (Runner.render outcome);
          Option.iter
            (fun (p : Runner.profile) ->
              Printf.printf "[%s profile: %d rounds, %.0f rounds/s, %.1fM minor words]\n"
                job.Experiment.id p.Runner.rounds_simulated p.Runner.rounds_per_second
                (p.Runner.minor_words /. 1e6))
            outcome.Runner.profile;
          Printf.printf "[%s: %.1fs, elapsed %.1fs]\n\n%!" job.Experiment.id
            outcome.Runner.wall_seconds
            (Unix.gettimeofday () -. t0);
          outcome)
        selected
    in
    Option.iter
      (fun path ->
        write_json path (Runner.results_json ~scale:options.scale ~jobs:options.jobs outcomes);
        Printf.printf "results written to %s\n%!" path)
      options.json_path;
    Ok outcomes
