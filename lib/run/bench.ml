type options = {
  scale : Experiment.scale;
  jobs : int;
  only : string list;  (* empty = every registered job *)
  json_path : string option;
  profile : bool;
  sanitize : bool;
}

let default_options () =
  {
    scale = Figures.scale_of_env ();
    jobs = 1;
    only = [];
    json_path = None;
    profile = false;
    sanitize = false;
  }

let selection only =
  match only with
  | [] -> Ok Registry.all
  | ids ->
    let missing = List.filter (fun id -> Registry.find id = None) ids in
    if missing <> [] then
      Error
        (Printf.sprintf "unknown experiment id%s: %s (known: %s)"
           (if List.length missing > 1 then "s" else "")
           (String.concat ", " missing)
           (String.concat " " Registry.ids))
    else
      (* Keep the canonical registry order, not the order given. *)
      Ok
        (List.filter
           (fun job ->
             List.exists
               (fun id -> String.lowercase_ascii id = job.Experiment.id)
               ids)
           Registry.all)

let scale_name = function Experiment.Quick -> "quick" | Experiment.Paper -> "paper"

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty json);
  close_out oc

(* --- wall-time comparison ("bench compare") ---------------------------- *)

let regression_tolerance = 0.20
(** A run counts as regressed when it is more than this fraction slower
    than the baseline. *)

let noise_floor = 0.05
(** Experiments where both sides run faster than this (seconds) are too
    short to time reliably; they are reported but never flagged. *)

type comparison = {
  cmp_id : string;
  base_seconds : float option;  (** [None]: experiment absent from the baseline *)
  current_seconds : float option;  (** [None]: experiment absent from the current run *)
}

let speedup c =
  match (c.base_seconds, c.current_seconds) with
  | Some b, Some cur when cur > 0.0 -> Some (b /. cur)
  | Some _, Some _ | Some _, None | None, Some _ | None, None -> None

let regressed ?(tolerance = regression_tolerance) c =
  match (c.base_seconds, c.current_seconds) with
  | Some b, Some cur ->
    (b >= noise_floor || cur >= noise_floor) && cur > b *. (1.0 +. tolerance)
  | Some _, None | None, Some _ | None, None -> false

(* --- peak-memory ceilings ---------------------------------------------- *)

type memory_check = { mem_id : string; ceiling_words : int; peak_words : int option }

let memory_exceeded m =
  match m.peak_words with Some peak -> peak > m.ceiling_words | None -> false

let int_member name json =
  Option.bind (Json.member name json) Json.to_float_opt |> Option.map int_of_float

(* Committed per-experiment ceilings out of a baseline file: optional
   [max_heap_words] per experiment entry, so the baseline can gate memory
   without every historical file growing one. *)
let heap_ceilings_of_results json =
  match Json.member "experiments" json |> Option.map Json.to_list_opt with
  | Some (Some experiments) ->
    List.filter_map
      (fun e ->
        match (Option.bind (Json.member "id" e) Json.to_string_opt, int_member "max_heap_words" e) with
        | Some id, Some ceiling -> Some (id, ceiling)
        | _ -> None)
      experiments
  | Some None | None -> []

(* Measured peaks out of a current run: [profile.top_heap_words], present
   only when the run was profiled. *)
let heap_peaks_of_results json =
  match Json.member "experiments" json |> Option.map Json.to_list_opt with
  | Some (Some experiments) ->
    List.filter_map
      (fun e ->
        match
          ( Option.bind (Json.member "id" e) Json.to_string_opt,
            Option.bind (Json.member "profile" e) (int_member "top_heap_words") )
        with
        | Some id, Some peak -> Some (id, peak)
        | _ -> None)
      experiments
  | Some None | None -> []

(* --- allocation-rate ceilings ------------------------------------------ *)

type alloc_check = {
  al_id : string;
  ceiling_words_per_round : float;
  base_rate : float option;  (* baseline measured words/active-round, if profiled *)
  rate : float option;  (* measured words/active-round; None: not profiled *)
}

let alloc_exceeded a =
  match a.rate with Some rate -> rate > a.ceiling_words_per_round | None -> false

(* Committed per-experiment allocation-rate ceilings: optional
   [max_words_per_active_round] per baseline entry, mirroring the
   [max_heap_words] peak-heap mechanism. *)
let alloc_ceilings_of_results json =
  match Json.member "experiments" json |> Option.map Json.to_list_opt with
  | Some (Some experiments) ->
    List.filter_map
      (fun e ->
        match
          ( Option.bind (Json.member "id" e) Json.to_string_opt,
            Option.bind (Json.member "max_words_per_active_round" e) Json.to_float_opt )
        with
        | Some id, Some ceiling -> Some (id, ceiling)
        | _ -> None)
      experiments
  | Some None | None -> []

(* Measured rates out of a current run: [profile.words_per_active_round],
   present only when the run was profiled. *)
let alloc_rates_of_results json =
  match Json.member "experiments" json |> Option.map Json.to_list_opt with
  | Some (Some experiments) ->
    List.filter_map
      (fun e ->
        match
          ( Option.bind (Json.member "id" e) Json.to_string_opt,
            Option.bind (Json.member "profile" e) (fun p ->
                Option.bind (Json.member "words_per_active_round" p) Json.to_float_opt) )
        with
        | Some id, Some rate -> Some (id, rate)
        | _ -> None)
      experiments
  | Some None | None -> []

let alloc_checks ?(base_rates = []) ~ceilings ~rates () =
  List.map
    (fun (id, ceiling_words_per_round) ->
      {
        al_id = id;
        ceiling_words_per_round;
        base_rate = List.assoc_opt id base_rates;
        rate = List.assoc_opt id rates;
      })
    ceilings

(* Relative words/active-round change vs the baseline's measured rate:
   negative is an allocation-rate win. *)
let alloc_delta a =
  match (a.base_rate, a.rate) with
  | Some b, Some r when b > 0.0 -> Some ((r -. b) /. b)
  | _ -> None

let render_alloc checks =
  if checks = [] then ""
  else begin
    let table =
      Table.create ~title:"allocation-rate ceiling check (minor words / active round)"
        ~columns:
          [ "experiment"; "ceiling (w/round)"; "base (w/round)"; "measured (w/round)"; "delta"; "verdict" ]
    in
    List.iter
      (fun a ->
        Table.add_row table
          [
            a.al_id;
            Table.cell_f ~decimals:0 a.ceiling_words_per_round;
            (match a.base_rate with Some r -> Table.cell_f ~decimals:0 r | None -> "-");
            (match a.rate with Some r -> Table.cell_f ~decimals:0 r | None -> "-");
            (match alloc_delta a with
            | Some d -> Printf.sprintf "%+.1f%%" (100.0 *. d)
            | None -> "-");
            (match a.rate with
            | Some r when r > a.ceiling_words_per_round -> "OVER CEILING"
            | Some _ -> "ok"
            | None -> "not profiled");
          ])
      checks;
    Table.render table
  end

let memory_checks ~ceilings ~peaks =
  List.map
    (fun (id, ceiling_words) ->
      { mem_id = id; ceiling_words; peak_words = List.assoc_opt id peaks })
    ceilings

let render_memory checks =
  if checks = [] then ""
  else begin
    let table =
      Table.create ~title:"peak-heap ceiling check"
        ~columns:[ "experiment"; "ceiling (Mw)"; "peak (Mw)"; "verdict" ]
    in
    List.iter
      (fun m ->
        let mw w = Table.cell_f ~decimals:1 (float_of_int w /. 1e6) in
        Table.add_row table
          [
            m.mem_id;
            mw m.ceiling_words;
            (match m.peak_words with Some p -> mw p | None -> "-");
            (match m.peak_words with
            | Some p when p > m.ceiling_words -> "OVER CEILING"
            | Some _ -> "ok"
            | None -> "not profiled");
          ])
      checks;
    Table.render table
  end

let wall_times_of_results json =
  match Json.member "experiments" json |> Option.map Json.to_list_opt with
  | Some (Some experiments) ->
    let entry e =
      match
        ( Option.bind (Json.member "id" e) Json.to_string_opt,
          Option.bind (Json.member "wall_seconds" e) Json.to_float_opt )
      with
      | Some id, Some seconds -> Ok (id, seconds)
      | Some id, None -> Error (Printf.sprintf "experiment %s has no wall_seconds" id)
      | None, _ -> Error "experiment entry without an id"
    in
    List.fold_left
      (fun acc e ->
        match (acc, entry e) with
        | Ok entries, Ok entry -> Ok (entry :: entries)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) experiments
    |> Result.map List.rev
  | Some None | None -> Error "no \"experiments\" list (not a securebit-bench results file?)"

let load_results path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
    match Json.of_string contents with
    | Ok json -> Ok json
    | Error message -> Error (Printf.sprintf "%s: %s" path message))
  | exception Sys_error message -> Error message

let load_wall_times path = Result.bind (load_results path) wall_times_of_results

(* Pair the two runs up, keeping the current run's order; baseline-only
   experiments are appended so nothing disappears silently. *)
let compare_wall_times ~base ~current =
  let of_current (id, seconds) =
    { cmp_id = id; base_seconds = List.assoc_opt id base; current_seconds = Some seconds }
  in
  let removed (id, seconds) =
    if List.mem_assoc id current then None
    else Some { cmp_id = id; base_seconds = Some seconds; current_seconds = None }
  in
  List.map of_current current @ List.filter_map removed base

let render_comparison ?(tolerance = regression_tolerance) comparisons =
  let table =
    Table.create ~title:"wall-time comparison vs baseline"
      ~columns:[ "experiment"; "base (s)"; "current (s)"; "speedup"; "verdict" ]
  in
  let cell = function Some seconds -> Table.cell_f ~decimals:3 seconds | None -> "-" in
  List.iter
    (fun c ->
      let verdict =
        match (c.base_seconds, c.current_seconds) with
        | None, _ -> "new"
        | _, None -> "removed"
        | Some _, Some _ when regressed ~tolerance c ->
          Printf.sprintf "REGRESSED (>%.0f%%)" (100.0 *. tolerance)
        | Some b, Some cur when b < noise_floor && cur < noise_floor -> "below noise floor"
        | Some _, Some _ -> "ok"
      in
      Table.add_row table
        [
          c.cmp_id;
          cell c.base_seconds;
          cell c.current_seconds;
          (match speedup c with Some s -> Printf.sprintf "%.2fx" s | None -> "-");
          verdict;
        ])
    comparisons;
  let total side =
    List.fold_left (fun acc c -> acc +. Option.value ~default:0.0 (side c)) 0.0 comparisons
  in
  let base_total = total (fun c -> c.base_seconds) in
  let current_total = total (fun c -> c.current_seconds) in
  Table.add_row table
    [
      "total";
      Table.cell_f ~decimals:3 base_total;
      Table.cell_f ~decimals:3 current_total;
      (if current_total > 0.0 then Printf.sprintf "%.2fx" (base_total /. current_total) else "-");
      "";
    ];
  Table.render table

let regressions ?tolerance comparisons = List.filter (regressed ?tolerance) comparisons

(* Shared driver for the two compare entry points: report text plus whether
   anything failed (callers turn that into a non-zero exit).  A compare
   fails on a wall-time regression, a peak-heap ceiling breach, or an
   allocation-rate (words/active-round) ceiling breach; a ceiling the
   current run did not measure (no [--profile]) is reported as a warning,
   never a failure, so unprofiled comparisons still gate wall time
   alone. *)
let compare_against ?tolerance ?(peaks = []) ?(alloc_rates = []) ~base current =
  match load_results base with
  | Error message -> Error (Printf.sprintf "baseline %s: %s" base message)
  | Ok base_json -> (
    match wall_times_of_results base_json with
    | Error message -> Error (Printf.sprintf "baseline %s: %s" base message)
    | Ok base_times ->
      let comparisons = compare_wall_times ~base:base_times ~current in
      let regressed = regressions ?tolerance comparisons in
      let checks = memory_checks ~ceilings:(heap_ceilings_of_results base_json) ~peaks in
      let exceeded = List.filter memory_exceeded checks in
      let unmeasured = List.filter (fun m -> m.peak_words = None) checks in
      let allocs =
        alloc_checks
          ~base_rates:(alloc_rates_of_results base_json)
          ~ceilings:(alloc_ceilings_of_results base_json) ~rates:alloc_rates ()
      in
      let alloc_over = List.filter alloc_exceeded allocs in
      let alloc_unmeasured = List.filter (fun a -> a.rate = None) allocs in
      let names of_what items = String.concat ", " (List.map of_what items) in
      let report =
        render_comparison ?tolerance comparisons
        ^ (match regressed with
          | [] -> "no wall-time regressions\n"
          | some ->
            Printf.sprintf "%d experiment(s) regressed: %s\n" (List.length some)
              (names (fun c -> c.cmp_id) some))
        ^ render_memory checks
        ^ (match exceeded with
          | [] when checks <> [] -> "no peak-heap ceilings exceeded\n"
          | [] -> ""
          | some ->
            Printf.sprintf "%d experiment(s) over peak-heap ceiling: %s\n" (List.length some)
              (names (fun m -> m.mem_id) some))
        ^ (match unmeasured with
          | [] -> ""
          | some ->
            Printf.sprintf
              "warning: %d ceiling(s) not checked (current run lacks --profile data): %s\n"
              (List.length some)
              (names (fun m -> m.mem_id) some))
        ^ render_alloc allocs
        ^ (match alloc_over with
          | [] when allocs <> [] -> "no allocation-rate ceilings exceeded\n"
          | [] -> ""
          | some ->
            Printf.sprintf "%d experiment(s) over words/active-round ceiling: %s\n"
              (List.length some)
              (names (fun a -> a.al_id) some))
        ^
        match alloc_unmeasured with
        | [] -> ""
        | some ->
          Printf.sprintf
            "warning: %d allocation ceiling(s) not checked (current run lacks --profile data): \
             %s\n"
            (List.length some)
            (names (fun a -> a.al_id) some)
      in
      Ok (report, regressed <> [] || exceeded <> [] || alloc_over <> []))

let compare_files ?tolerance ~base ~current () =
  match load_results current with
  | Error message -> Error (Printf.sprintf "current %s: %s" current message)
  | Ok current_json -> (
    match wall_times_of_results current_json with
    | Error message -> Error (Printf.sprintf "current %s: %s" current message)
    | Ok current_times ->
      compare_against ?tolerance
        ~peaks:(heap_peaks_of_results current_json)
        ~alloc_rates:(alloc_rates_of_results current_json)
        ~base current_times)

let compare_outcomes ?tolerance ~base outcomes =
  let profiled of_profile =
    List.filter_map
      (fun o ->
        Option.map
          (fun (p : Runner.profile) -> (o.Runner.job.Experiment.id, of_profile p))
          o.Runner.profile)
      outcomes
  in
  let peaks = profiled (fun p -> p.Runner.top_heap_words) in
  let alloc_rates = profiled (fun p -> p.Runner.words_per_active_round) in
  compare_against ?tolerance ~peaks ~alloc_rates ~base
    (List.map (fun o -> (o.Runner.job.Experiment.id, o.Runner.wall_seconds)) outcomes)

let run options =
  match selection options.only with
  | Error message -> Error message
  | Ok selected ->
    Printf.printf "securebit benchmark harness — scale: %s, jobs: %d\n\n%!"
      (scale_name options.scale) options.jobs;
    let t0 = Unix.gettimeofday () in
    let outcomes =
      List.map
        (fun job ->
          let outcome =
            Runner.run_job ~jobs:options.jobs ~profile:options.profile
              ~sanitize:options.sanitize ~scale:options.scale job
          in
          print_string (Runner.render outcome);
          Option.iter
            (fun (p : Runner.profile) ->
              Printf.printf
                "[%s profile: %d rounds, %.0f rounds/s, %.1fM minor words, %.0f w/active-round]\n"
                job.Experiment.id p.Runner.rounds_simulated p.Runner.rounds_per_second
                (p.Runner.minor_words /. 1e6)
                p.Runner.words_per_active_round)
            outcome.Runner.profile;
          Printf.printf "[%s: %.1fs, elapsed %.1fs]\n\n%!" job.Experiment.id
            outcome.Runner.wall_seconds
            (Unix.gettimeofday () -. t0);
          outcome)
        selected
    in
    Option.iter
      (fun path ->
        write_json path (Runner.results_json ~scale:options.scale ~jobs:options.jobs outcomes);
        Printf.printf "results written to %s\n%!" path)
      options.json_path;
    Ok outcomes
