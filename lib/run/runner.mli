(** Executes declarative {!Experiment.job}s, optionally on a domain pool.

    A job is flattened into independent trials — one per (spec, seed) pair
    of each [Grid] cell, one per [Thunk] — which {!Pool} distributes over
    [jobs] domains; the merge then walks the cells in definition order, so
    tables, fits and notes are byte-identical for every [jobs] value. *)

type profile = {
  minor_words : float;  (** minor-heap words allocated while the job ran *)
  major_words : float;
  promoted_words : float;
  top_heap_words : int;
      (** process-lifetime major-heap high-water mark ({!Gc.quick_stat})
          when the job finished — monotone across the jobs of one run, so
          per-job values compare against a baseline only when both runs
          execute the same jobs in the same order (the registry order);
          [bench compare] gates this against committed ceilings *)
  rounds_simulated : int;  (** engine rounds across the job's Grid trials *)
  rounds_per_second : float;  (** rounds_simulated / wall_seconds *)
  active_rounds : int;
      (** transmission-carrying engine rounds across the job's Grid trials
          (mode-independent — see {!Engine.result}) *)
  words_per_active_round : float;
      (** [minor_words / active_rounds] (0 when no active rounds): the
          hot-loop allocation rate that [bench compare] gates against
          committed [max_words_per_active_round] ceilings *)
  workers : Pool.worker_stat list;
      (** one entry per pool domain: tasks run and exact per-domain
          {!Gc.quick_stat} deltas *)
}
(** Cheap per-job performance counters (top-level fields are
    {!Gc.quick_stat} deltas on the coordinating domain — exact at
    [--jobs 1], coordinator-only above that; [workers] is exact on every
    domain). *)

type outcome = {
  job : Experiment.job;
  scale : Experiment.scale;
  table : Table.t;
  rows : (Experiment.row * Experiment.aggregate list) list;
      (** per table row: the rendered row and, for [Grid] cells, one
          aggregate per spec (empty for [Thunk] rows) *)
  fits : (string * Stats.fit) list;
  notes : string list;
  wall_seconds : float;
  profile : profile option;  (** [Some] iff requested via [run_job ~profile:true] *)
}

val run_job :
  ?jobs:int -> ?profile:bool -> ?sanitize:bool -> scale:Experiment.scale -> Experiment.job -> outcome
(** Execute every trial of the job ([jobs] defaults to 1 = sequential;
    [profile] defaults to false — when set, the outcome carries allocation
    and rounds-per-second counters; [sanitize] defaults to false — when
    set and [jobs > 1], {!Pool.map_array} re-runs the trials sequentially
    and raises {!Pool.Nondeterministic} on any divergence). *)

val render : outcome -> string
(** The ASCII table followed by one line per fit and per note. *)

val stable_json : outcome -> Json.t
(** Everything deterministic about the outcome (no wall time): id, title,
    columns, rows (cells / aggregates / values), fits, notes. *)

val json_of_outcome : outcome -> Json.t
(** {!stable_json} plus [wall_seconds] and, when captured, a ["profile"]
    object (allocation words, rounds simulated, rounds/s).  [bench
    compare] reads only [id] and [wall_seconds], so both extras are
    ignored by baseline comparisons. *)

val results_json : scale:Experiment.scale -> jobs:int -> outcome list -> Json.t
(** The top-level [BENCH_results.json] document ([securebit-bench/1]):
    scale, worker count, total wall time, one entry per experiment. *)
