(** Scale campaign driver (["bench/main.exe scale"], ["securebit scale"]).

    Sweeps node count × target density × adversary mix over two graph
    classes — geometric uniform deployments under a disk radio, and
    synthetic expanders — timing one broadcast per cell on the sharded
    engine.  Each cell runs once cold (deployment + topology build
    included) and [warm] more times on the cold run's cached topology, so
    the cold/warm delta isolates setup cost from the steady-state engine
    rate.  Results can be archived as one labelled JSON file per run plus
    a manifest, and a peak-heap ceiling turns memory growth into a
    failing exit the same way [bench compare] gates the registry. *)

type klass = Scale_sweep.klass = Uniform_radio | Expander_synthetic

val klass_name : klass -> string
val all_classes : klass list

type config = {
  label : string;  (** archive subdirectory and report heading *)
  node_counts : int list;
  densities : float list;  (** target average degree per node count *)
  adversaries : string list;  (** subset of {!known_adversaries} *)
  classes : klass list;
  protocol : Scenario.protocol;
  tiles : int;  (** engine tiles; 1 = the serial sparse loop *)
  seed : int;
  cap : int;  (** engine round cap *)
  warm : int;  (** warm runs per cell after the cold one *)
  message : string;  (** broadcast payload bits *)
  out_dir : string option;  (** archive under [out_dir/label/], if given *)
  mem_ceiling_words : int option;
      (** any run peaking above this many major-heap words fails the
          campaign (reported after the table) *)
  check : bool;
      (** re-run every campaign run on the serial sparse loop and fail
          unless the round traces are byte-identical *)
  dry_run : bool;  (** print the plan and execute nothing *)
}

val default : config
(** A small smoke sweep every machine finishes in seconds per run;
    callers scale node counts up explicitly. *)

val known_adversaries : string list
(** ["honest"; "crash"; "lying"; "jam"]. *)

val faults_of_adversary : string -> Scenario.faults option

type phase = Cold | Warm of int

val phase_name : phase -> string

type cell = { klass : klass; nodes : int; density : float; adversary : string }

type planned = { run_id : string; cell : cell; phase : phase }

val run_id_of : cell -> phase -> string
(** E.g. ["n10000-d4-lying-uniform-cold"]. *)

val spec_of_cell : config -> cell -> Scenario.spec
(** {!Scale_sweep.cell_spec} on a base built from the config — the same
    cell construction the registered S1 experiment uses. *)

val validate : config -> (unit, string) result

val plan : config -> planned list
(** The exact runs {!run} executes, in execution order — the [--dry-run]
    preview prints this list and nothing else, so preview and execution
    cannot disagree. *)

type executed = {
  planned : planned;
  wall_seconds : float;
  rounds : int;
  rounds_per_second : float;
  avg_degree : float;  (** measured, vs the cell's target density *)
  peak_heap_words : int;
      (** process-lifetime major-heap peak after the run — monotone
          across a campaign, so the ceiling gates the maximum *)
  summary : Scenario.summary;
}

val render : executed list -> string

val run : config -> (executed list * bool, string) result
(** Print the plan, execute it (unless [dry_run]), print the table,
    archive if configured.  [Ok (runs, failed)] where [failed] means some
    run peaked over [mem_ceiling_words]; [Error] on bad config or a
    [check] divergence. *)
