(** Shared driver behind `bench/main.exe` and `securebit_cli bench`: select
    registry jobs, execute them (possibly domain-parallel), print each
    table as it completes, and optionally write the JSON results file. *)

type options = {
  scale : Experiment.scale;
  jobs : int;  (** worker domains; 1 = sequential *)
  only : string list;  (** experiment ids to run; empty = all *)
  json_path : string option;  (** where to write the JSON results, if anywhere *)
  profile : bool;
      (** record {!Runner.profile} counters (allocation deltas, rounds/s,
          per-worker GC stats) per job, printed after each table and
          embedded in the JSON; [bench compare] ignores them *)
  sanitize : bool;
      (** re-run each job's trials sequentially after the parallel pass and
          fail on any divergence ({!Pool.Nondeterministic}); the dynamic
          [--jobs N] determinism check *)
}

val default_options : unit -> options
(** Sequential, every job, no JSON, no profiling; scale from
    {!Figures.scale_of_env} (the deprecated [FULL] fallback). *)

val selection : string list -> (Experiment.job list, string) result
(** Resolve ids against {!Registry.all} (canonical order kept); [Error]
    names any unknown ids. *)

val scale_name : Experiment.scale -> string

val run : options -> (Runner.outcome list, string) result
(** Run the selected jobs, printing tables, fits, notes and per-job wall
    times; write [json_path] if given.  [Error] on unknown ids. *)

(** {1 Comparison (["bench compare"])}

    Diffs two [BENCH_results.json] files (or a fresh run against one) and
    reports per-experiment speedups; anything more than
    {!regression_tolerance} slower than the baseline is a regression,
    which callers turn into a non-zero exit so perf regressions fail the
    build.  Baseline entries may also carry a [max_heap_words] peak-heap
    ceiling and/or a [max_words_per_active_round] allocation-rate ceiling;
    when the current run was profiled, a peak or a minor-allocation rate
    above its ceiling fails the compare the same way a wall-time
    regression does. *)

val regression_tolerance : float
(** Default regression threshold: 0.20 (20% slower fails). *)

val noise_floor : float
(** Runs where both sides finish under this many seconds are never flagged
    — too short to time reliably. *)

type comparison = {
  cmp_id : string;
  base_seconds : float option;  (** [None]: absent from the baseline *)
  current_seconds : float option;  (** [None]: absent from the current run *)
}

val speedup : comparison -> float option
(** [base / current]; [None] when either side is missing. *)

val regressed : ?tolerance:float -> comparison -> bool

type memory_check = {
  mem_id : string;
  ceiling_words : int;  (** committed [max_heap_words] from the baseline *)
  peak_words : int option;
      (** measured [profile.top_heap_words]; [None] when the current run
          was not profiled — reported as a warning, never a failure *)
}

val memory_exceeded : memory_check -> bool
(** True iff a measured peak is above its ceiling. *)

type alloc_check = {
  al_id : string;
  ceiling_words_per_round : float;
      (** committed [max_words_per_active_round] from the baseline *)
  base_rate : float option;
      (** the baseline's own measured [profile.words_per_active_round],
          when the baseline was a profiled run — the reference for the
          delta column *)
  rate : float option;
      (** measured [profile.words_per_active_round]; [None] when the
          current run was not profiled — reported as a warning, never a
          failure *)
}

val alloc_exceeded : alloc_check -> bool
(** True iff a measured allocation rate is above its ceiling. *)

val alloc_delta : alloc_check -> float option
(** Relative words/active-round change vs the baseline's measured rate
    ([(rate - base_rate) / base_rate]); negative is a win.  [None] unless
    both sides were profiled. *)

val wall_times_of_results : Json.t -> ((string * float) list, string) result
(** Per-experiment wall seconds out of a parsed results file. *)

val heap_ceilings_of_results : Json.t -> (string * int) list
(** Per-experiment [max_heap_words] ceilings out of a parsed baseline;
    experiments without one are simply absent. *)

val heap_peaks_of_results : Json.t -> (string * int) list
(** Per-experiment [profile.top_heap_words] peaks out of a parsed results
    file; absent for runs made without [--profile]. *)

val alloc_ceilings_of_results : Json.t -> (string * float) list
(** Per-experiment [max_words_per_active_round] ceilings out of a parsed
    baseline; experiments without one are simply absent. *)

val alloc_rates_of_results : Json.t -> (string * float) list
(** Per-experiment [profile.words_per_active_round] rates out of a parsed
    results file; absent for runs made without [--profile]. *)

val memory_checks :
  ceilings:(string * int) list -> peaks:(string * int) list -> memory_check list
(** One check per ceiling, paired with the matching peak if measured. *)

val alloc_checks :
  ?base_rates:(string * float) list ->
  ceilings:(string * float) list ->
  rates:(string * float) list ->
  unit ->
  alloc_check list
(** One check per allocation ceiling, paired with the measured rate if
    profiled; [base_rates] supplies the baseline's own measured rates for
    the delta column. *)

val render_memory : memory_check list -> string
(** ASCII ceiling-check table; empty string when there are no ceilings. *)

val render_alloc : alloc_check list -> string
(** ASCII allocation-rate ceiling table; empty string when there are no
    ceilings. *)

val load_results : string -> (Json.t, string) result
(** Read and parse a results file. *)

val load_wall_times : string -> ((string * float) list, string) result

val compare_wall_times :
  base:(string * float) list -> current:(string * float) list -> comparison list
(** Current-run order first, then baseline-only experiments. *)

val render_comparison : ?tolerance:float -> comparison list -> string

val regressions : ?tolerance:float -> comparison list -> comparison list

val compare_files :
  ?tolerance:float -> base:string -> current:string -> unit -> (string * bool, string) result
(** [Ok (report, failed)] where [failed] is any wall-time regression,
    peak-heap ceiling breach, or words/active-round allocation-rate
    ceiling breach; [Error] on unreadable/invalid files. *)

val compare_outcomes :
  ?tolerance:float -> base:string -> Runner.outcome list -> (string * bool, string) result
(** Compare a just-finished run against a baseline file; profiled
    outcomes also have their peaks and allocation rates gated against
    baseline ceilings. *)
