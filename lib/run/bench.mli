(** Shared driver behind `bench/main.exe` and `securebit_cli bench`: select
    registry jobs, execute them (possibly domain-parallel), print each
    table as it completes, and optionally write the JSON results file. *)

type options = {
  scale : Experiment.scale;
  jobs : int;  (** worker domains; 1 = sequential *)
  only : string list;  (** experiment ids to run; empty = all *)
  json_path : string option;  (** where to write the JSON results, if anywhere *)
}

val default_options : unit -> options
(** Sequential, every job, no JSON; scale from {!Figures.scale_of_env}
    (the deprecated [FULL] fallback). *)

val selection : string list -> (Experiment.job list, string) result
(** Resolve ids against {!Registry.all} (canonical order kept); [Error]
    names any unknown ids. *)

val scale_name : Experiment.scale -> string

val run : options -> (Runner.outcome list, string) result
(** Run the selected jobs, printing tables, fits, notes and per-job wall
    times; write [json_path] if given.  [Error] on unknown ids. *)
