type klass = Scale_sweep.klass = Uniform_radio | Expander_synthetic

let klass_name = Scale_sweep.klass_name
let all_classes = Scale_sweep.all_classes

type config = {
  label : string;
  node_counts : int list;
  densities : float list;
  adversaries : string list;
  classes : klass list;
  protocol : Scenario.protocol;
  tiles : int;
  seed : int;
  cap : int;
  warm : int;
  message : string;
  out_dir : string option;
  mem_ceiling_words : int option;
  check : bool;
  dry_run : bool;
}

(* A cell every machine can finish in seconds per run: the full sweep is
   the caller's to scale up (`--nodes 10000,100000 ...`). *)
let default =
  {
    label = "scale";
    node_counts = [ 1_000; 4_000 ];
    densities = [ 12.0; 40.0 ];
    adversaries = [ "honest"; "lying" ];
    classes = all_classes;
    protocol = Scenario.Neighbor_watch { votes = 1 };
    tiles = 1;
    seed = 42;
    cap = 2_000_000;
    warm = 1;
    message = "1011";
    out_dir = None;
    mem_ceiling_words = None;
    check = false;
    dry_run = false;
  }

let known_adversaries = Scale_sweep.known_adversaries
let faults_of_adversary = Scale_sweep.faults_of_adversary

type phase = Cold | Warm of int

let phase_name = function Cold -> "cold" | Warm k -> Printf.sprintf "warm%d" k

type cell = { klass : klass; nodes : int; density : float; adversary : string }

type planned = { run_id : string; cell : cell; phase : phase }

let run_id_of cell phase =
  Printf.sprintf "n%d-d%g-%s-%s-%s" cell.nodes cell.density cell.adversary
    (klass_name cell.klass) (phase_name phase)

(* The cell geometry lives in {!Scale_sweep.cell_spec}, shared with the
   registered S1 experiment, so a campaign run and the registry row of
   the same cell simulate the same spec. *)
let spec_of_cell config cell =
  let faults =
    match faults_of_adversary cell.adversary with
    | Some faults -> faults
    | None -> invalid_arg (Printf.sprintf "Campaign: unknown adversary %s" cell.adversary)
  in
  let base =
    {
      Scenario.default with
      message = Bitvec.of_string config.message;
      protocol = config.protocol;
      faults;
      cap = config.cap;
      seed = config.seed;
    }
  in
  Scale_sweep.cell_spec ~base ~klass:cell.klass ~nodes:cell.nodes ~density:cell.density

let validate config =
  if config.tiles < 1 then Error "tiles must be >= 1"
  else if config.warm < 0 then Error "warm rounds must be >= 0"
  else if config.node_counts = [] || List.exists (fun n -> n <= 0) config.node_counts then
    Error "node counts must be a non-empty list of positive ints"
  else if config.densities = [] || List.exists (fun d -> d <= 0.0) config.densities then
    Error "densities must be a non-empty list of positive numbers"
  else if config.classes = [] then Error "at least one graph class"
  else begin
    match List.filter (fun a -> faults_of_adversary a = None) config.adversaries with
    | [] when config.adversaries <> [] -> Ok ()
    | [] -> Error "at least one adversary mix"
    | unknown ->
      Error
        (Printf.sprintf "unknown adversary mix%s: %s (known: %s)"
           (if List.length unknown > 1 then "es" else "")
           (String.concat ", " unknown)
           (String.concat " " known_adversaries))
  end

(* The full sweep in execution order: every (class, n, density, adversary)
   cell, each as one cold run followed by [warm] warm runs on the cold
   run's topology.  [--dry-run] prints exactly this list, so the preview
   and a real invocation can never disagree (test_campaign holds them
   equal). *)
let plan config =
  let phases = Cold :: List.init config.warm (fun k -> Warm (k + 1)) in
  List.concat_map
    (fun klass ->
      List.concat_map
        (fun nodes ->
          List.concat_map
            (fun density ->
              List.concat_map
                (fun adversary ->
                  let cell = { klass; nodes; density; adversary } in
                  List.map (fun phase -> { run_id = run_id_of cell phase; cell; phase }) phases)
                config.adversaries)
            config.densities)
        config.node_counts)
    config.classes

type executed = {
  planned : planned;
  wall_seconds : float;
  rounds : int;
  rounds_per_second : float;
  avg_degree : float;
  peak_heap_words : int;
  summary : Scenario.summary;
}

(* --- archived results --------------------------------------------------- *)

let rec mkdirs path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let json_of_executed config e =
  let s = e.summary in
  Json.Obj
    [
      ("schema", Json.String "securebit-campaign/1");
      ("run_id", Json.String e.planned.run_id);
      ("label", Json.String config.label);
      ("class", Json.String (klass_name e.planned.cell.klass));
      ("nodes", Json.Int e.planned.cell.nodes);
      ("density", Json.Float e.planned.cell.density);
      ("adversary", Json.String e.planned.cell.adversary);
      ("phase", Json.String (phase_name e.planned.phase));
      ("tiles", Json.Int config.tiles);
      ("seed", Json.Int config.seed);
      ("wall_seconds", Json.Float e.wall_seconds);
      ("rounds", Json.Int e.rounds);
      ("rounds_per_second", Json.Float e.rounds_per_second);
      ("avg_degree", Json.Float e.avg_degree);
      ("peak_heap_words", Json.Int e.peak_heap_words);
      ( "summary",
        Json.Obj
          [
            ("honest_nodes", Json.Int s.Scenario.honest_nodes);
            ("completion_rate", Json.Float s.Scenario.completion_rate);
            ("correct_rate", Json.Float s.Scenario.correct_rate);
            ("total_broadcasts", Json.Int s.Scenario.total_broadcasts);
            ("hit_cap", Json.String (string_of_bool s.Scenario.hit_cap));
          ] );
    ]

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty json);
  close_out oc

let archive config executed =
  Option.map
    (fun out_dir ->
      let dir = Filename.concat out_dir config.label in
      mkdirs dir;
      List.iter
        (fun e ->
          write_json (Filename.concat dir (e.planned.run_id ^ ".json")) (json_of_executed config e))
        executed;
      let manifest =
        Json.Obj
          [
            ("schema", Json.String "securebit-campaign-manifest/1");
            ("label", Json.String config.label);
            ("tiles", Json.Int config.tiles);
            ("runs", Json.List (List.map (fun e -> Json.String e.planned.run_id) executed));
          ]
      in
      write_json (Filename.concat dir "manifest.json") manifest;
      dir)
    config.out_dir

(* --- execution ---------------------------------------------------------- *)

let mode config : Engine.mode = if config.tiles > 1 then `Sharded config.tiles else `Sparse

exception Check_failed of string

(* One cell: a cold run (builds the deployment and topology) then [warm]
   runs reusing the cold topology, so the cold/warm delta isolates the
   deployment-build and CSR-cache cost from the steady-state engine rate.
   Under [--check] every run is re-executed on the serial sparse loop and
   the round-by-round channel traces are diffed — the campaign-sized
   version of the equivalence suite's byte-identity guarantee. *)
let execute_cell config cell plans =
  let spec = spec_of_cell config cell in
  let topology = ref None in
  List.map
    (fun planned ->
      let collect = if config.check then Some (Determinism.collector ()) else None in
      let tap = Option.map fst collect in
      let t0 = Unix.gettimeofday () in
      let result = Scenario.run ?tap ~mode:(mode config) ?topology:!topology spec in
      let wall_seconds = Unix.gettimeofday () -. t0 in
      if !topology = None then topology := Some result.Scenario.topology;
      Option.iter
        (fun (_, trace_of) ->
          let ref_tap, ref_trace = Determinism.collector () in
          ignore (Scenario.run ~tap:ref_tap ~mode:`Sparse ?topology:!topology spec);
          match Determinism.diff (trace_of ()) (ref_trace ()) with
          | Determinism.Deterministic _ -> ()
          | Determinism.Diverged _ as outcome ->
            raise
              (Check_failed
                 (Printf.sprintf "%s: sharded and sparse traces differ: %s" planned.run_id
                    (Determinism.outcome_to_string outcome))))
        collect;
      let summary = Scenario.summarize result in
      let peak_heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
      {
        planned;
        wall_seconds;
        rounds = summary.Scenario.rounds;
        rounds_per_second =
          (if wall_seconds > 0.0 then float_of_int summary.Scenario.rounds /. wall_seconds
           else 0.0);
        avg_degree = Topology.avg_degree result.Scenario.topology;
        peak_heap_words;
        summary;
      })
    plans

let render executed =
  let table =
    Table.create ~title:"scale campaign"
      ~columns:
        [ "run"; "deg"; "rounds"; "wall (s)"; "rounds/s"; "peak (Mw)"; "delivered"; "correct" ]
  in
  List.iter
    (fun e ->
      Table.add_row table
        [
          e.planned.run_id;
          Table.cell_f ~decimals:1 e.avg_degree;
          Table.cell_i e.rounds;
          Table.cell_f ~decimals:2 e.wall_seconds;
          Table.cell_f ~decimals:0 e.rounds_per_second;
          Table.cell_f ~decimals:1 (float_of_int e.peak_heap_words /. 1e6);
          Table.cell_pct e.summary.Scenario.completion_rate;
          Table.cell_pct e.summary.Scenario.correct_rate;
        ])
    executed;
  Table.render table

let render_plan config plans =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "campaign %s: %d runs (tiles=%d, seed=%d, warm=%d%s%s)\n" config.label
       (List.length plans) config.tiles config.seed config.warm
       (if config.check then ", check" else "")
       (match config.out_dir with
       | Some d -> Printf.sprintf ", out=%s" (Filename.concat d config.label)
       | None -> ""));
  List.iter (fun p -> Buffer.add_string buf ("  " ^ p.run_id ^ "\n")) plans;
  Buffer.contents buf

(* Group a plan back into per-cell chunks, preserving order. *)
let cells_of_plan plans =
  List.rev
    (List.fold_left
       (fun acc p ->
         match acc with
         | (cell, runs) :: rest when cell = p.cell -> (cell, runs @ [ p ]) :: rest
         | _ -> (p.cell, [ p ]) :: acc)
       [] plans)

let run config =
  match validate config with
  | Error message -> Error message
  | Ok () ->
    let plans = plan config in
    print_string (render_plan config plans);
    if config.dry_run then Ok ([], false)
    else begin
      match
        List.concat_map
          (fun (cell, cell_plans) ->
            let executed = execute_cell config cell cell_plans in
            List.iter
              (fun e ->
                Printf.printf "[%s: %d rounds, %.2fs, %.1fM peak words]\n%!" e.planned.run_id
                  e.rounds e.wall_seconds
                  (float_of_int e.peak_heap_words /. 1e6))
              executed;
            executed)
          (cells_of_plan plans)
      with
      | executed ->
        print_string (render executed);
        Option.iter (Printf.printf "results archived to %s\n%!") (archive config executed);
        let over_ceiling =
          match config.mem_ceiling_words with
          | None -> []
          | Some ceiling ->
            List.filter (fun e -> e.peak_heap_words > ceiling) executed
        in
        List.iter
          (fun e ->
            Printf.printf "OVER CEILING: %s peaked at %d words (ceiling %d)\n" e.planned.run_id
              e.peak_heap_words
              (Option.get config.mem_ceiling_words))
          over_ceiling;
        Ok (executed, over_ceiling <> [])
      | exception Check_failed message -> Error message
    end
