type task =
  | Run of Scenario.spec  (* one seeded trial of a Grid cell *)
  | Eval of (unit -> Experiment.row)

type task_result =
  | Summary of Scenario.summary
  | Row of Experiment.row

type profile = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  top_heap_words : int;
  rounds_simulated : int;
  rounds_per_second : float;
  active_rounds : int;
  words_per_active_round : float;
  workers : Pool.worker_stat list;
}

type outcome = {
  job : Experiment.job;
  scale : Experiment.scale;
  table : Table.t;
  rows : (Experiment.row * Experiment.aggregate list) list;
  fits : (string * Stats.fit) list;
  notes : string list;
  wall_seconds : float;
  profile : profile option;
}

let run_task = function
  | Run spec -> Summary (Scenario.summarize (Scenario.run spec))
  | Eval f -> Row (f ())

(* Flatten a job into independent trials (Grid cells contribute one trial
   per spec per seed, thunks one trial each), execute them on the pool,
   then merge strictly in cell order — so the rendered output is
   byte-identical whatever [jobs] is. *)
let run_job ?(jobs = 1) ?(profile = false) ?(sanitize = false) ~scale (job : Experiment.job) =
  let gc0 = if profile then Some (Gc.quick_stat ()) else None in
  let t0 = Unix.gettimeofday () in
  let cells = job.Experiment.cells scale in
  let seeds = Experiment.seeds (job.Experiment.config scale) in
  let tasks =
    List.concat_map
      (fun cell ->
        match cell with
        | Experiment.Grid { specs; _ } ->
          List.concat_map
            (fun spec -> List.map (fun seed -> Run { spec with Scenario.seed }) seeds)
            specs
        | Experiment.Thunk f -> [ Eval f ])
      cells
  in
  let results, workers = Pool.map_array_stats ~sanitize ~jobs run_task (Array.of_list tasks) in
  let cursor = ref 0 in
  let take () =
    let r = results.(!cursor) in
    incr cursor;
    r
  in
  let take_summary () =
    match take () with Summary s -> s | Row _ -> invalid_arg "Runner: task order"
  in
  let rows =
    List.map
      (fun cell ->
        match cell with
        | Experiment.Grid { specs; render } ->
          let aggs =
            List.map
              (fun _spec -> Experiment.aggregate (List.map (fun _seed -> take_summary ()) seeds))
              specs
          in
          (render aggs, aggs)
        | Experiment.Thunk _ -> (
          match take () with Row r -> (r, []) | Summary _ -> invalid_arg "Runner: task order"))
      cells
  in
  let table = Table.create ~title:job.Experiment.title ~columns:job.Experiment.columns in
  List.iter
    (fun ((row : Experiment.row), _) -> Table.add_row table row.Experiment.cells)
    rows;
  let all_points =
    List.concat_map (fun ((row : Experiment.row), _) -> row.Experiment.points) rows
  in
  let series name =
    List.filter_map (fun (n, point) -> if n = name then Some point else None) all_points
  in
  let fits =
    List.map (fun (label, name) -> (label, Stats.linear_fit (series name))) job.Experiment.fits
  in
  let notes = job.Experiment.notes ~fits ~series in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let profile =
    (* Top-level allocation deltas come from [Gc.quick_stat] on the
       coordinating domain (exact at --jobs 1, coordinator-only above
       that); [workers] carries exact per-domain deltas from the pool.
       Rounds/s divides the engine rounds actually simulated (Grid trials
       only) by the job's wall time. *)
    Option.map
      (fun g0 ->
        let g1 = Gc.quick_stat () in
        let rounds_simulated =
          Array.fold_left
            (fun acc result ->
              match result with Summary s -> acc + s.Scenario.rounds | Row _ -> acc)
            0 results
        in
        let active_rounds =
          Array.fold_left
            (fun acc result ->
              match result with Summary s -> acc + s.Scenario.active_rounds | Row _ -> acc)
            0 results
        in
        let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
        {
          minor_words;
          major_words = g1.Gc.major_words -. g0.Gc.major_words;
          promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
          (* Process-lifetime peak, monotone across jobs of one process:
             comparable against a baseline only when both runs execute the
             same jobs in the same order, which the registry guarantees. *)
          top_heap_words = g1.Gc.top_heap_words;
          rounds_simulated;
          rounds_per_second =
            (if wall_seconds > 0.0 then float_of_int rounds_simulated /. wall_seconds else 0.0);
          active_rounds;
          (* Allocation rate of the hot loop: coordinator minor words over
             transmission-carrying rounds (exact at --jobs 1, like the
             other top-level deltas); [bench compare] gates this against
             committed [max_words_per_active_round] ceilings. *)
          words_per_active_round =
            (if active_rounds > 0 then minor_words /. float_of_int active_rounds else 0.0);
          workers;
        })
      gc0
  in
  { job; scale; table; rows; fits; notes; wall_seconds; profile }

let render outcome =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render outcome.table);
  List.iter
    (fun (label, fit) ->
      Buffer.add_string buf
        (Printf.sprintf "%s: slope = %.2f, intercept = %.1f, r2 = %.3f\n" label fit.Stats.slope
           fit.Stats.intercept fit.Stats.r2))
    outcome.fits;
  List.iter (fun note -> Buffer.add_string buf (note ^ "\n")) outcome.notes;
  Buffer.contents buf

let json_of_row columns ((row : Experiment.row), aggs) =
  let cells =
    Json.Obj (List.map2 (fun column cell -> (column, Json.String cell)) columns row.Experiment.cells)
  in
  Json.Obj
    ([ ("cells", cells) ]
    @ (match aggs with
      | [] -> []
      | _ -> [ ("aggregates", Json.List (List.map Experiment.json_of_aggregate aggs)) ])
    @ match row.Experiment.values with [] -> [] | vs -> [ ("values", Json.Obj vs) ])

let json_of_fit (label, fit) =
  Json.Obj
    [
      ("label", Json.String label);
      ("slope", Json.Float fit.Stats.slope);
      ("intercept", Json.Float fit.Stats.intercept);
      ("r2", Json.Float fit.Stats.r2);
    ]

(* The [wall_seconds] field is the only non-deterministic part of the
   record; [stable_json] omits it so `--jobs N` output can be compared
   byte-for-byte against `--jobs 1`. *)
let stable_json outcome =
  let job = outcome.job in
  Json.Obj
    [
      ("id", Json.String job.Experiment.id);
      ("title", Json.String job.Experiment.title);
      ("columns", Json.List (List.map (fun c -> Json.String c) job.Experiment.columns));
      ("rows", Json.List (List.map (json_of_row job.Experiment.columns) outcome.rows));
      ("fits", Json.List (List.map json_of_fit outcome.fits));
      ("notes", Json.List (List.map (fun n -> Json.String n) outcome.notes));
    ]

let json_of_worker (w : Pool.worker_stat) =
  Json.Obj
    [
      ("domain", Json.Int w.Pool.domain_index);
      ("tasks_run", Json.Int w.Pool.tasks_run);
      ("minor_words", Json.Float w.Pool.minor_words);
      ("major_words", Json.Float w.Pool.major_words);
      ("promoted_words", Json.Float w.Pool.promoted_words);
      ("top_heap_words", Json.Int w.Pool.top_heap_words);
    ]

let json_of_profile p =
  Json.Obj
    [
      ("minor_words", Json.Float p.minor_words);
      ("major_words", Json.Float p.major_words);
      ("promoted_words", Json.Float p.promoted_words);
      ("top_heap_words", Json.Int p.top_heap_words);
      ("rounds_simulated", Json.Int p.rounds_simulated);
      ("rounds_per_second", Json.Float p.rounds_per_second);
      ("active_rounds", Json.Int p.active_rounds);
      ("words_per_active_round", Json.Float p.words_per_active_round);
      ("workers", Json.List (List.map json_of_worker p.workers));
    ]

let json_of_outcome outcome =
  match stable_json outcome with
  | Json.Obj fields ->
    Json.Obj
      (fields
      @ [ ("wall_seconds", Json.Float outcome.wall_seconds) ]
      @
      match outcome.profile with
      | Some p -> [ ("profile", json_of_profile p) ]
      | None -> [])
  | other -> other

let results_json ~scale ~jobs outcomes =
  Json.Obj
    [
      ("schema", Json.String "securebit-bench/1");
      ( "scale",
        Json.String (match scale with Experiment.Quick -> "quick" | Experiment.Paper -> "paper") );
      ("jobs", Json.Int jobs);
      ( "total_wall_seconds",
        Json.Float (List.fold_left (fun acc o -> acc +. o.wall_seconds) 0.0 outcomes) );
      ("experiments", Json.List (List.map json_of_outcome outcomes));
    ]
