(** Deterministic domain worker pool.

    [map_array ~jobs f xs] applies [f] to every element of [xs] on up to
    [jobs] OCaml 5 domains (the calling domain included) and returns the
    results in input order — workers race only for task indices, never for
    result slots, so the output is independent of scheduling.  Tasks must
    be self-contained: the simulation trials run here each carry their own
    seed and build their own [Rng] and topology, and no module under [lib]
    keeps global mutable state.  {!Share_lint} checks that property
    statically; [~sanitize] checks it dynamically.

    [jobs <= 1] runs sequentially on the calling domain with no spawns.
    If a task raises, one such exception is re-raised after all domains
    have joined, with the backtrace of the original raise site. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

exception Nondeterministic of { index : int; divergent : int }
(** Raised by [~sanitize:true] when the parallel results differ
    structurally from a sequential re-run: [index] is the first divergent
    task index, [divergent] the total number of divergent slots.  The only
    way a pure task array triggers this is shared mutable state. *)

type worker_stat = {
  domain_index : int;  (** 0 = the calling domain *)
  tasks_run : int;
  minor_words : float;  (** {!Gc.quick_stat} delta on that domain *)
  major_words : float;
  promoted_words : float;
  top_heap_words : int;
      (** process-lifetime major-heap high-water mark when this domain
          finished — a peak, not a delta (the major heap is shared) *)
}
(** Per-domain execution counters, exact on every domain (each worker
    snapshots its own GC stats). *)

val map_array : ?sanitize:bool -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [sanitize] (default false) re-runs the task array sequentially after
    the parallel pass and raises {!Nondeterministic} if any result
    differs — the dynamic race check for tasks {!Share_lint} cannot see
    through.  Costs one extra sequential pass; a no-op at [jobs <= 1]. *)

val map_list : ?sanitize:bool -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val map_array_stats :
  ?sanitize:bool -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array * worker_stat list
(** Like {!map_array} but also returns one {!worker_stat} per domain used
    (a single entry at [jobs <= 1]), for [--profile] reporting. *)
