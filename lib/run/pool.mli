(** Deterministic domain worker pool.

    [map_array ~jobs f xs] applies [f] to every element of [xs] on up to
    [jobs] OCaml 5 domains (the calling domain included) and returns the
    results in input order — workers race only for task indices, never for
    result slots, so the output is independent of scheduling.  Tasks must
    be self-contained: the simulation trials run here each carry their own
    seed and build their own [Rng] and topology, and no module under [lib]
    keeps global mutable state.

    [jobs <= 1] runs sequentially on the calling domain with no spawns.
    If a task raises, one such exception is re-raised after all domains
    have joined. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
