(** Tile partitioning and the domain team behind [Engine.run ~mode:`Sharded].

    The engine's sharded mode cuts a run's machines into disjoint tiles and
    runs each tile on its own domain, synchronizing on a per-round barrier
    sequence that keeps the results byte-identical to the serial modes.
    This module provides the tile assignment heuristics and the barrier /
    spawn-join machinery; the round protocol itself lives in {!Engine}. *)

val partition : Topology.t -> tiles:int -> int array
(** [partition topology ~tiles] assigns every node a tile in
    [0 .. tiles - 1].  Determinism of the sharded engine never depends on
    the assignment — any map yields byte-identical results — only halo
    traffic does: radio topologies are cut into spatial strips along the x
    axis, synthetic graphs into contiguous blocks of a BFS order over the
    decode graph.  [tiles] is clamped to [1 .. max 1 n]; the result always
    has length [max 1 n] and tiles are contiguous, non-empty chunks of the
    chosen node order. *)

(** A fixed-size team of barrier participants (participant 0 is the calling
    domain, participants [1 .. size - 1] are spawned domains), with a
    blocking generation barrier and a first-failure slot. *)
module Team : sig
  type t

  val create : tiles:int -> t
  (** Raises [Invalid_argument] if [tiles < 1]. *)

  val size : t -> int

  val await : t -> unit
  (** Block until all [size t] participants have arrived.  Acts as a full
      happens-before fence: plain writes made before [await] are visible
      to every participant after it.  No-op when [size t <= 1]. *)

  val guard : t -> (unit -> unit) -> unit
  (** Run a phase body, trapping any exception (with backtrace) into the
      team's failure slot instead of letting it escape — participants must
      keep arriving at barriers even after a failure, or the rest of the
      team spins forever.  Only the first failure is kept. *)

  val failed : t -> bool
  (** True once any participant's {!guard} recorded a failure. *)

  val run : t -> worker:(int -> unit) -> main:(unit -> 'a) -> 'a
  (** Spawn [size t - 1] domains running [worker 1 .. worker (size-1)],
      run [main ()] on the calling domain as participant 0, join, and
      re-raise any recorded failure with its original backtrace.  [main]
      must drive the workers to return (the engine's stop command) even
      when {!failed} is set.  When [size t <= 1], runs [main] inline
      without spawning. *)
end
