(* Tile partitioning and the domain team behind [Engine.run ~mode:`Sharded].

   A shard run cuts the deployment into [tiles] disjoint tiles and runs
   each tile's machines on its own domain; the engine drives the tiles
   through a fixed per-round barrier sequence (see DESIGN.md, "Tile/halo
   contract") so the interleaving is deterministic and the results are
   byte-identical to the serial loops.  This module owns the two
   ingredients that are not engine logic:

   - [partition]: the tile assignment.  Correctness never depends on the
     cut — the engine is byte-identical under *any* assignment (a QCheck
     property randomizes it) — only halo traffic does, so radio topologies
     are cut into spatial strips (boundary ~ one sense range per cut) and
     synthetic graphs into contiguous BFS blocks (neighbours tend to share
     a block).
   - [Team]: the generation barrier the tiles synchronize on, the
     spawn/join wrapper, and the failure slot that lets a crashed tile
     abandon a round without deadlocking the others.

   This is the one lib/sim module allowed to name Domain/Atomic (see the
   Source_lint allowlist): the engine's tile state is owner-partitioned
   and every cross-tile read happens after a barrier, so the barrier's
   mutex is the only synchronization needed — it orders the plain tile
   writes before the reads that follow the barrier. *)

let partition topology ~tiles =
  let n = Topology.size topology in
  let tiles = max 1 (min tiles (max 1 n)) in
  let tile_of = Array.make (max 1 n) 0 in
  if tiles > 1 then begin
    let order =
      if Topology.is_geometric topology then begin
        (* Spatial strips: nodes sorted by x (ties by id), cut into
           equal-count chunks.  Halo links cross only the strip borders. *)
        let ids = Array.init n (fun i -> i) in
        Array.sort
          (fun a b ->
            match
              Float.compare (Topology.position topology a).Point.x
                (Topology.position topology b).Point.x
            with
            | 0 -> Int.compare a b
            | c -> c)
          ids;
        ids
      end
      else begin
        (* BFS blocks: breadth-first order over the decode graph from node
           0 (row order = ascending id), restarting from the smallest
           unvisited id for disconnected graphs; contiguous chunks of that
           order keep neighbourhoods together without any geometry. *)
        let rx = Topology.rx topology in
        let seen = Array.make n false in
        let order = Array.make n 0 in
        let count = ref 0 in
        let queue = Queue.create () in
        let push i =
          if not seen.(i) then begin
            seen.(i) <- true;
            Queue.add i queue
          end
        in
        for src = 0 to n - 1 do
          push src;
          while not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            order.(!count) <- u;
            incr count;
            Array.iter push rx.(u)
          done
        done;
        order
      end
    in
    for k = 0 to n - 1 do
      tile_of.(order.(k)) <- k * tiles / n
    done
  end;
  tile_of

module Team = struct
  type t = {
    size : int;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable arrived : int;
    mutable generation : int;
    failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  }

  let create ~tiles =
    if tiles < 1 then invalid_arg "Shard.Team.create: need at least one tile";
    {
      size = tiles;
      mutex = Mutex.create ();
      cond = Condition.create ();
      arrived = 0;
      generation = 0;
      failure = Atomic.make None;
    }

  let size t = t.size

  (* Generation barrier on a condition variable rather than a busy-wait
     spin: a parked tile releases its core, which matters both when the
     coordinator does serial work between rounds (merge, stop checks,
     silent-round skips) and on machines with fewer cores than tiles.
     The mutex hand-off also publishes every plain write made before
     [await] to every participant after it. *)
  let await t =
    if t.size > 1 then begin
      Mutex.lock t.mutex;
      let gen = t.generation in
      t.arrived <- t.arrived + 1;
      if t.arrived = t.size then begin
        t.arrived <- 0;
        t.generation <- gen + 1;
        Condition.broadcast t.cond
      end
      else
        while t.generation = gen do
          Condition.wait t.cond t.mutex
        done;
      Mutex.unlock t.mutex
    end

  let record t e bt = ignore (Atomic.compare_and_set t.failure None (Some (e, bt)))
  let failed t = Atomic.get t.failure <> None

  (* Run a phase body, trapping any exception into the failure slot so the
     tile keeps participating in the barrier sequence — a crashed tile
     must not leave the others parked; the coordinator checks [failed] at
     the next round boundary and shuts the team down cleanly. *)
  let guard t f = try f () with e -> record t e (Printexc.get_raw_backtrace ())

  let run t ~worker ~main =
    if t.size <= 1 then begin
      let result = main () in
      (match Atomic.get t.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      result
    end
    else begin
      let domains = List.init (t.size - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
      (* [main] is responsible for releasing the workers into their stop
         command before returning, even on failure — [guard] plus the
         engine's command protocol guarantee that. *)
      let result = main () in
      List.iter Domain.join domains;
      match Atomic.get t.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> result
    end
end
