(** TDMA broadcast schedules (Section 4, "Schedule").

    Time is divided into 6-round broadcast intervals.  Each scheduled group
    (a NeighborWatchRB square, or an individual node for MultiPathRB) owns
    one slot per cycle; slots are reused spatially so that no two groups
    whose transmissions could collide at any receiver — i.e. no two nodes
    within distance 3R — share a slot.  The source always owns slot 0, the
    first broadcast interval of every cycle. *)

val rounds_per_interval : int
(** 6: the length of one 2Bit-Protocol exchange. *)

val interval_of_round : int -> int
val phase_of_round : int -> int
(** Position (0–5) inside the current interval. *)

val first_round_of_interval : int -> int
(** Inverse of {!interval_of_round} at phase 0. *)

type t

val cycle : t -> int
(** Number of slots in a schedule cycle. *)

val slot_of : t -> int -> int
(** Slot of a group id.  The source group is always slot 0. *)

val active_slot : t -> interval:int -> int
(** Which slot owns a given interval. *)

val source_slot : int
(** 0. *)

val for_squares : Squares.t -> radius:float -> t
(** Square schedule: group ids are square ids.  The spatial-reuse factor
    [k] is the least value keeping same-slot squares more than [3·radius]
    apart, giving a cycle of [k² + 1] slots (the [+1] is the source's). *)

val for_nodes : Topology.t -> conflict_range:float -> source:Node.id -> t
(** Per-node schedule by greedy colouring of the conflict graph (nodes
    within [conflict_range]); group ids are node ids; the source is slot 0
    regardless of its position. *)

val for_graph : Topology.t -> source:Node.id -> t
(** Per-node schedule for topologies with no usable geometry: two nodes
    conflict when they are within three decode hops of each other — the
    graph reading of the geometric 3R rule, wide enough that a
    transmitting receiver (acknowledgement/veto blips) of one sender is
    inaudible to the listening receivers of any same-slot sender —
    coloured with the same greedy ascending-id pass as {!for_nodes}; the
    source is slot 0. *)

val next_relevant_round : t -> relevant:bool array -> int -> int
(** [next_relevant_round t ~relevant] precomputes a wakeup function for a
    machine that participates exactly in the intervals whose slot is
    marked in [relevant] (one entry per slot of the cycle): applied to a
    round [r], it returns the first round [>= r] falling in a relevant
    interval — [r] itself when [r]'s interval is relevant — or [max_int]
    when no slot is marked.  Partial application builds the O(1) lookup
    table once; machines hand the resulting closure to the engine as
    their [next_active] contract. *)
