(** A node embedding paired with the decode/sense graph the simulation runs
    on, plus a record of how that graph was obtained.

    Historically this module {e was} the radio model: the graph existed only
    as the output of the spatial-hash builder over a disk deployment.  The
    graph itself now lives in {!Graph}; a topology wraps one together with
    the {!Deployment} that embeds its nodes in the plane and a {!kind}
    saying whether the edges came from a propagation model ([Radio]) or were
    constructed explicitly ([Synthetic], e.g. the generated families in
    {!Graphs}).  Protocol layers that need a length scale (voting windows,
    frame coordinate lattices, watch squares) ask for {!sense_reach} /
    {!rx_reach}, which a radio topology answers from its propagation model
    and a synthetic one answers with its longest embedded decode edge. *)

type link = Graph.link = { peer : Node.id; power : float }

type kind =
  | Radio of Propagation.t
      (** Edges derived from a propagation model over node positions. *)
  | Synthetic of { family : string; coord_range : float }
      (** An explicitly constructed graph. [family] names the generator
          ("grid_holes", "corridor", ...); [coord_range] is the longest
          embedded decode-edge length (≥ 1.0), standing in for the radio
          range wherever protocols need a distance scale. *)

type t

val build : Deployment.t -> Propagation.t -> t
(** Radio topology via the spatial-hash neighbourhood builder: node [j] is
    in [sensed i] iff the received power of [j] at [i] clears the sensing
    threshold, and in [rx i] iff it reaches the (normalised) decode
    threshold 1.0.  Rows come out sorted by peer id. *)

val synthetic : family:string -> Deployment.t -> Graph.t -> t
(** Wrap an explicitly constructed graph with the embedding used to draw
    and measure it.  Raises [Invalid_argument] if the deployment and graph
    disagree on the node count. *)

val graph : t -> Graph.t
val deployment : t -> Deployment.t
val kind : t -> kind

val is_geometric : t -> bool
(** [true] exactly for [Radio] topologies — the ones whose deployments live
    on the square map the paper's analytic bounds (Koo impossibility,
    ⌈R/2⌉ tolerance) are stated for. *)

val family : t -> string
(** Generator name for synthetic topologies, ["radio"] otherwise. *)

val sense_reach : t -> float
(** Distance within which a transmission is detectable: the propagation
    sense range for radio topologies, [coord_range] for synthetic ones. *)

val rx_reach : t -> float
(** Distance within which a transmission is decodable: the propagation rx
    range for radio topologies, [coord_range] for synthetic ones. *)

val sensed : t -> link array array
val rx : t -> Node.id array array
val position : t -> Node.id -> Point.t
val size : t -> int
val can_decode : t -> rx:Node.id -> tx:Node.id -> bool

val hops_from : t -> Node.id -> int array
(** BFS hop counts over the decode graph; [-1] marks unreachable nodes. *)

val hop_diameter_from : t -> Node.id -> int
(** Maximum finite hop count from a node (its eccentricity). *)

val reachable_from : t -> Node.id -> int
(** Number of nodes reachable from a node, including itself. *)

val avg_degree : t -> float
(** Average decode out-degree (the paper quotes ≈80 neighbours for its
    lying experiments). *)
