(** Precomputed radio topology: who can decode and who can sense whom.

    Built once per simulation with a spatial hash, so that per-round channel
    resolution only touches actual neighbours.  Also provides the
    graph-theoretic measurements the experiments report against (hop
    distances, diameter, connectivity). *)

type link = { peer : Node.id; power : float }
(** An incoming link: transmissions of [peer] arrive with the given
    normalised power (1.0 = decode threshold). *)

type t = {
  deployment : Deployment.t;
  prop : Propagation.t;
  sensed : link array array;
      (** [sensed.(i)] lists every node whose transmissions put detectable
          energy on [i]'s channel (power ≥ sense threshold), with power,
          sorted by peer id. *)
  rx : Node.id array array;
      (** [rx.(i)] lists nodes that [i] can decode (power ≥ 1.0), sorted
          ascending — [can_decode] binary-searches these rows. *)
}

val build : Deployment.t -> Propagation.t -> t

val position : t -> Node.id -> Point.t
val size : t -> int

val can_decode : t -> rx:Node.id -> tx:Node.id -> bool

val hops_from : t -> Node.id -> int array
(** BFS hop counts over the decode graph; [-1] marks unreachable nodes. *)

val hop_diameter_from : t -> Node.id -> int
(** Maximum finite hop count from a node (its eccentricity). *)

val reachable_from : t -> Node.id -> int
(** Number of nodes reachable from a node, including itself. *)

val avg_degree : t -> float
(** Average decode out-degree (the paper quotes ≈80 neighbours for its
    lying experiments). *)
