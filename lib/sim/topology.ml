type link = { peer : Node.id; power : float }

type t = {
  deployment : Deployment.t;
  prop : Propagation.t;
  sensed : link array array;
  rx : Node.id array array;
}

(* Spatial hash with cells of the sense range: all neighbours of a node lie
   in its own or the 8 surrounding cells.  The cell index must be the
   floor of the scaled coordinate: [int_of_float] truncates toward zero,
   which would merge (-reach, 0) with [0, reach) into one double-width
   cell on each axis for deployments that extend into negative
   coordinates. *)
let build (deployment : Deployment.t) prop =
  let nodes = deployment.Deployment.nodes in
  let n = Array.length nodes in
  let reach = max 1e-6 (Propagation.sense_range prop) in
  let cell_of (p : Point.t) =
    (int_of_float (Float.floor (p.x /. reach)), int_of_float (Float.floor (p.y /. reach)))
  in
  (* One lookup per node: buckets are mutated in place instead of a
     find-then-replace pair of probes. *)
  let cells : (int * int, Node.id list ref) Hashtbl.t = Hashtbl.create (max 16 n) in
  Array.iter
    (fun (node : Node.t) ->
      let key = cell_of node.pos in
      match Hashtbl.find_opt cells key with
      | Some bucket -> bucket := node.id :: !bucket
      | None -> Hashtbl.add cells key (ref [ node.id ]))
    nodes;
  let sense_thr = Propagation.sense_threshold prop in
  let sensed = Array.make n [||] in
  let rx = Array.make n [||] in
  (* Scratch buffers sized for the worst case (everyone in range), reused
     across nodes so the build allocates only the final per-node arrays. *)
  let links_buf = Array.make (max 1 (n - 1)) { peer = 0; power = 0.0 } in
  let rx_buf = Array.make (max 1 (n - 1)) 0 in
  Array.iter
    (fun (node : Node.t) ->
      let cx, cy = cell_of node.pos in
      let n_links = ref 0 in
      let n_rx = ref 0 in
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          match Hashtbl.find_opt cells (cx + dx, cy + dy) with
          | None -> ()
          | Some bucket ->
            List.iter
              (fun j ->
                if j <> node.id then begin
                  let power =
                    Propagation.received_power prop ~src:nodes.(j).Node.pos ~dst:node.pos
                  in
                  if power >= sense_thr then begin
                    links_buf.(!n_links) <- { peer = j; power };
                    incr n_links;
                    if power >= 1.0 then begin
                      rx_buf.(!n_rx) <- j;
                      incr n_rx
                    end
                  end
                end)
              !bucket
        done
      done;
      (* Sorted by peer id: deterministic independent of bucket iteration
         order, and can_decode becomes a binary search. *)
      let links = Array.sub links_buf 0 !n_links in
      Array.sort (fun a b -> Int.compare a.peer b.peer) links;
      let decodable = Array.sub rx_buf 0 !n_rx in
      Array.sort Int.compare decodable;
      sensed.(node.id) <- links;
      rx.(node.id) <- decodable)
    nodes;
  { deployment; prop; sensed; rx }

let position t id = t.deployment.Deployment.nodes.(id).Node.pos
let size t = Array.length t.deployment.Deployment.nodes

(* [rx] rows are sorted ascending, so membership is a binary search. *)
let can_decode t ~rx:receiver ~tx =
  let row = t.rx.(receiver) in
  let rec search lo hi =
    lo < hi
    &&
    let mid = (lo + hi) / 2 in
    let v = row.(mid) in
    if v = tx then true else if v < tx then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length row)

let hops_from t src =
  let n = size t in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.rx.(u)
  done;
  dist

let hop_diameter_from t src = Array.fold_left max 0 (hops_from t src)

let reachable_from t src =
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 (hops_from t src)

let avg_degree t =
  let n = size t in
  if n = 0 then 0.0
  else begin
    let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.rx in
    float_of_int total /. float_of_int n
  end
