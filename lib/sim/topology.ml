type link = Graph.link = { peer : Node.id; power : float }

type kind =
  | Radio of Propagation.t
  | Synthetic of { family : string; coord_range : float }

type t = { deployment : Deployment.t; kind : kind; graph : Graph.t }

(* Spatial hash with cells of the sense range: all neighbours of a node lie
   in its own or the 8 surrounding cells.  The cell index must be the
   floor of the scaled coordinate: [int_of_float] truncates toward zero,
   which would merge (-reach, 0) with [0, reach) into one double-width
   cell on each axis for deployments that extend into negative
   coordinates. *)
let build (deployment : Deployment.t) prop =
  let nodes = deployment.Deployment.nodes in
  let n = Array.length nodes in
  let reach = max 1e-6 (Propagation.sense_range prop) in
  let cell_of (p : Point.t) =
    (int_of_float (Float.floor (p.x /. reach)), int_of_float (Float.floor (p.y /. reach)))
  in
  (* One lookup per node: buckets are mutated in place instead of a
     find-then-replace pair of probes. *)
  let cells : (int * int, Node.id list ref) Hashtbl.t = Hashtbl.create (max 16 n) in
  Array.iter
    (fun (node : Node.t) ->
      let key = cell_of node.pos in
      match Hashtbl.find_opt cells key with
      | Some bucket -> bucket := node.id :: !bucket
      | None -> Hashtbl.add cells key (ref [ node.id ]))
    nodes;
  let sense_thr = Propagation.sense_threshold prop in
  let sensed = Array.make n [||] in
  let rx = Array.make n [||] in
  (* Scratch buffers sized for the worst case (everyone in range), reused
     across nodes so the build allocates only the final per-node arrays. *)
  let links_buf = Array.make (max 1 (n - 1)) { peer = 0; power = 0.0 } in
  let rx_buf = Array.make (max 1 (n - 1)) 0 in
  Array.iter
    (fun (node : Node.t) ->
      let cx, cy = cell_of node.pos in
      let n_links = ref 0 in
      let n_rx = ref 0 in
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          match Hashtbl.find_opt cells (cx + dx, cy + dy) with
          | None -> ()
          | Some bucket ->
            List.iter
              (fun j ->
                if j <> node.id then begin
                  let power =
                    Propagation.received_power prop ~src:nodes.(j).Node.pos ~dst:node.pos
                  in
                  if power >= sense_thr then begin
                    links_buf.(!n_links) <- { peer = j; power };
                    incr n_links;
                    if power >= 1.0 then begin
                      rx_buf.(!n_rx) <- j;
                      incr n_rx
                    end
                  end
                end)
              !bucket
        done
      done;
      (* Sorted by peer id: deterministic independent of bucket iteration
         order, and can_decode becomes a binary search. *)
      let links = Array.sub links_buf 0 !n_links in
      Array.sort (fun a b -> Int.compare a.peer b.peer) links;
      let decodable = Array.sub rx_buf 0 !n_rx in
      Array.sort Int.compare decodable;
      sensed.(node.id) <- links;
      rx.(node.id) <- decodable)
    nodes;
  { deployment; kind = Radio prop; graph = { Graph.sensed; rx; csr_cache = None } }

let synthetic ~family deployment graph =
  if Deployment.size deployment <> Graph.size graph then
    invalid_arg "Topology.synthetic: deployment/graph size mismatch";
  (* The protocols size their geometric structures (voting windows, frame
     coordinate lattices, watch squares) from the radio range; an explicit
     graph has none, so the longest embedded edge stands in for it: every
     decodable peer is within this distance of its receiver. *)
  let nodes = deployment.Deployment.nodes in
  let coord_range = ref 1.0 in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun j ->
          let d = Point.dist_l2 nodes.(i).Node.pos nodes.(j).Node.pos in
          if d > !coord_range then coord_range := d)
        row)
    graph.Graph.rx;
  { deployment; kind = Synthetic { family; coord_range = !coord_range }; graph }

let graph t = t.graph
let deployment t = t.deployment
let kind t = t.kind
let is_geometric t = match t.kind with Radio _ -> true | Synthetic _ -> false
let family t = match t.kind with Radio _ -> "radio" | Synthetic { family; _ } -> family
let sensed t = t.graph.Graph.sensed
let rx t = t.graph.Graph.rx

(* Range stand-ins for the protocol layers: under a radio model these are
   the propagation ranges; on an explicit graph both collapse to the
   longest embedded edge. *)
let sense_reach t =
  match t.kind with
  | Radio prop -> Propagation.sense_range prop
  | Synthetic { coord_range; _ } -> coord_range

let rx_reach t =
  match t.kind with
  | Radio prop -> Propagation.rx_range prop
  | Synthetic { coord_range; _ } -> coord_range

let position t id = t.deployment.Deployment.nodes.(id).Node.pos
let size t = Graph.size t.graph
let can_decode t ~rx ~tx = Graph.can_decode t.graph ~rx ~tx
let hops_from t src = Graph.hops_from t.graph src
let hop_diameter_from t src = Graph.hop_diameter_from t.graph src
let reachable_from t src = Graph.reachable_from t.graph src
let avg_degree t = Graph.avg_degree t.graph
