type link = { peer : Node.id; power : float }

type t = {
  deployment : Deployment.t;
  prop : Propagation.t;
  sensed : link array array;
  rx : Node.id array array;
}

(* Spatial hash with cells of the sense range: all neighbours of a node lie
   in its own or the 8 surrounding cells.  The cell index must be the
   floor of the scaled coordinate: [int_of_float] truncates toward zero,
   which would merge (-reach, 0) with [0, reach) into one double-width
   cell on each axis for deployments that extend into negative
   coordinates. *)
let build (deployment : Deployment.t) prop =
  let nodes = deployment.Deployment.nodes in
  let n = Array.length nodes in
  let reach = max 1e-6 (Propagation.sense_range prop) in
  let cell_of (p : Point.t) =
    (int_of_float (Float.floor (p.x /. reach)), int_of_float (Float.floor (p.y /. reach)))
  in
  let cells = Hashtbl.create (max 16 n) in
  Array.iter
    (fun (node : Node.t) ->
      let key = cell_of node.pos in
      Hashtbl.replace cells key (node.id :: (try Hashtbl.find cells key with Not_found -> [])))
    nodes;
  let sense_thr = Propagation.sense_threshold prop in
  let sensed = Array.make n [||] in
  let rx = Array.make n [||] in
  Array.iter
    (fun (node : Node.t) ->
      let cx, cy = cell_of node.pos in
      let links = ref [] in
      let decodable = ref [] in
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          match Hashtbl.find_opt cells (cx + dx, cy + dy) with
          | None -> ()
          | Some ids ->
            List.iter
              (fun j ->
                if j <> node.id then begin
                  let power =
                    Propagation.received_power prop ~src:nodes.(j).Node.pos ~dst:node.pos
                  in
                  if power >= sense_thr then begin
                    links := { peer = j; power } :: !links;
                    if power >= 1.0 then decodable := j :: !decodable
                  end
                end)
              ids
        done
      done;
      sensed.(node.id) <- Array.of_list !links;
      rx.(node.id) <- Array.of_list !decodable)
    nodes;
  { deployment; prop; sensed; rx }

let position t id = t.deployment.Deployment.nodes.(id).Node.pos
let size t = Array.length t.deployment.Deployment.nodes

let can_decode t ~rx:receiver ~tx =
  Array.exists (fun j -> j = tx) t.rx.(receiver)

let hops_from t src =
  let n = size t in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.rx.(u)
  done;
  dist

let hop_diameter_from t src = Array.fold_left max 0 (hops_from t src)

let reachable_from t src =
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 (hops_from t src)

let avg_degree t =
  let n = size t in
  if n = 0 then 0.0
  else begin
    let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.rx in
    float_of_int total /. float_of_int n
  end
