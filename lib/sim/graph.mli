(** The abstract decode/sense graph every simulation runs on.

    This is the engine's and the protocols' actual substrate: who can decode
    whom ([rx]) and who puts detectable energy on whose channel ([sensed]),
    plus the graph-theoretic measurements the experiments report against.
    It carries no geometry — {!Topology} pairs a graph with a node embedding
    and records how the graph was obtained (a radio propagation model, or
    one of the explicit generated families in {!Graphs}). *)

type link = { peer : Node.id; power : float }
(** An incoming link: transmissions of [peer] arrive with the given
    normalised power (1.0 = decode threshold). *)

type csr = {
  out_off : int array;  (** row offsets, length [size + 1] *)
  out_rcv : int array;  (** receivers sensing node [i]: slice [out_off.(i) .. out_off.(i+1) - 1] *)
  out_pow : float array;  (** power each receiver in [out_rcv] gets [i]'s transmissions at *)
}
(** The sense relation transposed into compressed-sparse-row form — the
    engine's fan-out structure.  Receivers appear {e descending} within each
    row: the iteration order of the engine's original cons-list
    representation, which per-link loss draws and capture tie-breaks
    depend on bit-for-bit. *)

type t = {
  sensed : link array array;
      (** [sensed.(i)] lists every node whose transmissions put detectable
          energy on [i]'s channel, with power, sorted by peer id. *)
  rx : Node.id array array;
      (** [rx.(i)] lists nodes that [i] can decode (power ≥ 1.0), sorted
          ascending — [can_decode] binary-searches these rows. *)
  mutable csr_cache : csr option;
      (** private lazily-built cache behind {!csr}; always construct it as
          [None] and read it only through {!csr} *)
}

val csr : t -> csr
(** The cached CSR fan-out view of [sensed], built on first demand.  Safe
    to call from exactly one domain at a time; the sharded engine forces it
    on the coordinator before spawning workers. *)

val make : sensed:link array array -> rx:Node.id array array -> t
(** Copy, sort and validate the rows.  Raises [Invalid_argument] on
    out-of-range peers, self-loops, duplicate links, negative powers, or an
    [rx] edge absent from [sensed]. *)

val of_rx : Node.id array array -> t
(** Decode-only graph: [sensed] mirrors [rx] at exactly the decode
    threshold (the shape every generated graph family uses). *)

val of_edges : n:int -> (Node.id * Node.id) list -> t
(** Undirected graph from an edge list; duplicate edges are merged. *)

val size : t -> int
val can_decode : t -> rx:Node.id -> tx:Node.id -> bool
val degree : t -> Node.id -> int

val hops_from : t -> Node.id -> int array
(** BFS hop counts over the decode graph; [-1] marks unreachable nodes. *)

val hop_diameter_from : t -> Node.id -> int
val reachable_from : t -> Node.id -> int
val is_connected : t -> bool
val avg_degree : t -> float
val max_degree : t -> int

val is_symmetric : t -> bool
(** Every decode edge has its reverse (all generated families are
    undirected; radio graphs under asymmetric power need not be). *)
