(** Synchronous round engine.

    Time advances in slots ("rounds", Section 3); in each round every node
    either transmits or listens, and each listener observes the resolution
    of all transmissions that reach it (silence / clear message / busy).
    This is the substrate replacing the WSNet simulator: the paper drives
    its protocols from a synchronised TDMA clock, which a synchronous engine
    reproduces exactly, while the channel model supplies the realistic
    effects (capture, loss) the paper notes its analysis omits.

    The engine is polymorphic in the on-air payload type ['m]. *)

type 'm action = Silent | Transmit of 'm

type 'm machine = {
  act : int -> 'm action;  (** called once per round with the round number *)
  observe : int -> 'm Channel.observation -> unit;
      (** called once per round, after all [act]s, with what the node's
          radio observed *)
  delivered : unit -> Bitvec.t option;
      (** the broadcast payload this node has accepted, once complete *)
}

val silent_machine : 'm machine
(** A machine that never transmits and never delivers (crashed device). *)

type result = {
  rounds_used : int;  (** rounds executed before stopping *)
  hit_cap : bool;  (** true when stopped by the round cap *)
  delivered : Bitvec.t option array;  (** per-node accepted message *)
  completion_round : int array;  (** first round with a delivery; -1 if none *)
  broadcasts : int array;  (** transmissions made per node *)
}

type round_digest = {
  round : int;
  transmitters : int list;  (** ids that transmitted, ascending *)
  observations : int array;
      (** per-node fingerprint of what the radio resolved:
          0 = silence, 1 = busy, >= 2 = clear (payload hash) *)
}
(** A compact per-round summary of all channel activity, for trace
    comparison (see [Check.Determinism]).  Fingerprints collapse payloads
    to a hash: equal traces are necessary for equal runs, and a fingerprint
    mismatch pinpoints the first divergent round. *)

val fingerprint_observation : 'm Channel.observation -> int

val run :
  ?rng:Rng.t ->
  ?channel:Channel.params ->
  ?stop_when:(unit -> bool) ->
  ?stop_stride:int ->
  ?idle_stop:int ->
  ?tap:(round_digest -> unit) ->
  topology:Topology.t ->
  machines:'m machine array ->
  waiters:bool array ->
  cap:int ->
  unit ->
  result
(** Run until every node marked in [waiters] has delivered (or [stop_when]
    returns true, polled every [stop_stride] rounds — default 96, chosen to
    keep progress-based cut-offs off the per-round hot path), or until
    [cap] rounds.
    [tap], if given, receives one [round_digest] per executed round (after
    all observations of that round were delivered); untraced runs pay
    nothing for the hook.
    [idle_stop], if given, also stops the run after that many consecutive
    rounds in which nobody transmitted: all machines here are
    schedule-driven, so a silent schedule cycle (beyond the one silent
    cycle an all-zero parity/data pair can produce) means the network can
    never make progress again — e.g. disconnected nodes in the crash
    experiments.  Choose it of at least two full schedule cycles.
    [channel] defaults to [Channel.ideal].  [rng] is needed whenever the
    channel has losses.  [machines] and [waiters] must have one entry per
    node of the topology. *)
