(** Synchronous round engine.

    Time advances in slots ("rounds", Section 3); in each round every node
    either transmits or listens, and each listener observes the resolution
    of all transmissions that reach it (silence / clear message / busy).
    This is the substrate replacing the WSNet simulator: the paper drives
    its protocols from a synchronised TDMA clock, which a synchronous engine
    reproduces exactly, while the channel model supplies the realistic
    effects (capture, loss) the paper notes its analysis omits.

    Because the protocols are TDMA-scheduled, most machines are
    deterministically silent in most rounds; the default [`Sparse] loop
    exploits that with a calendar of machine wakeups (the discrete-event
    trick WSNet itself uses), skipping idle rounds outright and polling
    only the machines whose {!machine.next_active} contract — or an
    incoming transmission — makes the round meaningful to them.  The
    [`Dense] loop, which polls everything every round, is kept as the
    executable reference; a property test pins the two byte-identical.

    The engine is polymorphic in the on-air payload type ['m]. *)

type 'm action = Silent | Transmit of 'm

type 'm slots = { mutable payloads : 'm array; mutable count : int }
(** The current round's transmissions in global ascending-transmitter
    order, reused across rounds.  Packed observers decode a clear code [p]
    as [payloads.(Channel.Packed.slot p)].  Only the first [count] entries
    are meaningful, and only during the observe sweep of the round. *)

type 'm machine = {
  act : int -> 'm action;  (** called once per polled round with the round number *)
  observe : int -> 'm Channel.observation -> unit;
      (** called once per polled round, after all [act]s, with what the
          node's radio observed *)
  observe_packed : (int -> int -> 'm slots -> unit) option;
      (** Allocation-free fast path for [observe]: when present, the engine
          calls [f round code slots] with a {!Channel.Packed} code instead
          of materialising the observation variant.  Must be behaviourally
          identical to [observe round (observation_of_packed slots code)];
          the equivalence suite runs every protocol both ways.  [None]
          falls back to [observe]. *)
  delivered : unit -> Bitvec.t option;
      (** the broadcast payload this node has accepted, once complete *)
  next_active : int -> int;
      (** Wakeup contract: [next_active r] is the earliest round [>= r] at
          which the machine may transmit or needs to distinguish the
          channel from silence ([max_int]: never again).  For any round
          the contract does not cover, the machine promises that [act]
          would return [Silent] without meaningful side effects and that
          [observe]-ing the implied [Silence] is a no-op — the sparse
          engine then skips both calls.  Transmissions that reach the node
          are always delivered through [observe], whatever the contract
          says, and the contract is re-queried after every poll (so it may
          depend on state updated by a reception).  Use {!always_active}
          to opt out of skipping. *)
}

val observation_of_packed : 'm slots -> int -> 'm Channel.observation
(** Decode a packed code against the round's slots — the bridge the engine
    uses for machines without a packed observer. *)

val boxed_machine : 'm machine -> 'm machine
(** [boxed_machine m] is [m] with the packed fast path disabled, forcing
    the variant [observe] route — the equivalence suite's lever for pinning
    the two paths byte-identical. *)

val always_active : int -> int
(** The identity contract: wake me every round (dense behaviour for this
    machine; the safe default for ad-hoc test machines). *)

val never_active : int -> int
(** [fun _ -> max_int]: never wake me (receptions still arrive). *)

val silent_machine : 'm machine
(** A machine that never transmits and never delivers (crashed device). *)

type mode = [ `Dense | `Sparse | `Sharded of int ]
(** [`Sparse] (the default): calendar-driven wakeup loop.  [`Dense]: the
    reference loop polling all machines every round.  [`Sharded tiles]:
    the sparse loop cut into [tiles] disjoint tiles of machines, one
    domain each, exchanging boundary transmissions at a deterministic
    per-round barrier (tile count clamped to the node count; 1 tile falls
    back to [`Sparse]).  All three produce byte-identical results —
    including tap traces — for machines honouring the
    {!machine.next_active} contract; the mode is purely a performance
    choice. *)

type result = {
  rounds_used : int;  (** rounds executed before stopping *)
  active_rounds : int;
      (** rounds in which at least one machine transmitted; mode-independent
          (the sparse loops skip only all-silent rounds), and the denominator
          of the allocation-rate gate (minor words / active round) *)
  hit_cap : bool;  (** true when stopped by the round cap *)
  delivered : Bitvec.t option array;  (** per-node accepted message *)
  completion_round : int array;  (** first round with a delivery; -1 if none *)
  broadcasts : int array;  (** transmissions made per node *)
}

type round_digest = {
  round : int;
  transmitters : int list;  (** ids that transmitted, ascending *)
  observations : int array;
      (** per-node fingerprint of what the radio resolved:
          0 = silence, 1 = busy, >= 2 = clear (payload hash) *)
}
(** A compact per-round summary of all channel activity, for trace
    comparison (see [Check.Determinism]).  Fingerprints collapse payloads
    to a hash: equal traces are necessary for equal runs, and a fingerprint
    mismatch pinpoints the first divergent round. *)

val fingerprint_observation : 'm Channel.observation -> int

val fingerprint_payload : 'm -> int
(** The clear-observation fingerprint ([>= 2]) of a payload; the engine
    computes it once per transmission slot and reuses it for every receiver
    of that slot. *)

val run :
  ?mode:mode ->
  ?rng:Rng.t ->
  ?channel:Channel.params ->
  ?stop_when:(unit -> bool) ->
  ?stop_stride:int ->
  ?idle_stop:int ->
  ?tap:(round_digest -> unit) ->
  ?tile_of:int array ->
  topology:Topology.t ->
  machines:'m machine array ->
  waiters:bool array ->
  cap:int ->
  unit ->
  result
(** Run until every node marked in [waiters] has delivered (or [stop_when]
    returns true, polled every [stop_stride] rounds — default 96, chosen to
    keep progress-based cut-offs off the per-round hot path), or until
    [cap] rounds.
    [mode] selects the loop implementation (default [`Sparse]); results
    are identical, so the choice is purely a performance one, but pass it
    explicitly — the source lint flags call sites that leave it implicit.
    [tile_of], meaningful only with [`Sharded tiles], overrides the
    {!Shard.partition} tile assignment: one entry per node, each in
    [0 .. tiles - 1] (after clamping to the node count).  Any assignment
    yields byte-identical results; only load balance and halo traffic
    change.  Ignored by the serial modes.
    [tap], if given, receives one [round_digest] per executed round (after
    all observations of that round were delivered); rounds the sparse loop
    skips produce all-silent digests, so traces are mode-independent;
    untraced runs pay nothing for the hook.
    [idle_stop], if given, also stops the run after that many consecutive
    rounds in which nobody transmitted: all machines here are
    schedule-driven, so a silent schedule cycle (beyond the one silent
    cycle an all-zero parity/data pair can produce) means the network can
    never make progress again — e.g. disconnected nodes in the crash
    experiments.  Choose it of at least two full schedule cycles.
    [channel] defaults to [Channel.ideal].  [rng] is needed whenever the
    channel has losses.  [machines] and [waiters] must have one entry per
    node of the topology. *)
