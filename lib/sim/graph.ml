type link = { peer : Node.id; power : float }

type csr = { out_off : int array; out_rcv : int array; out_pow : float array }

type t = {
  sensed : link array array;
  rx : Node.id array array;
  mutable csr_cache : csr option;
}

let size t = Array.length t.rx

(* Outgoing links in CSR form: out_rcv/out_pow.(out_off.(i) ..
   out_off.(i+1) - 1) are the receivers that sense node i and the power
   they receive it at, so engine fan-out walks a flat slice instead of
   chasing list cells.  Receivers descending within each row — the order
   the engine's former cons-list representation iterated them in — so
   per-link loss draws and capture tie-breaks reproduce the reference
   results bit for bit.  Built on first demand and cached: repeated
   [Engine.run] calls over one topology (equivalence captures, warm
   campaign rounds, mobility epochs re-using a topology) stop paying the
   O(links) rebuild.  The cache is initialized from whichever single
   domain first runs the graph — engine shards only ever read it after
   the coordinator has forced it. *)
let csr t =
  match t.csr_cache with
  | Some c -> c
  | None ->
    let n = size t in
    let out_off = Array.make (n + 1) 0 in
    Array.iter
      (fun links ->
        Array.iter (fun { peer; _ } -> out_off.(peer + 1) <- out_off.(peer + 1) + 1) links)
      t.sensed;
    for i = 1 to n do
      out_off.(i) <- out_off.(i) + out_off.(i - 1)
    done;
    let links_total = out_off.(n) in
    let out_rcv = Array.make (max 1 links_total) 0 in
    let out_pow = Array.make (max 1 links_total) 0.0 in
    let cursor = Array.init n (fun i -> out_off.(i)) in
    for receiver = n - 1 downto 0 do
      Array.iter
        (fun { peer; power } ->
          let k = cursor.(peer) in
          out_rcv.(k) <- receiver;
          out_pow.(k) <- power;
          cursor.(peer) <- k + 1)
        t.sensed.(receiver)
    done;
    let c = { out_off; out_rcv; out_pow } in
    t.csr_cache <- Some c;
    c

(* Rows sorted by peer id: deterministic independent of construction order,
   and [can_decode] becomes a binary search. *)
let sort_rows sensed rx =
  Array.iter (fun row -> Array.sort (fun a b -> Int.compare a.peer b.peer) row) sensed;
  Array.iter (fun row -> Array.sort Int.compare row) rx

let validate t =
  let n = size t in
  if Array.length t.sensed <> n then invalid_arg "Graph: sensed/rx row count mismatch";
  let seen = Array.make (max 1 n) (-1) in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun { peer; power } ->
          if peer < 0 || peer >= n then invalid_arg "Graph: link peer out of range";
          if peer = i then invalid_arg "Graph: self-loop";
          if power < 0.0 then invalid_arg "Graph: negative link power";
          if seen.(peer) = i then invalid_arg "Graph: duplicate link";
          seen.(peer) <- i)
        row)
    t.sensed;
  (* Every decodable peer must also be sensed: rx is the power >= 1.0
     sub-relation of sensed. *)
  Array.iteri
    (fun i row ->
      Array.iter
        (fun peer ->
          if not (Array.exists (fun l -> l.peer = peer) t.sensed.(i)) then
            invalid_arg "Graph: rx edge missing from sensed")
        row)
    t.rx;
  t

let make ~sensed ~rx =
  let sensed = Array.map Array.copy sensed and rx = Array.map Array.copy rx in
  sort_rows sensed rx;
  validate { sensed; rx; csr_cache = None }

(* Decode-only graphs (every generated family): sensing and decoding
   coincide, at the normalised decode power. *)
let of_rx rx =
  let sensed = Array.map (fun row -> Array.map (fun peer -> { peer; power = 1.0 }) row) rx in
  make ~sensed ~rx

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let adj = Array.make (max 1 n) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let rx =
    Array.init n (fun i -> Array.of_list (List.sort_uniq Int.compare adj.(i)))
  in
  of_rx rx

(* [rx] rows are sorted ascending, so membership is a binary search. *)
let can_decode t ~rx:receiver ~tx =
  let row = t.rx.(receiver) in
  let rec search lo hi =
    lo < hi
    &&
    let mid = (lo + hi) / 2 in
    let v = row.(mid) in
    if v = tx then true else if v < tx then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length row)

let degree t i = Array.length t.rx.(i)

let hops_from t src =
  let n = size t in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.rx.(u)
  done;
  dist

let hop_diameter_from t src = Array.fold_left max 0 (hops_from t src)

let reachable_from t src =
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 (hops_from t src)

let is_connected t = size t = 0 || reachable_from t 0 = size t

let avg_degree t =
  let n = size t in
  if n = 0 then 0.0
  else begin
    let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.rx in
    float_of_int total /. float_of_int n
  end

let max_degree t = Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.rx

let is_symmetric t =
  let n = size t in
  let ok = ref true in
  for i = 0 to n - 1 do
    Array.iter (fun j -> if not (can_decode t ~rx:j ~tx:i) then ok := false) t.rx.(i)
  done;
  !ok
