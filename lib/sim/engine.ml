type 'm action = Silent | Transmit of 'm

type 'm machine = {
  act : int -> 'm action;
  observe : int -> 'm Channel.observation -> unit;
  delivered : unit -> Bitvec.t option;
  next_active : int -> int;
}

let always_active r = r
let never_active _ = max_int

let silent_machine =
  {
    act = (fun _ -> Silent);
    observe = (fun _ _ -> ());
    delivered = (fun () -> None);
    next_active = never_active;
  }

type mode = [ `Dense | `Sparse ]

type result = {
  rounds_used : int;
  hit_cap : bool;
  delivered : Bitvec.t option array;
  completion_round : int array;
  broadcasts : int array;
}

type round_digest = { round : int; transmitters : int list; observations : int array }

let fingerprint_observation = function
  | Channel.Silence -> 0
  | Channel.Busy -> 1
  | Channel.Clear payload ->
    (* The default Hashtbl.hash stops after 10 meaningful nodes; deep
       payloads would alias in determinism-checker traces. *)
    2 + (Hashtbl.hash_param 64 128 payload land 0x3FFFFFFF)

let run ?(mode : mode = `Sparse) ?rng ?(channel = Channel.ideal) ?stop_when ?(stop_stride = 96)
    ?idle_stop ?tap ~topology ~machines ~waiters ~cap () =
  let n = Topology.size topology in
  if Array.length machines <> n || Array.length waiters <> n then
    invalid_arg "Engine.run: machines/waiters size mismatch";
  let broadcasts = Array.make n 0 in
  let completion_round = Array.make n (-1) in
  let sensed = Topology.sensed topology in
  (* Outgoing links in CSR form: out_rcv/out_pow.(out_off.(i) ..
     out_off.(i+1) - 1) are the receivers that sense node i and the power
     they receive it at, so Phase 1 fan-out walks a flat slice instead of
     chasing list cells. *)
  let out_off = Array.make (n + 1) 0 in
  Array.iter
    (fun links ->
      Array.iter (fun { Topology.peer; _ } -> out_off.(peer + 1) <- out_off.(peer + 1) + 1) links)
    sensed;
  for i = 1 to n do
    out_off.(i) <- out_off.(i) + out_off.(i - 1)
  done;
  let links_total = out_off.(n) in
  let out_rcv = Array.make (max 1 links_total) 0 in
  let out_pow = Array.make (max 1 links_total) 0.0 in
  (* Receivers descending within each row — the order the former cons-list
     representation iterated them in — so per-link loss draws and capture
     tie-breaks reproduce the reference results bit for bit. *)
  let cursor = Array.init n (fun i -> out_off.(i)) in
  for receiver = n - 1 downto 0 do
    Array.iter
      (fun { Topology.peer; power } ->
        let k = cursor.(peer) in
        out_rcv.(k) <- receiver;
        out_pow.(k) <- power;
        cursor.(peer) <- k + 1)
      sensed.(receiver)
  done;
  (* Flat per-receiver channel aggregates instead of transmission lists:
     resolution only needs the sensed power sum, the strongest decodable
     signal, and the signal counts, so the hot loop allocates (almost)
     nothing.  Equivalence with the reference [Channel.resolve] is covered
     by a property test. *)
  let sum_power = Array.make n 0.0 in
  let n_decodable = Array.make n 0 in
  let best_power = Array.make n 0.0 in
  let best_payload = Array.make n None in
  let has_rx = Array.make n false in
  (* The receivers touched this round, as a preallocated stack: Phase 1
     pushes each receiver at most once (guarded by [has_rx]), the
     after-round reset pops them all. *)
  let touched = Array.make (max 1 n) 0 in
  let n_touched = ref 0 in
  let loss = channel.Channel.loss_prob in
  let capture_ratio = channel.Channel.capture_ratio in
  (* Trace capture is allocated only when a tap is installed, so the hot
     path of untraced runs is untouched. *)
  let tap_fp = match tap with None -> [||] | Some _ -> Array.make n 0 in
  let tap_tx = ref [] in
  let pending = ref 0 in
  Array.iter (fun w -> if w then incr pending) waiters;
  let round = ref 0 in
  let fan_out i payload =
    broadcasts.(i) <- broadcasts.(i) + 1;
    if tap <> None then tap_tx := i :: !tap_tx;
    let payload_opt = Some payload in
    for k = out_off.(i) to out_off.(i + 1) - 1 do
      let receiver = out_rcv.(k) and power = out_pow.(k) in
      if not has_rx.(receiver) then begin
        has_rx.(receiver) <- true;
        touched.(!n_touched) <- receiver;
        incr n_touched
      end;
      sum_power.(receiver) <- sum_power.(receiver) +. power;
      let lost =
        power >= 1.0 && loss > 0.0
        &&
        match rng with
        | Some r -> Rng.bernoulli r loss
        | None -> invalid_arg "Engine.run: loss_prob > 0 requires an rng"
      in
      if power >= 1.0 && not lost then begin
        n_decodable.(receiver) <- n_decodable.(receiver) + 1;
        if power > best_power.(receiver) then begin
          best_power.(receiver) <- power;
          best_payload.(receiver) <- payload_opt
        end
      end
    done
  in
  let resolve i =
    if not has_rx.(i) then Channel.Silence
    else if n_decodable.(i) = 0 then Channel.Busy
    else begin
      let interference = sum_power.(i) -. best_power.(i) in
      if
        interference <= 1e-12
        || (capture_ratio < infinity && best_power.(i) >= capture_ratio *. interference)
      then begin
        match best_payload.(i) with
        | Some payload -> Channel.Clear payload
        | None -> assert false
      end
      else Channel.Busy
    end
  in
  let reset_touched () =
    for k = 0 to !n_touched - 1 do
      let i = touched.(k) in
      sum_power.(i) <- 0.0;
      n_decodable.(i) <- 0;
      best_power.(i) <- 0.0;
      best_payload.(i) <- None;
      has_rx.(i) <- false
    done;
    n_touched := 0
  in
  (match mode with
  | `Dense ->
    (* Reference implementation: every machine polled every round. *)
    let idle_rounds = ref 0 in
    let stopped () =
      !pending = 0
      || (match idle_stop with Some k -> !idle_rounds >= k | None -> false)
      ||
      match stop_when with
      | Some f when !round mod stop_stride = 0 -> f ()
      | Some _ | None -> false
    in
    (* Nodes still being polled for completion; completed ones are
       swap-removed so Phase 3 stops scanning them every round. *)
    let active = Array.init n (fun i -> i) in
    let n_active = ref n in
    while (not (stopped ())) && !round < cap do
      let r = !round in
      let anyone_transmitted = ref false in
      (* Phase 1: collect actions and fan transmissions out to receivers. *)
      for i = 0 to n - 1 do
        match machines.(i).act r with
        | Silent -> ()
        | Transmit payload ->
          anyone_transmitted := true;
          fan_out i payload
      done;
      (* Phase 2: resolve the channel at every node and deliver observations. *)
      for i = 0 to n - 1 do
        let obs = resolve i in
        if tap <> None then tap_fp.(i) <- fingerprint_observation obs;
        machines.(i).observe r obs
      done;
      begin
        match tap with
        | None -> ()
        | Some f ->
          f { round = r; transmitters = List.rev !tap_tx; observations = Array.copy tap_fp };
          tap_tx := []
      end;
      reset_touched ();
      (* Phase 3: completion bookkeeping over the not-yet-complete worklist. *)
      let k = ref 0 in
      while !k < !n_active do
        let i = active.(!k) in
        match machines.(i).delivered () with
        | Some _ ->
          completion_round.(i) <- r;
          if waiters.(i) then decr pending;
          decr n_active;
          active.(!k) <- active.(!n_active)
        | None -> incr k
      done;
      if !anyone_transmitted then idle_rounds := 0 else incr idle_rounds;
      incr round
    done
  | `Sparse ->
    (* Wakeup-driven loop.  Invariants tying it to the dense reference:
       - a machine is polled (act + observe) at round r iff its wakeup
         contract covers r or a transmission reached it; the contract
         promises that in all other rounds act returns Silent without
         side effects and observe of the implied Silence is a no-op;
       - scheduled machines are processed in ascending id, like the dense
         0..n-1 sweep, so loss draws, capture ties and tap transmitter
         order are identical;
       - the stop conditions (waiters, idle cut-off, strided stop_when)
         are evaluated for skipped rounds exactly as the dense loop would
         have, including the call count of the stateful stop_when;
       - a tap sees one digest per round, skipped rounds fingerprinting
         as uniform silence. *)
    let cal = Calendar.create ~capacity:(2 * (n + 1)) () in
    let sched_stamp = Array.make (max 1 n) (-1) in
    (* Machines stamped directly for the very next round, bypassing the
       heap.  Inside a relevant TDMA interval a machine wakes six rounds
       in a row; paying a pop + push per poll would cost more than the
       act/observe calls the sparse loop saves, so only wakeups that
       actually jump ahead go through the calendar. *)
    let pre = ref 0 in
    let pre_next = ref 0 in
    let schedule_machine i q =
      let na = machines.(i).next_active q in
      let na = if na < q then q else na in
      if na < cap then begin
        if na = q then begin
          (* [q] is always the round after the one being processed, so a
             same-round wakeup is a stamp for the next iteration. *)
          if sched_stamp.(i) <> q then begin
            sched_stamp.(i) <- q;
            incr pre_next
          end
        end
        else Calendar.add cal na i
      end
    in
    for i = 0 to n - 1 do
      let na = machines.(i).next_active 0 in
      if na <= 0 then begin
        if sched_stamp.(i) <> 0 then begin
          sched_stamp.(i) <- 0;
          incr pre_next
        end
      end
      else if na < cap then Calendar.add cal na i
    done;
    (* Round 0 always executes: the dense loop's first Phase 3 scans all
       machines, recording construction-time deliveries (sources, liars). *)
    if cap > 0 && n > 0 && sched_stamp.(0) <> 0 then begin
      sched_stamp.(0) <- 0;
      incr pre_next
    end;
    pre := !pre_next;
    pre_next := 0;
    let completed = Array.make (max 1 n) false in
    let last_tx = ref (-1) in
    let idle_limit = match idle_stop with Some k -> k | None -> max_int in
    let has_idle_stop = idle_stop <> None in
    let check_complete i r =
      if not completed.(i) then begin
        match machines.(i).delivered () with
        | Some _ ->
          completed.(i) <- true;
          completion_round.(i) <- r;
          if waiters.(i) then decr pending
        | None -> ()
      end
    in
    (* The dense loop's [stopped] at the top of round r, with its idle
       counter reconstructed as r - 1 - last_tx (consecutive silent rounds
       ending at r - 1), and the same short-circuit order. *)
    let check_stop r =
      !pending = 0
      || (has_idle_stop && r - 1 - !last_tx >= idle_limit)
      ||
      match stop_when with
      | Some f when r mod stop_stride = 0 -> f ()
      | Some _ | None -> false
    in
    let stopping = ref false in
    let silent_digest r = { round = r; transmitters = []; observations = Array.make n 0 } in
    (* Skip the all-silent rounds in [!round, target) in O(1) per stride
       check, stopping where the dense loop would have. *)
    let advance_silent target =
      if !pending = 0 then stopping := true
      else begin
        (* First round at which the idle cut-off fires, absent further
           transmissions. *)
        let idle_bound = if has_idle_stop then !last_tx + idle_limit + 1 else max_int in
        let bound = min target idle_bound in
        let stop_round = ref bound in
        (match stop_when with
        | Some f ->
          (* stop_when is stateful (progress counters): call it at every
             stride multiple the dense loop would have, in order. *)
          let r = ref ((!round + stop_stride - 1) / stop_stride * stop_stride) in
          let checking = ref true in
          while !checking && !r < bound do
            if f () then begin
              stop_round := !r;
              checking := false
            end
            else r := !r + stop_stride
          done
        | None -> ());
        (match tap with
        | Some g ->
          for q = !round to !stop_round - 1 do
            g (silent_digest q)
          done
        | None -> ());
        round := !stop_round;
        if !stop_round < target then stopping := true
      end
    in
    let process_round r =
      (* Drain this round's wakeups; the stamp array both dedupes multiple
         calendar entries per machine and drives the ascending-id sweeps
         below. *)
      while (not (Calendar.is_empty cal)) && Calendar.min_key cal = r do
        sched_stamp.(Calendar.pop_min cal) <- r
      done;
      let any_tx = ref false in
      (* Phase 1 over the scheduled machines only. *)
      for i = 0 to n - 1 do
        if sched_stamp.(i) = r then begin
          match machines.(i).act r with
          | Silent -> ()
          | Transmit payload ->
            any_tx := true;
            fan_out i payload
        end
      done;
      (* Phase 2 restricted to scheduled machines and touched receivers;
         everyone else observes the silence implied by the contract. *)
      for i = 0 to n - 1 do
        if sched_stamp.(i) = r || has_rx.(i) then begin
          let obs = resolve i in
          if tap <> None then tap_fp.(i) <- fingerprint_observation obs;
          machines.(i).observe r obs
        end
      done;
      begin
        match tap with
        | None -> ()
        | Some f ->
          f { round = r; transmitters = List.rev !tap_tx; observations = Array.copy tap_fp };
          tap_tx := [];
          (* Restore the all-silent background the skipped-round digests
             rely on. *)
          for i = 0 to n - 1 do
            if sched_stamp.(i) = r || has_rx.(i) then tap_fp.(i) <- 0
          done
      end;
      (* Phase 3 + rescheduling over the polled set (all machines in round
         0, for construction-time deliveries), before the channel scratch
         is cleared so [has_rx] still marks the touched receivers.  A poll
         can change any machine state, so its wakeup is re-asked after
         every poll — e.g. an epidemic relay that just received the packet
         now wants its own slot. *)
      for i = 0 to n - 1 do
        if sched_stamp.(i) = r || has_rx.(i) then begin
          check_complete i r;
          schedule_machine i (r + 1)
        end
        else if r = 0 then check_complete i 0
      done;
      reset_touched ();
      if !any_tx then last_tx := r;
      pre := !pre_next;
      pre_next := 0
    in
    while (not !stopping) && !round < cap do
      let target =
        if !pre > 0 then !round
        else if Calendar.is_empty cal then cap
        else min cap (Calendar.min_key cal)
      in
      if target > !round then advance_silent target;
      if (not !stopping) && !round < cap && !round = target then begin
        if check_stop !round then stopping := true
        else begin
          process_round !round;
          incr round
        end
      end
    done);
  {
    rounds_used = !round;
    hit_cap = !round >= cap && !pending > 0;
    delivered = Array.init n (fun i -> machines.(i).delivered ());
    completion_round;
    broadcasts;
  }
