type 'm action = Silent | Transmit of 'm

type 'm machine = {
  act : int -> 'm action;
  observe : int -> 'm Channel.observation -> unit;
  delivered : unit -> Bitvec.t option;
}

let silent_machine =
  { act = (fun _ -> Silent); observe = (fun _ _ -> ()); delivered = (fun () -> None) }

type result = {
  rounds_used : int;
  hit_cap : bool;
  delivered : Bitvec.t option array;
  completion_round : int array;
  broadcasts : int array;
}

type round_digest = { round : int; transmitters : int list; observations : int array }

let fingerprint_observation = function
  | Channel.Silence -> 0
  | Channel.Busy -> 1
  | Channel.Clear payload ->
    (* The default Hashtbl.hash stops after 10 meaningful nodes; deep
       payloads would alias in determinism-checker traces. *)
    2 + (Hashtbl.hash_param 64 128 payload land 0x3FFFFFFF)

let run ?rng ?(channel = Channel.ideal) ?stop_when ?(stop_stride = 96) ?idle_stop ?tap ~topology
    ~machines ~waiters ~cap () =
  let n = Topology.size topology in
  if Array.length machines <> n || Array.length waiters <> n then
    invalid_arg "Engine.run: machines/waiters size mismatch";
  let broadcasts = Array.make n 0 in
  let completion_round = Array.make n (-1) in
  (* Outgoing links: receivers that sense node i, with received power. *)
  let out = Array.make n [] in
  Array.iteri
    (fun receiver links ->
      Array.iter
        (fun { Topology.peer; power } -> out.(peer) <- (receiver, power) :: out.(peer))
        links)
    topology.Topology.sensed;
  (* Flat per-receiver channel aggregates instead of transmission lists:
     resolution only needs the sensed power sum, the strongest decodable
     signal, and the signal counts, so the hot loop allocates (almost)
     nothing.  Equivalence with the reference [Channel.resolve] is covered
     by a property test. *)
  let sum_power = Array.make n 0.0 in
  let n_decodable = Array.make n 0 in
  let best_power = Array.make n 0.0 in
  let best_payload = Array.make n None in
  let has_rx = Array.make n false in
  let touched = ref [] in
  let loss = channel.Channel.loss_prob in
  let capture_ratio = channel.Channel.capture_ratio in
  (* Trace capture is allocated only when a tap is installed, so the hot
     path of untraced runs is untouched. *)
  let tap_fp = match tap with None -> [||] | Some _ -> Array.make n 0 in
  let tap_tx = ref [] in
  let pending = ref 0 in
  Array.iter (fun w -> if w then incr pending) waiters;
  let round = ref 0 in
  let idle_rounds = ref 0 in
  let stopped () =
    !pending = 0
    || (match idle_stop with Some k -> !idle_rounds >= k | None -> false)
    ||
    match stop_when with
    | Some f when !round mod stop_stride = 0 -> f ()
    | Some _ | None -> false
  in
  (* Nodes still being polled for completion; completed ones are
     swap-removed so Phase 3 stops scanning them every round. *)
  let active = Array.init n (fun i -> i) in
  let n_active = ref n in
  while (not (stopped ())) && !round < cap do
    let r = !round in
    let anyone_transmitted = ref false in
    (* Phase 1: collect actions and fan transmissions out to receivers. *)
    for i = 0 to n - 1 do
      match machines.(i).act r with
      | Silent -> ()
      | Transmit payload ->
        anyone_transmitted := true;
        broadcasts.(i) <- broadcasts.(i) + 1;
        if tap <> None then tap_tx := i :: !tap_tx;
        let payload_opt = Some payload in
        List.iter
          (fun (receiver, power) ->
            if not has_rx.(receiver) then begin
              has_rx.(receiver) <- true;
              touched := receiver :: !touched
            end;
            sum_power.(receiver) <- sum_power.(receiver) +. power;
            let lost =
              power >= 1.0 && loss > 0.0
              &&
              match rng with
              | Some r -> Rng.bernoulli r loss
              | None -> invalid_arg "Engine.run: loss_prob > 0 requires an rng"
            in
            if power >= 1.0 && not lost then begin
              n_decodable.(receiver) <- n_decodable.(receiver) + 1;
              if power > best_power.(receiver) then begin
                best_power.(receiver) <- power;
                best_payload.(receiver) <- payload_opt
              end
            end)
          out.(i)
    done;
    (* Phase 2: resolve the channel at every node and deliver observations. *)
    for i = 0 to n - 1 do
      let obs =
        if not has_rx.(i) then Channel.Silence
        else if n_decodable.(i) = 0 then Channel.Busy
        else begin
          let interference = sum_power.(i) -. best_power.(i) in
          if
            interference <= 1e-12
            || (capture_ratio < infinity && best_power.(i) >= capture_ratio *. interference)
          then begin
            match best_payload.(i) with
            | Some payload -> Channel.Clear payload
            | None -> assert false
          end
          else Channel.Busy
        end
      in
      if tap <> None then tap_fp.(i) <- fingerprint_observation obs;
      machines.(i).observe r obs
    done;
    begin
      match tap with
      | None -> ()
      | Some f ->
        f { round = r; transmitters = List.rev !tap_tx; observations = Array.copy tap_fp };
        tap_tx := []
    end;
    List.iter
      (fun i ->
        sum_power.(i) <- 0.0;
        n_decodable.(i) <- 0;
        best_power.(i) <- 0.0;
        best_payload.(i) <- None;
        has_rx.(i) <- false)
      !touched;
    touched := [];
    (* Phase 3: completion bookkeeping over the not-yet-complete worklist. *)
    let k = ref 0 in
    while !k < !n_active do
      let i = active.(!k) in
      match machines.(i).delivered () with
      | Some _ ->
        completion_round.(i) <- r;
        if waiters.(i) then decr pending;
        decr n_active;
        active.(!k) <- active.(!n_active)
      | None -> incr k
    done;
    if !anyone_transmitted then idle_rounds := 0 else incr idle_rounds;
    incr round
  done;
  {
    rounds_used = !round;
    hit_cap = !round >= cap && !pending > 0;
    delivered = Array.init n (fun i -> machines.(i).delivered ());
    completion_round;
    broadcasts;
  }
