type 'm action = Silent | Transmit of 'm

(* The round's transmissions in global ascending-transmitter order.  The
   engine owns one of these per run and reuses it every round; packed
   observers read decoded payloads out of it by slot index.  [payloads] is
   lazily sized from the first payload (the engine is polymorphic in ['m],
   so there is no dummy element to preallocate with). *)
type 'm slots = { mutable payloads : 'm array; mutable count : int }

type 'm machine = {
  act : int -> 'm action;
  observe : int -> 'm Channel.observation -> unit;
  observe_packed : (int -> int -> 'm slots -> unit) option;
  delivered : unit -> Bitvec.t option;
  next_active : int -> int;
}

let always_active r = r
let never_active _ = max_int

let silent_machine =
  {
    act = (fun _ -> Silent);
    observe = (fun _ _ -> ());
    observe_packed = Some (fun _ _ _ -> ());
    delivered = (fun () -> None);
    next_active = never_active;
  }

let boxed_machine m = { m with observe_packed = None }

let observation_of_packed slots p =
  if p = 0 then Channel.Silence
  else if p land 3 = 1 then Channel.Busy
  else Channel.Clear slots.payloads.(p lsr 2)

let slots_push s capacity payload =
  if Array.length s.payloads = 0 then s.payloads <- Array.make (max 1 capacity) payload;
  s.payloads.(s.count) <- payload;
  s.count <- s.count + 1

type mode = [ `Dense | `Sparse | `Sharded of int ]

type result = {
  rounds_used : int;
  active_rounds : int;
  hit_cap : bool;
  delivered : Bitvec.t option array;
  completion_round : int array;
  broadcasts : int array;
}

type round_digest = { round : int; transmitters : int list; observations : int array }

(* The default Hashtbl.hash stops after 10 meaningful nodes; deep payloads
   would alias in determinism-checker traces. *)
let fingerprint_payload payload = 2 + (Hashtbl.hash_param 64 128 payload land 0x3FFFFFFF)

let fingerprint_observation = function
  | Channel.Silence -> 0
  | Channel.Busy -> 1
  | Channel.Clear payload -> fingerprint_payload payload

(* Tap fingerprint of a packed code: the payload hash was computed once per
   slot when the transmission entered the round (see [slot_fp] below), not
   once per (receiver, observation). *)
let fingerprint_packed slot_fp p =
  if p = 0 then 0 else if p land 3 = 1 then 1 else slot_fp.(p lsr 2)

(* One tile of a sharded run: a disjoint slice of the machines plus every
   piece of per-round state the serial sparse loop keeps globally, sized to
   the tile and touched only by the tile's own domain between barriers.
   [members] is ascending, and every array indexed by "local index" li
   refers to machine [members.(li)]. *)
type 'm tile = {
  t_id : int;
  members : int array;
  cal : Calendar.t;  (* wakeup rounds -> local indices *)
  stamp : int array;
  mutable pre : int;
  mutable pre_next : int;
  mutable t_pending : int;
  completed : bool array;
  (* channel scratch, mirroring the serial per-receiver aggregates *)
  sum_power : float array;
  n_decodable : int array;
  best_power : float array;
  best_slot : int array;
  obs_packed : int array;
  has_rx : bool array;
  touched : int array;
  mutable n_touched : int;
  (* phase-A output: this tile's transmitters (ascending) and payloads *)
  tx_ids : int array;
  txs : 'm slots;
  (* merged-slot activity words for this tile: bit m set iff merged
     transmitter m has a link into the tile.  Written by the coordinator
     during the merge, consumed and cleared by the tile in phase B — the
     halo exchange is whole words, not per-transmission lists. *)
  halo : Bitvec.t;
  (* machines polled this round, for tap fingerprint resets *)
  polled : int array;
  mutable n_polled : int;
}

let run ?(mode : mode = `Sparse) ?rng ?(channel = Channel.ideal) ?stop_when ?(stop_stride = 96)
    ?idle_stop ?tap ?tile_of ~topology ~machines ~waiters ~cap () =
  let n = Topology.size topology in
  if Array.length machines <> n || Array.length waiters <> n then
    invalid_arg "Engine.run: machines/waiters size mismatch";
  let broadcasts = Array.make n 0 in
  let completion_round = Array.make n (-1) in
  (* Outgoing links in CSR form, built once per topology and cached on the
     graph (receivers descending within each row — see Graph.csr): repeated
     runs over one topology stop paying the O(links) rebuild. *)
  let { Graph.out_off; out_rcv; out_pow } = Graph.csr (Topology.graph topology) in
  let loss = channel.Channel.loss_prob in
  let pending = ref 0 in
  Array.iter (fun w -> if w then incr pending) waiters;
  let round = ref 0 in
  (* Stop machinery shared by the sparse and sharded loops (the dense
     reference keeps its own simple counter).  [check_stop r] is the dense
     loop's [stopped] at the top of round r, with its idle counter
     reconstructed as r - 1 - last_tx (consecutive silent rounds ending at
     r - 1), and the same short-circuit order. *)
  let last_tx = ref (-1) in
  (* Rounds with at least one transmission.  All three loops detect that
     condition already (for the idle cut-off), so the count is
     mode-independent; it is the denominator of the words/active-round
     allocation gate. *)
  let active_rounds = ref 0 in
  let idle_limit = match idle_stop with Some k -> k | None -> max_int in
  let has_idle_stop = idle_stop <> None in
  let check_stop r =
    !pending = 0
    || (has_idle_stop && r - 1 - !last_tx >= idle_limit)
    ||
    match stop_when with
    | Some f when r mod stop_stride = 0 -> f ()
    | Some _ | None -> false
  in
  let stopping = ref false in
  let silent_digest r = { round = r; transmitters = []; observations = Array.make n 0 } in
  (* Skip the all-silent rounds in [!round, target) in O(1) per stride
     check, stopping where the dense loop would have. *)
  let advance_silent target =
    if !pending = 0 then stopping := true
    else begin
      (* First round at which the idle cut-off fires, absent further
         transmissions. *)
      let idle_bound = if has_idle_stop then !last_tx + idle_limit + 1 else max_int in
      let bound = min target idle_bound in
      let stop_round = ref bound in
      (match stop_when with
      | Some f ->
        (* stop_when is stateful (progress counters): call it at every
           stride multiple the dense loop would have, in order. *)
        let r = ref ((!round + stop_stride - 1) / stop_stride * stop_stride) in
        let checking = ref true in
        while !checking && !r < bound do
          if f () then begin
            stop_round := !r;
            checking := false
          end
          else r := !r + stop_stride
        done
      | None -> ());
      (match tap with
      | Some g ->
        for q = !round to !stop_round - 1 do
          g (silent_digest q)
        done
      | None -> ());
      round := !stop_round;
      if !stop_round < target then stopping := true
    end
  in
  let run_serial (mode : [ `Dense | `Sparse ]) =
    (* Flat per-receiver channel aggregates instead of transmission lists:
       resolution only needs the sensed power sum, the strongest decodable
       signal, and the signal counts, so the hot loop allocates nothing.
       [Channel.resolve_packed] turns the aggregates into packed codes;
       equivalence with the reference [Channel.resolve] is covered by a
       property test. *)
    let sum_power = Array.make n 0.0 in
    let n_decodable = Array.make n 0 in
    let best_power = Array.make n 0.0 in
    let best_slot = Array.make n 0 in
    let obs_packed = Array.make n 0 in
    let has_rx = Array.make n false in
    (* The receivers touched this round, as a preallocated stack: Phase 1
       pushes each receiver at most once (guarded by [has_rx]), the
       after-round reset pops them all. *)
    let touched = Array.make (max 1 n) 0 in
    let n_touched = ref 0 in
    let slots = { payloads = [||]; count = 0 } in
    (* Trace capture is allocated only when a tap is installed, so the hot
       path of untraced runs is untouched.  [slot_fp] memoizes the payload
       hash per transmission slot; receivers reuse it instead of re-hashing
       per observation. *)
    let tap_fp = match tap with None -> [||] | Some _ -> Array.make n 0 in
    let slot_fp = match tap with None -> [||] | Some _ -> Array.make (max 1 n) 0 in
    let polled = match tap with None -> [||] | Some _ -> Array.make (max 1 n) 0 in
    let n_polled = ref 0 in
    (* Transmitter ids per slot, mirrored out of [slots] so the trace
       record can be built outside the hot functions without a per-round
       cons list. *)
    let tap_tx = match tap with None -> [||] | Some _ -> Array.make (max 1 n) 0 in
    let fan_out i payload =
      broadcasts.(i) <- broadcasts.(i) + 1;
      let slot = slots.count in
      if tap <> None then begin
        tap_tx.(slot) <- i;
        slot_fp.(slot) <- fingerprint_payload payload
      end;
      slots_push slots n payload;
      for k = out_off.(i) to out_off.(i + 1) - 1 do
        let receiver = out_rcv.(k) and power = out_pow.(k) in
        if not has_rx.(receiver) then begin
          has_rx.(receiver) <- true;
          touched.(!n_touched) <- receiver;
          incr n_touched
        end;
        sum_power.(receiver) <- sum_power.(receiver) +. power;
        let lost =
          power >= 1.0 && loss > 0.0
          &&
          match rng with
          | Some r -> Rng.bernoulli r loss
          | None -> invalid_arg "Engine.run: loss_prob > 0 requires an rng"
        in
        if power >= 1.0 && not lost then begin
          n_decodable.(receiver) <- n_decodable.(receiver) + 1;
          if power > best_power.(receiver) then begin
            best_power.(receiver) <- power;
            best_slot.(receiver) <- slot
          end
        end
      done
    in
    let reset_touched () =
      for k = 0 to !n_touched - 1 do
        let i = touched.(k) in
        sum_power.(i) <- 0.0;
        n_decodable.(i) <- 0;
        best_power.(i) <- 0.0;
        best_slot.(i) <- 0;
        obs_packed.(i) <- 0;
        has_rx.(i) <- false
      done;
      n_touched := 0;
      slots.count <- 0
    in
    match mode with
    | `Dense ->
      (* Reference implementation: every machine polled every round. *)
      let idle_rounds = ref 0 in
      let stopped () =
        !pending = 0
        || (match idle_stop with Some k -> !idle_rounds >= k | None -> false)
        ||
        match stop_when with
        | Some f when !round mod stop_stride = 0 -> f ()
        | Some _ | None -> false
      in
      (* Nodes still being polled for completion; completed ones are
         swap-removed so Phase 3 stops scanning them every round. *)
      let active = Array.init n (fun i -> i) in
      let n_active = ref n in
      while (not (stopped ())) && !round < cap do
        let r = !round in
        (* Phase 1: collect actions and fan transmissions out to receivers. *)
        for i = 0 to n - 1 do
          match machines.(i).act r with
          | Silent -> ()
          | Transmit payload -> fan_out i payload
        done;
        let anyone_transmitted = slots.count > 0 in
        (* Phase 2: resolve the channel at every node and deliver observations. *)
        Channel.resolve_packed channel ~touched ~n_touched:!n_touched ~sum_power ~n_decodable
          ~best_power ~best_slot ~out:obs_packed;
        for i = 0 to n - 1 do
          let p = obs_packed.(i) in
          if tap <> None then tap_fp.(i) <- fingerprint_packed slot_fp p;
          match machines.(i).observe_packed with
          | Some f -> f r p slots
          | None -> machines.(i).observe r (observation_of_packed slots p)
        done;
        begin
          match tap with
          | None -> ()
          | Some f ->
            f
              {
                round = r;
                transmitters = List.init slots.count (fun m -> tap_tx.(m));
                observations = Array.copy tap_fp;
              }
        end;
        reset_touched ();
        (* Phase 3: completion bookkeeping over the not-yet-complete worklist. *)
        let k = ref 0 in
        while !k < !n_active do
          let i = active.(!k) in
          match machines.(i).delivered () with
          | Some _ ->
            completion_round.(i) <- r;
            if waiters.(i) then decr pending;
            decr n_active;
            active.(!k) <- active.(!n_active)
          | None -> incr k
        done;
        if anyone_transmitted then begin
          idle_rounds := 0;
          incr active_rounds
        end
        else incr idle_rounds;
        incr round
      done
    | `Sparse ->
      (* Wakeup-driven loop.  Invariants tying it to the dense reference:
         - a machine is polled (act + observe) at round r iff its wakeup
           contract covers r or a transmission reached it; the contract
           promises that in all other rounds act returns Silent without
           side effects and observe of the implied Silence is a no-op;
         - scheduled machines are processed in ascending id, like the dense
           0..n-1 sweep, so loss draws, capture ties and tap transmitter
           order are identical;
         - the stop conditions (waiters, idle cut-off, strided stop_when)
           are evaluated for skipped rounds exactly as the dense loop would
           have, including the call count of the stateful stop_when;
         - a tap sees one digest per round, skipped rounds fingerprinting
           as uniform silence. *)
      let cal = Calendar.create ~capacity:(2 * (n + 1)) () in
      let sched_stamp = Array.make (max 1 n) (-1) in
      (* Machines stamped directly for the very next round, bypassing the
         heap.  Inside a relevant TDMA interval a machine wakes six rounds
         in a row; paying a pop + push per poll would cost more than the
         act/observe calls the sparse loop saves, so only wakeups that
         actually jump ahead go through the calendar. *)
      let pre = ref 0 in
      let pre_next = ref 0 in
      let schedule_machine i q =
        let na = machines.(i).next_active q in
        let na = if na < q then q else na in
        if na < cap then begin
          if na = q then begin
            (* [q] is always the round after the one being processed, so a
               same-round wakeup is a stamp for the next iteration. *)
            if sched_stamp.(i) <> q then begin
              sched_stamp.(i) <- q;
              incr pre_next
            end
          end
          else Calendar.add cal na i
        end
      in
      for i = 0 to n - 1 do
        let na = machines.(i).next_active 0 in
        if na <= 0 then begin
          if sched_stamp.(i) <> 0 then begin
            sched_stamp.(i) <- 0;
            incr pre_next
          end
        end
        else if na < cap then Calendar.add cal na i
      done;
      (* Round 0 always executes: the dense loop's first Phase 3 scans all
         machines, recording construction-time deliveries (sources, liars). *)
      if cap > 0 && n > 0 && sched_stamp.(0) <> 0 then begin
        sched_stamp.(0) <- 0;
        incr pre_next
      end;
      pre := !pre_next;
      pre_next := 0;
      let completed = Array.make (max 1 n) false in
      let check_complete i r =
        if not completed.(i) then begin
          match machines.(i).delivered () with
          | Some _ ->
            completed.(i) <- true;
            completion_round.(i) <- r;
            if waiters.(i) then decr pending
          | None -> ()
        end
      in
      let process_round r =
        (* Drain this round's wakeups; the stamp array both dedupes multiple
           calendar entries per machine and drives the ascending-id sweeps
           below. *)
        while (not (Calendar.is_empty cal)) && Calendar.min_key cal = r do
          sched_stamp.(Calendar.pop_min cal) <- r
        done;
        (* Phase 1 over the scheduled machines only. *)
        for i = 0 to n - 1 do
          if sched_stamp.(i) = r then begin
            match machines.(i).act r with
            | Silent -> ()
            | Transmit payload -> fan_out i payload
          end
        done;
        let any_tx = slots.count > 0 in
        (* Phase 2 restricted to scheduled machines and touched receivers;
           everyone else observes the silence implied by the contract. *)
        Channel.resolve_packed channel ~touched ~n_touched:!n_touched ~sum_power ~n_decodable
          ~best_power ~best_slot ~out:obs_packed;
        for i = 0 to n - 1 do
          if sched_stamp.(i) = r || has_rx.(i) then begin
            let p = obs_packed.(i) in
            if tap <> None then begin
              tap_fp.(i) <- fingerprint_packed slot_fp p;
              polled.(!n_polled) <- i;
              incr n_polled
            end;
            match machines.(i).observe_packed with
            | Some f -> f r p slots
            | None -> machines.(i).observe r (observation_of_packed slots p)
          end
        done;
        (* Phase 3 + rescheduling over the polled set (all machines in round
           0, for construction-time deliveries), before the channel scratch
           is cleared so [has_rx] still marks the touched receivers.  A poll
           can change any machine state, so its wakeup is re-asked after
           every poll — e.g. an epidemic relay that just received the packet
           now wants its own slot. *)
        for i = 0 to n - 1 do
          if sched_stamp.(i) = r || has_rx.(i) then begin
            check_complete i r;
            schedule_machine i (r + 1)
          end
          else if r = 0 then check_complete i 0
        done;
        if any_tx then begin
          last_tx := r;
          incr active_rounds
        end;
        pre := !pre_next;
        pre_next := 0
      in
      while (not !stopping) && !round < cap do
        let target =
          if !pre > 0 then !round
          else if Calendar.is_empty cal then cap
          else min cap (Calendar.min_key cal)
        in
        if target > !round then advance_silent target;
        if (not !stopping) && !round < cap && !round = target then begin
          if check_stop !round then stopping := true
          else begin
            process_round !round;
            (* Tap emission and channel-scratch reset live out here, off
               the per-round hot path of untraced runs; the polled stack
               restores the all-silent background the skipped-round
               digests rely on. *)
            (match tap with
            | None -> ()
            | Some f ->
              f
                {
                  round = !round;
                  transmitters = List.init slots.count (fun m -> tap_tx.(m));
                  observations = Array.copy tap_fp;
                };
              for j = 0 to !n_polled - 1 do
                tap_fp.(polled.(j)) <- 0
              done;
              n_polled := 0);
            reset_touched ();
            incr round
          end
        end
      done
  in
  (* The sharded loop is the sparse loop cut into [tiles] disjoint slices
     of machines, one domain each, synchronized by a 4-barrier round:

       B0  coordinator publishes the round number (or the stop command)
       A   every tile polls its scheduled machines and collects their
           transmissions, in ascending id (no fan-out yet)
       B1  all transmissions collected
           coordinator merges them into the global slots buffer, marks each
           tile's halo words, and draws the per-link loss coins in exactly
           the serial sequence
       B2  merged slots + halo words + loss outcomes published
       B   every tile fans the slots named by its own halo words into its
           receivers (ascending slot order, original within-row link
           order), resolves, observes, completes and reschedules
       B3  round effects done; coordinator emits the tap digest, sums
           pending, and decides stop / skip / next round

     Determinism: the only RNG consumer (loss) runs serially on the
     coordinator in the serial draw order; per-receiver float accumulation
     and capture tie-breaks see transmitters in the same ascending order as
     the serial sweep; and machines are only ever touched by their owning
     tile, in ascending id within the tile.  Cross-tile visibility is by
     barrier only: tiles write before a barrier what others read after it. *)
  let run_sharded tiles tile_of =
    let counts = Array.make tiles 0 in
    for i = 0 to n - 1 do
      counts.(tile_of.(i)) <- counts.(tile_of.(i)) + 1
    done;
    let local_ix = Array.make n 0 in
    let fill = Array.make tiles 0 in
    let members = Array.init tiles (fun t -> Array.make counts.(t) 0) in
    for i = 0 to n - 1 do
      let t = tile_of.(i) in
      members.(t).(fill.(t)) <- i;
      local_ix.(i) <- fill.(t);
      fill.(t) <- fill.(t) + 1
    done;
    (* Per-(transmitter, tile) segments of the CSR rows: phase B walks only
       the slice of each row that lands in its own tile, in the original
       within-row order (receivers descending), via the [seg_orig]
       indirection into out_rcv/out_pow.  Without this every tile would
       rescan every full row. *)
    let links_total = out_off.(n) in
    let seg_off = Array.make ((n * tiles) + 1) 0 in
    for i = 0 to n - 1 do
      for k = out_off.(i) to out_off.(i + 1) - 1 do
        let cell = (i * tiles) + tile_of.(out_rcv.(k)) in
        seg_off.(cell + 1) <- seg_off.(cell + 1) + 1
      done
    done;
    for c = 1 to n * tiles do
      seg_off.(c) <- seg_off.(c) + seg_off.(c - 1)
    done;
    let seg_orig = Array.make (max 1 links_total) 0 in
    let cursor = Array.init (n * tiles) (fun c -> seg_off.(c)) in
    for i = 0 to n - 1 do
      for k = out_off.(i) to out_off.(i + 1) - 1 do
        let cell = (i * tiles) + tile_of.(out_rcv.(k)) in
        seg_orig.(cursor.(cell)) <- k;
        cursor.(cell) <- cursor.(cell) + 1
      done
    done;
    (* Loss outcomes for the current round, indexed like the CSR links;
       written only by the coordinator between B1 and B2. *)
    let lost = if loss > 0.0 then Bytes.make (max 1 links_total) '\000' else Bytes.empty in
    let tile_make t_id =
      let m = members.(t_id) in
      let len = Array.length m in
      let t_pending = ref 0 in
      Array.iter (fun i -> if waiters.(i) then incr t_pending) m;
      {
        t_id;
        members = m;
        cal = Calendar.create ~capacity:(2 * (len + 1)) ();
        stamp = Array.make (max 1 len) (-1);
        pre = 0;
        pre_next = 0;
        t_pending = !t_pending;
        completed = Array.make (max 1 len) false;
        sum_power = Array.make (max 1 len) 0.0;
        n_decodable = Array.make (max 1 len) 0;
        best_power = Array.make (max 1 len) 0.0;
        best_slot = Array.make (max 1 len) 0;
        obs_packed = Array.make (max 1 len) 0;
        has_rx = Array.make (max 1 len) false;
        touched = Array.make (max 1 len) 0;
        n_touched = 0;
        tx_ids = Array.make (max 1 len) 0;
        txs = { payloads = [||]; count = 0 };
        halo = Bitvec.create n false;
        polled = Array.make (if tap = None then 0 else len) 0;
        n_polled = 0;
      }
    in
    let tile_arr = Array.init tiles tile_make in
    (* Initial scheduling, tile by tile: the serial init in member order. *)
    Array.iter
      (fun t ->
        Array.iteri
          (fun li i ->
            let na = machines.(i).next_active 0 in
            if na <= 0 then begin
              if t.stamp.(li) <> 0 then begin
                t.stamp.(li) <- 0;
                t.pre_next <- t.pre_next + 1
              end
            end
            else if na < cap then Calendar.add t.cal na li)
          t.members)
      tile_arr;
    (* Round 0 always executes (construction-time deliveries): force-stamp
       machine 0 in whichever tile owns it, like the serial loop does. *)
    if cap > 0 && n > 0 then begin
      let t = tile_arr.(tile_of.(0)) in
      let li = local_ix.(0) in
      if t.stamp.(li) <> 0 then begin
        t.stamp.(li) <- 0;
        t.pre_next <- t.pre_next + 1
      end
    end;
    Array.iter
      (fun t ->
        t.pre <- t.pre_next;
        t.pre_next <- 0)
      tile_arr;
    (* Merged transmissions of the current round, globally ascending;
       written by the coordinator between B1 and B2.  [slots.count] is the
       merged count. *)
    let mtx_ids = Array.make (max 1 n) 0 in
    let slots = { payloads = [||]; count = 0 } in
    let merge_cursor = Array.make tiles 0 in
    (* Merge scratch, in place of per-call refs: [0] candidate tile, [1]
       candidate id, [2] loop flag. *)
    let merge_scratch = Array.make 3 0 in
    let tap_fp = match tap with None -> [||] | Some _ -> Array.make n 0 in
    let slot_fp = match tap with None -> [||] | Some _ -> Array.make (max 1 n) 0 in
    (* The round command, published by barrier B0: the round to process, or
       -1 to shut the team down. *)
    let cmd = ref 0 in
    let team = Shard.Team.create ~tiles in
    let phase_a t r =
      while (not (Calendar.is_empty t.cal)) && Calendar.min_key t.cal = r do
        t.stamp.(Calendar.pop_min t.cal) <- r
      done;
      t.txs.count <- 0;
      let m = t.members in
      for li = 0 to Array.length m - 1 do
        if t.stamp.(li) = r then begin
          let i = m.(li) in
          match machines.(i).act r with
          | Silent -> ()
          | Transmit payload ->
            broadcasts.(i) <- broadcasts.(i) + 1;
            t.tx_ids.(t.txs.count) <- i;
            slots_push t.txs (Array.length m) payload
        end
      done
    in
    let merge_and_draw () =
      (* Tiles partition the ids and each tile's list is ascending, so a
         cursor merge yields the global ascending transmitter order the
         serial Phase-1 sweep produces.  Each merged slot also marks the
         halo word bit of every tile its CSR row reaches. *)
      slots.count <- 0;
      Array.fill merge_cursor 0 tiles 0;
      merge_scratch.(2) <- 1;
      while merge_scratch.(2) = 1 do
        merge_scratch.(0) <- -1;
        merge_scratch.(1) <- max_int;
        for t = 0 to tiles - 1 do
          if merge_cursor.(t) < tile_arr.(t).txs.count then begin
            let id = tile_arr.(t).tx_ids.(merge_cursor.(t)) in
            if id < merge_scratch.(1) then begin
              merge_scratch.(1) <- id;
              merge_scratch.(0) <- t
            end
          end
        done;
        if merge_scratch.(0) < 0 then merge_scratch.(2) <- 0
        else begin
          let t = tile_arr.(merge_scratch.(0)) in
          let c = merge_cursor.(merge_scratch.(0)) in
          let i = merge_scratch.(1) in
          let slot = slots.count in
          mtx_ids.(slot) <- i;
          let payload = t.txs.payloads.(c) in
          if tap <> None then slot_fp.(slot) <- fingerprint_payload payload;
          slots_push slots n payload;
          for td = 0 to tiles - 1 do
            let cell = (i * tiles) + td in
            if seg_off.(cell + 1) > seg_off.(cell) then Bitvec.set tile_arr.(td).halo slot true
          done;
          merge_cursor.(merge_scratch.(0)) <- c + 1
        end
      done;
      (* Per-link loss coins, drawn serially here in exactly the order the
         serial fan-out consumes them: transmitters ascending, links in
         within-row order, decodable links only. *)
      if loss > 0.0 then
        for m = 0 to slots.count - 1 do
          let i = mtx_ids.(m) in
          for k = out_off.(i) to out_off.(i + 1) - 1 do
            if out_pow.(k) >= 1.0 then begin
              let l =
                match rng with
                | Some r -> Rng.bernoulli r loss
                | None -> invalid_arg "Engine.run: loss_prob > 0 requires an rng"
              in
              Bytes.set lost k (if l then '\001' else '\000')
            end
          done
        done
    in
    let check_complete t li r =
      if not t.completed.(li) then begin
        match machines.(t.members.(li)).delivered () with
        | Some _ ->
          t.completed.(li) <- true;
          completion_round.(t.members.(li)) <- r;
          if waiters.(t.members.(li)) then t.t_pending <- t.t_pending - 1
        | None -> ()
      end
    in
    let schedule_tile t li q =
      let na = machines.(t.members.(li)).next_active q in
      let na = if na < q then q else na in
      if na < cap then begin
        if na = q then begin
          if t.stamp.(li) <> q then begin
            t.stamp.(li) <- q;
            t.pre_next <- t.pre_next + 1
          end
        end
        else Calendar.add t.cal na li
      end
    in
    let phase_b t r =
      (* Fan-in over the slots named by this tile's halo words: slot bits
         ascending (= merged transmitters ascending), each row's in-tile
         slice in original order, so per-receiver sums, capture ties and
         loss lookups match the serial fan-out bit for bit.  Words the
         round never touched are skipped and stay zero; touched words are
         cleared on the way out. *)
      for wi = 0 to Bitvec.word_count t.halo - 1 do
        let word = Bitvec.word t.halo wi in
        if word <> 0 then begin
          let base = wi * Bitvec.bits_per_word in
          for b = 0 to Bitvec.bits_per_word - 1 do
            if (word lsr b) land 1 = 1 then begin
              let m = base + b in
              let i = mtx_ids.(m) in
              let cell = (i * tiles) + t.t_id in
              for s = seg_off.(cell) to seg_off.(cell + 1) - 1 do
                let k = seg_orig.(s) in
                let power = out_pow.(k) in
                let lr = local_ix.(out_rcv.(k)) in
                if not t.has_rx.(lr) then begin
                  t.has_rx.(lr) <- true;
                  t.touched.(t.n_touched) <- lr;
                  t.n_touched <- t.n_touched + 1
                end;
                t.sum_power.(lr) <- t.sum_power.(lr) +. power;
                let lost_link = power >= 1.0 && loss > 0.0 && Bytes.get lost k <> '\000' in
                if power >= 1.0 && not lost_link then begin
                  t.n_decodable.(lr) <- t.n_decodable.(lr) + 1;
                  if power > t.best_power.(lr) then begin
                    t.best_power.(lr) <- power;
                    t.best_slot.(lr) <- m
                  end
                end
              done
            end
          done;
          Bitvec.set_range t.halo ~pos:base ~len:(min Bitvec.bits_per_word (n - base)) false
        end
      done;
      Channel.resolve_packed channel ~touched:t.touched ~n_touched:t.n_touched
        ~sum_power:t.sum_power ~n_decodable:t.n_decodable ~best_power:t.best_power
        ~best_slot:t.best_slot ~out:t.obs_packed;
      let m = t.members in
      for li = 0 to Array.length m - 1 do
        if t.stamp.(li) = r || t.has_rx.(li) then begin
          let p = t.obs_packed.(li) in
          if tap <> None then begin
            tap_fp.(m.(li)) <- fingerprint_packed slot_fp p;
            t.polled.(t.n_polled) <- m.(li);
            t.n_polled <- t.n_polled + 1
          end;
          match machines.(m.(li)).observe_packed with
          | Some f -> f r p slots
          | None -> machines.(m.(li)).observe r (observation_of_packed slots p)
        end
      done;
      for li = 0 to Array.length m - 1 do
        if t.stamp.(li) = r || t.has_rx.(li) then begin
          check_complete t li r;
          schedule_tile t li (r + 1)
        end
        else if r = 0 then check_complete t li 0
      done;
      for k = 0 to t.n_touched - 1 do
        let lr = t.touched.(k) in
        t.sum_power.(lr) <- 0.0;
        t.n_decodable.(lr) <- 0;
        t.best_power.(lr) <- 0.0;
        t.best_slot.(lr) <- 0;
        t.obs_packed.(lr) <- 0;
        t.has_rx.(lr) <- false
      done;
      t.n_touched <- 0;
      t.pre <- t.pre_next;
      t.pre_next <- 0
    in
    let worker p =
      let t = tile_arr.(p) in
      let running = ref true in
      while !running do
        Shard.Team.await team;
        let c = !cmd in
        if c < 0 then running := false
        else begin
          Shard.Team.guard team (fun () -> phase_a t c);
          Shard.Team.await team;
          (* coordinator merges and draws losses *)
          Shard.Team.await team;
          Shard.Team.guard team (fun () -> phase_b t c);
          Shard.Team.await team
        end
      done
    in
    let next_target () =
      let pre_total = ref 0 in
      Array.iter (fun t -> pre_total := !pre_total + t.pre) tile_arr;
      if !pre_total > 0 then !round
      else begin
        let mn = ref cap in
        Array.iter
          (fun t -> if not (Calendar.is_empty t.cal) then mn := min !mn (Calendar.min_key t.cal))
          tile_arr;
        !mn
      end
    in
    let emit_tap r =
      match tap with
      | None -> ()
      | Some f ->
        f
          {
            round = r;
            transmitters = List.init slots.count (fun m -> mtx_ids.(m));
            observations = Array.copy tap_fp;
          };
        Array.iter
          (fun t ->
            for j = 0 to t.n_polled - 1 do
              tap_fp.(t.polled.(j)) <- 0
            done;
            t.n_polled <- 0)
          tile_arr
    in
    let main () =
      let t0 = tile_arr.(0) in
      while (not !stopping) && !round < cap do
        let target = next_target () in
        if target > !round then advance_silent target;
        if (not !stopping) && !round < cap && !round = target then begin
          if check_stop !round then stopping := true
          else begin
            let r = !round in
            cmd := r;
            Shard.Team.await team;
            Shard.Team.guard team (fun () -> phase_a t0 r);
            Shard.Team.await team;
            Shard.Team.guard team merge_and_draw;
            Shard.Team.await team;
            Shard.Team.guard team (fun () -> phase_b t0 r);
            Shard.Team.await team;
            (* Post-round, workers parked at the next B0: gather per-tile
               outcomes and run the serial-side bookkeeping. *)
            emit_tap r;
            let any = ref false in
            let p = ref 0 in
            Array.iter
              (fun t ->
                if t.txs.count > 0 then any := true;
                p := !p + t.t_pending)
              tile_arr;
            if !any then begin
              last_tx := r;
              incr active_rounds
            end;
            pending := !p;
            if Shard.Team.failed team then stopping := true;
            incr round
          end
        end
      done;
      cmd := -1;
      Shard.Team.await team
    in
    Shard.Team.run team ~worker ~main
  in
  (match mode with
  | (`Dense | `Sparse) as m -> run_serial m
  | `Sharded requested ->
    let tiles = max 1 (min requested (max 1 n)) in
    let tile_of =
      match tile_of with
      | Some a ->
        if Array.length a <> n then invalid_arg "Engine.run: tile_of length mismatch";
        Array.iter
          (fun t -> if t < 0 || t >= tiles then invalid_arg "Engine.run: tile_of entry out of range")
          a;
        a
      | None -> Shard.partition topology ~tiles
    in
    if tiles <= 1 then run_serial `Sparse else run_sharded tiles tile_of);
  {
    rounds_used = !round;
    active_rounds = !active_rounds;
    hit_cap = !round >= cap && !pending > 0;
    delivered = Array.init n (fun i -> machines.(i).delivered ());
    completion_round;
    broadcasts;
  }
