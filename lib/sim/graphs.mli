(** Deterministic generators for synthetic graph families.

    Each generator embeds its nodes in the plane (so maps and hop metrics
    stay meaningful) and returns a [Synthetic] {!Topology.t}; all
    randomness comes from the {!Rng} argument, so a seed fully determines
    the graph.  These are the workloads of the graph-class comparison
    experiments: related work (Maurer–Tixeuil on planar and loosely
    connected graphs) lives exactly on such families. *)

val grid_with_holes : Rng.t -> width:int -> height:int -> holes:int -> Topology.t
(** Unit grid under 4-adjacency with up to [holes] nodes removed in a
    shuffled order, rejecting any removal that would disconnect the
    survivors — the result is always connected.  Requires a grid of at
    least 2×2 and [0 <= holes < width·height - 1]. *)

val corridor : rooms:int -> room_w:int -> room_h:int -> hall_len:int -> Topology.t
(** [rooms] dense 8-adjacent patches of [room_w × room_h] nodes chained by
    1-node-wide halls of [hall_len] nodes: every room-to-room path crosses
    a width-one cut (the loosely-connected regime).  Deterministic. *)

val triangulation : Rng.t -> cols:int -> rows:int -> jitter:float -> Topology.t
(** Planar triangulation of a jittered [(cols+1) × (rows+1)] point grid:
    cell sides plus one coin-flipped diagonal per unit cell.  [jitter] is
    clamped below 0.25, which keeps cells convex and disjoint, hence the
    graph planar by construction. *)

val expander : Rng.t -> n:int -> degree:int -> Topology.t
(** Ring plus [degree - 2] random matchings over [n] nodes (duplicate
    edges merged): decode degrees lie in [2, degree] and the graph is an
    expander with high probability.  Requires [n >= 4], [degree >= 3]. *)

val lattice : width:int -> height:int -> Topology.t
(** 8-adjacent (Moore) unit grid: the maximally local control for the
    expander family — comparable degree, Θ(√n) hop diameter. *)
