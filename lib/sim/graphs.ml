(* Deterministic generators for the synthetic graph families the
   graph-class experiments run on.  Every generator draws exclusively from
   the splittable Rng it is handed and returns a {!Topology.t} whose
   embedding is the layout the edges were defined over, so ASCII maps and
   hop metrics remain meaningful. *)

let deployment_of_points points =
  let width = Array.fold_left (fun acc (p : Point.t) -> Float.max acc p.x) 1.0 points in
  let height = Array.fold_left (fun acc (p : Point.t) -> Float.max acc p.y) 1.0 points in
  let nodes = Array.mapi (fun i p -> Node.make i p) points in
  { Deployment.width; height; nodes }

let topology ~family points edges =
  let n = Array.length points in
  Topology.synthetic ~family (deployment_of_points points) (Graph.of_edges ~n edges)

(* --- grid with holes -------------------------------------------------- *)

(* Unit grid under 4-adjacency with up to [holes] nodes knocked out.
   Candidates are visited in a shuffled order; a removal that would
   disconnect the surviving graph is rejected, so the result is connected
   by construction (which the fail-fast check in Scenario.run relies on).
   Fewer than [holes] nodes are removed when no candidate can go without
   splitting the grid. *)
let grid_with_holes rng ~width ~height ~holes =
  if width < 2 || height < 2 then invalid_arg "Graphs.grid_with_holes: grid too small";
  if holes < 0 || holes >= (width * height) - 1 then
    invalid_arg "Graphs.grid_with_holes: bad hole count";
  let n = width * height in
  let removed = Array.make n false in
  let live = ref n in
  let neighbours i =
    let x = i mod width and y = i / width in
    List.filter
      (fun j -> j >= 0)
      [
        (if x > 0 then i - 1 else -1);
        (if x < width - 1 then i + 1 else -1);
        (if y > 0 then i - width else -1);
        (if y < height - 1 then i + width else -1);
      ]
  in
  let connected_without cand =
    removed.(cand) <- true;
    let target = !live - 1 in
    let start = ref (-1) in
    (try
       for i = 0 to n - 1 do
         if not removed.(i) then begin
           start := i;
           raise Exit
         end
       done
     with Exit -> ());
    let ok =
      !start >= 0
      &&
      let seen = Array.make n false in
      let queue = Queue.create () in
      seen.(!start) <- true;
      Queue.add !start queue;
      let count = ref 0 in
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        incr count;
        List.iter
          (fun v ->
            if (not removed.(v)) && not seen.(v) then begin
              seen.(v) <- true;
              Queue.add v queue
            end)
          (neighbours u)
      done;
      !count = target
    in
    removed.(cand) <- false;
    ok
  in
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let dug = ref 0 in
  Array.iter
    (fun cand ->
      if !dug < holes && !live > 1 && connected_without cand then begin
        removed.(cand) <- true;
        decr live;
        incr dug
      end)
    order;
  (* Survivors re-indexed densely in original (row-major) order. *)
  let new_id = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if not removed.(i) then begin
      new_id.(i) <- !next;
      incr next
    end
  done;
  let points = Array.make !next (Point.make 0.0 0.0) in
  for i = 0 to n - 1 do
    if new_id.(i) >= 0 then
      points.(new_id.(i)) <- Point.make (float_of_int (i mod width)) (float_of_int (i / width))
  done;
  let edges = ref [] in
  for i = 0 to n - 1 do
    if new_id.(i) >= 0 then
      List.iter
        (fun j -> if j > i && new_id.(j) >= 0 then edges := (new_id.(i), new_id.(j)) :: !edges)
        (neighbours i)
  done;
  topology ~family:"grid_holes" points !edges

(* --- corridor / bottleneck maps --------------------------------------- *)

(* [rooms] dense patches of [room_w × room_h] nodes under 8-adjacency,
   chained left to right by 1-node-wide halls of [hall_len] nodes: the
   halls are the bottlenecks — every room-to-room path crosses a cut of
   width one, the loosely-connected regime of Maurer–Tixeuil.  Fully
   deterministic (no randomness to draw). *)
let corridor ~rooms ~room_w ~room_h ~hall_len =
  if rooms < 1 || room_w < 2 || room_h < 1 || hall_len < 1 then
    invalid_arg "Graphs.corridor: bad shape";
  let mid = float_of_int ((room_h - 1) / 2) in
  let points = ref [] in
  for r = 0 to rooms - 1 do
    let x0 = r * (room_w + hall_len) in
    for y = 0 to room_h - 1 do
      for x = 0 to room_w - 1 do
        points := Point.make (float_of_int (x0 + x)) (float_of_int y) :: !points
      done
    done;
    if r < rooms - 1 then
      for k = 0 to hall_len - 1 do
        points := Point.make (float_of_int (x0 + room_w + k)) mid :: !points
      done
  done;
  let points = Array.of_list (List.rev !points) in
  let n = Array.length points in
  (* Edges by layout: any two nodes within unit L∞ distance (8-adjacency
     inside rooms; the halls chain into the nearest boundary nodes). *)
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dx = Float.abs (points.(i).Point.x -. points.(j).Point.x) in
      let dy = Float.abs (points.(i).Point.y -. points.(j).Point.y) in
      if Float.max dx dy <= 1.000001 then edges := (i, j) :: !edges
    done
  done;
  topology ~family:"corridor" points !edges

(* --- planar triangulations -------------------------------------------- *)

(* Jittered (cols+1)×(rows+1) grid, each unit cell triangulated by one of
   its two diagonals (a fair coin per cell).  The jitter is capped below
   0.25, which keeps every cell a convex quadrilateral with disjoint
   interiors — so side + diagonal edges cannot cross and the graph is
   planar by construction (the QCheck suite verifies this geometrically). *)
let triangulation rng ~cols ~rows ~jitter =
  if cols < 1 || rows < 1 then invalid_arg "Graphs.triangulation: grid too small";
  if jitter < 0.0 then invalid_arg "Graphs.triangulation: negative jitter";
  let jitter = Float.min jitter 0.24 in
  let w = cols + 1 in
  let points =
    Array.init
      (w * (rows + 1))
      (fun i ->
        let x = i mod w and y = i / w in
        let jx = Rng.float rng (2.0 *. jitter) -. jitter in
        let jy = Rng.float rng (2.0 *. jitter) -. jitter in
        Point.make (float_of_int x +. jx) (float_of_int y +. jy))
  in
  let edges = ref [] in
  for cy = 0 to rows - 1 do
    for cx = 0 to cols - 1 do
      let a = (cy * w) + cx in
      let b = a + 1 in
      let c = a + w in
      let d = c + 1 in
      edges := (a, b) :: (a, c) :: (b, d) :: (c, d) :: !edges;
      edges := (if Rng.bool rng then (a, d) else (b, c)) :: !edges
    done
  done;
  topology ~family:"triangulated" points !edges

(* --- expanders vs lattices -------------------------------------------- *)

(* Ring plus [degree - 2] random matchings: the standard construction of a
   (w.h.p.) constant-degree expander, the antithesis of the lattice's
   √n-diameter locality.  Matching edges that duplicate a ring edge are
   merged, so every node ends with decode degree in [2, degree].  Embedded
   on a circle purely for drawing and coord-range purposes. *)
let expander rng ~n ~degree =
  if n < 4 then invalid_arg "Graphs.expander: too few nodes";
  if degree < 3 then invalid_arg "Graphs.expander: degree must be at least 3";
  let radius = Float.max 1.0 (float_of_int n /. 8.0) in
  let points =
    Array.init n (fun i ->
        let theta = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
        Point.make
          (radius +. (radius *. Float.cos theta))
          (radius +. (radius *. Float.sin theta)))
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    edges := (i, (i + 1) mod n) :: !edges
  done;
  let perm = Array.init n (fun i -> i) in
  for _m = 1 to degree - 2 do
    Rng.shuffle rng perm;
    for k = 0 to (n / 2) - 1 do
      edges := (perm.(2 * k), perm.((2 * k) + 1)) :: !edges
    done
  done;
  topology ~family:"expander" points !edges

(* Moore-neighbourhood (8-adjacent) unit grid: the maximally local control
   for the expander — same order of degree, Θ(√n) hop diameter. *)
let lattice ~width ~height =
  if width < 2 || height < 2 then invalid_arg "Graphs.lattice: grid too small";
  let points =
    Array.init (width * height) (fun i ->
        Point.make (float_of_int (i mod width)) (float_of_int (i / width)))
  in
  let edges = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let i = (y * width) + x in
      if x < width - 1 then edges := (i, i + 1) :: !edges;
      if y < height - 1 then begin
        edges := (i, i + width) :: !edges;
        if x < width - 1 then edges := (i, i + width + 1) :: !edges;
        if x > 0 then edges := (i, i + width - 1) :: !edges
      end
    done
  done;
  topology ~family:"lattice" points !edges
