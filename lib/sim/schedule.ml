let rounds_per_interval = 6
let interval_of_round r = r / rounds_per_interval
let phase_of_round r = r mod rounds_per_interval
let first_round_of_interval i = i * rounds_per_interval

type t = { cycle : int; slots : int array }

let cycle t = t.cycle
let slot_of t group = t.slots.(group)
let active_slot t ~interval = interval mod t.cycle
let source_slot = 0

let for_squares squares ~radius =
  assert (radius > 0.0);
  let side = Squares.side squares in
  (* Same-slot squares at grid distance k have closest points (k-1)·side
     apart; keep that above 3R. *)
  let k = max 3 (1 + int_of_float (ceil (3.0 *. radius /. side))) in
  let slots =
    Array.init (Squares.count squares) (fun id ->
        let cx, cy = Squares.coords squares id in
        1 + (cx mod k) + (k * (cy mod k)))
  in
  { cycle = (k * k) + 1; slots }

let for_nodes topology ~conflict_range ~source =
  let deployment = Topology.deployment topology in
  let nodes = deployment.Deployment.nodes in
  let n = Array.length nodes in
  (* Conflict neighbours via a spatial hash of cell size [conflict_range].
     [floor], not truncation: int_of_float rounds toward zero, which would
     merge the two cells either side of each axis into one double-width
     cell and make the neighbour enumeration asymmetric for deployments
     with negative coordinates (same bug as Topology.build's cell_of). *)
  let cell_of (p : Point.t) =
    ( int_of_float (Float.floor (p.x /. conflict_range)),
      int_of_float (Float.floor (p.y /. conflict_range)) )
  in
  let cells = Hashtbl.create (max 16 n) in
  Array.iter
    (fun (node : Node.t) ->
      let key = cell_of node.pos in
      Hashtbl.replace cells key (node.id :: (try Hashtbl.find cells key with Not_found -> [])))
    nodes;
  let conflicts id =
    let p = nodes.(id).Node.pos in
    let cx, cy = cell_of p in
    let acc = ref [] in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt cells (cx + dx, cy + dy) with
        | None -> ()
        | Some ids ->
          List.iter
            (fun j ->
              if j <> id && Point.dist_l2 p nodes.(j).Node.pos <= conflict_range then
                acc := j :: !acc)
            ids
      done
    done;
    !acc
  in
  let colors = Array.make n (-1) in
  let max_color = ref 0 in
  for id = 0 to n - 1 do
    if id <> source then begin
      let used = List.filter_map (fun j -> if colors.(j) >= 0 then Some colors.(j) else None)
          (conflicts id)
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      let c = first_free 0 in
      colors.(id) <- c;
      if c > !max_color then max_color := c
    end
  done;
  let slots = Array.map (fun c -> if c < 0 then source_slot else c + 1) colors in
  slots.(source) <- source_slot;
  { cycle = !max_color + 2; slots }

(* Graph analogue of [for_nodes] for topologies with no usable geometry:
   two nodes conflict when they are within THREE hops of each other in
   the decode graph.  Two hops would only keep concurrent senders from
   sharing a receiver; the interval protocols (Two_bit) also have the
   receiver transmit acknowledgement/veto blips, and a transmitting
   receiver of one sender must not be audible to a listening receiver of
   a same-slot sender — sender–receiver–receiver–sender is a length-3
   path.  This is the graph reading of the geometric 3R rule.  Same
   greedy ascending-id coloring and the same slot-0 reservation for the
   source, so the two schedulers produce interchangeable cycles. *)
let for_graph topology ~source =
  let rx = Topology.rx topology in
  let n = Array.length rx in
  let conflicts id =
    let acc = ref [] in
    let seen = Array.make n false in
    seen.(id) <- true;
    let add j =
      if not seen.(j) then begin
        seen.(j) <- true;
        acc := j :: !acc
      end
    in
    Array.iter
      (fun j ->
        add j;
        Array.iter
          (fun k ->
            add k;
            Array.iter add rx.(k))
          rx.(j))
      rx.(id);
    !acc
  in
  let colors = Array.make n (-1) in
  let max_color = ref 0 in
  for id = 0 to n - 1 do
    if id <> source then begin
      let used =
        List.filter_map (fun j -> if colors.(j) >= 0 then Some colors.(j) else None) (conflicts id)
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      let c = first_free 0 in
      colors.(id) <- c;
      if c > !max_color then max_color := c
    end
  done;
  let slots = Array.map (fun c -> if c < 0 then source_slot else c + 1) colors in
  slots.(source) <- source_slot;
  { cycle = !max_color + 2; slots }

(* Wakeup arithmetic for the sparse engine: given the set of slots a
   machine cares about (its own sending slot plus the slots it listens
   to), answer "first round >= r of a relevant interval" in O(1) via a
   precomputed distance-to-next-relevant-slot table.  The table depends
   only on the slot set, so the closure is built once per machine. *)
let next_relevant_round t ~relevant =
  let c = t.cycle in
  if Array.length relevant <> c then
    invalid_arg "Schedule.next_relevant_round: relevant array must have one entry per slot";
  let any = Array.exists (fun b -> b) relevant in
  (* delta.(s) = intervals from slot s to the nearest relevant slot at or
     after it, cyclically.  Two backward passes resolve the wraparound. *)
  let delta = Array.make (max 1 c) c in
  for _pass = 0 to 1 do
    for s = c - 1 downto 0 do
      if relevant.(s) then delta.(s) <- 0
      else begin
        let next = delta.((s + 1) mod c) in
        if next < c then delta.(s) <- min delta.(s) (next + 1)
      end
    done
  done;
  fun round ->
    if not any then max_int
    else begin
      let interval = interval_of_round round in
      let d = delta.(interval mod c) in
      if d = 0 then round else first_round_of_interval (interval + d)
    end
