(** Slot-selective jamming, after the selective-broadcast adversary of
    Tseng–Vaidya: a schedule-aware jammer that concentrates its budget on
    the intervals owned by a single TDMA slot rather than spraying veto
    rounds indiscriminately.  Targeting the source slot starves the whole
    network of directly authenticated bits at minimal cost — the
    strongest per-budget jamming strategy against the slotted
    protocols. *)

val slot_jammer :
  schedule:Schedule.t ->
  slot:int ->
  rng:Rng.t ->
  budget:Budget.t ->
  probability:float ->
  Msg.t Engine.machine
(** Jam every round of every interval owned by [slot], each with the given
    probability, while budget remains.  The wakeup contract covers exactly
    the target-slot intervals ({!Schedule.next_relevant_round}), and the
    RNG is drawn only in covered rounds, so sparse and dense runs stay
    byte-identical.  Raises [Invalid_argument] if [slot] is outside the
    schedule's cycle. *)

val source_jammer :
  schedule:Schedule.t -> rng:Rng.t -> budget:Budget.t -> probability:float -> Msg.t Engine.machine
(** {!slot_jammer} aimed at {!Schedule.source_slot}. *)
