(* Wakeup default: a jammer is a potential transmitter in any round while
   its budget lasts, and inert forever once it is spent.  The predicate's
   RNG stream is private to the jammer, so rounds the sparse engine skips
   after exhaustion (where the dense loop would still burn draws on a
   predicate that can no longer spend) are invisible to everyone else. *)
let budget_gated budget next r =
  match Budget.remaining budget with Some 0 -> max_int | Some _ | None -> next r

let machine_of_predicate ?next_active pred ~budget =
  let act round =
    let phase = Schedule.phase_of_round round in
    if pred ~round ~phase && Budget.try_spend budget then Engine.Transmit Msg.Blip
    else Engine.Silent
  in
  let next = match next_active with Some f -> f | None -> Engine.always_active in
  {
    Engine.act;
    observe = (fun _ _ -> ());
    observe_packed = Some (fun _ _ _ -> ());
    delivered = (fun () -> None);
    next_active = budget_gated budget next;
  }

let veto_jammer ~rng ~budget ~probability =
  (* The predicate short-circuits on the phase test, so the dense loop
     draws from [rng] exactly in phases 4 and 5 — waking only there keeps
     the private stream aligned between modes. *)
  let veto_phases r =
    let phase = Schedule.phase_of_round r in
    if phase >= 4 then r else r + (4 - phase)
  in
  machine_of_predicate ~budget ~next_active:veto_phases (fun ~round:_ ~phase ->
      (phase = 4 || phase = 5) && Rng.bernoulli rng probability)

let blanket_jammer ~rng ~budget ~probability =
  machine_of_predicate ~budget (fun ~round:_ ~phase:_ -> Rng.bernoulli rng probability)

let scripted ?next_active pred ~budget = machine_of_predicate ?next_active pred ~budget
