(** Jamming adversaries (Section 6.1, "Resilience to Jamming").

    The paper's jammers target the veto rounds of the 2Bit-Protocol — the
    cheapest way to force a failed exchange — broadcasting in each veto
    round with some probability (1/5 was found to be near optimal, since
    higher rates waste budget on redundant jamming), until a per-device
    broadcast budget is exhausted. *)

val veto_jammer : rng:Rng.t -> budget:Budget.t -> probability:float -> Msg.t Engine.machine
(** Jams phases 4 and 5 (R5/R6) of every interval with the given
    probability per round, while budget remains. *)

val blanket_jammer : rng:Rng.t -> budget:Budget.t -> probability:float -> Msg.t Engine.machine
(** Jams any round with the given probability — the crude strategy, for
    ablations. *)

val scripted :
  ?next_active:(int -> int) ->
  (round:int -> phase:int -> bool) ->
  budget:Budget.t ->
  Msg.t Engine.machine
(** Transmit exactly when the predicate says so (deterministic adversaries
    for unit tests, e.g. spoofing attempts against single-hop exchanges).

    All jammers carry a wakeup contract for the sparse engine: by default
    they are active every round until the budget is exhausted and never
    again after; [?next_active] narrows that further when the predicate's
    schedule is known (it is still gated on remaining budget).  The veto
    jammer wakes only in phases 4–5, matching where its predicate draws
    from its private RNG stream. *)
