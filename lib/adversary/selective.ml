(* Slot-selective jamming (after Tseng–Vaidya's selective-broadcast
   adversary): instead of spraying veto rounds everywhere, the jammer
   knows the TDMA schedule and spends its budget only on the intervals
   owned by one target slot — for the source slot, that is the cheapest
   way to starve the whole network of authenticated bits.

   The predicate tests the slot before touching its RNG, so the dense
   loop draws from the private stream exactly in target-slot rounds —
   the same rounds the wakeup contract covers — keeping the sparse and
   dense loops byte-identical. *)

let slot_jammer ~schedule ~slot ~rng ~budget ~probability =
  let cycle = Schedule.cycle schedule in
  if slot < 0 || slot >= cycle then invalid_arg "Selective.slot_jammer: slot out of cycle";
  let relevant = Array.init cycle (fun s -> s = slot) in
  let wake = Schedule.next_relevant_round schedule ~relevant in
  Jammer.scripted ~budget ~next_active:wake (fun ~round ~phase:_ ->
      Schedule.active_slot schedule ~interval:(Schedule.interval_of_round round) = slot
      && Rng.bernoulli rng probability)

let source_jammer ~schedule ~rng ~budget ~probability =
  slot_jammer ~schedule ~slot:Schedule.source_slot ~rng ~budget ~probability
