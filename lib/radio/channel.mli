(** Per-receiver channel resolution with carrier sensing.

    The protocols only ever see the MAC-level observation triple of the
    paper's model: silence, a cleanly decoded message, or detectable
    activity (a collision, jamming noise, or an undecodable weak/lost
    packet).  Byzantine nodes can turn silence into activity but can never
    turn a transmission into silence — the asymmetry all the protocols are
    built on. *)

type 'a observation =
  | Silence  (** no energy on the channel *)
  | Clear of 'a  (** exactly one message decoded *)
  | Busy  (** energy sensed but nothing decoded (collision / jam / loss) *)

type 'a tx = { power : float; payload : 'a }
(** One transmission as seen by a given receiver ([power] is normalised so
    that 1.0 is the decode threshold). *)

type params = {
  capture_ratio : float;
      (** A signal is captured (decoded despite interference) when its power
          is at least [capture_ratio] times the sum of all other sensed
          power.  [infinity] disables capture, matching the pessimistic
          collision rule of the analytic model. *)
  loss_prob : float;
      (** Probability that an otherwise decodable packet is lost; the energy
          is still sensed.  Models the packet losses the paper notes its
          simulation setup captures and its analysis does not. *)
}

val ideal : params
(** No capture, no loss: the analytic model. *)

val realistic : params
(** Capture ratio 3.0 (≈5 dB) and 1% packet loss: the WSNet-like setup. *)

val resolve : ?rng:Rng.t -> params -> sense_threshold:float -> 'a tx list -> 'a observation
(** Resolve what one receiver observes in one round given all transmissions
    that reach it.  [rng] is required whenever [loss_prob > 0].  The empty
    and singleton transmission lists take allocation-free fast paths. *)

(** Packed observation encoding for the engine's hot path: an observation
    is one int, [tag lor (slot lsl 2)] with tag 0 = silence, 1 = busy,
    2 = clear.  [slot] indexes the round's transmissions in global
    ascending-transmitter order; it is meaningful only for clear codes. *)
module Packed : sig
  val silence : int
  val busy : int
  val clear : int -> int
  (** [clear slot] encodes a decoded message at [slot]. *)

  val tag : int -> int
  val slot : int -> int
  val is_clear : int -> bool
  val is_activity : int -> bool
  (** [true] unless silence — the packed carrier-sense predicate. *)
end

val resolve_packed :
  params ->
  touched:int array ->
  n_touched:int ->
  sum_power:float array ->
  n_decodable:int array ->
  best_power:float array ->
  best_slot:int array ->
  out:int array ->
  unit
(** Resolve every receiver on the [touched] stack from the engine's flat
    per-receiver aggregates, writing one packed code per receiver into
    [out].  Entries for untouched receivers are left alone (the engine
    keeps them at [Packed.silence]).  Allocation-free. *)

val is_activity : 'a observation -> bool
(** [true] unless [Silence] — the carrier-sense predicate used throughout
    the 2Bit-Protocol. *)

val equal : ('a -> 'a -> bool) -> 'a observation -> 'a observation -> bool
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a observation -> unit
