type 'a observation = Silence | Clear of 'a | Busy
type 'a tx = { power : float; payload : 'a }
type params = { capture_ratio : float; loss_prob : float }

let ideal = { capture_ratio = infinity; loss_prob = 0.0 }
let realistic = { capture_ratio = 3.0; loss_prob = 0.01 }

module Packed = struct
  let silence = 0
  let busy = 1
  let clear slot = 2 lor (slot lsl 2)
  let tag p = p land 3
  let slot p = p lsr 2
  let is_clear p = p land 3 = 2
  let is_activity p = p <> 0
end

(* The loss coin: drawn exactly once per decodable candidate, in
   transmission order, whatever the calling path — the draw sequence is
   part of the deterministic trace contract. *)
let draw_loss rng params =
  match rng with
  | Some r when params.loss_prob > 0.0 -> Rng.bernoulli r params.loss_prob
  | Some _ | None ->
    if params.loss_prob > 0.0 then invalid_arg "Channel.resolve: loss_prob > 0 requires an rng";
    false

(* Single pass over the transmission list, accumulating the same aggregates
   the engine's flat fan-out keeps per receiver: sensed count and power sum,
   decodable count, and the earliest strongest decodable signal (matching
   the stable strongest-first sort of the old list-based implementation).
   Top-level and closure-free: this is on the hot-path allocation budget. *)
let rec resolve_scan rng params sense_threshold txs n_sensed total n_dec best_pow best =
  match txs with
  | tx :: rest ->
    if tx.power < sense_threshold then
      resolve_scan rng params sense_threshold rest n_sensed total n_dec best_pow best
    else begin
      let total = total +. tx.power in
      let n_sensed = n_sensed + 1 in
      if tx.power >= 1.0 && not (draw_loss rng params) then
        if tx.power > best_pow then
          resolve_scan rng params sense_threshold rest n_sensed total (n_dec + 1) tx.power
            (Some tx.payload)
        else resolve_scan rng params sense_threshold rest n_sensed total (n_dec + 1) best_pow best
      else resolve_scan rng params sense_threshold rest n_sensed total n_dec best_pow best
    end
  | [] ->
    if n_sensed = 0 then Silence
    else begin
      match best with
      | None -> Busy
      | Some payload ->
        if n_sensed = 1 then Clear payload
        else begin
          let interference = total -. best_pow in
          if
            interference <= 0.0
            || (params.capture_ratio < infinity
               && best_pow >= params.capture_ratio *. interference)
          then Clear payload
          else Busy
        end
    end

let resolve ?rng params ~sense_threshold txs =
  match txs with
  | [] -> Silence
  | [ tx ] ->
    (* Singleton fast path: no collision is possible, so skip the aggregate
       bookkeeping — but the loss coin is still drawn for a decodable
       signal, keeping the RNG stream identical to the general path. *)
    if tx.power < sense_threshold then Silence
    else if tx.power < 1.0 then Busy
    else if draw_loss rng params then Busy
    else Clear tx.payload
  | txs -> resolve_scan rng params sense_threshold txs 0 0.0 0 0.0 None

(* Packed resolution over the engine's per-receiver flat aggregates: write
   one encoded observation per touched receiver into [out] (untouched
   entries stay [Packed.silence]).  [best_slot.(i)] indexes the round's
   merged transmissions.  Mirrors [resolve] with the engine's float-noise
   tolerance on the zero-interference test (per-receiver sums are
   accumulated incrementally there, not folded from a list). *)
let resolve_packed params ~touched ~n_touched ~sum_power ~n_decodable ~best_power ~best_slot
    ~out =
  for k = 0 to n_touched - 1 do
    let i = touched.(k) in
    out.(i) <-
      (if n_decodable.(i) = 0 then Packed.busy
       else begin
         let interference = sum_power.(i) -. best_power.(i) in
         if
           interference <= 1e-12
           || (params.capture_ratio < infinity
              && best_power.(i) >= params.capture_ratio *. interference)
         then Packed.clear best_slot.(i)
         else Packed.busy
       end)
  done

let is_activity = function Silence -> false | Clear _ | Busy -> true

let equal eq a b =
  match (a, b) with
  | Silence, Silence | Busy, Busy -> true
  | Clear x, Clear y -> eq x y
  | (Silence | Clear _ | Busy), _ -> false

let pp pp_payload fmt = function
  | Silence -> Format.pp_print_string fmt "silence"
  | Busy -> Format.pp_print_string fmt "busy"
  | Clear x -> Format.fprintf fmt "clear(%a)" pp_payload x
