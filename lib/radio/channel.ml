type 'a observation = Silence | Clear of 'a | Busy
type 'a tx = { power : float; payload : 'a }
type params = { capture_ratio : float; loss_prob : float }

let ideal = { capture_ratio = infinity; loss_prob = 0.0 }
let realistic = { capture_ratio = 3.0; loss_prob = 0.01 }

let resolve ?rng params ~sense_threshold txs =
  let sensed = List.filter (fun tx -> tx.power >= sense_threshold) txs in
  match sensed with
  | [] -> Silence
  | _ ->
    let lost tx =
      tx.power >= 1.0
      &&
      match rng with
      | Some r when params.loss_prob > 0.0 -> Rng.bernoulli r params.loss_prob
      | Some _ | None ->
        if params.loss_prob > 0.0 then
          invalid_arg "Channel.resolve: loss_prob > 0 requires an rng";
        false
    in
    let decodable = List.filter (fun tx -> tx.power >= 1.0 && not (lost tx)) sensed in
    let total = List.fold_left (fun acc tx -> acc +. tx.power) 0.0 sensed in
    let capture tx =
      let interference = total -. tx.power in
      interference <= 0.0
      || params.capture_ratio < infinity && tx.power >= params.capture_ratio *. interference
    in
    let strongest_first =
      List.sort (fun a b -> Float.compare b.power a.power) decodable
    in
    begin
      match strongest_first with
      | [] -> Busy
      | [ tx ] when List.length sensed = 1 -> Clear tx.payload
      | tx :: _ -> if capture tx then Clear tx.payload else Busy
    end

let is_activity = function Silence -> false | Clear _ | Busy -> true

let equal eq a b =
  match (a, b) with
  | Silence, Silence | Busy, Busy -> true
  | Clear x, Clear y -> eq x y
  | (Silence | Clear _ | Busy), _ -> false

let pp pp_payload fmt = function
  | Silence -> Format.pp_print_string fmt "silence"
  | Busy -> Format.pp_print_string fmt "busy"
  | Clear x -> Format.fprintf fmt "clear(%a)" pp_payload x
