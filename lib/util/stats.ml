type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | [ x ] -> x
  | ys ->
    let a = Array.of_list ys in
    let n = Array.length a in
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile 0.5 xs

let summarize xs =
  match xs with
  | [] -> { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; median = 0.0 }
  | _ ->
    {
      n = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      median = median xs;
    }

let trimmed xs =
  match xs with
  | [] | [ _ ] | [ _; _ ] -> xs
  | _ ->
    let q1 = percentile 0.25 xs in
    let q3 = percentile 0.75 xs in
    let iqr = q3 -. q1 in
    let lo = q1 -. (1.5 *. iqr) in
    let hi = q3 +. (1.5 *. iqr) in
    List.filter (fun x -> x >= lo && x <= hi) xs

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit points =
  match points with
  | [] | [ _ ] -> { slope = 0.0; intercept = 0.0; r2 = 0.0 }
  | _ ->
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then { slope = 0.0; intercept = sy /. n; r2 = 0.0 }
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      let ybar = sy /. n in
      let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ybar) *. (y -. ybar))) 0.0 points in
      let ss_res =
        List.fold_left
          (fun a (x, y) ->
            let e = y -. (slope *. x) -. intercept in
            a +. (e *. e))
          0.0 points
      in
      let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
      { slope; intercept; r2 }
    end
