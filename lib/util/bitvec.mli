(** Immutable bit vectors.

    The broadcast payloads of the paper are short bit strings (4–5 bits in
    the experiments); protocols transmit and authenticate them one bit at a
    time.  This module is the common representation for messages, frames and
    digests. *)

type t

val length : t -> int
val get : t -> int -> bool
val create : int -> bool -> t
val init : int -> (int -> bool) -> t
val of_list : bool list -> t
val to_list : t -> bool list
val of_string : string -> t
(** [of_string "1011"] parses a bit pattern.  Raises [Invalid_argument] on
    characters other than '0' and '1'. *)

val to_string : t -> string
val of_int : width:int -> int -> t
(** Big-endian encoding of a non-negative integer in [width] bits. *)

val to_int : t -> int
(** Big-endian decoding; requires [length <= 62]. *)

val append : t -> t -> t
val concat : t list -> t
val sub : t -> pos:int -> len:int -> t
val equal : t -> t -> bool
val random : Rng.t -> int -> t
val empty : t
val snoc : t -> bool -> t
(** [snoc t b] appends one bit. *)

val fold_left : ('a -> bool -> 'a) -> 'a -> t -> 'a

val digest : size:int -> t -> t
(** [digest ~size m] is a deterministic non-cryptographic [size]-bit digest
    of [m] (a mixed fold), used by the dual-mode protocol of Section 1
    ("Interpretation"): the full message goes over the fast epidemic channel
    and only this digest over the authenticated channel. *)

val pp : Format.formatter -> t -> unit

(** {2 Word-level access and scratch mutation}

    The representation packs {!bits_per_word} bits to a word.  The mutating
    operations below exist for engine-owned scratch buffers (the sharded
    engine's per-tile activity words); values handed to protocol code are
    still treated as immutable. *)

val popcount : t -> int
(** Number of set bits. *)

val iter_set : (int -> unit) -> t -> unit
(** [iter_set f t] calls [f] on each set index in ascending order. *)

val set : t -> int -> bool -> unit
(** In-place single-bit update. *)

val set_range : t -> pos:int -> len:int -> bool -> unit
(** In-place fill of [len] bits starting at [pos]. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Bit-range copy; word-blits when both positions are word-aligned. *)

val bits_per_word : int
(** Bits packed per word (62). *)

val word_count : t -> int
val word : t -> int -> int
(** [word t k] is the raw [k]-th word, low bit = index [k * bits_per_word].
    Padding bits above [length t] are always zero. *)
