type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity; finite floats print as the shortest decimal
   that round-trips (so output is deterministic across runs and workers). *)
let number f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_subnormal | FP_normal ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else begin
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f
    end

let rec add_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number f)
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf key;
        Buffer.add_char buf ':';
        add_compact buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

let rec add_pretty buf ~level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom -> add_compact buf atom
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
    let indent = String.make (2 * (level + 1)) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf indent;
        add_pretty buf ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (2 * level) ' ');
    Buffer.add_char buf ']'
  | Obj fields ->
    let indent = String.make (2 * (level + 1)) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf indent;
        add_escaped buf key;
        Buffer.add_string buf ": ";
        add_pretty buf ~level:(level + 1) value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (2 * level) ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  add_pretty buf ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let keyword word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
      pos := !pos + 4;
      v
    | None -> fail "invalid \\u escape"
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        let c = s.[!pos] in
        incr pos;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            (* Combine a high surrogate with its pair; lone surrogates have
               no UTF-8 encoding and are rejected. *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let low = hex4 () in
              if low >= 0xDC00 && low <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
              else fail "unpaired surrogate"
            end
            else if cp >= 0xD800 && cp <= 0xDFFF then fail "unpaired surrogate"
            else cp
          in
          add_utf8 buf cp
        | _ -> fail "invalid escape");
        go ()
      | c ->
        incr pos;
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      incr pos
    done;
    let token = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %s" token)
    else begin
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> (
        (* Out of int range: keep the value, degrade to float. *)
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "invalid number %s" token))
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> keyword "null" Null
    | 't' -> keyword "true" (Bool true)
    | 'f' -> keyword "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            items (v :: acc)
          | ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          (key, parse_value ())
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            fields (kv :: acc)
          | '}' ->
            incr pos;
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "expected a JSON value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | String _ | List _ | Obj _ -> None

let to_string_opt = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None

let to_list_opt = function
  | List items -> Some items
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> None
