type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity; finite floats print as the shortest decimal
   that round-trips (so output is deterministic across runs and workers). *)
let number f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_subnormal | FP_normal ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else begin
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f
    end

let rec add_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number f)
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf key;
        Buffer.add_char buf ':';
        add_compact buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

let rec add_pretty buf ~level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom -> add_compact buf atom
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
    let indent = String.make (2 * (level + 1)) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf indent;
        add_pretty buf ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (2 * level) ' ');
    Buffer.add_char buf ']'
  | Obj fields ->
    let indent = String.make (2 * (level + 1)) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf indent;
        add_escaped buf key;
        Buffer.add_string buf ": ";
        add_pretty buf ~level:(level + 1) value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (2 * level) ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  add_pretty buf ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
