(** Calendar queue: an int-keyed binary min-heap of int payloads.

    Backs the wakeup-driven engine loop ([Engine.run ~mode:`Sparse]): keys
    are round numbers, payloads are machine ids.  The heap tolerates
    duplicate entries for one payload — consumers dedupe when draining —
    so a schedule update is a plain O(log n) push, never a decrease-key.
    Among entries with equal keys the pop order is unspecified. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty queue; [capacity] (default 16) presizes the backing
    arrays, which grow by doubling as needed and never shrink. *)

val is_empty : t -> bool
val size : t -> int

val add : t -> int -> int -> unit
(** [add t key value] pushes an entry. *)

val min_key : t -> int
(** Smallest key currently queued.  @raise Invalid_argument when empty. *)

val pop_min : t -> int
(** Remove one entry with the smallest key and return its payload.
    @raise Invalid_argument when empty. *)

val clear : t -> unit
