(* Calendar queue for the wakeup-driven engine: an int-keyed binary
   min-heap over parallel arrays, so scheduling and draining wakeups
   allocates nothing once the arrays have grown to their working size.
   Duplicate (key, value) entries are allowed — the engine dedupes at pop
   time with a per-round stamp, which is cheaper than a decrease-key. *)

type t = { mutable keys : int array; mutable vals : int array; mutable size : int }

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { keys = Array.make capacity 0; vals = Array.make capacity 0; size = 0 }

let is_empty t = t.size = 0
let size t = t.size
let clear t = t.size <- 0

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) 0 and vals = Array.make (2 * cap) 0 in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let add t key value =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- value;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && t.keys.((!i - 1) / 2) > t.keys.(!i) do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let min_key t =
  if t.size = 0 then invalid_arg "Calendar.min_key: empty";
  t.keys.(0)

let pop_min t =
  if t.size = 0 then invalid_arg "Calendar.pop_min: empty";
  let v = t.vals.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.vals.(0) <- t.vals.(t.size);
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
      if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
      if !smallest = !i then sifting := false
      else begin
        swap t !i !smallest;
        i := !smallest
      end
    done
  end;
  v
