(** Minimal JSON writer (no parser, no dependencies).

    Benchmark results are serialized with this module so downstream tooling
    can consume `BENCH_results.json` without scraping the ASCII tables.
    Output is deterministic: field order is preserved, floats print as the
    shortest decimal that round-trips, and non-finite floats (which JSON
    cannot represent) become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering with a trailing newline, for files meant
    to be read by humans as well as machines. *)

val number : float -> string
(** The numeric token used for a float: shortest round-tripping decimal
    (integer-valued floats keep a [.0]), ["null"] for NaN and infinities. *)
