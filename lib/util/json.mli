(** Minimal JSON reader/writer (no dependencies).

    Benchmark results are serialized with this module so downstream tooling
    can consume `BENCH_results.json` without scraping the ASCII tables, and
    parsed back by `bench compare` to diff two result files.  Output is
    deterministic: field order is preserved, floats print as the shortest
    decimal that round-trips, and non-finite floats (which JSON cannot
    represent) become [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering with a trailing newline, for files meant
    to be read by humans as well as machines. *)

val number : float -> string
(** The numeric token used for a float: shortest round-tripping decimal
    (integer-valued floats keep a [.0]), ["null"] for NaN and infinities. *)

val of_string : string -> (t, string) result
(** Strict recursive-descent parser for the JSON this module writes (and
    standard JSON generally): numbers without [.eE] parse as [Int], others
    as [Float]; [\u] escapes decode to UTF-8, surrogate pairs combined.
    [Error] carries a message with the byte offset of the failure. *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and missing keys. *)

val to_float_opt : t -> float option
(** [Int] and [Float] as a float; [None] otherwise. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
