(* Bit vectors packed 62 bits to a word.  The exposed constructors build
   canonical values (padding bits above [len] are always zero), so
   structural equality and hashing on the record coincide with bit-string
   equality — code that compared the old [bool array] representation
   polymorphically keeps working.  The scratch-mutation entry points at the
   bottom are for engine-owned buffers only; every other operation copies. *)

type t = { len : int; words : int array }

let bits_per_word = 62
let word_mask = (1 lsl bits_per_word) - 1
let words_for len = (len + bits_per_word - 1) / bits_per_word
let length t = t.len

let check_index name t i = if i < 0 || i >= t.len then invalid_arg name

let get t i =
  check_index "Bitvec.get" t i;
  (t.words.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1

let set t i b =
  check_index "Bitvec.set" t i;
  let w = i / bits_per_word and bit = 1 lsl (i mod bits_per_word) in
  if b then t.words.(w) <- t.words.(w) lor bit else t.words.(w) <- t.words.(w) land lnot bit

(* Mask covering the valid bits of the last word, restoring canonical
   padding after a whole-word fill. *)
let trim t =
  let r = t.len mod bits_per_word in
  if r > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land ((1 lsl r) - 1)
  end

let create n b =
  let t = { len = n; words = Array.make (words_for n) (if b then word_mask else 0) } in
  if b then trim t;
  t

let init n f =
  let t = create n false in
  for i = 0 to n - 1 do
    if f i then set t i true
  done;
  t

let of_list bits =
  let t = create (List.length bits) false in
  List.iteri (fun i b -> if b then set t i true) bits;
  t

let to_list t = List.init t.len (get t)

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %c" c))

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let of_int ~width n =
  assert (n >= 0 && width >= 0);
  init width (fun i -> (n lsr (width - 1 - i)) land 1 = 1)

let to_int t =
  assert (t.len <= 62);
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    acc := (!acc lsl 1) lor if get t i then 1 else 0
  done;
  !acc

let append a b =
  let t = create (a.len + b.len) false in
  for i = 0 to a.len - 1 do
    if get a i then set t i true
  done;
  for i = 0 to b.len - 1 do
    if get b i then set t (a.len + i) true
  done;
  t

let concat ts = List.fold_left append { len = 0; words = [||] } ts

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitvec.sub";
  init len (fun i -> get t (pos + i))

let equal a b =
  a.len = b.len
  &&
  let k = Array.length a.words in
  let rec go i = i >= k || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0

(* Must keep drawing one [Rng.bool] per bit in ascending index order: the
   draw sequence is part of the deterministic trace contract. *)
let random rng n =
  let bits = Rng.bits rng n in
  init n (fun i -> bits.(i))

let empty = { len = 0; words = [||] }
let snoc t b = append t (init 1 (fun _ -> b))

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let digest ~size m =
  assert (size > 0);
  (* Fold the message into a 62-bit accumulator with a multiplicative mix,
     then take [size] bits.  Not cryptographic, but collision-scattering
     enough that a random fake message almost never matches. *)
  let mask = (1 lsl 61) - 1 in
  let acc =
    fold_left
      (fun acc b ->
        let acc = (acc * 0x5DEECE66D) + if b then 0xB504F333F9DE649 else 1 in
        acc land mask)
      (0x9E3779B9 land mask) m
  in
  let acc = acc lxor (acc lsr 31) in
  init size (fun i -> (acc lsr (i mod 61)) land 1 = 1)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- word-level operations and scratch mutation ------------------------ *)

let popcount t =
  let total = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    let x = ref t.words.(w) in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr total
    done
  done;
  !total

let iter_set f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then begin
      let base = w * bits_per_word in
      let lim = min bits_per_word (t.len - base) in
      for b = 0 to lim - 1 do
        if (word lsr b) land 1 = 1 then f (base + b)
      done
    end
  done

let set_range t ~pos ~len b =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitvec.set_range";
  if len > 0 then begin
    let hi = pos + len in
    let w0 = pos / bits_per_word and w1 = (hi - 1) / bits_per_word in
    for w = w0 to w1 do
      let lo_bit = if w = w0 then pos mod bits_per_word else 0 in
      let hi_bit = if w = w1 then ((hi - 1) mod bits_per_word) + 1 else bits_per_word in
      let mask =
        if hi_bit - lo_bit = bits_per_word then word_mask
        else ((1 lsl (hi_bit - lo_bit)) - 1) lsl lo_bit
      in
      if b then t.words.(w) <- t.words.(w) lor mask
      else t.words.(w) <- t.words.(w) land lnot mask
    done
  end

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if
    src_pos < 0 || dst_pos < 0 || len < 0 || src_pos + len > src.len
    || dst_pos + len > dst.len
  then invalid_arg "Bitvec.blit";
  if src_pos mod bits_per_word = 0 && dst_pos mod bits_per_word = 0 then begin
    (* Word-aligned fast path: copy whole words, then the ragged tail. *)
    let full = len / bits_per_word in
    Array.blit src.words (src_pos / bits_per_word) dst.words (dst_pos / bits_per_word) full;
    (* A full-word copy into the last destination word may drag along
       padding bits from the source; the tail loop below only touches the
       ragged remainder, so re-trim the destination. *)
    for i = full * bits_per_word to len - 1 do
      set dst (dst_pos + i) (get src (src_pos + i))
    done;
    trim dst
  end
  else if src == dst && dst_pos > src_pos then
    for i = len - 1 downto 0 do
      set dst (dst_pos + i) (get src (src_pos + i))
    done
  else
    for i = 0 to len - 1 do
      set dst (dst_pos + i) (get src (src_pos + i))
    done

let word_count t = Array.length t.words
let word t w = t.words.(w)
