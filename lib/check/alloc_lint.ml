(* Hot-path allocation inventory: which allocation sites are reachable
   from the annotated hot roots, and did the set grow?

   The ROADMAP's zero-allocation goal for the engine's active-round path
   ("bit-packed channel and flat machine") is easy to regress silently: a
   refactor that closes over a loop variable, boxes a float, or builds a
   throwaway list inside [Engine.process_round] costs minor-GC pressure
   in every simulated round but changes no observable result.  This pass
   makes those regressions loud, statically:

   1. {b call graph} — {!Callgraph.build}/{!Callgraph.reachable} collects
      every let-bound function in the tree and walks the approximate call
      graph from the {!hot_roots} (engine round phases, shard phases A/B,
      channel resolution, the voting kernels);
   2. {b classification} — every syntactic allocation in a reachable
      function body is classified (closure / boxed-float / tuple / ref /
      list / array / string / partial-application);
   3. {b golden diff} — the classified counts are diffed against the
      committed [ALLOC_baseline.json]: a class a hot root did not
      previously allocate is an {b error}, growth within a known class a
      {b warning}, shrinkage an {b info} nudge to refresh the baseline.

   Like the other source passes this is purely syntactic and documented
   approximate: flambda may eliminate some flagged sites, float literals
   and unboxed float arithmetic are invisible (only the allocating
   operator/function spellings are matched), and higher-order calls are
   not followed.  The {!allowlist} records audited sites — each entry
   carries the justification string shown in [--json] — and the dynamic
   counterpart (the [words_per_active_round] gate in [bench compare])
   catches whatever the syntax misses. *)

type alloc_class =
  | Closure
  | Boxed_float
  | Tuple
  | Ref_cell
  | List_alloc
  | Array_alloc
  | String_alloc
  | Partial_app

let class_label = function
  | Closure -> "closure"
  | Boxed_float -> "boxed-float"
  | Tuple -> "tuple"
  | Ref_cell -> "ref"
  | List_alloc -> "list"
  | Array_alloc -> "array"
  | String_alloc -> "string"
  | Partial_app -> "partial-application"

type site = {
  site_file : string;
  site_line : int;
  site_class : alloc_class;
  site_root : string;  (* hot-root group, e.g. "engine-round" *)
  site_fn : string;  (* qualified function, e.g. "Engine.process_round" *)
}

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;
  message : string;
}

let codes =
  [
    "new-alloc-class"; "alloc-count-growth"; "alloc-count-shrink"; "baseline-missing";
    "unused-allowlist"; "parse-error";
  ]

let severity_of = function
  | "alloc-count-growth" -> Lint.Warning
  | "alloc-count-shrink" -> Lint.Info
  | _ -> Lint.Error

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d: %s: %s [%s]" d.file d.line (Lint.severity_label d.severity) d.message
    d.code

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
let has_errors diags = List.exists (fun d -> d.severity = Lint.Error) diags

(* --- hot roots ----------------------------------------------------------- *)

(* The annotated hot paths: per-active-round work in each engine loop,
   shard phases A/B, channel resolution, and the per-observation voting
   kernels.  Root names are {!Callgraph.reachable} patterns (qualified
   suffixes), grouped so the inventory reads per hot path, not per
   function. *)
let hot_roots =
  [
    ("engine-round", [ "Engine.process_round"; "Engine.fan_out" ]);
    ("shard-phase", [ "Engine.phase_a"; "Engine.phase_b"; "Engine.merge_and_draw" ]);
    ("channel-resolve", [ "Channel.resolve"; "Channel.resolve_packed" ]);
    ("voting-index", [ "Voting.Index.add"; "Voting.Index.decide"; "Voting.Tally.add" ]);
    ("neighbor-vote", [ "Neighbor_watch.Vote.poll"; "Neighbor_watch.Vote.advance_agreement" ]);
  ]

(* --- allowlist ----------------------------------------------------------- *)

(* Audited hot-path allocations.  Matching sites are removed before the
   golden diff; every entry must keep matching at least one site or the
   stale audit itself becomes an error (pointing here, at [al_line]). *)
type allow = {
  al_file : string;  (* repo-relative file the site lives in *)
  al_class : string;  (* class label the audit covers *)
  al_fn : string option;  (* qualified function; None = anywhere in the file *)
  al_why : string;  (* justification, surfaced in --json output *)
  al_line : int;  (* definition line below, for stale-entry diagnostics *)
}

let allowlist_file = "lib/check/alloc_lint.ml"

(* Currently empty: the tap-only trace digest that used to be audited here
   moved off the hot functions entirely (the engine mirrors transmitter ids
   into a preallocated per-slot array and builds the trace record in the
   driver loop, which no hot root reaches). *)
let allowlist : allow list = []

let allow_matches allow site =
  Lint.path_matches ~entry:allow.al_file site.site_file
  && allow.al_class = class_label site.site_class
  && match allow.al_fn with None -> true | Some fn -> fn = site.site_fn

(* --- classification ------------------------------------------------------ *)

let strip_stdlib h =
  if String.starts_with ~prefix:"Stdlib." h then String.sub h 7 (String.length h - 7) else h

let float_heads = [ "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "Float.of_int" ]

let array_heads =
  [
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.sub"; "Array.of_list";
    "Array.make_matrix"; "Array.create_float"; "Array.map"; "Array.mapi";
  ]

let list_heads =
  [
    "List.rev"; "List.map"; "List.mapi"; "List.init"; "List.filter"; "List.filter_map";
    "List.concat"; "List.concat_map"; "List.append"; "@"; "List.rev_append"; "List.sort";
    "List.sort_uniq"; "List.of_seq"; "Array.to_list";
  ]

let string_heads =
  [
    "String.concat"; "String.sub"; "String.make"; "String.init"; "Printf.sprintf";
    "Format.asprintf"; "^"; "Bytes.create"; "Bytes.make"; "Bytes.sub"; "Bytes.copy";
    "Bytes.to_string"; "Bytes.of_string"; "string_of_int"; "string_of_float";
  ]

(* Peel a function's own parameters so its currying is not reported as
   closure allocation; only what the body allocates per call counts. *)
let rec strip_params e =
  let p = Callgraph.peel e in
  match p.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) | Parsetree.Pexp_newtype (_, body) -> strip_params body
  | _ -> p

let sites_of_fn graph ~root (fn : Callgraph.fn_info) =
  let body = strip_params fn.Callgraph.fn_body in
  let acc = ref [] in
  let add e cls =
    acc :=
      {
        site_file = fn.Callgraph.fn_file;
        site_line = Callgraph.line_of e.Parsetree.pexp_loc;
        site_class = cls;
        site_root = root;
        site_fn = fn.Callgraph.fn_qual;
      }
      :: !acc
  in
  Callgraph.iter_expr
    (fun e ->
      match e.Parsetree.pexp_desc with
      (* [body] itself may be a [function]-style match — that is the
         function's own currying, not a per-call closure. *)
      | (Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ | Parsetree.Pexp_newtype _)
        when e != body ->
        add e Closure
      | Parsetree.Pexp_tuple _ -> add e Tuple
      | Parsetree.Pexp_array _ -> add e Array_alloc
      | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> add e List_alloc
      | Parsetree.Pexp_apply (f, args) -> (
        match Option.map strip_stdlib (Callgraph.head_ident f) with
        | Some "ref" -> add e Ref_cell
        | Some h when List.mem h float_heads -> add e Boxed_float
        | Some h when List.mem h array_heads -> add e Array_alloc
        | Some h when List.mem h list_heads -> add e List_alloc
        | Some h when List.mem h string_heads -> add e String_alloc
        | Some h ->
          (* Applying a known function to fewer arguments than it takes
             builds a partial-application closure. *)
          let nargs = List.length args in
          let candidates = Callgraph.resolve graph ~file:fn.Callgraph.fn_file h in
          if candidates <> [] && List.exists (fun c -> c.Callgraph.fn_arity > nargs) candidates
          then add e Partial_app
        | None -> ())
      | _ -> ())
    body;
  List.rev !acc

(* All classified sites reachable from the roots, allowlist applied;
   returns the surviving sites and the allowlist entries that fired. *)
let sites_of_parsed ?(roots = hot_roots) parsed_files =
  let graph = Callgraph.build parsed_files in
  let sites =
    List.concat_map
      (fun (root, patterns) ->
        let fns = Callgraph.reachable graph ~roots:patterns in
        List.concat_map (fun fn -> sites_of_fn graph ~root fn) fns)
      roots
  in
  let used = ref [] in
  let kept =
    List.filter
      (fun site ->
        match List.find_opt (fun a -> allow_matches a site) allowlist with
        | Some entry ->
          if not (List.memq entry !used) then used := entry :: !used;
          false
        | None -> true)
      sites
  in
  (kept, List.rev !used)

(* --- inventory ----------------------------------------------------------- *)

(* Counts of distinct (file, line, class) sites per root per class,
   canonically sorted so the JSON is diffable. *)
let inventory_of_sites sites =
  let dedup =
    List.sort_uniq
      (fun a b ->
        match String.compare a.site_root b.site_root with
        | 0 -> (
          match String.compare a.site_file b.site_file with
          | 0 -> (
            match Int.compare a.site_line b.site_line with
            | 0 -> String.compare (class_label a.site_class) (class_label b.site_class)
            | c -> c)
          | c -> c)
        | c -> c)
      sites
  in
  let roots = List.sort_uniq String.compare (List.map (fun s -> s.site_root) dedup) in
  List.map
    (fun root ->
      let here = List.filter (fun s -> s.site_root = root) dedup in
      let labels = List.sort_uniq String.compare (List.map (fun s -> class_label s.site_class) here) in
      ( root,
        List.map
          (fun label ->
            (label, List.length (List.filter (fun s -> class_label s.site_class = label) here)))
          labels ))
    roots

let schema = "securebit-alloc/1"

let json_of_inventory inventory =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "roots",
        Json.List
          (List.map
             (fun (root, classes) ->
               Json.Obj
                 [
                   ("root", Json.String root);
                   ("classes", Json.Obj (List.map (fun (label, n) -> (label, Json.Int n)) classes));
                 ])
             inventory) );
    ]

let inventory_of_json json =
  match Json.member "roots" json |> Option.map Json.to_list_opt with
  | Some (Some roots) ->
    let entry e =
      match (Option.bind (Json.member "root" e) Json.to_string_opt, Json.member "classes" e) with
      | Some root, Some (Json.Obj fields) ->
        let classes =
          List.filter_map
            (fun (label, v) -> Option.map (fun n -> (label, int_of_float n)) (Json.to_float_opt v))
            fields
        in
        Ok (root, classes)
      | Some root, _ -> Error (Printf.sprintf "root %s has no classes object" root)
      | None, _ -> Error "root entry without a name"
    in
    List.fold_left
      (fun acc e ->
        match (acc, entry e) with
        | Ok entries, Ok entry -> Ok (entry :: entries)
        | (Error _ as err), _ | _, (Error _ as err) -> err)
      (Ok []) roots
    |> Result.map List.rev
  | Some None | None -> Error "no \"roots\" list (not a securebit-alloc baseline?)"

(* --- golden diff --------------------------------------------------------- *)

let count_in inventory root label =
  match List.assoc_opt root inventory with
  | Some classes -> ( match List.assoc_opt label classes with Some n -> n | None -> 0)
  | None -> 0

let refresh_hint = "refresh the golden inventory (see README: alloc-baseline refresh) if intended"

(* Diff the current inventory against the committed golden one.  [sites]
   locates the diagnostics: a new or grown class points at its first
   surviving site, a shrink at the baseline file itself. *)
let diff ~golden_name ~golden ~sites current =
  let diags = ref [] in
  let emit ~file ~line code message =
    diags := { severity = severity_of code; file; line; code; message } :: !diags
  in
  let first_site root label =
    List.find_opt (fun s -> s.site_root = root && class_label s.site_class = label) sites
  in
  List.iter
    (fun (root, classes) ->
      List.iter
        (fun (label, n) ->
          let was = count_in golden root label in
          let file, line =
            match first_site root label with
            | Some s -> (s.site_file, s.site_line)
            | None -> (golden_name, 0)
          in
          if was = 0 && n > 0 then
            emit ~file ~line "new-alloc-class"
              (Printf.sprintf
                 "hot path %s gained allocation class %s (%d site(s), golden inventory has none); \
                  keep the active-round path allocation-free or add an audited allowlist entry"
                 root label n)
          else if n > was then
            emit ~file ~line "alloc-count-growth"
              (Printf.sprintf "hot path %s grew %s allocation sites %d -> %d; %s" root label was n
                 refresh_hint))
        classes)
    current;
  List.iter
    (fun (root, classes) ->
      List.iter
        (fun (label, was) ->
          let now = count_in current root label in
          if now < was then
            emit ~file:golden_name ~line:0 "alloc-count-shrink"
              (Printf.sprintf "hot path %s shrank %s allocation sites %d -> %d; %s" root label was
                 now refresh_hint))
        classes)
    golden;
  List.rev !diags

(* --- whole-tree lint ----------------------------------------------------- *)

let default_golden_name = "ALLOC_baseline.json"

let finish ?roots ~golden_name ~golden ~parse_errors ~linted parsed =
  let sites, used = sites_of_parsed ?roots parsed in
  (* An entry is stale only when its target file was actually linted this
     run — partial-tree invocations must not flag audits they never
     exercised (same contract as [Lint.unused_allowlist]). *)
  let was_linted entry = List.exists (fun path -> Lint.path_matches ~entry:entry.al_file path) linted in
  let unused =
    List.filter_map
      (fun entry ->
        if List.memq entry used || not (was_linted entry) then None
        else
          Some
            {
              severity = Lint.Error;
              file = allowlist_file;
              line = entry.al_line;
              code = "unused-allowlist";
              message =
                Printf.sprintf
                  "allowlist entry (%s, %s) suppressed no site; delete the stale audit at %s:%d"
                  entry.al_file entry.al_class allowlist_file entry.al_line;
            })
      allowlist
  in
  let golden_diags =
    match golden with
    | None ->
      [
        {
          severity = Lint.Error;
          file = golden_name;
          line = 0;
          code = "baseline-missing";
          message =
            "no golden allocation inventory; generate one with securebit_lint lint alloc \
             --write-baseline";
        };
      ]
    | Some json -> (
      match inventory_of_json json with
      | Ok golden -> diff ~golden_name ~golden ~sites (inventory_of_sites sites)
      | Error message ->
        [
          {
            severity = Lint.Error;
            file = golden_name;
            line = 0;
            code = "baseline-missing";
            message = Printf.sprintf "golden inventory unreadable: %s" message;
          };
        ])
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with 0 -> Int.compare a.line b.line | c -> c)
    (parse_errors @ unused @ golden_diags)

let lint_strings ?roots ?(golden_name = default_golden_name) ~golden files =
  let parsed, parse_errors =
    List.fold_left
      (fun (parsed, errors) (path, contents) ->
        match Callgraph.parse_string ~path contents with
        | Ok structure -> ((path, structure) :: parsed, errors)
        | Error line ->
          ( parsed,
            {
              severity = Lint.Error;
              file = path;
              line;
              code = "parse-error";
              message = "file does not parse as an OCaml implementation";
            }
            :: errors ))
      ([], []) files
  in
  finish ?roots ~golden_name ~golden ~parse_errors:(List.rev parse_errors)
    ~linted:(List.map fst files) (List.rev parsed)

let lint_structures ?roots ?(golden_name = default_golden_name) ~golden parsed =
  finish ?roots ~golden_name ~golden ~parse_errors:[] ~linted:(List.map fst parsed) parsed

let sites_strings ?roots files =
  let parsed =
    List.filter_map
      (fun (path, contents) ->
        match Callgraph.parse_string ~path contents with
        | Ok structure -> Some (path, structure)
        | Error _ -> None)
      files
  in
  fst (sites_of_parsed ?roots parsed)

let inventory_strings ?roots files = inventory_of_sites (sites_strings ?roots files)

let with_contents paths =
  List.map (fun path -> (path, Callgraph.read_file path)) (Source_lint.source_files paths)

let load_golden path =
  match Callgraph.read_file path with
  | contents -> ( match Json.of_string contents with Ok json -> Some json | Error _ -> Some Json.Null)
  | exception Sys_error _ -> None

let lint_paths ?roots ~golden_path paths =
  lint_strings ?roots ~golden_name:golden_path ~golden:(load_golden golden_path)
    (with_contents paths)

let inventory_paths ?roots paths = inventory_strings ?roots (with_contents paths)
let sites_paths ?roots paths = sites_strings ?roots (with_contents paths)

(* --- seed violation ------------------------------------------------------ *)

(* A one-module demo of the regression class this analyzer exists for: a
   fake hot root whose round function boxes floats, builds a closure and
   a throwaway list per call.  Diffed against an empty golden inventory,
   every class fires as a new-alloc-class error. *)
let seed_violation_files =
  [
    ( "lib/sim/hot_demo.ml",
      "(* seed-violation demo: an allocating fake hot loop *)\n\
       let resolve_cell x y = (x *. y, x +. y)\n\n\
       let process_round cells =\n\
      \  let boxed = List.map (fun c -> c *. 2.0) cells in\n\
      \  let pairs = List.map (fun c -> resolve_cell c c) boxed in\n\
      \  List.length pairs\n" );
  ]

let seed_violation_roots = [ ("demo-round", [ "Hot_demo.process_round" ]) ]

let empty_golden = Json.Obj [ ("schema", Json.String schema); ("roots", Json.List []) ]

let seed_violation () =
  lint_strings ~roots:seed_violation_roots ~golden:(Some empty_golden) seed_violation_files
