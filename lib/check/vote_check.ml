(* Exhaustive checking of the multi-hop voting layer: MultiPathRB's
   common-neighbourhood quorum and NeighborWatchRB's frontier vote.  See the
   interface for the enumeration spaces and invariants. *)

type step = { index : int; description : string }

type counterexample = {
  protocol : string;
  radius : int;
  invariant : string;
  detail : string;
  setup : string;
  trace : step list;
}

type outcome = Pass of { configurations : int; states : int } | Fail of counterexample

exception Violation of counterexample

(* Event descriptions are kept as thunks (newest first) and rendered only
   when a counterexample is actually built: the pass path runs hundreds of
   thousands of events and must not pay for string formatting. *)
let materialize events =
  List.mapi (fun index render -> { index; description = render () }) (List.rev events)

let pp_counterexample fmt ce =
  Format.fprintf fmt "@[<v>%s invariant violated: %s@,  %s@,  setup: %s@,  trace:" ce.protocol
    ce.invariant ce.detail ce.setup;
  List.iter (fun s -> Format.fprintf fmt "@,    %2d  %s" s.index s.description) ce.trace;
  Format.fprintf fmt "@]"

let counterexample_to_string ce = Format.asprintf "%a" pp_counterexample ce

(* --- MultiPathRB ------------------------------------------------------- *)

type mp_impl = {
  mp_name : string;
  mp_decide : Voting.Index.t -> radius:float -> need:int -> value:bool -> bool;
}

let mp_reference =
  {
    mp_name = "Index.decide";
    mp_decide = (fun index ~radius ~need ~value -> Voting.Index.decide index ~radius ~need ~value);
  }

let mp_seeded =
  {
    mp_name = "Index.decide[need-1]";
    mp_decide =
      (fun index ~radius ~need ~value -> Voting.Index.decide index ~radius ~need:(need - 1) ~value);
  }

(* One enumerated neighbourhood at integer radius [r]:

   - honest origins on the lattice [(i mod 4, i / 4)], all inside one
     2R-window, each contributing a COMMIT(true); origin #2 additionally
     contributes a HEARD(true) with a nearby witness (same origin — must
     not add a vote);
   - Byzantine origins split into behaviour classes: in-window fakes on
     core slots left of the cluster, double voters (COMMIT of both values
     from one origin), verbatim replays, rim origins exactly 2R away
     (boundary of the common window), origins just outside any common
     window, and HEARD(false) items whose witness is far outside every
     window (the multi-point fit must disqualify them). *)
let check_multi_path ?(impl = mp_reference) ~radius:r () =
  let radius = float_of_int r in
  let tol = Bounds.multi_path_tolerance ~radius:r in
  let need = tol + 1 in
  let core_slots =
    let xs = match r with 1 -> [] | 2 -> [ -1 ] | _ -> [ -1; -2; -3 ] in
    Array.of_list
      (List.concat_map (fun x -> List.map (fun y -> (x, y)) [ -1; 0; 1; 2 ]) xs)
  in
  let configurations = ref 0 and states = ref 0 in
  let pt x y = Point.make (float_of_int x) (float_of_int y) in
  let rec interleave a b =
    match (a, b) with [], rest | rest, [] -> rest | x :: a', y :: b' -> x :: y :: interleave a' b'
  in
  let run ~h ~comp ~order =
    incr configurations;
    let n_core, n_both, n_replay, n_rim, n_outside, n_badw = comp in
    let setup =
      Printf.sprintf
        "MultiPathRB R=%d t=%d need=%d honest=%d core=%d both=%d replay=%d rim=%d outside=%d \
         bad-witness=%d order=%s"
        r tol need h n_core n_both n_replay n_rim n_outside n_badw
        (if order = 0 then "honest-first" else "interleaved")
    in
    let honest =
      List.concat
        (List.init h (fun i ->
             let x = i mod 4 and y = i / 4 in
             let commit = { Voting.origin = (x, y); value = true; points = [ pt x y ] } in
             let ev =
               (commit, fun () -> Printf.sprintf "honest COMMIT(true) from (%d,%d)" x y)
             in
             if i = 2 then
               let witness = Point.make (float_of_int x +. 0.5) (float_of_int y +. 0.5) in
               let heard =
                 { Voting.origin = (x, y); value = true; points = [ pt x y; witness ] }
               in
               [
                 ev;
                 ( heard,
                   fun () ->
                     Printf.sprintf "honest HEARD(true) cause (%d,%d), near witness" x y );
               ]
             else [ ev ]))
    in
    let byz = ref [] in
    let add ev = byz := ev :: !byz in
    let slot = ref 0 in
    let next_core () =
      let s = core_slots.(!slot) in
      incr slot;
      s
    in
    let fake origin points = { Voting.origin; value = false; points } in
    for _ = 1 to n_core do
      let x, y = next_core () in
      add (fake (x, y) [ pt x y ], fun () -> Printf.sprintf "byz COMMIT(false) from (%d,%d)" x y)
    done;
    for _ = 1 to n_both do
      let x, y = next_core () in
      add (fake (x, y) [ pt x y ], fun () -> Printf.sprintf "byz COMMIT(false) from (%d,%d)" x y);
      add
        ( { Voting.origin = (x, y); value = true; points = [ pt x y ] },
          fun () -> Printf.sprintf "byz COMMIT(true) from (%d,%d) (double voter)" x y )
    done;
    for _ = 1 to n_replay do
      let x, y = next_core () in
      let it = fake (x, y) [ pt x y ] in
      add (it, fun () -> Printf.sprintf "byz COMMIT(false) from (%d,%d)" x y);
      add (it, fun () -> Printf.sprintf "byz replay of COMMIT(false) from (%d,%d)" x y)
    done;
    for j = 0 to n_rim - 1 do
      let x = 2 * r and y = j in
      add
        ( fake (x, y) [ pt x y ],
          fun () -> Printf.sprintf "byz COMMIT(false) from window rim (%d,%d)" x y )
    done;
    for j = 0 to n_outside - 1 do
      let x = (2 * r) + 1 and y = j in
      add
        ( fake (x, y) [ pt x y ],
          fun () -> Printf.sprintf "byz COMMIT(false) from outside window (%d,%d)" x y )
    done;
    for _ = 1 to n_badw do
      let x, y = next_core () in
      let far = Point.make (10.0 *. radius) (10.0 *. radius) in
      add
        ( { Voting.origin = (x, y); value = false; points = [ pt x y; far ] },
          fun () -> Printf.sprintf "byz HEARD(false) cause (%d,%d), unreachable witness" x y )
    done;
    let byz = List.rev !byz in
    let replay_tail =
      match honest with
      | (it, _) :: _ -> [ ((it : Voting.item), fun () -> "byz replay of first honest COMMIT") ]
      | [] -> []
    in
    let events = (match order with 0 -> honest @ byz | _ -> interleave byz honest) @ replay_tail in
    let index = Voting.Index.create () in
    let trace = ref [] in
    let seen = ref [] in
    let fail invariant detail =
      raise
        (Violation
           { protocol = "MultiPathRB"; radius = r; invariant; detail; setup;
             trace = materialize !seen })
    in
    List.iter
      (fun (item, render) ->
        seen := render :: !seen;
        trace := item :: !trace;
        Voting.Index.add index item;
        incr states;
        List.iter
          (fun value ->
            let iv = Voting.Index.votes index ~value in
            let dv = Voting.distinct_origins ~value !trace in
            if iv <> dv then
              fail "mp-votes"
                (Printf.sprintf "Index.votes ~value:%B = %d but distinct_origins = %d" value iv dv);
            let a = impl.mp_decide index ~radius ~need ~value in
            let b = Voting.quorum ~radius ~need ~value !trace in
            let c = Voting.Reference.quorum ~radius ~need ~value !trace in
            if not (a = b && b = c) then
              fail "mp-agreement"
                (Printf.sprintf "~value:%B: %s = %B, Voting.quorum = %B, Reference.quorum = %B"
                   value impl.mp_name a b c);
            if (not value) && a then
              fail "mp-no-forgery"
                (Printf.sprintf
                   "false-value quorum formed with only %d Byzantine origins (need %d)" dv need))
          [ true; false ])
      events;
    if h >= need && not (impl.mp_decide index ~radius ~need ~value:true) then
      fail "mp-quorum-reached"
        (Printf.sprintf "%d co-located honest origins did not reach quorum %d" h need)
  in
  let cap = min 2 tol in
  match
    for n_both = 0 to cap do
      for n_replay = 0 to cap do
        for n_rim = 0 to cap do
          for n_outside = 0 to cap do
            for n_badw = 0 to cap do
              let s = n_both + n_replay + n_rim + n_outside + n_badw in
              if s <= tol then
                for n_core = 0 to tol - s do
                  List.iter
                    (fun h ->
                      List.iter
                        (fun order ->
                          run ~h ~comp:(n_core, n_both, n_replay, n_rim, n_outside, n_badw) ~order)
                        [ 0; 1 ])
                    [ tol; need ]
                done
            done
          done
        done
      done
    done
  with
  | () -> Pass { configurations = !configurations; states = !states }
  | exception Violation ce -> Fail ce

(* --- NeighborWatchRB --------------------------------------------------- *)

type nw_impl = { nw_name : string; nw_create : votes:int -> Neighbor_watch.Vote.t }

let nw_reference =
  { nw_name = "Vote.poll"; nw_create = (fun ~votes -> Neighbor_watch.Vote.create ~votes) }

let nw_seeded =
  {
    nw_name = "Vote.poll[votes-1]";
    nw_create = (fun ~votes -> Neighbor_watch.Vote.create ~votes:(votes - 1));
  }

let show_vote = function None -> "None" | Some true -> "Some true" | Some false -> "Some false"
let show_bits bits = String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

(* Drive the real {!Neighbor_watch.Vote} kernel over every assignment of
   three adjacent-square streams to liars (arbitrary bounded bitstrings,
   including withholding prefixes) and honest relays (prefixes of the true
   message), with an optional direct source stream, pushing bits
   round-robin and re-polling after every arrival.  A from-scratch
   recomputation of the frontier rule is the oracle at every step. *)
let check_neighbor_watch ?(impl = nw_reference) ~votes ~radius:r () =
  let module V = Neighbor_watch.Vote in
  let truth = [| true; false; true |] in
  let msg_len = Array.length truth in
  let configurations = ref 0 and states = ref 0 in
  let tol =
    if votes >= 2 then max 0 (Bounds.two_voting_tolerance ~radius:r)
    else Bounds.neighbor_watch_tolerance ~radius:r
  in
  let run ~f ~contents ~src ~replayed =
    incr configurations;
    let setup =
      Printf.sprintf "NeighborWatchRB R=%d votes=%d liars=%d squares=[%s] src=%s replay=%B" r
        votes f
        (String.concat "; " (List.map show_bits contents))
        (match src with None -> "absent" | Some bits -> show_bits bits)
        replayed
    in
    let vote = impl.nw_create ~votes in
    let square_streams = List.init 3 (fun k -> V.stream (V.Sq k)) in
    let src_stream = Option.map (fun _ -> V.stream V.Src) src in
    let all =
      Array.of_list ((match src_stream with Some st -> [ st ] | None -> []) @ square_streams)
    in
    let shadow =
      (match (src_stream, src) with
      | Some st, Some content -> [ (st, true, Array.of_list content, ref 0) ]
      | _ -> [])
      @ List.map2
          (fun st content -> (st, false, Array.of_list content, ref 0))
          square_streams contents
    in
    let committed = Buffer.create 4 in
    let committed_bit i = Buffer.nth committed i = '1' in
    let events = ref [] in
    let fail invariant detail =
      raise
        (Violation
           { protocol = "NeighborWatchRB"; radius = r; invariant; detail; setup;
             trace = materialize !events })
    in
    (* The oracle: recompute the frontier decision from the pushed stream
       contents alone, with none of the kernel's incremental state. *)
    let reference_poll () =
      let c = Buffer.length committed in
      let qualifies (_, _, content, pushed) =
        !pushed > c
        &&
        let ok = ref true in
        for j = 0 to c - 1 do
          if content.(j) <> committed_bit j then ok := false
        done;
        !ok
      in
      match List.find_opt (fun ((_, is_src, _, _) as s) -> is_src && qualifies s) shadow with
      | Some (_, _, content, _) -> Some content.(c)
      | None ->
        let count v =
          List.length
            (List.filter
               (fun ((_, is_src, content, _) as s) ->
                 (not is_src) && qualifies s && content.(c) = v)
               shadow)
        in
        if count true >= votes then Some true
        else if count false >= votes then Some false
        else None
    in
    let rec drain () =
      if Buffer.length committed < msg_len then begin
        incr states;
        let got = V.poll vote ~committed all in
        let want = reference_poll () in
        if got <> want then
          fail "nw-agreement"
            (Printf.sprintf "%s = %s but reference recomputation = %s at frontier %d"
               impl.nw_name (show_vote got) (show_vote want) (Buffer.length committed));
        match got with
        | Some v ->
          Buffer.add_char committed (if v then '1' else '0');
          let i = Buffer.length committed - 1 in
          events := (fun () -> Printf.sprintf "commit bit %d = %B" i v) :: !events;
          if f < votes && committed_bit i <> truth.(i) then
            fail "nw-veto"
              (Printf.sprintf
                 "bit %d committed as %B against the true message with only %d liar streams" i v f);
          drain ()
        | None -> ()
      end
    in
    let push ((st, _, content, pushed) as _s) =
      let i = !pushed in
      let parity = One_hop.parity_of_index i in
      let data = content.(i) in
      One_hop.Receiver.push_two_bit (V.receiver st) ~parity ~data;
      if replayed then One_hop.Receiver.push_two_bit (V.receiver st) ~parity ~data;
      incr pushed;
      let name =
        match V.provider st with V.Src -> "src" | V.Sq k -> Printf.sprintf "sq%d" k
      in
      events :=
        (fun () ->
          Printf.sprintf "push %s bit %d = %B%s" name i data
            (if replayed then " (replayed)" else ""))
        :: !events;
      drain ()
    in
    drain ();
    for i = 0 to msg_len - 1 do
      List.iter
        (fun ((_, _, content, _) as s) -> if i < Array.length content then push s)
        shadow
    done;
    let full bits = List.length bits = msg_len in
    let honest_full =
      List.length (List.filteri (fun idx bits -> idx >= f && full bits) contents)
    in
    let src_full = match src with Some bits -> full bits | None -> false in
    if f < votes && (src_full || honest_full >= votes) && Buffer.length committed < msg_len then
      fail "nw-delivery"
        (Printf.sprintf "only %d/%d bits committed despite sufficient honest streams"
           (Buffer.length committed) msg_len)
  in
  let rec tuples options k =
    if k = 0 then [ [] ]
    else List.concat_map (fun rest -> List.map (fun o -> o :: rest) options) (tuples options (k - 1))
  in
  let prefixes =
    List.init (msg_len + 1) (fun n -> Array.to_list (Array.sub truth 0 n))
  in
  let bitstrings =
    let rec strings len =
      if len = 0 then [ [] ]
      else List.concat_map (fun s -> [ true :: s; false :: s ]) (strings (len - 1))
    in
    List.concat_map strings [ 0; 1; 2; 3 ]
  in
  let src_options = None :: List.map Option.some prefixes in
  match
    (* The paper's square veto is an arithmetic consequence of the
       tolerance: up to t liars cannot fully corrupt [votes] squares of
       side ⌈R/2⌉ (each square holds ⌈R/2⌉² lattice devices). *)
    (let squares_corruptible t = t / (((r + 1) / 2) * ((r + 1) / 2)) in
     for t = 0 to tol do
       if squares_corruptible t >= votes then
         raise
           (Violation
              {
                protocol = "NeighborWatchRB";
                radius = r;
                invariant = "nw-bound-arithmetic";
                detail =
                  Printf.sprintf
                    "t=%d liars can fully corrupt %d >= %d squares of side %d" t
                    (squares_corruptible t) votes ((r + 1) / 2);
                setup = Printf.sprintf "NeighborWatchRB R=%d votes=%d tolerance=%d" r votes tol;
                trace = [];
              })
     done);
    for f = 0 to 3 do
      List.iter
        (fun liars ->
          List.iter
            (fun honest ->
              let contents = liars @ honest in
              List.iter
                (fun src ->
                  List.iter
                    (fun replayed -> run ~f ~contents ~src ~replayed)
                    [ false; true ])
                src_options)
            (tuples prefixes (3 - f)))
        (tuples bitstrings f)
    done
  with
  | () -> Pass { configurations = !configurations; states = !states }
  | exception Violation ce -> Fail ce
