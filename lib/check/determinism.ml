(* Determinism checking: run the same seeded scenario twice and diff the
   full round-by-round channel trace.  Hidden mutable state, hash-order
   iteration, or un-split RNG use in the engine or a protocol machine shows
   up as a first divergent round. *)

type trace = Engine.round_digest array

let collector () =
  let acc = ref [] in
  let tap digest = acc := digest :: !acc in
  let finish () = Array.of_list (List.rev !acc) in
  (tap, finish)

type divergence = {
  round : int;
  first : Engine.round_digest option;
  second : Engine.round_digest option;
}

type outcome = Deterministic of { rounds : int } | Diverged of divergence

let digest_equal (a : Engine.round_digest) (b : Engine.round_digest) =
  a.Engine.round = b.Engine.round
  && a.Engine.transmitters = b.Engine.transmitters
  && a.Engine.observations = b.Engine.observations

let diff (first : trace) (second : trace) =
  let la = Array.length first and lb = Array.length second in
  let rec go i =
    if i >= la && i >= lb then Deterministic { rounds = la }
    else if i >= la || i >= lb then
      Diverged
        {
          round = i;
          first = (if i < la then Some first.(i) else None);
          second = (if i < lb then Some second.(i) else None);
        }
    else if digest_equal first.(i) second.(i) then go (i + 1)
    else Diverged { round = i; first = Some first.(i); second = Some second.(i) }
  in
  go 0

let capture_spec ?max_rounds ?mode ?tile_of ?boxed spec =
  let spec =
    match max_rounds with
    | Some cap -> { spec with Scenario.cap = min spec.Scenario.cap cap }
    | None -> spec
  in
  let tap, finish = collector () in
  let result = Scenario.run ~tap ?mode ?tile_of ?boxed spec in
  (finish (), result)

let check_spec ?max_rounds ?mode spec =
  let first, _ = capture_spec ?max_rounds ?mode spec in
  let second, _ = capture_spec ?max_rounds ?mode spec in
  diff first second

let mode_label : Engine.mode -> string = function
  | `Dense -> "dense"
  | `Sparse -> "sparse"
  | `Sharded tiles -> Printf.sprintf "sharded:%d" tiles

let mode_of_label label =
  match String.lowercase_ascii label with
  | "dense" -> Some `Dense
  | "sparse" -> Some `Sparse
  | s when String.starts_with ~prefix:"sharded:" s -> (
    match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
    | Some tiles when tiles >= 1 -> Some (`Sharded tiles)
    | Some _ | None -> None)
  | _ -> None

(* Mode-equivalence check: capture one trace per requested engine mode and
   diff every pair (a single mode degenerates to the classic
   run-twice-and-diff).  The engine promises byte-identical traces for all
   modes, so any divergence names the two loop implementations that
   disagree. *)
let check_modes ?max_rounds modes spec =
  match modes with
  | [] -> []
  | [ only ] ->
    let first, _ = capture_spec ?max_rounds ~mode:only spec in
    let second, _ = capture_spec ?max_rounds ~mode:only spec in
    [ ((mode_label only, mode_label only), diff first second) ]
  | _ :: _ :: _ ->
    let traces =
      List.map (fun mode -> (mode_label mode, fst (capture_spec ?max_rounds ~mode spec))) modes
    in
    let rec pairs = function
      | [] -> []
      | (la, ta) :: rest ->
        List.map (fun (lb, tb) -> ((la, lb), diff ta tb)) rest @ pairs rest
    in
    pairs traces

let pp_digest fmt (d : Engine.round_digest) =
  let obs = Array.to_list d.Engine.observations in
  let active = List.length (List.filter (fun fp -> fp <> 0) obs) in
  Format.fprintf fmt "round %d: tx={%s}, %d node(s) observed activity" d.Engine.round
    (String.concat "," (List.map string_of_int d.Engine.transmitters))
    active

let pp_outcome fmt = function
  | Deterministic { rounds } ->
    Format.fprintf fmt "deterministic over %d traced rounds" rounds
  | Diverged { round; first; second } ->
    let side label fmt = function
      | Some d -> Format.fprintf fmt "@\n  %s %a" label pp_digest d
      | None -> Format.fprintf fmt "@\n  %s trace ended" label
    in
    Format.fprintf fmt "traces diverge at round %d:%a%a" round (side "run 1:") first
      (side "run 2:") second

let outcome_to_string o = Format.asprintf "%a" pp_outcome o
