(** Hot-path allocation inventory.

    Walks the approximate interprocedural call graph ({!Callgraph}) from
    the annotated {!hot_roots} — the engine's active-round phases, the
    shard phases A/B, channel resolution, and the voting kernels —
    classifies every syntactic allocation site in the reachable
    functions, and diffs the per-root, per-class counts against the
    committed golden inventory ([ALLOC_baseline.json]):

    - a class a hot root did not previously allocate → {b error}
      ([new-alloc-class]);
    - count growth within a known class → {b warning}
      ([alloc-count-growth]);
    - shrinkage → {b info} nudge to refresh the golden file
      ([alloc-count-shrink]).

    Purely syntactic and documented approximate (no typing, no
    higher-order flow; flambda may eliminate some flagged sites) — the
    dynamic counterpart is the [words_per_active_round] gate in
    [bench compare].  The {!allowlist} records audited sites with their
    justification; stale entries are themselves errors pointing at the
    entry's definition line in this module. *)

type alloc_class =
  | Closure
  | Boxed_float
  | Tuple
  | Ref_cell
  | List_alloc
  | Array_alloc
  | String_alloc
  | Partial_app

val class_label : alloc_class -> string
(** Stable label: ["closure"], ["boxed-float"], ["tuple"], ["ref"],
    ["list"], ["array"], ["string"], ["partial-application"]. *)

type site = {
  site_file : string;
  site_line : int;
  site_class : alloc_class;
  site_root : string;  (** hot-root group, e.g. ["engine-round"] *)
  site_fn : string;  (** qualified function, e.g. ["Engine.process_round"] *)
}

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;
  message : string;
}

val codes : string list
(** Every stable diagnostic code this pass can emit; pinned by a golden
    test. *)

val hot_roots : (string * string list) list
(** The annotated hot paths: group name to {!Callgraph.reachable} root
    patterns. *)

type allow = {
  al_file : string;
  al_class : string;
  al_fn : string option;
  al_why : string;  (** the audit's justification, surfaced in [--json] *)
  al_line : int;  (** definition line in [lib/check/alloc_lint.ml] *)
}

val allowlist : allow list
val allowlist_file : string

val sites_of_parsed :
  ?roots:(string * string list) list ->
  (string * Parsetree.structure) list ->
  site list * allow list
(** All classified reachable sites (allowlist already applied) plus the
    allowlist entries that fired.  [roots] defaults to {!hot_roots}. *)

val inventory_of_sites : site list -> (string * (string * int) list) list
(** Distinct (file, line, class) sites counted per root per class,
    canonically sorted. *)

val schema : string
(** ["securebit-alloc/1"]. *)

val json_of_inventory : (string * (string * int) list) list -> Json.t

val inventory_of_json : Json.t -> ((string * (string * int) list) list, string) result

val diff :
  golden_name:string ->
  golden:(string * (string * int) list) list ->
  sites:site list ->
  (string * (string * int) list) list ->
  diagnostic list
(** Diff a current inventory against the golden one; [sites] locates the
    diagnostics (first surviving site of the offending class). *)

val default_golden_name : string

val lint_strings :
  ?roots:(string * string list) list ->
  ?golden_name:string ->
  golden:Json.t option ->
  (string * string) list ->
  diagnostic list
(** The full pass over in-memory files: parse, walk, classify, apply the
    allowlist, diff against [golden] ([None] = missing baseline, an
    error), report stale allowlist entries.  Sorted by file then line. *)

val lint_structures :
  ?roots:(string * string list) list ->
  ?golden_name:string ->
  golden:Json.t option ->
  (string * Parsetree.structure) list ->
  diagnostic list
(** {!lint_strings} on already-parsed files — `securebit_lint all` feeds
    every source analyzer from one shared parse of the tree (parse
    failures are surfaced by that shared pass, not here). *)

val inventory_strings :
  ?roots:(string * string list) list -> (string * string) list -> (string * (string * int) list) list
(** Just the current inventory (for [--write-baseline]). *)

val load_golden : string -> Json.t option
(** Read a golden inventory: [None] when the file cannot be read (missing
    baseline), [Some Json.Null] when it exists but is not JSON (reported
    as unreadable by {!lint_strings}). *)

val lint_paths :
  ?roots:(string * string list) list -> golden_path:string -> string list -> diagnostic list
(** {!lint_strings} over the [.ml] files under the given paths, loading
    the golden inventory from [golden_path]. *)

val inventory_paths :
  ?roots:(string * string list) list -> string list -> (string * (string * int) list) list

val sites_paths : ?roots:(string * string list) list -> string list -> site list
(** The individual classified sites behind {!inventory_paths}, allowlist
    already applied — the per-site view for auditing a count change. *)

val seed_violation_files : (string * string) list
(** A fake hot module whose round function boxes floats, closes over a
    variable and builds throwaway lists. *)

val seed_violation : unit -> diagnostic list
(** {!lint_strings} of the demo against an empty golden inventory: every
    class fires as [new-alloc-class]. *)

val has_errors : diagnostic list -> bool
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
