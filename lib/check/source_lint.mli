(** Source-level determinism and concurrency lint.

    The repo's headline reproducibility guarantee — [--jobs N] runs are
    byte-identical to sequential runs — is easy to break with a single
    innocuous call: iterating a [Hashtbl] into output, comparing protocol
    records with the polymorphic [compare], drawing from the ambient
    [Random] state, or timestamping protocol decisions.  This pass parses
    every [.ml] file (via compiler-libs) and flags those hazards
    statically, so [dune build @lint] catches them before any simulation
    diverges.

    Rules and their stable codes (all [Error] severity):
    - [hashtbl-order]: [Hashtbl.iter]/[Hashtbl.fold] — iteration order is
      unspecified; collect and sort, or prove commutativity and allowlist;
    - [poly-compare]: the polymorphic [compare] — silently order-unstable
      under representation changes; use [Float.compare]/[Int.compare]/
      [String.compare] or a derived comparator;
    - [poly-hash]: [Hashtbl.hash]/[Hashtbl.hash_param] on protocol values;
    - [ambient-random]: any use of [Random] — simulations must draw from
      the splittable, explicitly seeded {!Rng};
    - [wall-clock]: [Unix.gettimeofday]/[Unix.time]/[Sys.time] outside
      [lib/run/] and [bench/] (timing the harness is fine; timing protocol
      logic is not);
    - [domain-outside-run]: [Domain]/[Atomic] outside [lib/run/] — all
      parallelism is confined to the deterministic job pool;
    - [engine-mode]: an application of [Engine.run] without a [~mode]
      argument outside [lib/check/] and [test/] — the sparse and dense
      loops are held byte-identical by the equivalence test, but
      production call sites must say which loop they mean rather than
      silently follow the default;
    - [unused-allowlist]: an {!allowlist} entry that suppressed no
      diagnostic during a {!lint_paths} run over its file — stale audits
      are themselves errors so they cannot rot in place;
    - [parse-error]: the file failed to parse.

    Findings at locations listed in {!allowlist} (file suffix, code) are
    suppressed: those are the audited, order-insensitive uses.
    [wall-clock] and [engine-mode] are additionally exempt under [test/]
    (test timers, equivalence fixtures). *)

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;  (** stable short code, e.g. ["hashtbl-order"] *)
  message : string;
}

val codes : string list
(** Every code this pass can emit, for golden tests. *)

val allowlist : (string * string) list
(** [(file suffix, code)] pairs suppressed as audited-sound, e.g.
    commutative [Hashtbl.fold]s and the engine's explicit fingerprint
    hash. *)

val allowlist_located : ((string * string) * int) list
(** Each {!allowlist} entry with its definition line in
    {!allowlist_file}; stale-entry diagnostics point there — that is the
    line to delete. *)

val allowlist_file : string
(** ["lib/check/source_lint.ml"]. *)

val lint_structure_used :
  path:string -> Parsetree.structure -> diagnostic list * (string * string) list
(** Lint one already-parsed file.  `securebit_lint all` feeds every
    source analyzer from a single shared parse of the tree through
    this. *)

val lint_string : path:string -> string -> diagnostic list
(** Lint source [contents] as if read from [path] (path-based exemptions
    and allowlists apply).  Used by tests to check fixtures without
    touching the filesystem. *)

val lint_string_used : path:string -> string -> diagnostic list * (string * string) list
(** {!lint_string} plus the allowlist entries that suppressed at least one
    finding in this file — the input to {!Lint.unused_allowlist}. *)

val lint_file : string -> diagnostic list

val source_files : string list -> string list
(** The [.ml] files {!lint_paths} would visit, in sorted order.  Dangling
    paths are skipped, not raised on. *)

val lint_paths : string list -> diagnostic list
(** Lint every [.ml] file under the given files/directories (recursive,
    skipping [_build]-style and hidden directories), in sorted path order;
    then append one [unused-allowlist] error per {!allowlist} entry whose
    file was visited but which suppressed nothing (located at the entry's
    own definition line via {!allowlist_located}). *)

val unused_diagnostics :
  used:(string * string) list -> files:string list -> diagnostic list
(** The stale-audit errors {!lint_paths} appends, exposed so a shared-
    parse driver can run the per-file pass itself and still enforce
    allowlist hygiene. *)

val has_errors : diagnostic list -> bool
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
