(* Domain-safety lint: which mutable state could a task handed to the
   deterministic job pool share with another domain?

   The sharding campaign (ROADMAP: run spatial tiles of one simulation on
   separate Domains) is gated on knowing that the closures executed by
   [Pool.map_array]/[Pool.map_list]/[Domain.spawn] touch no unsynchronized
   mutable state.  This pass answers that question statically, on the whole
   tree at once:

   1. {b inventory} — every module's escaping mutable state: top-level
      [ref]/[Array.make]/[Hashtbl.create]/[Buffer.create]-style bindings
      and declared mutable record fields;
   2. {b capture analysis} — a conservative intra-file call/capture
      summary: from each task expression handed to a pool primitive, follow
      same-file function references transitively and collect every read of
      a top-level mutable global (same module unqualified, other modules
      qualified) and every write to a mutable binding allocated outside the
      task;
   3. {b layer policy} — lib/core and lib/sim must be state-free at
      toplevel (per-run state lives in values the run constructs), so any
      top-level mutable binding there is an error regardless of pool use.

   Like Source_lint this is purely syntactic — no typing, no cross-module
   call summaries (a task calling [M.helper] which touches [M.state] is
   invisible; referencing [M.state] directly is not).  The rules target the
   spellings idiomatic code actually uses, and the allowlist records the
   audited exceptions. *)

type kind = Ref | Arr | Tbl | Buf | Byt | Que | Stk | Atom

let kind_label = function
  | Ref -> "ref"
  | Arr -> "Array.make"
  | Tbl -> "Hashtbl.create"
  | Buf -> "Buffer.create"
  | Byt -> "Bytes.create"
  | Que -> "Queue.create"
  | Stk -> "Stack.create"
  | Atom -> "Atomic.make"

type global = {
  gmodule : string;  (* "Voting" for lib/core/voting.ml *)
  gfile : string;
  gname : string;
  gkind : kind;
  gline : int;
}

type mutable_field = {
  fmodule : string;
  ffile : string;
  ftype : string;
  ffield : string;
  fline : int;
}

type inventory = { globals : global list; fields : mutable_field list }

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;
  message : string;
}

let codes =
  [ "global-mutable-core"; "shared-mutable"; "capture-mutates"; "unused-allowlist"; "parse-error" ]

(* Audited-sound uses.  The pool's own workers write disjoint result/stat
   slots (index-partitioned, never the same cell from two domains); the
   test suite deliberately builds racy tasks to prove the sanitizer fires;
   the committed fixture is the static half of that same proof. *)
let allowlist =
  [
    ("lib/run/pool.ml", "capture-mutates");
    ("test/test_run.ml", "capture-mutates");
    ("test/fixtures/racy_counter.ml", "shared-mutable");
  ]

let severity_of _code = Lint.Error

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d: %s: %s [%s]" d.file d.line (Lint.severity_label d.severity) d.message
    d.code

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
let has_errors diags = List.exists (fun d -> d.severity = Lint.Error) diags

(* --- expression helpers -------------------------------------------------- *)

(* The generic Parsetree machinery (reference/write extraction, binding
   summaries, the same-file reachability engine) lives in {!Callgraph},
   shared with [Alloc_lint]; this lint keeps only the mutable-state
   specific parts. *)

let module_of_path = Callgraph.module_of_path
let line_of = Callgraph.line_of
let peel = Callgraph.peel
let head_ident = Callgraph.head_ident

type write = Callgraph.write = { target : string; wline : int }

(* Does this right-hand side allocate a mutable value? *)
let alloc_kind e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (f, _) -> (
    match head_ident f with
    | Some ("ref" | "Stdlib.ref") -> Some Ref
    | Some
        ( "Array.make" | "Array.create_float" | "Array.init" | "Array.make_matrix"
        | "Stdlib.Array.make" ) ->
      Some Arr
    | Some ("Hashtbl.create" | "Stdlib.Hashtbl.create") -> Some Tbl
    | Some "Buffer.create" -> Some Buf
    | Some ("Bytes.create" | "Bytes.make") -> Some Byt
    | Some "Queue.create" -> Some Que
    | Some "Stack.create" -> Some Stk
    | Some "Atomic.make" -> Some Atom
    | _ -> None)
  | _ -> None

let is_function = Callgraph.is_function
let pattern_var = Callgraph.pattern_var

(* --- per-file facts ------------------------------------------------------ *)

type task_entry =
  | Lambda of { refs : string list; writes : write list }
      (* refs/writes already filtered of the lambda's own bindings *)
  | Named of string
  | Opaque

type pool_site = { ps_line : int; ps_callee : string; ps_task : task_entry }

(* A binding's escaping refs/writes (everything it mentions minus its own
   bound names). *)
type fn_summary = Callgraph.summary = { fn_refs : string list; fn_writes : write list }

type facts = {
  fpath : string;
  ftoplevel : global list;
  ffields : mutable_field list;
  fbindings : (string * fn_summary) list;  (* let-bound functions, any depth *)
  fmutable_lets : (string * kind) list;  (* mutable allocations, any depth *)
  fsites : pool_site list;
}

let pool_callees = [ "Pool.map_array"; "Pool.map_list"; "Domain.spawn" ]

let task_entry_of_arg arg =
  let arg = peel arg in
  if is_function arg then begin
    let { fn_refs = refs; fn_writes = writes } = Callgraph.summarize arg in
    Lambda { refs; writes }
  end
  else
    match head_ident arg with
    | Some name when not (String.contains name '.') -> Named name
    | Some _ | None -> Opaque

let facts_of_structure ~path structure =
  let gmodule = module_of_path path in
  let bindings = ref [] in
  let mutable_lets = ref [] in
  let sites = ref [] in
  let fields = ref [] in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      value_binding =
        (fun it (vb : Parsetree.value_binding) ->
          (match pattern_var vb.pvb_pat with
          | Some name -> (
            match alloc_kind vb.pvb_expr with
            | Some kind -> mutable_lets := (name, kind) :: !mutable_lets
            | None ->
              if is_function vb.pvb_expr then
                bindings := (name, Callgraph.summarize vb.pvb_expr) :: !bindings)
          | None -> ());
          default.value_binding it vb);
      expr =
        (fun it (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, args) -> (
            match head_ident f with
            | Some callee when List.mem callee pool_callees -> (
              match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
              | Some (_, arg) ->
                sites :=
                  {
                    ps_line = line_of e.Parsetree.pexp_loc;
                    ps_callee = callee;
                    ps_task = task_entry_of_arg arg;
                  }
                  :: !sites
              | None -> ())
            | _ -> ())
          | _ -> ());
          default.expr it e);
      type_declaration =
        (fun it (td : Parsetree.type_declaration) ->
          (match td.ptype_kind with
          | Parsetree.Ptype_record labels ->
            List.iter
              (fun (ld : Parsetree.label_declaration) ->
                if ld.pld_mutable = Asttypes.Mutable then
                  fields :=
                    {
                      fmodule = gmodule;
                      ffile = path;
                      ftype = td.ptype_name.txt;
                      ffield = ld.pld_name.txt;
                      fline = line_of ld.pld_loc;
                    }
                    :: !fields)
              labels
          | _ -> ());
          default.type_declaration it td);
    }
  in
  iterator.structure iterator structure;
  (* Top-level mutable bindings: walk the structure items directly so only
     depth-0 lets count as module state. *)
  let toplevel =
    List.concat_map
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Parsetree.value_binding) ->
              match (pattern_var vb.pvb_pat, alloc_kind vb.pvb_expr) with
              | Some name, Some kind ->
                Some
                  {
                    gmodule;
                    gfile = path;
                    gname = name;
                    gkind = kind;
                    gline = line_of vb.pvb_loc;
                  }
              | _ -> None)
            vbs
        | _ -> [])
      structure
  in
  {
    fpath = path;
    ftoplevel = toplevel;
    ffields = List.rev !fields;
    fbindings = !bindings;
    fmutable_lets = !mutable_lets;
    fsites = List.rev !sites;
  }

let parse_string = Callgraph.parse_string

(* --- capture analysis ---------------------------------------------------- *)

(* Transitive same-file reachability from a task entry — the engine is
   {!Callgraph.reach}, which preserves this lint's original traversal and
   accumulation order exactly. *)
let reach facts entry =
  let entry =
    match entry with
    | Lambda { refs; writes } -> Callgraph.Body { fn_refs = refs; fn_writes = writes }
    | Named name -> Callgraph.Binding name
    | Opaque -> Callgraph.Opaque
  in
  Callgraph.reach ~bindings:facts.fbindings entry

let split_qualified name =
  match List.rev (String.split_on_char '.' name) with
  | leaf :: md :: _ -> Some (md, leaf)
  | _ -> None

(* --- whole-tree lint ----------------------------------------------------- *)

let state_free_dirs = [ "lib/core"; "lib/sim" ]

let lint_parsed parsed_files =
  let facts = List.map (fun (path, structure) -> facts_of_structure ~path structure) parsed_files in
  let all_globals = List.concat_map (fun f -> f.ftoplevel) facts in
  let find_global ~md ~name =
    List.find_opt (fun g -> g.gmodule = md && g.gname = name) all_globals
  in
  let diags = ref [] in
  let used = ref [] in
  let emit ~file ~line code message =
    match Lint.allowlist_entry allowlist file code with
    | Some entry -> if not (List.mem entry !used) then used := entry :: !used
    | None ->
      diags := { severity = severity_of code; file; line; code; message } :: !diags
  in
  (* Layer policy: lib/core and lib/sim keep no module-level mutable state
     (sharding the engine requires those layers to be re-entrant). *)
  List.iter
    (fun g ->
      if List.exists (fun dir -> Lint.in_dir dir g.gfile) state_free_dirs then
        emit ~file:g.gfile ~line:g.gline "global-mutable-core"
          (Printf.sprintf
             "top-level mutable binding %s (%s): %s must be state-free at toplevel so engine \
              shards can run on separate domains"
             g.gname (kind_label g.gkind)
             (String.concat " and " state_free_dirs)))
    all_globals;
  (* Capture analysis per pool call site. *)
  List.iter
    (fun f ->
      let own_global name =
        List.find_opt (fun g -> g.gname = name && g.gfile = f.fpath) f.ftoplevel
      in
      let mutable_let name =
        List.filter_map (fun (n, k) -> if n = name then Some k else None) f.fmutable_lets
      in
      List.iter
        (fun site ->
          let refs, writes = reach f site.ps_task in
          let seen = Hashtbl.create 8 in
          let once key emit_it =
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              emit_it ()
            end
          in
          let flag_global ?(line = site.ps_line) ~access g =
            if g.gkind <> Atom then
              once
                ("shared", g.gmodule ^ "." ^ g.gname)
                (fun () ->
                  emit ~file:f.fpath ~line "shared-mutable"
                    (Printf.sprintf
                       "task passed to %s %s top-level mutable state %s.%s (%s at %s:%d) without \
                        Atomic synchronization; pool tasks must be self-contained for --jobs N \
                        determinism"
                       site.ps_callee access g.gmodule g.gname (kind_label g.gkind) g.gfile
                       g.gline))
          in
          (* Reads (or any reference) of top-level mutable globals. *)
          List.iter
            (fun r ->
              match split_qualified r with
              | Some (md, name) -> (
                match find_global ~md ~name with
                | Some g -> flag_global ~access:"references" g
                | None -> ())
              | None -> (
                match own_global r with
                | Some g -> flag_global ~access:"references" g
                | None -> ()))
            refs;
          (* Writes to mutable state allocated outside the task. *)
          List.iter
            (fun w ->
              match split_qualified w.target with
              | Some (md, name) -> (
                match find_global ~md ~name with
                | Some g -> flag_global ~line:w.wline ~access:"writes" g
                | None -> ())
              | None -> (
                match own_global w.target with
                | Some g -> flag_global ~line:w.wline ~access:"writes" g
                | None ->
                  let kinds = mutable_let w.target in
                  if kinds <> [] && not (List.mem Atom kinds) then
                    once
                      ("capture", w.target)
                      (fun () ->
                        emit ~file:f.fpath ~line:w.wline "capture-mutates"
                          (Printf.sprintf
                             "task passed to %s mutates captured mutable binding %s (%s allocated \
                              outside the task); parallel tasks must not share unsynchronized \
                              state"
                             site.ps_callee w.target
                             (String.concat "/" (List.map kind_label kinds))))))
            writes)
        f.fsites)
    facts;
  (!diags, !used)

let finish ~parse_errors ~linted parsed =
  let diags, used = lint_parsed parsed in
  let unused =
    List.map
      (fun (entry_file, code) ->
        {
          severity = Lint.Error;
          file = entry_file;
          line = 0;
          code = "unused-allowlist";
          message =
            Printf.sprintf
              "allowlist entry (%s, %s) suppressed no diagnostic; delete the stale audit"
              entry_file code;
        })
      (Lint.unused_allowlist ~allowlist ~used ~files:linted)
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with 0 -> Int.compare a.line b.line | c -> c)
    (parse_errors @ diags @ unused)

let lint_strings files =
  let parsed, parse_errors =
    List.fold_left
      (fun (parsed, errors) (path, contents) ->
        match parse_string ~path contents with
        | Ok structure -> ((path, structure) :: parsed, errors)
        | Error line ->
          ( parsed,
            {
              severity = Lint.Error;
              file = path;
              line;
              code = "parse-error";
              message = "file does not parse as an OCaml implementation";
            }
            :: errors ))
      ([], []) files
  in
  finish ~parse_errors ~linted:(List.map fst files) (List.rev parsed)

(* Shared-parse entry for `securebit_lint all`: like {!lint_strings} on
   already-parsed files (parse failures were surfaced by the shared
   pass). *)
let lint_structures parsed = finish ~parse_errors:[] ~linted:(List.map fst parsed) parsed

let inventory_strings files =
  let facts =
    List.filter_map
      (fun (path, contents) ->
        match parse_string ~path contents with
        | Ok structure -> Some (facts_of_structure ~path structure)
        | Error _ -> None)
      files
  in
  {
    globals = List.concat_map (fun f -> f.ftoplevel) facts;
    fields = List.concat_map (fun f -> f.ffields) facts;
  }

let read_file = Callgraph.read_file

let with_contents paths =
  List.map (fun path -> (path, read_file path)) (Source_lint.source_files paths)

let lint_paths paths = lint_strings (with_contents paths)
let inventory_paths paths = inventory_strings (with_contents paths)

(* --- seed violation ------------------------------------------------------ *)

(* A two-module demo of exactly the bug class the analyzer exists for: a
   sim-layer module keeps a top-level cache, and an analysis-layer sweep
   hands the pool a task that hits that cache, bumps a module-level
   counter through a helper, and appends to a buffer captured from the
   enclosing scope.  All three layers of diagnosis fire. *)
let seed_violation_files =
  [
    ( "lib/sim/seed_cache.ml",
      "(* seed-violation demo: module-level cache in the sim layer *)\n\
       let cache = Hashtbl.create 64\n\
       let lookup k = Hashtbl.find_opt cache k\n" );
    ( "lib/analysis/seed_sweep.ml",
      "(* seed-violation demo: pool tasks sharing unsynchronized state *)\n\
       let hits = ref 0\n\
       let record n = hits := !hits + n\n\n\
       let sweep specs =\n\
      \  let log = Buffer.create 16 in\n\
      \  Pool.map_array ~jobs:4\n\
      \    (fun spec ->\n\
      \       record spec;\n\
      \       Buffer.add_string log \"cell\\n\";\n\
      \       (match Seed_cache.lookup spec with\n\
      \        | Some cost -> cost\n\
      \        | None ->\n\
      \          let cost = 2 * spec in\n\
      \          Hashtbl.replace Seed_cache.cache spec cost;\n\
      \          cost)\n\
      \       + !hits)\n\
      \    specs\n" );
  ]

let seed_violation () = lint_strings seed_violation_files
