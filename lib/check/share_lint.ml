(* Domain-safety lint: which mutable state could a task handed to the
   deterministic job pool share with another domain?

   The sharding campaign (ROADMAP: run spatial tiles of one simulation on
   separate Domains) is gated on knowing that the closures executed by
   [Pool.map_array]/[Pool.map_list]/[Domain.spawn] touch no unsynchronized
   mutable state.  This pass answers that question statically, on the whole
   tree at once:

   1. {b inventory} — every module's escaping mutable state: top-level
      [ref]/[Array.make]/[Hashtbl.create]/[Buffer.create]-style bindings
      and declared mutable record fields;
   2. {b capture analysis} — a conservative intra-file call/capture
      summary: from each task expression handed to a pool primitive, follow
      same-file function references transitively and collect every read of
      a top-level mutable global (same module unqualified, other modules
      qualified) and every write to a mutable binding allocated outside the
      task;
   3. {b layer policy} — lib/core and lib/sim must be state-free at
      toplevel (per-run state lives in values the run constructs), so any
      top-level mutable binding there is an error regardless of pool use.

   Like Source_lint this is purely syntactic — no typing, no cross-module
   call summaries (a task calling [M.helper] which touches [M.state] is
   invisible; referencing [M.state] directly is not).  The rules target the
   spellings idiomatic code actually uses, and the allowlist records the
   audited exceptions. *)

type kind = Ref | Arr | Tbl | Buf | Byt | Que | Stk | Atom

let kind_label = function
  | Ref -> "ref"
  | Arr -> "Array.make"
  | Tbl -> "Hashtbl.create"
  | Buf -> "Buffer.create"
  | Byt -> "Bytes.create"
  | Que -> "Queue.create"
  | Stk -> "Stack.create"
  | Atom -> "Atomic.make"

type global = {
  gmodule : string;  (* "Voting" for lib/core/voting.ml *)
  gfile : string;
  gname : string;
  gkind : kind;
  gline : int;
}

type mutable_field = {
  fmodule : string;
  ffile : string;
  ftype : string;
  ffield : string;
  fline : int;
}

type inventory = { globals : global list; fields : mutable_field list }

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;
  message : string;
}

let codes =
  [ "global-mutable-core"; "shared-mutable"; "capture-mutates"; "unused-allowlist"; "parse-error" ]

(* Audited-sound uses.  The pool's own workers write disjoint result/stat
   slots (index-partitioned, never the same cell from two domains); the
   test suite deliberately builds racy tasks to prove the sanitizer fires;
   the committed fixture is the static half of that same proof. *)
let allowlist =
  [
    ("lib/run/pool.ml", "capture-mutates");
    ("test/test_run.ml", "capture-mutates");
    ("test/fixtures/racy_counter.ml", "shared-mutable");
  ]

let severity_of _code = Lint.Error

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d: %s: %s [%s]" d.file d.line (Lint.severity_label d.severity) d.message
    d.code

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
let has_errors diags = List.exists (fun d -> d.severity = Lint.Error) diags

(* --- expression helpers -------------------------------------------------- *)

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_coerce (e, _, _) -> peel e
  | _ -> e

let head_ident e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let iter_expr f e =
  let default = Ast_iterator.default_iterator in
  let it = { default with expr = (fun it e -> f e; default.expr it e) } in
  it.expr it e

(* All value-path references in an expression, as dotted strings. *)
let refs_of_expr e =
  let acc = ref [] in
  iter_expr
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> acc := String.concat "." (Longident.flatten txt) :: !acc
      | _ -> ())
    e;
  !acc

(* Every value name bound anywhere inside an expression: function
   parameters, let patterns, match cases, for-loop indices.  Used to
   separate a task's own state from captured state. *)
let bound_names_of_expr e =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      pat =
        (fun it (p : Parsetree.pattern) ->
          (match p.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } | Parsetree.Ppat_alias (_, { txt; _ }) ->
            acc := txt :: !acc
          | _ -> ());
          default.pat it p);
      expr =
        (fun it (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_for ({ ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _, _, _, _) ->
            acc := txt :: !acc
          | _ -> ());
          default.expr it e);
    }
  in
  it.expr it e;
  !acc

(* Syntactic mutation sites: [x := e], [incr]/[decr], [a.(i) <- v] (the
   parser spells it [Array.set]), record-field assignment, and the
   imperative container operations.  The recorded target is the head
   identifier being mutated. *)
let writer_heads =
  [
    ":="; "incr"; "decr"; "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Bytes.set";
    "Bytes.fill"; "Bytes.blit"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_buffer"; "Buffer.clear"; "Buffer.reset"; "Queue.add";
    "Queue.push"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer"; "Stack.push";
    "Stack.pop"; "Stack.clear";
  ]

let is_writer h = List.mem h writer_heads || List.mem h (List.map (( ^ ) "Stdlib.") writer_heads)

type write = { target : string; wline : int }

let writes_of_expr e =
  let acc = ref [] in
  iter_expr
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_setfield (target, _, _) -> (
        match head_ident target with
        | Some t -> acc := { target = t; wline = line_of e.Parsetree.pexp_loc } :: !acc
        | None -> ())
      | Parsetree.Pexp_apply (f, args) -> (
        match head_ident f with
        | Some h when is_writer h -> (
          match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
          | Some (_, a) -> (
            match head_ident a with
            | Some t -> acc := { target = t; wline = line_of e.Parsetree.pexp_loc } :: !acc
            | None -> ())
          | None -> ())
        | _ -> ())
      | _ -> ())
    e;
  !acc

(* Does this right-hand side allocate a mutable value? *)
let alloc_kind e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (f, _) -> (
    match head_ident f with
    | Some ("ref" | "Stdlib.ref") -> Some Ref
    | Some
        ( "Array.make" | "Array.create_float" | "Array.init" | "Array.make_matrix"
        | "Stdlib.Array.make" ) ->
      Some Arr
    | Some ("Hashtbl.create" | "Stdlib.Hashtbl.create") -> Some Tbl
    | Some "Buffer.create" -> Some Buf
    | Some ("Bytes.create" | "Bytes.make") -> Some Byt
    | Some "Queue.create" -> Some Que
    | Some "Stack.create" -> Some Stk
    | Some "Atomic.make" -> Some Atom
    | _ -> None)
  | _ -> None

let is_function e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ | Parsetree.Pexp_newtype _ -> true
  | _ -> false

let pattern_var (p : Parsetree.pattern) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> Some txt
    | Parsetree.Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

(* --- per-file facts ------------------------------------------------------ *)

type task_entry =
  | Lambda of { refs : string list; writes : write list }
      (* refs/writes already filtered of the lambda's own bindings *)
  | Named of string
  | Opaque

type pool_site = { ps_line : int; ps_callee : string; ps_task : task_entry }

type fn_summary = { fn_refs : string list; fn_writes : write list (* escaping only *) }

type facts = {
  fpath : string;
  ftoplevel : global list;
  ffields : mutable_field list;
  fbindings : (string * fn_summary) list;  (* let-bound functions, any depth *)
  fmutable_lets : (string * kind) list;  (* mutable allocations, any depth *)
  fsites : pool_site list;
}

let pool_callees = [ "Pool.map_array"; "Pool.map_list"; "Domain.spawn" ]

let filtered_summary e =
  let bound = bound_names_of_expr e in
  let refs = List.filter (fun r -> not (List.mem r bound)) (refs_of_expr e) in
  let writes = List.filter (fun w -> not (List.mem w.target bound)) (writes_of_expr e) in
  (refs, writes)

let task_entry_of_arg arg =
  let arg = peel arg in
  if is_function arg then begin
    let refs, writes = filtered_summary arg in
    Lambda { refs; writes }
  end
  else
    match head_ident arg with
    | Some name when not (String.contains name '.') -> Named name
    | Some _ | None -> Opaque

let facts_of_structure ~path structure =
  let gmodule = module_of_path path in
  let bindings = ref [] in
  let mutable_lets = ref [] in
  let sites = ref [] in
  let fields = ref [] in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      value_binding =
        (fun it (vb : Parsetree.value_binding) ->
          (match pattern_var vb.pvb_pat with
          | Some name -> (
            match alloc_kind vb.pvb_expr with
            | Some kind -> mutable_lets := (name, kind) :: !mutable_lets
            | None ->
              if is_function vb.pvb_expr then begin
                let refs, writes = filtered_summary vb.pvb_expr in
                bindings := (name, { fn_refs = refs; fn_writes = writes }) :: !bindings
              end)
          | None -> ());
          default.value_binding it vb);
      expr =
        (fun it (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, args) -> (
            match head_ident f with
            | Some callee when List.mem callee pool_callees -> (
              match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
              | Some (_, arg) ->
                sites :=
                  {
                    ps_line = line_of e.Parsetree.pexp_loc;
                    ps_callee = callee;
                    ps_task = task_entry_of_arg arg;
                  }
                  :: !sites
              | None -> ())
            | _ -> ())
          | _ -> ());
          default.expr it e);
      type_declaration =
        (fun it (td : Parsetree.type_declaration) ->
          (match td.ptype_kind with
          | Parsetree.Ptype_record labels ->
            List.iter
              (fun (ld : Parsetree.label_declaration) ->
                if ld.pld_mutable = Asttypes.Mutable then
                  fields :=
                    {
                      fmodule = gmodule;
                      ffile = path;
                      ftype = td.ptype_name.txt;
                      ffield = ld.pld_name.txt;
                      fline = line_of ld.pld_loc;
                    }
                    :: !fields)
              labels
          | _ -> ());
          default.type_declaration it td);
    }
  in
  iterator.structure iterator structure;
  (* Top-level mutable bindings: walk the structure items directly so only
     depth-0 lets count as module state. *)
  let toplevel =
    List.concat_map
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Parsetree.value_binding) ->
              match (pattern_var vb.pvb_pat, alloc_kind vb.pvb_expr) with
              | Some name, Some kind ->
                Some
                  {
                    gmodule;
                    gfile = path;
                    gname = name;
                    gkind = kind;
                    gline = line_of vb.pvb_loc;
                  }
              | _ -> None)
            vbs
        | _ -> [])
      structure
  in
  {
    fpath = path;
    ftoplevel = toplevel;
    ffields = List.rev !fields;
    fbindings = !bindings;
    fmutable_lets = !mutable_lets;
    fsites = List.rev !sites;
  }

let parse_string ~path contents =
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception _ -> Error lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum

(* --- capture analysis ---------------------------------------------------- *)

(* Transitive same-file reachability from a task entry: the union of all
   references and escaping writes of the task and of every same-file
   function it can call.  Duplicate binding names are unioned, which is
   conservative in the right direction. *)
let reach facts entry =
  let visited = Hashtbl.create 16 in
  let refs = ref [] in
  let writes = ref [] in
  let rec follow name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      List.iter
        (fun (n, summary) ->
          if n = name then begin
            refs := summary.fn_refs @ !refs;
            writes := summary.fn_writes @ !writes;
            List.iter
              (fun r -> if not (String.contains r '.') then follow r)
              summary.fn_refs
          end)
        facts.fbindings
    end
  in
  (match entry with
  | Lambda { refs = r; writes = w } ->
    refs := r;
    writes := w;
    List.iter (fun r -> if not (String.contains r '.') then follow r) r
  | Named name -> follow name
  | Opaque -> ());
  (!refs, !writes)

let split_qualified name =
  match List.rev (String.split_on_char '.' name) with
  | leaf :: md :: _ -> Some (md, leaf)
  | _ -> None

(* --- whole-tree lint ----------------------------------------------------- *)

let state_free_dirs = [ "lib/core"; "lib/sim" ]

let lint_parsed parsed_files =
  let facts = List.map (fun (path, structure) -> facts_of_structure ~path structure) parsed_files in
  let all_globals = List.concat_map (fun f -> f.ftoplevel) facts in
  let find_global ~md ~name =
    List.find_opt (fun g -> g.gmodule = md && g.gname = name) all_globals
  in
  let diags = ref [] in
  let used = ref [] in
  let emit ~file ~line code message =
    match Lint.allowlist_entry allowlist file code with
    | Some entry -> if not (List.mem entry !used) then used := entry :: !used
    | None ->
      diags := { severity = severity_of code; file; line; code; message } :: !diags
  in
  (* Layer policy: lib/core and lib/sim keep no module-level mutable state
     (sharding the engine requires those layers to be re-entrant). *)
  List.iter
    (fun g ->
      if List.exists (fun dir -> Lint.in_dir dir g.gfile) state_free_dirs then
        emit ~file:g.gfile ~line:g.gline "global-mutable-core"
          (Printf.sprintf
             "top-level mutable binding %s (%s): %s must be state-free at toplevel so engine \
              shards can run on separate domains"
             g.gname (kind_label g.gkind)
             (String.concat " and " state_free_dirs)))
    all_globals;
  (* Capture analysis per pool call site. *)
  List.iter
    (fun f ->
      let own_global name =
        List.find_opt (fun g -> g.gname = name && g.gfile = f.fpath) f.ftoplevel
      in
      let mutable_let name =
        List.filter_map (fun (n, k) -> if n = name then Some k else None) f.fmutable_lets
      in
      List.iter
        (fun site ->
          let refs, writes = reach f site.ps_task in
          let seen = Hashtbl.create 8 in
          let once key emit_it =
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              emit_it ()
            end
          in
          let flag_global ?(line = site.ps_line) ~access g =
            if g.gkind <> Atom then
              once
                ("shared", g.gmodule ^ "." ^ g.gname)
                (fun () ->
                  emit ~file:f.fpath ~line "shared-mutable"
                    (Printf.sprintf
                       "task passed to %s %s top-level mutable state %s.%s (%s at %s:%d) without \
                        Atomic synchronization; pool tasks must be self-contained for --jobs N \
                        determinism"
                       site.ps_callee access g.gmodule g.gname (kind_label g.gkind) g.gfile
                       g.gline))
          in
          (* Reads (or any reference) of top-level mutable globals. *)
          List.iter
            (fun r ->
              match split_qualified r with
              | Some (md, name) -> (
                match find_global ~md ~name with
                | Some g -> flag_global ~access:"references" g
                | None -> ())
              | None -> (
                match own_global r with
                | Some g -> flag_global ~access:"references" g
                | None -> ()))
            refs;
          (* Writes to mutable state allocated outside the task. *)
          List.iter
            (fun w ->
              match split_qualified w.target with
              | Some (md, name) -> (
                match find_global ~md ~name with
                | Some g -> flag_global ~line:w.wline ~access:"writes" g
                | None -> ())
              | None -> (
                match own_global w.target with
                | Some g -> flag_global ~line:w.wline ~access:"writes" g
                | None ->
                  let kinds = mutable_let w.target in
                  if kinds <> [] && not (List.mem Atom kinds) then
                    once
                      ("capture", w.target)
                      (fun () ->
                        emit ~file:f.fpath ~line:w.wline "capture-mutates"
                          (Printf.sprintf
                             "task passed to %s mutates captured mutable binding %s (%s allocated \
                              outside the task); parallel tasks must not share unsynchronized \
                              state"
                             site.ps_callee w.target
                             (String.concat "/" (List.map kind_label kinds))))))
            writes)
        f.fsites)
    facts;
  (!diags, !used)

let lint_strings files =
  let parsed, parse_errors =
    List.fold_left
      (fun (parsed, errors) (path, contents) ->
        match parse_string ~path contents with
        | Ok structure -> ((path, structure) :: parsed, errors)
        | Error line ->
          ( parsed,
            {
              severity = Lint.Error;
              file = path;
              line;
              code = "parse-error";
              message = "file does not parse as an OCaml implementation";
            }
            :: errors ))
      ([], []) files
  in
  let diags, used = lint_parsed (List.rev parsed) in
  let unused =
    List.map
      (fun (entry_file, code) ->
        {
          severity = Lint.Error;
          file = entry_file;
          line = 0;
          code = "unused-allowlist";
          message =
            Printf.sprintf
              "allowlist entry (%s, %s) suppressed no diagnostic; delete the stale audit"
              entry_file code;
        })
      (Lint.unused_allowlist ~allowlist ~used ~files:(List.map fst files))
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with 0 -> Int.compare a.line b.line | c -> c)
    (parse_errors @ diags @ unused)

let inventory_strings files =
  let facts =
    List.filter_map
      (fun (path, contents) ->
        match parse_string ~path contents with
        | Ok structure -> Some (facts_of_structure ~path structure)
        | Error _ -> None)
      files
  in
  {
    globals = List.concat_map (fun f -> f.ftoplevel) facts;
    fields = List.concat_map (fun f -> f.ffields) facts;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_contents paths =
  List.map (fun path -> (path, read_file path)) (Source_lint.source_files paths)

let lint_paths paths = lint_strings (with_contents paths)
let inventory_paths paths = inventory_strings (with_contents paths)

(* --- seed violation ------------------------------------------------------ *)

(* A two-module demo of exactly the bug class the analyzer exists for: a
   sim-layer module keeps a top-level cache, and an analysis-layer sweep
   hands the pool a task that hits that cache, bumps a module-level
   counter through a helper, and appends to a buffer captured from the
   enclosing scope.  All three layers of diagnosis fire. *)
let seed_violation_files =
  [
    ( "lib/sim/seed_cache.ml",
      "(* seed-violation demo: module-level cache in the sim layer *)\n\
       let cache = Hashtbl.create 64\n\
       let lookup k = Hashtbl.find_opt cache k\n" );
    ( "lib/analysis/seed_sweep.ml",
      "(* seed-violation demo: pool tasks sharing unsynchronized state *)\n\
       let hits = ref 0\n\
       let record n = hits := !hits + n\n\n\
       let sweep specs =\n\
      \  let log = Buffer.create 16 in\n\
      \  Pool.map_array ~jobs:4\n\
      \    (fun spec ->\n\
      \       record spec;\n\
      \       Buffer.add_string log \"cell\\n\";\n\
      \       (match Seed_cache.lookup spec with\n\
      \        | Some cost -> cost\n\
      \        | None ->\n\
      \          let cost = 2 * spec in\n\
      \          Hashtbl.replace Seed_cache.cache spec cost;\n\
      \          cost)\n\
      \       + !hits)\n\
      \    specs\n" );
  ]

let seed_violation () = lint_strings seed_violation_files
