(* Bounded model checking of the 2Bit frame and the 1Hop stream.

   The model is the paper's single-hop analysis setting: one neighbourhood
   in which every device hears every other (Section 3), an ideal channel,
   and a Byzantine adversary that chooses, for every 6-round phase, whether
   to put energy on the channel — it can add activity but never erase it
   (the no-forged-silence axiom).  Within a broadcast budget β the state
   space is finite and tiny, so we enumerate it exhaustively instead of
   sampling it. *)

type phase_event = {
  interval : int;
  phase : int;
  sender_tx : bool;
  receiver_tx : bool array;
  adversary_tx : bool;
  heard : bool array;  (* index 0 = sender, 1.. = receivers *)
}

type counterexample = {
  invariant : string;
  detail : string;
  setup : string;
  budget : int;
  spent : int;
  trace : phase_event list;
}

type outcome = Pass of { configurations : int } | Fail of counterexample

exception Violation of (string * string)
(* (invariant, detail): raised mid-simulation, caught by the enumerators
   which attach the setup and the trace. *)

(* --- pluggable honest-role implementations --------------------------- *)

type sender = {
  s_act : int -> bool;
  s_observe : int -> bool -> unit;
  s_outcome : unit -> Two_bit.outcome option;
}

type receiver = {
  r_act : int -> bool;
  r_observe : int -> bool -> unit;
  r_outcome : unit -> (Two_bit.outcome * (bool * bool)) option;
}

type impl = {
  make_sender : b1:bool -> b2:bool -> sender;
  make_blocker : unit -> sender;
  make_receiver : unit -> receiver;
}

let reference =
  {
    make_sender =
      (fun ~b1 ~b2 ->
        let s = Two_bit.Sender.create ~b1 ~b2 in
        {
          s_act = (fun phase -> Two_bit.Sender.act s ~phase);
          s_observe = (fun phase activity -> Two_bit.Sender.observe s ~phase ~activity);
          s_outcome = (fun () -> Two_bit.Sender.outcome s);
        });
    make_blocker =
      (fun () ->
        let b = Two_bit.Blocker.create () in
        {
          s_act = (fun phase -> Two_bit.Blocker.act b ~phase);
          s_observe = (fun phase activity -> Two_bit.Blocker.observe b ~phase ~activity);
          s_outcome = (fun () -> None);
        });
    make_receiver =
      (fun () ->
        let r = Two_bit.Receiver.create () in
        {
          r_act = (fun phase -> Two_bit.Receiver.act r ~phase);
          r_observe = (fun phase activity -> Two_bit.Receiver.observe r ~phase ~activity);
          r_outcome = (fun () -> Two_bit.Receiver.outcome r);
        });
  }

let faulty_skip_veto =
  {
    reference with
    make_receiver =
      (fun () ->
        let r = Two_bit.Receiver.create () in
        {
          r_act = (fun phase -> Two_bit.Receiver.act r ~phase);
          r_observe =
            (* The seeded bug: deaf during the veto round R5 — exactly the
               mistake the protocol's safety argument forbids. *)
            (fun phase activity ->
              Two_bit.Receiver.observe r ~phase ~activity:(if phase = 4 then false else activity));
          r_outcome = (fun () -> Two_bit.Receiver.outcome r);
        });
  }

(* --- one adversarially scheduled 6-round frame ------------------------ *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* [jam] is a 6-bit mask: bit p set = the adversary transmits in phase p.
   Every transmission is heard by every other party (clique neighbourhood,
   half-duplex radios: a transmitter does not sense itself). *)
let run_frame ~interval sender receivers ~jam trace =
  for phase = 0 to 5 do
    let s_tx = sender.s_act phase in
    let r_tx = Array.map (fun r -> r.r_act phase) receivers in
    let adversary_tx = jam land (1 lsl phase) <> 0 in
    let any_receiver_except i =
      let found = ref false in
      Array.iteri (fun j tx -> if j <> i && tx then found := true) r_tx;
      !found
    in
    let heard =
      Array.init
        (1 + Array.length receivers)
        (fun q ->
          if q = 0 then adversary_tx || any_receiver_except (-1)
          else adversary_tx || s_tx || any_receiver_except (q - 1))
    in
    trace := { interval; phase; sender_tx = s_tx; receiver_tx = r_tx; adversary_tx; heard } :: !trace;
    sender.s_observe phase heard.(0);
    Array.iteri (fun i r -> r.r_observe phase heard.(i + 1)) receivers
  done

(* --- the 2Bit frame checker ------------------------------------------ *)

let bit_pair_to_string (b1, b2) = Printf.sprintf "(%d,%d)" (Bool.to_int b1) (Bool.to_int b2)

let check_frame_invariants ~b1 ~b2 ~spent sender receivers =
  let sent = (b1, b2) in
  (match sender.s_outcome () with
  | None -> raise (Violation ("sender-outcome-known", "sender has no outcome after phase 5"))
  | Some _ -> ());
  Array.iteri
    (fun i r ->
      match r.r_outcome () with
      | None ->
        raise
          (Violation
             ("receiver-outcome-known", Printf.sprintf "receiver %d has no outcome after phase 4" i))
      | Some (Two_bit.Success, estimate) when estimate <> sent ->
        raise
          (Violation
             ( "receiver-no-forgery",
               Printf.sprintf "receiver %d accepted %s but the sender sent %s" i
                 (bit_pair_to_string estimate) (bit_pair_to_string sent) ))
      | Some _ -> ())
    receivers;
  if sender.s_outcome () = Some Two_bit.Success then
    Array.iteri
      (fun i r ->
        match r.r_outcome () with
        | Some (Two_bit.Success, _) -> ()
        | Some (Two_bit.Failure, _) | None ->
          raise
            (Violation
               ( "sender-receiver-agreement",
                 Printf.sprintf "sender reports success but receiver %d failed" i )))
      receivers;
  if spent = 0 then begin
    if sender.s_outcome () <> Some Two_bit.Success then
      raise (Violation ("unattacked-frame-succeeds", "sender failed without any adversary broadcast"));
    Array.iteri
      (fun i r ->
        match r.r_outcome () with
        | Some (Two_bit.Success, _) -> ()
        | Some (Two_bit.Failure, _) | None ->
          raise
            (Violation
               ( "unattacked-frame-succeeds",
                 Printf.sprintf "receiver %d failed without any adversary broadcast" i )))
      receivers
  end

let check_two_bit ?(impl = reference) ?(receivers = 2) ~budget () =
  if receivers < 1 then invalid_arg "Model_check.check_two_bit: receivers < 1";
  if budget < 0 then invalid_arg "Model_check.check_two_bit: budget < 0";
  let configurations = ref 0 in
  let failure = ref None in
  let bools = [ false; true ] in
  List.iter
    (fun b1 ->
      List.iter
        (fun b2 ->
          for jam = 0 to 63 do
            let spent = popcount jam in
            if spent <= budget && !failure = None then begin
              incr configurations;
              let sender = impl.make_sender ~b1 ~b2 in
              let rs = Array.init receivers (fun _ -> impl.make_receiver ()) in
              let trace = ref [] in
              try
                run_frame ~interval:0 sender rs ~jam trace;
                check_frame_invariants ~b1 ~b2 ~spent sender rs
              with Violation (invariant, detail) ->
                failure :=
                  Some
                    {
                      invariant;
                      detail;
                      setup =
                        Printf.sprintf "2Bit frame: b1=%d b2=%d, %d receiver(s)" (Bool.to_int b1)
                          (Bool.to_int b2) receivers;
                      budget;
                      spent;
                      trace = List.rev !trace;
                    }
            end
          done)
        bools)
    bools;
  match !failure with
  | Some c -> Fail c
  | None -> Pass { configurations = !configurations }

(* --- the 1Hop stream checker ----------------------------------------- *)

(* All per-interval 6-bit jam masks with a total budget of [budget]
   broadcasts, enumerated exhaustively. *)
let jam_schedules ~intervals ~budget =
  let out = ref [] in
  let current = Array.make intervals 0 in
  let rec go interval remaining =
    if interval = intervals then out := Array.copy current :: !out
    else
      for jam = 0 to 63 do
        let cost = popcount jam in
        if cost <= remaining then begin
          current.(interval) <- jam;
          go (interval + 1) (remaining - cost)
        end
      done;
    if interval < intervals then current.(interval) <- 0
  in
  go 0 budget;
  !out

let message_to_string bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let run_stream impl ~message ~jam ~budget trace =
  let intervals = Array.length jam in
  let len = List.length message in
  let spent = Array.fold_left (fun acc m -> acc + popcount m) 0 jam in
  let sender_stream = One_hop.Sender.create () in
  List.iter (fun bit -> One_hop.Sender.push sender_stream bit) message;
  let receiver_stream = One_hop.Receiver.create () in
  let check_prefix () =
    let received = One_hop.Receiver.received receiver_stream in
    List.iteri
      (fun i bit ->
        if i < received && One_hop.Receiver.get receiver_stream i <> bit then
          raise
            (Violation
               ( "stream-prefix",
                 Printf.sprintf "receiver stream bit %d is %d, the source sent %d" i
                   (Bool.to_int (One_hop.Receiver.get receiver_stream i))
                   (Bool.to_int bit) )))
      message
  in
  for interval = 0 to intervals - 1 do
    let sending = One_hop.Sender.has_current sender_stream in
    let bits = if sending then Some (One_hop.Sender.current sender_stream) else None in
    let frame_sender =
      match bits with
      | Some (parity, data) -> impl.make_sender ~b1:parity ~b2:data
      | None -> impl.make_blocker ()
    in
    let receiver = impl.make_receiver () in
    run_frame ~interval frame_sender [| receiver |] ~jam:jam.(interval) trace;
    begin
      match receiver.r_outcome () with
      | None -> raise (Violation ("receiver-outcome-known", "no outcome after the frame"))
      | Some (Two_bit.Failure, _) -> ()
      | Some (Two_bit.Success, (e1, e2)) -> begin
        begin
          match bits with
          | Some (parity, data) ->
            if (e1, e2) <> (parity, data) then
              raise
                (Violation
                   ( "frame-no-forgery",
                     Printf.sprintf "interval %d: accepted %s, sent %s" interval
                       (bit_pair_to_string (e1, e2))
                       (bit_pair_to_string (parity, data)) ))
          | None ->
            (* A blocked (idle-sender) interval: the watch vetoes any
               injected data, so the only acceptable reading is the silence
               alias <0,0>. *)
            if e1 || e2 then
              raise
                (Violation
                   ( "blocked-frame-silent-alias",
                     Printf.sprintf "interval %d: idle square, yet receiver accepted %s" interval
                       (bit_pair_to_string (e1, e2)) ))
        end;
        One_hop.Receiver.push_two_bit receiver_stream ~parity:e1 ~data:e2
      end
    end;
    begin
      match (bits, frame_sender.s_outcome ()) with
      | Some _, Some Two_bit.Success -> One_hop.Sender.advance sender_stream
      | Some _, Some Two_bit.Failure -> ()
      | Some _, None -> raise (Violation ("sender-outcome-known", "no outcome after the frame"))
      | None, _ -> ()
    end;
    check_prefix ()
  done;
  let received = One_hop.Receiver.received receiver_stream in
  if spent <= budget && received < len then
    raise
      (Violation
         ( "stream-delivery",
           Printf.sprintf
             "after %d intervals the receiver holds %d/%d bits although the adversary spent only \
              %d <= %d broadcasts (energy bound of Theorem 2)"
             intervals received len spent budget ))

let check_one_hop ?(impl = reference) ?(msg_len = 2) ~budget () =
  if msg_len < 1 then invalid_arg "Model_check.check_one_hop: msg_len < 1";
  if budget < 0 then invalid_arg "Model_check.check_one_hop: budget < 0";
  let intervals = msg_len + budget in
  let schedules = jam_schedules ~intervals ~budget in
  let configurations = ref 0 in
  let failure = ref None in
  for m = 0 to (1 lsl msg_len) - 1 do
    let message = List.init msg_len (fun i -> m land (1 lsl i) <> 0) in
    List.iter
      (fun jam ->
        if !failure = None then begin
          incr configurations;
          let trace = ref [] in
          try run_stream impl ~message ~jam ~budget trace
          with Violation (invariant, detail) ->
            let spent = Array.fold_left (fun acc j -> acc + popcount j) 0 jam in
            failure :=
              Some
                {
                  invariant;
                  detail;
                  setup =
                    Printf.sprintf "1Hop stream: message=%s, %d intervals"
                      (message_to_string message) intervals;
                  budget;
                  spent;
                  trace = List.rev !trace;
                }
        end)
      schedules
  done;
  match !failure with
  | Some c -> Fail c
  | None -> Pass { configurations = !configurations }

(* --- reporting -------------------------------------------------------- *)

let phase_name = [| "R1 data1"; "R2 ack1"; "R3 data2"; "R4 ack2"; "R5 veto"; "R6 relay" |]

let pp_counterexample fmt c =
  let mark b = if b then "*" else "." in
  Format.fprintf fmt "counterexample: %s@\n" c.invariant;
  Format.fprintf fmt "  %s@\n" c.setup;
  Format.fprintf fmt "  adversary budget %d, spent %d@\n" c.budget c.spent;
  Format.fprintf fmt "  int phase     | tx: S %s A | heard: S %s@\n"
    (String.concat " "
       (List.init
          (match c.trace with [] -> 0 | e :: _ -> Array.length e.receiver_tx)
          (fun i -> Printf.sprintf "R%d" i)))
    (String.concat " "
       (List.init
          (match c.trace with [] -> 0 | e :: _ -> Array.length e.receiver_tx)
          (fun i -> Printf.sprintf "R%d" i)));
  List.iter
    (fun e ->
      Format.fprintf fmt "  %3d %-9s |     %s %s %s |        %s %s@\n" e.interval
        phase_name.(e.phase) (mark e.sender_tx)
        (String.concat "  " (Array.to_list (Array.map mark e.receiver_tx)))
        (mark e.adversary_tx) (mark e.heard.(0))
        (String.concat "  "
           (List.init (Array.length e.heard - 1) (fun i -> mark e.heard.(i + 1))))
    )
    c.trace;
  Format.fprintf fmt "  violation: %s" c.detail

let counterexample_to_string c = Format.asprintf "%a" pp_counterexample c
