(** Bounded model checking of the multi-hop voting layer.

    Where {!Model_check} exhausts single-hop adversary schedules (Theorems
    1 and 2), this checker exhausts Byzantine {e evidence} patterns against
    the two voting rules of the multi-hop level:

    - [check_multi_path]: MultiPathRB's commit rule (Section 4, Level 2;
      optimal resilience [t < R(2R+1)/2]).  For a concrete neighbourhood of
      radius [R] in 1–3 it enumerates every composition of up to the
      analytic tolerance [t] Byzantine voters over six behaviour classes —
      in-window fake COMMITs, double voters (both values from one origin),
      verbatim replays, window-rim and out-of-window origins, and HEARD
      items with an unreachable witness — against honest clusters at and
      just below quorum size, in two interleavings, with a replayed honest
      item.  After every evidence arrival it asserts:
      {ul
      {- [mp-votes]: the incremental {!Voting.Index} origin counts equal
         the full-scan [distinct_origins];}
      {- [mp-agreement]: [Index.decide], {!Voting.quorum} and the
         independently derived {!Voting.Reference.quorum} agree, for both
         values;}
      {- [mp-no-forgery]: no false-value quorum ever forms — at most [t]
         Byzantine origins exist, and the rule needs [t + 1];}
      {- [mp-quorum-reached]: with [t + 1] honest co-located origins the
         final decision is positive (the evidence suffices).}}

    - [check_neighbor_watch]: NeighborWatchRB's per-bit frontier vote
      (square veto; 1-voting and the 2-voting variant).  It drives the
      {e actual} protocol kernel {!Neighbor_watch.Vote} — the monotone
      agreement pointers, once-per-frontier tally and source override —
      over every assignment of adjacent-square streams to liars (all
      bounded-length fake bitstrings) and honest relays (prefixes of the
      true message), with and without a direct source stream, in plain and
      replayed push orders, asserting:
      {ul
      {- [nw-agreement]: [Vote.poll] equals a from-scratch reference
         recomputation of the frontier rule at every step;}
      {- [nw-veto]: with fewer fully-Byzantine streams than [votes], the
         committed prefix never deviates from the true message;}
      {- [nw-delivery]: with fewer liars than [votes] and a full honest
         source stream (or [votes] full honest square streams), the whole
         message commits;}
      {- [nw-bound-arithmetic]: the paper's per-neighbourhood tolerance
         keeps the number of fully-corruptible squares below [votes]
         ([⌊t / ⌈R/2⌉²⌋ < votes] for every [t] up to the bound).}}

    [Pass] reports the number of enumerated adversary configurations and
    the number of per-step invariant checks; [Fail] carries a structured
    counterexample trace.  The [mp_seeded] / [nw_seeded] implementations
    plant a quorum off-by-one that the checker must refute
    ([--seed-violation] in the CLI). *)

type step = { index : int; description : string }

type counterexample = {
  protocol : string;  (** ["MultiPathRB"] or ["NeighborWatchRB"] *)
  radius : int;
  invariant : string;  (** the violated invariant's name *)
  detail : string;  (** human-readable description of the violation *)
  setup : string;  (** the enumerated configuration *)
  trace : step list;  (** evidence/stream events up to the violation *)
}

type outcome = Pass of { configurations : int; states : int } | Fail of counterexample

(** The decision procedures are pluggable so that tests (and the
    [--seed-violation] CLI flag) can verify the checker catches broken
    quorum logic. *)

type mp_impl = {
  mp_name : string;
  mp_decide : Voting.Index.t -> radius:float -> need:int -> value:bool -> bool;
}

val mp_reference : mp_impl
(** The real [Voting.Index.decide]. *)

val mp_seeded : mp_impl
(** [Index.decide] called with [need - 1]: the classic quorum off-by-one.
    The checker must fail ([mp-agreement] or [mp-no-forgery]). *)

type nw_impl = { nw_name : string; nw_create : votes:int -> Neighbor_watch.Vote.t }

val nw_reference : nw_impl
(** The real {!Neighbor_watch.Vote} kernel. *)

val nw_seeded : nw_impl
(** The kernel built with [votes - 1]: commits on one vote too few.  The
    checker must fail ([nw-agreement] or [nw-veto]). *)

val check_multi_path : ?impl:mp_impl -> radius:int -> unit -> outcome
(** Exhaust Byzantine evidence patterns at [radius] (1–3) up to the
    analytic tolerance [Bounds.multi_path_tolerance]. *)

val check_neighbor_watch : ?impl:nw_impl -> votes:int -> radius:int -> unit -> outcome
(** Exhaust liar stream patterns for the [votes]-voting protocol variant
    (1 or 2); [radius] selects the tolerance for the arithmetic bound. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val counterexample_to_string : counterexample -> string
