(** Determinism checker: the same seeded spec must produce bit-identical
    executions.

    [check_spec] runs {!Scenario.run} twice with the engine's trace tap
    installed and diffs the full round-by-round channel trace (who
    transmitted, what every radio resolved).  Hidden nondeterminism —
    mutable state shared across runs, hash-table iteration order leaking
    into transmissions, RNG use outside the split streams — surfaces as a
    first divergent round with both digests. *)

type trace = Engine.round_digest array

val collector : unit -> (Engine.round_digest -> unit) * (unit -> trace)
(** A tap to pass to {!Engine.run} / {!Scenario.run} and the function that
    returns everything it recorded. *)

type divergence = {
  round : int;  (** first divergent round (or the shorter trace's length) *)
  first : Engine.round_digest option;  (** [None]: this trace ended early *)
  second : Engine.round_digest option;
}

type outcome = Deterministic of { rounds : int } | Diverged of divergence

val diff : trace -> trace -> outcome

val capture_spec :
  ?max_rounds:int ->
  ?mode:Engine.mode ->
  ?tile_of:int array ->
  ?boxed:bool ->
  Scenario.spec ->
  trace * Scenario.result
(** One traced run.  [max_rounds] lowers the round cap so that checking
    stays cheap on large scenarios.  [mode] picks the engine loop
    (default sparse); rounds the sparse loop skips appear in the trace as
    all-silent digests, so traces are comparable across modes.  [tile_of]
    overrides the sharded modes' tile assignment (forwarded to
    {!Scenario.run}), for properties quantifying over partitions.
    [boxed] disables the machines' packed observation fast path
    (forwarded to {!Scenario.run}), for packed-vs-variant equivalence. *)

val check_spec : ?max_rounds:int -> ?mode:Engine.mode -> Scenario.spec -> outcome
(** Two traced runs of the same spec, diffed. *)

val mode_label : Engine.mode -> string
(** ["dense"], ["sparse"], ["sharded:K"]. *)

val mode_of_label : string -> Engine.mode option
(** Inverse of {!mode_label} (case-insensitive); [None] on unknown
    spellings or a non-positive tile count. *)

val check_modes :
  ?max_rounds:int -> Engine.mode list -> Scenario.spec -> ((string * string) * outcome) list
(** One traced run per mode, every pair diffed (labels name the pair); a
    single mode degenerates to {!check_spec}'s run-twice form.  The
    engine's mode-equivalence promise makes any divergence a bug in one
    of the two named loop implementations. *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string
