(** Scenario linter: static validation of a {!Scenario.spec} before any
    simulation round runs.

    Three families of checks:
    - {b resilience}: Byzantine fractions against the per-neighbourhood
      analytic tolerance formulas of {!Bounds} — [t < ⌈R/2⌉²] for
      NeighborWatchRB, [t < R²/2] for the 2-voting variant, the configured
      [t] (and Koo's impossibility bound [t < R(2R+1)/2]) for MultiPathRB;
    - {b geometry}: the square-partition preconditions of {!Squares} —
      adjacent watch squares must be in mutual decode range, squares should
      be expected non-empty;
    - {b sanity}: map dimensions, radii, message, channel parameters,
      round caps, jammer budgets and probabilities.

    Diagnostics carry a severity, a source location (scenario name +
    offending field) and a stable short code. *)

type severity = Error | Warning | Info

type diagnostic = {
  severity : severity;
  scenario : string;  (** scenario name (the "file" of the location) *)
  field : string;  (** offending spec field, e.g. ["faults.fraction"] *)
  code : string;  (** stable short code, e.g. ["byz-tolerance"] *)
  message : string;
}

val codes : string list
(** Every stable diagnostic code this linter can emit.  Part of the
    machine-readable interface ([securebit_lint lint scenario --json]);
    pinned by a golden test. *)

val lint : name:string -> Scenario.spec -> diagnostic list
(** All diagnostics for one spec, in field order. *)

val lint_presets : unit -> (string * diagnostic list) list
(** [lint] over every bundled {!Scenario.presets} entry. *)

val has_errors : diagnostic list -> bool
val count : severity -> diagnostic list -> int

(** {1 Path matching and allowlist hygiene}

    Shared by the source-level passes ({!Source_lint}, {!Share_lint}):
    their allowlists are [(file suffix, code)] pairs, and an entry that
    suppresses zero diagnostics is itself an error so stale audits cannot
    rot in place. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool

val in_dir : string -> string -> bool
(** [in_dir dir path]: is [path] inside [dir] (repo-root relative), under
    both "lib/run/pool.ml" and absolute/sandboxed spellings? *)

val path_matches : entry:string -> string -> bool
(** Does an allowlist [entry] (repo-relative file path) name [path]? *)

val allowlist_entry : (string * string) list -> string -> string -> (string * string) option
(** [allowlist_entry allowlist path code]: the entry suppressing [code] at
    [path], if any. *)

val unused_allowlist :
  allowlist:(string * string) list ->
  used:(string * string) list ->
  files:string list ->
  (string * string) list
(** Entries whose file is among [files] but which matched no diagnostic
    ([used] is the list of entries that fired).  These should be reported
    as errors by the caller. *)

val severity_label : severity -> string
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
