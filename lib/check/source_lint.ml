(* AST-level lint for determinism and concurrency hazards, built on
   compiler-libs: parse each .ml file and walk the Parsetree for value and
   module references that the byte-identical --jobs N guarantee cannot
   tolerate.  Purely syntactic by design — no type information — so module
   aliasing can hide a use from it; the rules target the spellings that
   actually appear in idiomatic code. *)

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;
  message : string;
}

let codes =
  [
    "hashtbl-order";
    "poly-compare";
    "poly-hash";
    "ambient-random";
    "wall-clock";
    "domain-outside-run";
    "engine-mode";
    "unused-allowlist";
    "parse-error";
  ]

(* Audited-sound uses.  The protocol [progress] counters (multi_path,
   neighbor_watch, certified_propagation) fold a commutative sum or
   count; the engine's fingerprint hashes an explicit canonical encoding;
   the bench table folds into a list it immediately sorts; the pool's
   sanitizer digest is compared only against another digest of the same
   in-memory representation within one process, so representation
   dependence cannot flip a verdict.  shard.ml is the one sanctioned home
   for intra-run parallelism outside lib/run: its barrier totally orders
   every cross-tile access (the equivalence suite holds all tile counts
   byte-identical to the serial engines), and its single Atomic is a
   write-once failure slot read only after the final barrier.  The lint
   front end times its own analyzers (`securebit_lint all` prints
   per-analyzer wall seconds), which is reporting, not protocol logic.

   Each entry records its own definition line so a stale audit's
   diagnostic can point back here instead of at the audited file. *)
let allowlist_located =
  [
    (("lib/core/multi_path.ml", "hashtbl-order"), __LINE__);
    (("lib/core/neighbor_watch.ml", "hashtbl-order"), __LINE__);
    (("lib/core/certified_propagation.ml", "hashtbl-order"), __LINE__);
    (("lib/sim/engine.ml", "poly-hash"), __LINE__);
    (("lib/sim/shard.ml", "domain-outside-run"), __LINE__);
    (("bench/main.ml", "hashtbl-order"), __LINE__);
    (("lib/run/pool.ml", "poly-hash"), __LINE__);
    (("bin/securebit_lint.ml", "wall-clock"), __LINE__);
  ]

let allowlist = List.map fst allowlist_located
let allowlist_file = "lib/check/source_lint.ml"

let severity_of _code = Lint.Error

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d: %s: %s [%s]" d.file d.line (Lint.severity_label d.severity) d.message
    d.code

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
let has_errors diags = List.exists (fun d -> d.severity = Lint.Error) diags

let starts_with = Lint.starts_with
let in_dir = Lint.in_dir

(* The rule table: a referenced value path either is clean or maps to a
   diagnostic.  [exempt] carves out the directories where the construct is
   the harness's business (wall time around runs, the job pool). *)
let classify ident =
  match ident with
  | "Hashtbl.iter" | "Hashtbl.fold" | "Stdlib.Hashtbl.iter" | "Stdlib.Hashtbl.fold" ->
    Some
      ( "hashtbl-order",
        ident
        ^ " iterates in unspecified hash order; collect into a list and sort with a typed \
           comparator (or prove commutativity and allowlist)" )
  | "compare" | "Stdlib.compare" ->
    Some
      ( "poly-compare",
        "polymorphic compare is order-unstable across representation changes; use \
         Float.compare/Int.compare/String.compare or a derived comparator" )
  | "Hashtbl.hash" | "Hashtbl.hash_param" | "Stdlib.Hashtbl.hash" ->
    Some ("poly-hash", ident ^ " is representation-dependent; hash a canonical encoding instead")
  | "Unix.gettimeofday" | "Unix.time" | "Sys.time" ->
    Some
      ( "wall-clock",
        ident ^ " reads the wall clock; protocol logic is round-driven (timing belongs under \
                 lib/run/ or bench/)" )
  | _ ->
    if starts_with ~prefix:"Random." ident then
      Some
        ( "ambient-random",
          ident ^ " draws from the ambient generator; simulations must use the splittable, \
                   explicitly seeded Rng" )
    else if starts_with ~prefix:"Domain." ident || starts_with ~prefix:"Atomic." ident then
      Some
        ( "domain-outside-run",
          ident ^ ": parallelism is confined to the deterministic job pool in lib/run/" )
    else None

let exempt code path =
  match code with
  | "wall-clock" -> in_dir "lib/run" path || in_dir "bench" path || in_dir "test" path
  | "domain-outside-run" -> in_dir "lib/run" path
  | "engine-mode" -> in_dir "lib/check" path || in_dir "test" path
  | _ -> false

(* Does this application of [Engine.run] pin the loop variant?  The sparse
   and dense loops are held byte-identical by the equivalence property
   test, but a caller that omits [~mode] silently follows whatever the
   default is — production call sites must state which loop they mean
   (the dense/sparse comparison harness under lib/check is exempt). *)
let is_engine_run txt =
  match List.rev (Longident.flatten txt) with
  | "run" :: "Engine" :: _ -> true
  | _ -> false

let has_mode_arg args =
  List.exists
    (fun (label, _) ->
      match label with
      | Asttypes.Labelled "mode" | Asttypes.Optional "mode" -> true
      | _ -> false)
    args

let module_code head =
  match head with
  | "Random" -> Some ("ambient-random", "module Random is the ambient generator; use Rng")
  | "Domain" | "Atomic" ->
    Some
      ( "domain-outside-run",
        "module " ^ head ^ ": parallelism is confined to the deterministic job pool in lib/run/" )
  | _ -> None

(* Lint one already-parsed file, also reporting which allowlist entries
   suppressed something — {!lint_paths} needs that to enforce allowlist
   hygiene, and `securebit_lint all` feeds every analyzer from one shared
   parse of the tree. *)
let lint_structure_used ~path structure =
  let diags = ref [] in
  let used = ref [] in
  let emit code message (loc : Location.t) =
    if not (exempt code path) then
      match Lint.allowlist_entry allowlist path code with
      | Some entry -> if not (List.mem entry !used) then used := entry :: !used
      | None ->
        diags :=
          {
            severity = severity_of code;
            file = path;
            line = loc.Location.loc_start.Lexing.pos_lnum;
            code;
            message;
          }
          :: !diags
  in
  let check_ident txt loc =
    match classify (String.concat "." (Longident.flatten txt)) with
    | Some (code, message) -> emit code message loc
    | None -> ()
  in
  let check_module txt loc =
    match Longident.flatten txt with
    | head :: _ -> (
      match module_code head with Some (code, message) -> emit code message loc | None -> ())
    | [] -> ()
  in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun it (e : Parsetree.expression) ->
          (match e.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> check_ident txt e.Parsetree.pexp_loc
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args)
            when is_engine_run txt && not (has_mode_arg args) ->
            emit "engine-mode"
              "Engine.run without ~mode follows the default loop silently; state `Sparse or \
               `Dense at the call site"
              e.Parsetree.pexp_loc
          | _ -> ());
          default.expr it e);
      module_expr =
        (fun it (m : Parsetree.module_expr) ->
          (match m.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } -> check_module txt m.Parsetree.pmod_loc
          | _ -> ());
          default.module_expr it m);
    }
  in
  iterator.structure iterator structure;
  (List.sort (fun a b -> Int.compare a.line b.line) (List.rev !diags), !used)

let lint_string_used ~path contents =
  match Callgraph.parse_string ~path contents with
  | Error line ->
    ( [
        {
          severity = Lint.Error;
          file = path;
          line;
          code = "parse-error";
          message = "file does not parse as an OCaml implementation";
        };
      ],
      [] )
  | Ok structure -> lint_structure_used ~path structure

let lint_string ~path contents = fst (lint_string_used ~path contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_string ~path (read_file path)

(* Dangling paths (an explicitly named file that does not exist) are
   skipped rather than raised on — editors and scripts pass paths that may
   have just been deleted. *)
let rec collect acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '_' || entry.[0] = '.' then acc
        else collect acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let source_files paths = List.sort String.compare (List.fold_left collect [] paths)

(* Stale-audit diagnostics point at the entry's own definition line in
   this module (that is the line to delete), naming the audited
   (file, code) pair in the message. *)
let unused_diagnostics ~used ~files =
  List.map
    (fun ((entry_file, code) as entry) ->
      let line = match List.assoc_opt entry allowlist_located with Some l -> l | None -> 0 in
      {
        severity = Lint.Error;
        file = allowlist_file;
        line;
        code = "unused-allowlist";
        message =
          Printf.sprintf
            "allowlist entry (%s, %s) suppressed no diagnostic; delete the stale audit at %s:%d"
            entry_file code allowlist_file line;
      })
    (Lint.unused_allowlist ~allowlist ~used ~files)

let lint_paths paths =
  let files = source_files paths in
  let results = List.map (fun path -> lint_string_used ~path (read_file path)) files in
  let diags = List.concat_map fst results in
  let used = List.concat_map snd results in
  diags @ unused_diagnostics ~used ~files
