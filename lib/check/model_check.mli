(** Bounded model checking of the protocol core.

    Exhaustively enumerates every Byzantine interference pattern — a
    transmit/silence choice per 6-round phase, within a broadcast budget β —
    over the single-hop analysis model of the paper (a clique neighbourhood
    on an ideal channel, half-duplex radios) and asserts the safety theorems
    as machine-checked invariants:

    - [check_two_bit]: one 2Bit frame (Section 4, Theorem 1).  Invariants:
      {ul
      {- [receiver-no-forgery]: a receiver that accepts ⟨b1,b2⟩ accepts
         exactly what the sender sent;}
      {- [sender-receiver-agreement]: a sender that reports success implies
         every honest receiver succeeded (with the correct bits);}
      {- [unattacked-frame-succeeds]: destroying a frame costs the
         adversary at least one broadcast (the energy property);}
      {- [*-outcome-known]: every machine resolves by the end of the
         frame.}}
    - [check_one_hop]: a full 1Hop stream of every message of a given
      length, run for [msg_len + β] intervals (Theorem 2).  The sender
      plays the 2Bit sender while bits remain and the neighbourhood-watch
      blocker once the stream is exhausted.  Invariants: [frame-no-forgery]
      and [blocked-frame-silent-alias] per interval, [stream-prefix]
      (every accepted bit is the source's bit, at the right index) and
      [stream-delivery] (an adversary spending at most β broadcasts cannot
      prevent delivery within [msg_len + β] intervals).

    The enumeration is exhaustive for the given budget: [Pass] reports how
    many adversary configurations were covered, [Fail] carries a structured
    round-by-round counterexample trace. *)

type phase_event = {
  interval : int;  (** broadcast interval (0 for single-frame checks) *)
  phase : int;  (** 0–5 within the interval *)
  sender_tx : bool;
  receiver_tx : bool array;
  adversary_tx : bool;
  heard : bool array;  (** resolved channel activity; index 0 = sender *)
}

type counterexample = {
  invariant : string;  (** the violated invariant's name *)
  detail : string;  (** human-readable description of the violation *)
  setup : string;  (** message bits / receiver count of the configuration *)
  budget : int;
  spent : int;  (** adversary broadcasts actually used *)
  trace : phase_event list;  (** the full schedule up to the violation *)
}

type outcome = Pass of { configurations : int } | Fail of counterexample

(** Honest-role implementations are pluggable so that tests (and the
    [--seed-violation] CLI flag) can verify the checker catches broken
    protocol machines. *)

type sender = {
  s_act : int -> bool;
  s_observe : int -> bool -> unit;
  s_outcome : unit -> Two_bit.outcome option;
}

type receiver = {
  r_act : int -> bool;
  r_observe : int -> bool -> unit;
  r_outcome : unit -> (Two_bit.outcome * (bool * bool)) option;
}

type impl = {
  make_sender : b1:bool -> b2:bool -> sender;
  make_blocker : unit -> sender;
  make_receiver : unit -> receiver;
}

val reference : impl
(** The real {!Two_bit} machines. *)

val faulty_skip_veto : impl
(** [reference] with a receiver that is deaf during the veto round R5 —
    a seeded violation the checker must refute (it accepts bits the sender
    cancelled). *)

val check_two_bit : ?impl:impl -> ?receivers:int -> budget:int -> unit -> outcome
(** Check one 2Bit frame for all 4 bit pairs, [receivers] honest receivers
    (default 2) and every adversary pattern of at most [budget]
    broadcasts. *)

val check_one_hop : ?impl:impl -> ?msg_len:int -> budget:int -> unit -> outcome
(** Check the 1Hop stream for every message of [msg_len] bits (default 2)
    against every adversary schedule of at most [budget] broadcasts over
    [msg_len + budget] intervals. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val counterexample_to_string : counterexample -> string
