(* Static validation of Scenario specs against the paper's analytic
   resilience bounds (lib/analysis/bounds.ml), the square-partition
   geometry preconditions (lib/geometry/squares.ml), and plain parameter
   sanity — before a single simulation round runs. *)

type severity = Error | Warning | Info

type diagnostic = {
  severity : severity;
  scenario : string;
  field : string;
  code : string;
  message : string;
}

let severity_label (s : severity) =
  match s with Error -> "error" | Warning -> "warning" | Info -> "info"

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s.%s: %s: %s [%s]" d.scenario d.field (severity_label d.severity) d.message
    d.code

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d

(* Every code the linter can emit, in rough emission order.  Pinned by the
   golden test in test/test_check.ml: renaming or dropping a code is a
   breaking change for anything filtering [securebit_lint --json] output. *)
let codes =
  [
    "map-dims";
    "radius";
    "message";
    "cap";
    "deployment";
    "channel";
    "votes";
    "square-geometry";
    "sparse-squares";
    "unused-field";
    "tolerance";
    "koo-impossibility";
    "relay-limit";
    "fraction";
    "budget";
    "probability";
    "byz-tolerance";
    "non-geometric-bound";
  ]
let count severity diags = List.length (List.filter (fun d -> d.severity = severity) diags)
let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(* --- path matching and allowlist hygiene, shared by the source-level
   passes (Source_lint, Share_lint) --------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Is [path] inside directory [dir] (given relative to the repo root)?
   Matches both "lib/run/pool.ml" and absolute/sandboxed spellings. *)
let in_dir dir path =
  starts_with ~prefix:(dir ^ "/") path
  ||
  let needle = "/" ^ dir ^ "/" in
  let ln = String.length needle and lp = String.length path in
  let rec scan i = i + ln <= lp && (String.sub path i ln = needle || scan (i + 1)) in
  scan 0

let path_matches ~entry path = path = entry || ends_with ~suffix:("/" ^ entry) path

let allowlist_entry allowlist path code =
  List.find_opt (fun (f, c) -> c = code && path_matches ~entry:f path) allowlist

(* An allowlist entry that suppresses nothing is itself a defect: stale
   entries hide future regressions behind an audit that no longer applies.
   Only entries whose file was actually visited are reported, so linting a
   subtree does not accuse entries for files outside it. *)
let unused_allowlist ~allowlist ~used ~files =
  List.filter
    (fun (entry_file, code) ->
      List.exists (fun path -> path_matches ~entry:entry_file path) files
      && not (List.exists (fun (f, c) -> f = entry_file && c = code) used))
    allowlist

(* Nominal device count; for [Grid_holes] an upper-bound estimate (the
   generator may reject some removals to preserve connectivity). *)
let node_count (spec : Scenario.spec) =
  match spec.deployment with
  | Scenario.Uniform n -> n
  | Scenario.Clustered { n; _ } -> n
  | Scenario.Grid -> (1 + int_of_float spec.map_w) * (1 + int_of_float spec.map_h)
  | Scenario.Grid_holes { width; height; holes } -> max 1 ((width * height) - holes)
  | Scenario.Corridor { rooms; room_w; room_h; hall_len } ->
    (rooms * room_w * room_h) + ((rooms - 1) * hall_len)
  | Scenario.Triangulated { cols; rows; _ } -> (cols + 1) * (rows + 1)
  | Scenario.Expander { n; _ } -> n
  | Scenario.Lattice { width; height } -> width * height

(* Expected number of devices inside one broadcast neighbourhood, from the
   deployment density and the radio's coverage area. *)
let neighbourhood_population (spec : Scenario.spec) =
  let area = spec.map_w *. spec.map_h in
  if area <= 0.0 then 0.0
  else begin
    let density = float_of_int (node_count spec) /. area in
    let coverage =
      match spec.radio with
      | Scenario.Friis | Scenario.Disk_l2 -> Float.pi *. spec.radius *. spec.radius
      | Scenario.Disk_linf -> 4.0 *. spec.radius *. spec.radius
    in
    density *. coverage
  end

let int_radius (spec : Scenario.spec) = max 1 (int_of_float (Float.round spec.radius))

let lint ~name (spec : Scenario.spec) =
  let diags = ref [] in
  let emit severity field code message = diags := { severity; scenario = name; field; code; message } :: !diags in
  (* The analytic preconditions below (square-partition sizing, Koo's
     impossibility, the per-neighbourhood tolerance bounds) are stated for
     the radio model on the square map; on an explicit graph family they
     have no meaning, so instead of evaluating them against ignored
     parameters the linter flags the attempt with its own code. *)
  let geometric = Scenario.geometric_deployment spec.deployment in
  let non_geometric_bound field bound =
    emit Warning field "non-geometric-bound"
      (Printf.sprintf
         "%s is a square-geometry bound; it does not apply to the explicit graph deployment \
          (radius and map size are ignored there)"
         bound)
  in
  (* --- map, radio, message, engine caps ------------------------------ *)
  if geometric then begin
    if spec.map_w <= 0.0 || spec.map_h <= 0.0 then
      emit Error "map_w" "map-dims"
        (Printf.sprintf "map is %gx%g; both sides must be positive" spec.map_w spec.map_h);
    if spec.radius <= 0.0 then
      emit Error "radius" "radius"
        (Printf.sprintf "broadcast range %g must be positive" spec.radius)
    else if spec.radius >= Float.min spec.map_w spec.map_h && spec.map_w > 0.0 then
      emit Warning "radius" "radius"
        (Printf.sprintf "range %g covers the whole %gx%g map: the network is single-hop"
           spec.radius spec.map_w spec.map_h)
  end;
  if Bitvec.length spec.message = 0 then
    emit Error "message" "message" "empty broadcast message: nothing to authenticate";
  if spec.cap <= 0 then
    emit Error "cap" "cap" (Printf.sprintf "round cap %d: the engine will not run a single round" spec.cap)
  else if spec.cap < 10_000 then
    emit Warning "cap" "cap"
      (Printf.sprintf "round cap %d is very low; multi-hop broadcasts typically need 10k+ rounds"
         spec.cap);
  (* --- deployment ----------------------------------------------------- *)
  begin
    match spec.deployment with
    | Scenario.Uniform n ->
      if n <= 0 then emit Error "deployment" "deployment" "no devices deployed"
    | Scenario.Clustered { n; clusters; stddev } ->
      if n <= 0 then emit Error "deployment" "deployment" "no devices deployed";
      if clusters <= 0 then
        emit Error "deployment.clusters" "deployment" "clustered deployment needs >= 1 cluster";
      if stddev <= 0.0 then
        emit Error "deployment.stddev" "deployment" "cluster scatter stddev must be positive";
      if clusters > n && n > 0 then
        emit Warning "deployment.clusters" "deployment"
          (Printf.sprintf "%d clusters for %d devices: most clusters will be empty" clusters n)
    | Scenario.Grid -> ()
    | Scenario.Grid_holes { width; height; holes } ->
      if width < 2 || height < 2 then
        emit Error "deployment" "deployment"
          (Printf.sprintf "%dx%d grid too small for holes (need at least 2x2)" width height);
      if holes < 0 || holes >= (width * height) - 1 then
        emit Error "deployment.holes" "deployment"
          (Printf.sprintf "%d holes in a %dx%d grid leaves no connected deployment" holes width
             height)
    | Scenario.Corridor { rooms; room_w; room_h; hall_len } ->
      if rooms < 1 then emit Error "deployment.rooms" "deployment" "corridor map needs >= 1 room";
      if room_w < 2 || room_h < 1 then
        emit Error "deployment" "deployment"
          (Printf.sprintf "rooms of %dx%d devices are degenerate (need >= 2x1)" room_w room_h);
      if hall_len < 1 then
        emit Error "deployment.hall_len" "deployment" "halls need at least one device"
    | Scenario.Triangulated { cols; rows; jitter } ->
      if cols < 1 || rows < 1 then
        emit Error "deployment" "deployment" "triangulation needs at least one cell";
      if jitter < 0.0 then
        emit Error "deployment.jitter" "deployment" "jitter must be non-negative"
      else if jitter >= 0.25 then
        emit Warning "deployment.jitter" "deployment"
          (Printf.sprintf "jitter %g is clamped below 0.25 to preserve planarity" jitter)
    | Scenario.Expander { n; degree } ->
      if n < 4 then emit Error "deployment" "deployment" "expander needs at least 4 devices";
      if degree < 3 then
        emit Error "deployment.degree" "deployment"
          (Printf.sprintf "expander degree %d: need >= 3 (ring plus at least one matching)" degree)
    | Scenario.Lattice { width; height } ->
      if width < 2 || height < 2 then
        emit Error "deployment" "deployment"
          (Printf.sprintf "%dx%d lattice is degenerate (need at least 2x2)" width height)
  end;
  (* --- channel --------------------------------------------------------- *)
  if spec.channel.Channel.loss_prob < 0.0 || spec.channel.Channel.loss_prob >= 1.0 then
    emit Error "channel.loss_prob" "channel"
      (Printf.sprintf "loss probability %g outside [0, 1)" spec.channel.Channel.loss_prob);
  if spec.channel.Channel.capture_ratio < 1.0 then
    emit Error "channel.capture_ratio" "channel"
      (Printf.sprintf "capture ratio %g < 1 decodes weaker-than-interference signals"
         spec.channel.Channel.capture_ratio);
  (* --- protocol-specific geometry and parameters ---------------------- *)
  let iradius = int_radius spec in
  begin
    match spec.protocol with
    | Scenario.Neighbor_watch { votes } ->
      if votes < 1 then
        emit Error "protocol.votes" "votes" (Printf.sprintf "voting threshold %d must be >= 1" votes)
      else if votes > 2 then
        emit Warning "protocol.votes" "votes"
          (Printf.sprintf "%d-voting is beyond the paper's 1- and 2-voting analysis" votes);
      (* Square-partition preconditions: every device of a square must hear
         every device of the 8 adjacent squares, else the watch cannot veto
         and streams cannot cross squares.  Worst case between diagonal
         neighbours is 2*sqrt(2)*side (L2) or 2*side (L-inf). *)
      if not geometric then
        non_geometric_bound "square_side" "the square-partition mutual-range sizing"
      else begin
        let side =
          match spec.square_side with
          | Some side -> side
          | None -> Squares.simulation_side ~radius:spec.radius
        in
        if side <= 0.0 then
          emit Error "square_side" "square-geometry"
            (Printf.sprintf "square side %g must be positive" side)
        else begin
          let strict_limit, hard_limit =
            match spec.radio with
            | Scenario.Disk_linf -> (spec.radius /. 2.0, (spec.radius +. 1.0) /. 2.0)
            | Scenario.Friis | Scenario.Disk_l2 ->
              (spec.radius /. (2.0 *. Float.sqrt 2.0), spec.radius /. 2.0)
          in
          if side > hard_limit +. 1e-9 then
            emit Error "square_side" "square-geometry"
              (Printf.sprintf
                 "square side %g: adjacent watch squares are out of mutual range (limit %g for \
                  R=%g)"
                 side hard_limit spec.radius)
          else if side > strict_limit +. 1e-9 then
            emit Warning "square_side" "square-geometry"
              (Printf.sprintf
                 "square side %g exceeds the guaranteed mutual-range sizing %g; diagonal square \
                  neighbours may not decode each other"
                 side strict_limit);
          let area = spec.map_w *. spec.map_h in
          if area > 0.0 then begin
            let per_square = float_of_int (node_count spec) /. area *. side *. side in
            if per_square < 1.0 then
              emit Warning "square_side" "sparse-squares"
                (Printf.sprintf
                   "expected %.2f devices per watch square: empty squares break the relay chain"
                   per_square)
          end
        end
      end;
      if spec.heard_relay_limit <> None then
        emit Info "heard_relay_limit" "unused-field"
          "heard_relay_limit only applies to MultiPathRB; ignored by NeighborWatchRB"
    | Scenario.Multi_path { tolerance } ->
      if tolerance < 0 then
        emit Error "protocol.tolerance" "tolerance"
          (Printf.sprintf "tolerance %d must be >= 0" tolerance)
      else if not geometric then begin
        if tolerance > 0 then
          non_geometric_bound "protocol.tolerance" "Koo's impossibility bound t < R(2R+1)/2"
      end
      else begin
        let koo = Bounds.koo_bound ~radius:iradius in
        if tolerance >= koo then
          emit Error "protocol.tolerance" "koo-impossibility"
            (Printf.sprintf
               "tolerance t=%d >= R(2R+1)/2 = %d for R=%d: reliable broadcast is impossible \
                (Koo's bound)"
               tolerance koo iradius)
      end;
      begin
        match spec.heard_relay_limit with
        | Some k when k <= 0 ->
          emit Error "heard_relay_limit" "relay-limit"
            (Printf.sprintf "HEARD relay cap %d disables relaying entirely" k)
        | Some _ | None -> ()
      end;
      if spec.square_side <> None then
        emit Info "square_side" "unused-field"
          "square_side only applies to NeighborWatchRB; ignored by MultiPathRB"
    | Scenario.Epidemic ->
      if spec.square_side <> None then
        emit Info "square_side" "unused-field" "square_side is ignored by the epidemic baseline";
      if spec.heard_relay_limit <> None then
        emit Info "heard_relay_limit" "unused-field"
          "heard_relay_limit is ignored by the epidemic baseline"
    | Scenario.Certified { tolerance } ->
      if tolerance < 0 then
        emit Error "protocol.tolerance" "tolerance"
          (Printf.sprintf "tolerance %d must be >= 0" tolerance);
      if spec.square_side <> None then
        emit Info "square_side" "unused-field" "square_side is ignored by CPA";
      if spec.heard_relay_limit <> None then
        emit Info "heard_relay_limit" "unused-field" "heard_relay_limit is ignored by CPA"
  end;
  (* --- fault model vs the analytic tolerance bounds -------------------- *)
  let check_fraction field fraction =
    if fraction < 0.0 || fraction > 1.0 then
      emit Error field "fraction" (Printf.sprintf "fraction %g outside [0, 1]" fraction)
    else if fraction > 0.5 then
      emit Warning field "fraction"
        (Printf.sprintf "%g%% of devices faulty: honest devices are a minority" (100.0 *. fraction))
  in
  begin
    match spec.faults with
    | Scenario.No_faults -> ()
    | Scenario.Crash fraction -> check_fraction "faults.fraction" fraction
    | Scenario.Jamming { fraction; budget; probability } ->
      check_fraction "faults.fraction" fraction;
      if budget < 0 then
        emit Info "faults.budget" "budget" "negative budget: jammers never run out of broadcasts";
      if probability < 0.0 || probability > 1.0 then
        emit Error "faults.probability" "probability"
          (Printf.sprintf "jamming probability %g outside [0, 1]" probability)
      else if probability = 0.0 && budget <> 0 then
        emit Info "faults.probability" "probability" "jamming probability 0: the jammers never fire"
    | Scenario.Lying fraction ->
      check_fraction "faults.fraction" fraction;
      if fraction > 0.0 && fraction <= 1.0 then begin
        if not geometric then
          (* The per-neighbourhood tolerance comparison needs the density ×
             coverage-area estimate, which only exists on the square map. *)
          non_geometric_bound "faults.fraction"
            "the per-neighbourhood Byzantine tolerance estimate (⌈R/2⌉² and kin)"
        else begin
          let expected_byz = neighbourhood_population spec *. fraction in
          let tolerance, bound_name =
            match spec.protocol with
            | Scenario.Neighbor_watch { votes } when votes >= 2 ->
              (Some (Bounds.two_voting_tolerance ~radius:iradius), "t < R^2/2 (2-voting watch)")
            | Scenario.Neighbor_watch _ ->
              ( Some (Bounds.neighbor_watch_tolerance ~radius:iradius),
                "t < ceil(R/2)^2 (NeighborWatchRB)" )
            | Scenario.Multi_path { tolerance } ->
              (Some tolerance, "the configured MultiPathRB tolerance")
            | Scenario.Certified { tolerance } -> (Some tolerance, "the configured CPA tolerance")
            | Scenario.Epidemic -> (None, "")
          in
          match tolerance with
          | Some t when expected_byz > float_of_int t ->
            emit Warning "faults.fraction" "byz-tolerance"
              (Printf.sprintf
                 "expected %.1f Byzantine devices per neighbourhood exceeds the analytic bound %d \
                  (%s, R=%d): corrupt deliveries become possible"
                 expected_byz t bound_name iradius)
          | Some _ -> ()
          | None ->
            emit Info "protocol" "byz-tolerance"
              "the epidemic baseline is unauthenticated: any lying device corrupts deliveries"
        end
      end
    | Scenario.Selective_jam { fraction; budget; probability } ->
      check_fraction "faults.fraction" fraction;
      if budget < 0 then
        emit Info "faults.budget" "budget" "negative budget: jammers never run out of broadcasts";
      if probability < 0.0 || probability > 1.0 then
        emit Error "faults.probability" "probability"
          (Printf.sprintf "jamming probability %g outside [0, 1]" probability)
      else if probability = 0.0 && budget <> 0 then
        emit Info "faults.probability" "probability" "jamming probability 0: the jammers never fire"
  end;
  List.rev !diags

let lint_presets () =
  List.map (fun (name, spec) -> (name, lint ~name spec)) Scenario.presets
