(* Approximate interprocedural call graph over the repo's Parsetree.

   Factored out of [Share_lint] so the source-level analyzers share one
   vocabulary of expression helpers (reference/write extraction, binding
   summaries) and one reachability engine:

   - [Share_lint] asks the {e same-file} question: starting from a task
     expression handed to a pool primitive, which module-level mutable
     state can transitively be touched?  That is {!reach}, preserved
     byte-for-byte from the original in-lint implementation (accumulation
     order included) so the share-lint goldens cannot move.
   - [Alloc_lint] asks the {e whole-tree} question: which functions are
     reachable from a set of annotated hot roots ("Engine.process_round",
     "Voting.Index.add", ...)?  That is {!build}/{!reachable}.

   Everything here is purely syntactic (Parsetree, no typing): unqualified
   references resolve to same-file bindings of that name (all of them —
   duplicates union, conservative in the right direction), qualified
   references resolve to any function whose module-qualified name matches
   the reference as a suffix ("Index.add" reaches "Voting.Index.add").
   Higher-order flow, functors and shadowing are invisible; the analyzers
   built on top document themselves as approximate accordingly. *)

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_coerce (e, _, _) -> peel e
  | _ -> e

let head_ident e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let iter_expr f e =
  let default = Ast_iterator.default_iterator in
  let it = { default with expr = (fun it e -> f e; default.expr it e) } in
  it.expr it e

(* All value-path references in an expression, as dotted strings. *)
let refs_of_expr e =
  let acc = ref [] in
  iter_expr
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> acc := String.concat "." (Longident.flatten txt) :: !acc
      | _ -> ())
    e;
  !acc

(* Every value name bound anywhere inside an expression: function
   parameters, let patterns, match cases, for-loop indices.  Used to
   separate a binding's own state from captured state. *)
let bound_names_of_expr e =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      pat =
        (fun it (p : Parsetree.pattern) ->
          (match p.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } | Parsetree.Ppat_alias (_, { txt; _ }) ->
            acc := txt :: !acc
          | _ -> ());
          default.pat it p);
      expr =
        (fun it (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_for ({ ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _, _, _, _) ->
            acc := txt :: !acc
          | _ -> ());
          default.expr it e);
    }
  in
  it.expr it e;
  !acc

(* Syntactic mutation sites: [x := e], [incr]/[decr], [a.(i) <- v] (the
   parser spells it [Array.set]), record-field assignment, and the
   imperative container operations.  The recorded target is the head
   identifier being mutated. *)
let writer_heads =
  [
    ":="; "incr"; "decr"; "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Bytes.set";
    "Bytes.fill"; "Bytes.blit"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_buffer"; "Buffer.clear"; "Buffer.reset"; "Queue.add";
    "Queue.push"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer"; "Stack.push";
    "Stack.pop"; "Stack.clear";
  ]

let is_writer h = List.mem h writer_heads || List.mem h (List.map (( ^ ) "Stdlib.") writer_heads)

type write = { target : string; wline : int }

let writes_of_expr e =
  let acc = ref [] in
  iter_expr
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_setfield (target, _, _) -> (
        match head_ident target with
        | Some t -> acc := { target = t; wline = line_of e.Parsetree.pexp_loc } :: !acc
        | None -> ())
      | Parsetree.Pexp_apply (f, args) -> (
        match head_ident f with
        | Some h when is_writer h -> (
          match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
          | Some (_, a) -> (
            match head_ident a with
            | Some t -> acc := { target = t; wline = line_of e.Parsetree.pexp_loc } :: !acc
            | None -> ())
          | None -> ())
        | _ -> ())
      | _ -> ())
    e;
  !acc

let is_function e =
  match (peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ | Parsetree.Pexp_newtype _ -> true
  | _ -> false

let pattern_var (p : Parsetree.pattern) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> Some txt
    | Parsetree.Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

let parse_string ~path contents =
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception _ -> Error lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- binding summaries and same-file reachability ------------------------ *)

type summary = { fn_refs : string list; fn_writes : write list }

let summarize e =
  let bound = bound_names_of_expr e in
  let fn_refs = List.filter (fun r -> not (List.mem r bound)) (refs_of_expr e) in
  let fn_writes = List.filter (fun w -> not (List.mem w.target bound)) (writes_of_expr e) in
  { fn_refs; fn_writes }

type entry = Body of summary | Binding of string | Opaque

(* Transitive same-file reachability from an entry: the union of all
   references and escaping writes of the entry and of every same-file
   function it can call.  Duplicate binding names are unioned, which is
   conservative in the right direction.  The traversal and accumulation
   order are exactly [Share_lint]'s original ones (its goldens depend on
   them). *)
let reach ~bindings entry =
  let visited = Hashtbl.create 16 in
  let refs = ref [] in
  let writes = ref [] in
  let rec follow name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      List.iter
        (fun (n, summary) ->
          if n = name then begin
            refs := summary.fn_refs @ !refs;
            writes := summary.fn_writes @ !writes;
            List.iter (fun r -> if not (String.contains r '.') then follow r) summary.fn_refs
          end)
        bindings
    end
  in
  (match entry with
  | Body { fn_refs; fn_writes } ->
    refs := fn_refs;
    writes := fn_writes;
    List.iter (fun r -> if not (String.contains r '.') then follow r) fn_refs
  | Binding name -> follow name
  | Opaque -> ());
  (!refs, !writes)

(* --- whole-tree function inventory and root reachability ----------------- *)

type fn_info = {
  fn_name : string;
  fn_qual : string;
  fn_file : string;
  fn_line : int;
  fn_arity : int;
  fn_body : Parsetree.expression;
  fn_summary : summary;
}

type t = { fns : fn_info list }

let arity_of e =
  let rec go n e =
    match (peel e).Parsetree.pexp_desc with
    | Parsetree.Pexp_fun (_, _, _, body) -> go (n + 1) body
    | Parsetree.Pexp_newtype (_, body) -> go n body
    | Parsetree.Pexp_function _ -> n + 1
    | _ -> n
  in
  go 0 e

(* Every let-bound function in one file, any depth, in encounter order,
   qualified by the enclosing module path ("Voting.Index.add" for
   [module Index = struct let add ... end] in voting.ml; nested lets take
   the module path only, so [let process_round] inside [Engine.run] is
   "Engine.process_round"). *)
let fns_of_structure ~path structure =
  let acc = ref [] in
  let stack = ref [ module_of_path path ] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      module_binding =
        (fun it (mb : Parsetree.module_binding) ->
          let saved = !stack in
          (match mb.pmb_name.Location.txt with
          | Some name -> stack := !stack @ [ name ]
          | None -> ());
          default.module_binding it mb;
          stack := saved);
      value_binding =
        (fun it (vb : Parsetree.value_binding) ->
          (match pattern_var vb.pvb_pat with
          | Some name when is_function vb.pvb_expr ->
            acc :=
              {
                fn_name = name;
                fn_qual = String.concat "." (!stack @ [ name ]);
                fn_file = path;
                fn_line = line_of vb.pvb_loc;
                fn_arity = arity_of vb.pvb_expr;
                fn_body = vb.pvb_expr;
                fn_summary = summarize vb.pvb_expr;
              }
              :: !acc
          | Some _ | None -> ());
          default.value_binding it vb);
    }
  in
  it.structure it structure;
  List.rev !acc

let build parsed_files =
  { fns = List.concat_map (fun (path, structure) -> fns_of_structure ~path structure) parsed_files }

let functions t = t.fns

(* A qualified name [q] matches a reference or root [r] when it is [r]
   itself or ends in ".r" — "Index.add" written inside voting.ml matches
   "Voting.Index.add".  Ambiguous suffixes union (conservative). *)
let qual_matches ~qual r = qual = r || String.ends_with ~suffix:("." ^ r) qual

let resolve t ~file r =
  if String.contains r '.' then List.filter (fun fn -> qual_matches ~qual:fn.fn_qual r) t.fns
  else List.filter (fun fn -> fn.fn_file = file && fn.fn_name = r) t.fns

(* Depth-first closure over {!resolve} from every function matching a
   root, in deterministic discovery order. *)
let reachable t ~roots =
  let visited = Hashtbl.create 64 in
  let key fn = Printf.sprintf "%s:%d:%s" fn.fn_file fn.fn_line fn.fn_qual in
  let out = ref [] in
  let rec visit fn =
    let k = key fn in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      out := fn :: !out;
      List.iter
        (fun r -> List.iter visit (resolve t ~file:fn.fn_file r))
        fn.fn_summary.fn_refs
    end
  in
  List.iter
    (fun root -> List.iter visit (List.filter (fun fn -> qual_matches ~qual:fn.fn_qual root) t.fns))
    roots;
  List.rev !out
