(** Approximate interprocedural call graph over the repo's Parsetree.

    The shared machinery behind the source-level analyzers: expression
    helpers (reference and mutation extraction), per-binding capture
    summaries, the same-file transitive-reachability engine that
    {!Share_lint}'s task analysis runs on (preserved byte-for-byte from
    its original in-lint form), and the whole-tree function inventory
    that {!Alloc_lint} walks from its annotated hot roots.

    Everything is purely syntactic — [Parse.implementation], no typing.
    Unqualified references resolve to same-file bindings of that name
    (all of them; duplicates union), qualified references to any function
    whose module-qualified name ends in the reference ("Index.add"
    reaches "Voting.Index.add").  Higher-order flow, functors and
    shadowing are invisible; clients stay conservative accordingly. *)

(** {1 Expression helpers} *)

val module_of_path : string -> string
(** ["Voting"] for ["lib/core/voting.ml"]. *)

val line_of : Location.t -> int

val peel : Parsetree.expression -> Parsetree.expression
(** Strip type constraints and coercions. *)

val head_ident : Parsetree.expression -> string option
(** The dotted value path of an identifier expression, if it is one. *)

val iter_expr : (Parsetree.expression -> unit) -> Parsetree.expression -> unit
(** Apply [f] to every subexpression (prefix order). *)

val refs_of_expr : Parsetree.expression -> string list
(** All value-path references, as dotted strings. *)

val bound_names_of_expr : Parsetree.expression -> string list
(** Every value name bound anywhere inside: parameters, let patterns,
    match cases, for-loop indices. *)

val writer_heads : string list
(** Function heads treated as mutation sites ([:=], [incr],
    [Array.set], [Hashtbl.replace], ...). *)

val is_writer : string -> bool

type write = { target : string; wline : int }
(** One syntactic mutation: the head identifier being mutated and the
    line of the mutating expression. *)

val writes_of_expr : Parsetree.expression -> write list

val is_function : Parsetree.expression -> bool
(** Is this (after {!peel}) a syntactic function? *)

val pattern_var : Parsetree.pattern -> string option
(** The variable a simple (possibly constrained) pattern binds. *)

val parse_string : path:string -> string -> (Parsetree.structure, int) result
(** Parse an implementation; [Error line] on syntax errors. *)

val read_file : string -> string

(** {1 Binding summaries and same-file reachability} *)

type summary = { fn_refs : string list; fn_writes : write list }
(** A binding's escaping references and writes: everything it mentions
    minus the names it binds itself. *)

val summarize : Parsetree.expression -> summary

type entry = Body of summary | Binding of string | Opaque
(** Where reachability starts: an inline body already summarized, a named
    same-file binding, or something the analysis cannot see into. *)

val reach : bindings:(string * summary) list -> entry -> string list * write list
(** Transitive same-file closure: the union of refs and writes of the
    entry and of every same-file binding it can reach through unqualified
    references.  Exactly {!Share_lint}'s original task analysis —
    accumulation order included — so its diagnostics cannot move. *)

(** {1 Whole-tree function inventory} *)

type fn_info = {
  fn_name : string;  (** leaf binding name, e.g. ["add"] *)
  fn_qual : string;  (** module-qualified, e.g. ["Voting.Index.add"] *)
  fn_file : string;
  fn_line : int;
  fn_arity : int;  (** leading syntactic parameters *)
  fn_body : Parsetree.expression;
  fn_summary : summary;
}

type t

val build : (string * Parsetree.structure) list -> t
(** Inventory every let-bound function (any depth) of the parsed files,
    qualified by enclosing module path, in encounter order. *)

val functions : t -> fn_info list

val resolve : t -> file:string -> string -> fn_info list
(** All functions a reference written in [file] may denote: same-file
    name matches when unqualified, qualified-suffix matches otherwise. *)

val reachable : t -> roots:string list -> fn_info list
(** Every function transitively reachable from the roots (each root a
    qualified name or suffix thereof), in deterministic discovery
    order. *)
