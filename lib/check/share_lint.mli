(** Domain-safety lint: static analysis of mutable state shared between
    pool tasks.

    The byte-identical [--jobs N] guarantee (and the planned intra-run
    engine sharding) requires that closures executed on worker domains by
    {!Pool.map_array}/{!Pool.map_list}/[Domain.spawn] touch no
    unsynchronized mutable state.  This pass checks that property over the
    whole tree at once, purely syntactically (compiler-libs parsetree, no
    typing):

    - {b inventory}: per-module escaping mutable state — top-level
      [ref]/[Array.make]/[Hashtbl.create]/[Buffer.create]-style bindings
      and declared mutable record fields;
    - {b capture analysis}: a conservative intra-file call/capture summary
      flags any function reachable from a task expression handed to a pool
      primitive that reads or writes one of those globals (or mutates a
      captured non-[Atomic] mutable binding) without synchronization;
    - {b layer policy}: any top-level mutable binding in lib/core or
      lib/sim is an error outright — those layers must be re-entrant for
      engine shards to run on separate domains.

    Limits (documented, shared with {!Source_lint}'s philosophy): analysis
    is per-file, so a task calling [M.helper] which internally touches
    [M.state] is invisible, while a task referencing [M.state] directly is
    caught.  The dynamic counterpart — [Pool.map_array ~sanitize] — covers
    races this pass cannot see. *)

type kind = Ref | Arr | Tbl | Buf | Byt | Que | Stk | Atom
(** What a mutable binding allocates.  [Atom] ([Atomic.make]) is
    inventoried but never flagged: atomics are the sanctioned cross-domain
    cell. *)

val kind_label : kind -> string

type global = {
  gmodule : string;  (** ["Voting"] for [lib/core/voting.ml] *)
  gfile : string;
  gname : string;
  gkind : kind;
  gline : int;
}
(** A top-level mutable binding: module state reachable from any other
    module as [M.name]. *)

type mutable_field = {
  fmodule : string;
  ffile : string;
  ftype : string;
  ffield : string;
  fline : int;
}
(** A [mutable] record field declaration. *)

type inventory = { globals : global list; fields : mutable_field list }

type diagnostic = {
  severity : Lint.severity;
  file : string;
  line : int;
  code : string;
  message : string;
}

val codes : string list
(** Every stable code this pass can emit; pinned by a golden test. *)

val allowlist : (string * string) list
(** Audited [(file, code)] suppressions.  Hygiene is enforced: an entry
    that suppresses nothing is reported as [unused-allowlist]. *)

val lint_strings : (string * string) list -> diagnostic list
(** [lint_strings [(path, contents); ...]]: lint a whole tree given as
    in-memory files.  The cross-module global inventory is built from
    exactly these files, so the file set should be the full tree. *)

val lint_paths : string list -> diagnostic list
(** Expand directories via {!Source_lint.source_files}, read, lint. *)

val lint_structures : (string * Parsetree.structure) list -> diagnostic list
(** {!lint_strings} on already-parsed files — `securebit_lint all` feeds
    every source analyzer from one shared parse of the tree (parse
    failures are surfaced by that shared pass, not here). *)

val inventory_strings : (string * string) list -> inventory
val inventory_paths : string list -> inventory
(** The escaping-mutable-state inventory alone (no capture analysis);
    [--inventory] output. *)

val seed_violation : unit -> diagnostic list
(** Lint a bundled two-module demo tree that violates all three rules
    ([global-mutable-core], [shared-mutable], [capture-mutates]) — the
    [--seed-violation] self-check proving the analyzer fires. *)

val seed_violation_files : (string * string) list
(** The demo tree itself, for tests. *)

val has_errors : diagnostic list -> bool
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
