(* securebit_lint — the static-analysis front end.

   `securebit_lint lint scenario`      validate scenario specs against the
                                       analytic bounds before simulating;
   `securebit_lint check twobit`       bounded model checking of the 2Bit
                                       frame and the 1Hop stream;
   `securebit_lint check determinism`  run scenarios twice and diff the
                                       round-by-round channel traces.

   `dune build @lint` runs all three over the bundled preset scenarios. *)

open Cmdliner

let known_scenarios () = String.concat ", " (List.map fst Scenario.presets)

let resolve_targets all names =
  if all || names = [] then Scenario.presets
  else
    List.map
      (fun name ->
        match Scenario.preset name with
        | Some spec -> (name, spec)
        | None ->
          Printf.eprintf "unknown scenario %s (known: %s)\n" name (known_scenarios ());
          exit 2)
      names

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Run over every bundled preset scenario (the default).")

let names_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"SCENARIO" ~doc:"Preset scenario names; omit for all presets.")

(* --- lint scenario ----------------------------------------------------- *)

let lint_scenario_cmd =
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors (exit 1).")
  in
  let run all strict names =
    let targets = resolve_targets all names in
    let failed = ref false in
    let total_warnings = ref 0 in
    List.iter
      (fun (name, spec) ->
        let diags = Lint.lint ~name spec in
        List.iter (fun d -> print_endline (Lint.diagnostic_to_string d)) diags;
        total_warnings := !total_warnings + Lint.count Lint.Warning diags;
        if Lint.has_errors diags || (strict && Lint.count Lint.Warning diags > 0) then
          failed := true
        else if diags = [] then Printf.printf "%s: ok\n" name
        else Printf.printf "%s: ok (%d diagnostic(s))\n" name (List.length diags))
      targets;
    Printf.printf "linted %d scenario(s): %s\n" (List.length targets)
      (if !failed then "FAILED" else "ok");
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Validate scenario specs against the paper's resilience bounds, the square-partition \
          geometry preconditions and parameter sanity.")
    Term.(const run $ all_arg $ strict_arg $ names_arg)

let lint_group =
  Cmd.group
    (Cmd.info "lint" ~doc:"Static validation of simulation configurations.")
    [ lint_scenario_cmd ]

(* --- check twobit ------------------------------------------------------ *)

let report_outcome label = function
  | Model_check.Pass { configurations } ->
    Printf.printf "%s: ok — %d adversary configurations, all invariants hold\n" label
      configurations;
    true
  | Model_check.Fail counterexample ->
    Printf.printf "%s: VIOLATION\n%s\n" label (Model_check.counterexample_to_string counterexample);
    false

let check_twobit_cmd =
  let budget_arg =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"N" ~doc:"Adversary broadcast budget (exhaustive for this bound).")
  in
  let receivers_arg =
    Arg.(value & opt int 2 & info [ "receivers" ] ~docv:"K" ~doc:"Honest receivers in the frame.")
  in
  let msg_len_arg =
    Arg.(
      value & opt int 2
      & info [ "msg-len" ] ~docv:"L" ~doc:"Message length for the 1Hop stream check.")
  in
  let seed_violation_arg =
    Arg.(
      value & flag
      & info [ "seed-violation" ]
          ~doc:
            "Use a deliberately broken receiver (deaf to the veto round) to demonstrate a \
             counterexample trace.")
  in
  let run budget receivers msg_len seed_violation =
    let impl = if seed_violation then Model_check.faulty_skip_veto else Model_check.reference in
    match
      let frame =
        report_outcome
          (Printf.sprintf "2Bit frame  (budget %d, %d receivers)" budget receivers)
          (Model_check.check_two_bit ~impl ~receivers ~budget ())
      in
      let stream =
        report_outcome
          (Printf.sprintf "1Hop stream (budget %d, %d-bit messages)" budget msg_len)
          (Model_check.check_one_hop ~impl ~msg_len ~budget ())
      in
      frame && stream
    with
    | true -> ()
    | false -> exit 1
    | exception Invalid_argument msg ->
      Printf.eprintf "invalid arguments: %s\n" msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "twobit"
       ~doc:
         "Bounded model checking: enumerate every Byzantine transmit/silence pattern within the \
          budget over the 2Bit frame and the 1Hop stream, asserting the paper's no-forgery and \
          agreement invariants.")
    Term.(const run $ budget_arg $ receivers_arg $ msg_len_arg $ seed_violation_arg)

(* --- check determinism ------------------------------------------------- *)

let check_determinism_cmd =
  let max_rounds_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-rounds" ] ~docv:"N" ~doc:"Cap traced rounds per run (keeps the check cheap).")
  in
  let run all max_rounds names =
    let targets = resolve_targets all names in
    let failed = ref false in
    List.iter
      (fun (name, spec) ->
        match Determinism.check_spec ~max_rounds spec with
        | Determinism.Deterministic { rounds } ->
          Printf.printf "%s: deterministic over %d rounds\n" name rounds
        | Determinism.Diverged _ as outcome ->
          Printf.printf "%s: %s\n" name (Determinism.outcome_to_string outcome);
          failed := true)
      targets;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "determinism"
       ~doc:
         "Run each scenario twice with the same seed and diff the full round-by-round channel \
          trace; any divergence is hidden nondeterminism.")
    Term.(const run $ all_arg $ max_rounds_arg $ names_arg)

let check_group =
  Cmd.group
    (Cmd.info "check" ~doc:"Dynamic verifiers: model checking and determinism.")
    [ check_twobit_cmd; check_determinism_cmd ]

let () =
  let doc = "protocol-invariant verifier and scenario linter (static checking)" in
  let info = Cmd.info "securebit_lint" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ lint_group; check_group ]))
