(* securebit_lint — the static-analysis front end.

   `securebit_lint lint scenario`      validate scenario specs against the
                                       analytic bounds before simulating;
   `securebit_lint lint source`        AST lint for determinism and
                                       concurrency hazards in the sources;
   `securebit_lint lint share`         domain-safety lint: mutable state
                                       reachable from pool tasks;
   `securebit_lint lint alloc`         hot-path allocation inventory diffed
                                       against the committed golden file;
   `securebit_lint check twobit`       bounded model checking of the 2Bit
                                       frame and the 1Hop stream;
   `securebit_lint check vote`         exhaustive checking of the multi-hop
                                       voting layer (MultiPathRB quorum,
                                       NeighborWatchRB frontier vote);
   `securebit_lint check determinism`  run scenarios twice (or once per
                                       engine mode with --modes) and diff
                                       the round-by-round channel traces;
   `securebit_lint all`                every analyzer above behind one
                                       shared parse of the tree, with
                                       per-analyzer wall times.

   `dune build @lint` runs `all`.  `--json` emits machine-readable
   diagnostics for CI and editors. *)

open Cmdliner

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit diagnostics as JSON on stdout instead of text.  Exit status is unchanged: \
           non-zero iff any error-severity finding.")

let known_scenarios () = String.concat ", " (List.map fst Scenario.presets)

let resolve_targets all names =
  if all || names = [] then Scenario.presets
  else
    List.map
      (fun name ->
        match Scenario.preset name with
        | Some spec -> (name, spec)
        | None ->
          Printf.eprintf "unknown scenario %s (known: %s)\n" name (known_scenarios ());
          exit 2)
      names

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Run over every bundled preset scenario (the default).")

let names_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"SCENARIO" ~doc:"Preset scenario names; omit for all presets.")

(* --- lint scenario ----------------------------------------------------- *)

let scenario_diag_json (d : Lint.diagnostic) =
  Json.Obj
    [
      ("severity", Json.String (Lint.severity_label d.severity));
      ("scenario", Json.String d.scenario);
      ("field", Json.String d.field);
      ("code", Json.String d.code);
      ("message", Json.String d.message);
    ]

let lint_scenario_cmd =
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors (exit 1).")
  in
  let run all strict json names =
    let targets = resolve_targets all names in
    let failed = ref false in
    let all_diags = ref [] in
    List.iter
      (fun (name, spec) ->
        let diags = Lint.lint ~name spec in
        all_diags := !all_diags @ diags;
        if not json then List.iter (fun d -> print_endline (Lint.diagnostic_to_string d)) diags;
        if Lint.has_errors diags || (strict && Lint.count Lint.Warning diags > 0) then
          failed := true
        else if not json then
          if diags = [] then Printf.printf "%s: ok\n" name
          else Printf.printf "%s: ok (%d diagnostic(s))\n" name (List.length diags))
      targets;
    if json then
      print_string
        (Json.to_string_pretty
           (Json.Obj
              [
                ("analyzer", Json.String "scenario-lint");
                ("scenarios", Json.Int (List.length targets));
                ("errors", Json.Int (Lint.count Lint.Error !all_diags));
                ("warnings", Json.Int (Lint.count Lint.Warning !all_diags));
                ("diagnostics", Json.List (List.map scenario_diag_json !all_diags));
              ]))
    else
      Printf.printf "linted %d scenario(s): %s\n" (List.length targets)
        (if !failed then "FAILED" else "ok");
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Validate scenario specs against the paper's resilience bounds, the square-partition \
          geometry preconditions and parameter sanity.")
    Term.(const run $ all_arg $ strict_arg $ json_arg $ names_arg)

(* --- lint source -------------------------------------------------------- *)

let source_diag_json (d : Source_lint.diagnostic) =
  Json.Obj
    [
      ("severity", Json.String (Lint.severity_label d.severity));
      ("file", Json.String d.file);
      ("line", Json.Int d.line);
      ("code", Json.String d.code);
      ("message", Json.String d.message);
    ]

let lint_source_cmd =
  let paths_arg =
    Arg.(
      value
      & pos_all string [ "lib"; "bin"; "bench"; "examples"; "test" ]
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to lint (default: lib bin bench examples test).")
  in
  let run json paths =
    let files = Source_lint.source_files paths in
    let diags = Source_lint.lint_paths paths in
    if json then
      print_string
        (Json.to_string_pretty
           (Json.Obj
              [
                ("analyzer", Json.String "source-lint");
                ("files", Json.Int (List.length files));
                ( "errors",
                  Json.Int
                    (List.length (List.filter (fun d -> d.Source_lint.severity = Lint.Error) diags))
                );
                ("diagnostics", Json.List (List.map source_diag_json diags));
              ]))
    else begin
      List.iter (fun d -> print_endline (Source_lint.diagnostic_to_string d)) diags;
      Printf.printf "linted %d file(s): %s\n" (List.length files)
        (if Source_lint.has_errors diags then "FAILED" else "ok")
    end;
    if Source_lint.has_errors diags then exit 1
  in
  Cmd.v
    (Cmd.info "source"
       ~doc:
         "AST-level lint (compiler-libs) flagging determinism and concurrency hazards: Hashtbl \
          iteration order, polymorphic compare/hash, ambient Random, wall-clock reads and \
          Domain/Atomic use outside the job pool.")
    Term.(const run $ json_arg $ paths_arg)

(* --- lint share --------------------------------------------------------- *)

let share_diag_json (d : Share_lint.diagnostic) =
  Json.Obj
    [
      ("severity", Json.String (Lint.severity_label d.severity));
      ("file", Json.String d.file);
      ("line", Json.Int d.line);
      ("code", Json.String d.code);
      ("message", Json.String d.message);
    ]

let lint_share_cmd =
  let paths_arg =
    Arg.(
      value
      & pos_all string [ "lib"; "bin"; "bench"; "examples"; "test" ]
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to analyze (default: lib bin bench examples test).")
  in
  let seed_violation_arg =
    Arg.(
      value & flag
      & info [ "seed-violation" ]
          ~doc:
            "Analyze a bundled two-module demo that shares a Hashtbl cache, a ref counter and a \
             captured Buffer across pool tasks, to demonstrate the diagnostics.")
  in
  let inventory_arg =
    Arg.(
      value & flag
      & info [ "inventory" ]
          ~doc:
            "Print the escaping-mutable-state inventory (top-level mutable bindings and mutable \
             record fields per module) instead of diagnostics.  Always exits 0.")
  in
  let run json seed_violation inventory paths =
    let files =
      if seed_violation then List.map fst Share_lint.seed_violation_files
      else Source_lint.source_files paths
    in
    if inventory then begin
      let inv =
        if seed_violation then Share_lint.inventory_strings Share_lint.seed_violation_files
        else Share_lint.inventory_paths paths
      in
      if json then
        print_string
          (Json.to_string_pretty
             (Json.Obj
                [
                  ("analyzer", Json.String "share-lint-inventory");
                  ("files", Json.Int (List.length files));
                  ( "globals",
                    Json.List
                      (List.map
                         (fun (g : Share_lint.global) ->
                           Json.Obj
                             [
                               ("module", Json.String g.gmodule);
                               ("file", Json.String g.gfile);
                               ("line", Json.Int g.gline);
                               ("name", Json.String g.gname);
                               ("kind", Json.String (Share_lint.kind_label g.gkind));
                             ])
                         inv.Share_lint.globals) );
                  ( "mutable_fields",
                    Json.List
                      (List.map
                         (fun (f : Share_lint.mutable_field) ->
                           Json.Obj
                             [
                               ("module", Json.String f.fmodule);
                               ("file", Json.String f.ffile);
                               ("line", Json.Int f.fline);
                               ("type", Json.String f.ftype);
                               ("field", Json.String f.ffield);
                             ])
                         inv.Share_lint.fields) );
                ]))
      else begin
        List.iter
          (fun (g : Share_lint.global) ->
            Printf.printf "%s:%d: global %s.%s (%s)\n" g.gfile g.gline g.gmodule g.gname
              (Share_lint.kind_label g.gkind))
          inv.Share_lint.globals;
        List.iter
          (fun (f : Share_lint.mutable_field) ->
            Printf.printf "%s:%d: mutable field %s.%s.%s\n" f.ffile f.fline f.fmodule f.ftype
              f.ffield)
          inv.Share_lint.fields;
        Printf.printf "inventoried %d file(s): %d mutable global(s), %d mutable field(s)\n"
          (List.length files)
          (List.length inv.Share_lint.globals)
          (List.length inv.Share_lint.fields)
      end
    end
    else begin
      let diags =
        if seed_violation then Share_lint.seed_violation () else Share_lint.lint_paths paths
      in
      if json then
        print_string
          (Json.to_string_pretty
             (Json.Obj
                [
                  ("analyzer", Json.String "share-lint");
                  ("files", Json.Int (List.length files));
                  ( "errors",
                    Json.Int
                      (List.length
                         (List.filter (fun d -> d.Share_lint.severity = Lint.Error) diags)) );
                  ("diagnostics", Json.List (List.map share_diag_json diags));
                ]))
      else begin
        List.iter (fun d -> print_endline (Share_lint.diagnostic_to_string d)) diags;
        Printf.printf "analyzed %d file(s): %s\n" (List.length files)
          (if Share_lint.has_errors diags then "FAILED" else "ok")
      end;
      if Share_lint.has_errors diags then exit 1
    end
  in
  Cmd.v
    (Cmd.info "share"
       ~doc:
         "Domain-safety analysis: inventory escaping mutable state per module, then flag tasks \
          handed to Pool.map_array/Pool.map_list/Domain.spawn that reach top-level mutable \
          globals or mutate captured state without Atomic, plus any top-level mutable binding in \
          lib/core or lib/sim.  Pairs with the dynamic Pool.map_array ~sanitize check.")
    Term.(const run $ json_arg $ seed_violation_arg $ inventory_arg $ paths_arg)

(* --- lint alloc ---------------------------------------------------------- *)

let alloc_diag_json (d : Alloc_lint.diagnostic) =
  Json.Obj
    [
      ("severity", Json.String (Lint.severity_label d.severity));
      ("file", Json.String d.file);
      ("line", Json.Int d.line);
      ("code", Json.String d.code);
      ("message", Json.String d.message);
    ]

let alloc_allow_json (a : Alloc_lint.allow) =
  Json.Obj
    [
      ("file", Json.String a.al_file);
      ("class", Json.String a.al_class);
      ("fn", (match a.al_fn with Some f -> Json.String f | None -> Json.Null));
      ("line", Json.Int a.al_line);
      ("why", Json.String a.al_why);
    ]

let alloc_report ~json ~files_count ~baseline diags =
  let errors = List.length (List.filter (fun d -> d.Alloc_lint.severity = Lint.Error) diags) in
  let warnings = List.length (List.filter (fun d -> d.Alloc_lint.severity = Lint.Warning) diags) in
  if json then
    print_string
      (Json.to_string_pretty
         (Json.Obj
            [
              ("analyzer", Json.String "alloc-lint");
              ("files", Json.Int files_count);
              ("baseline", Json.String baseline);
              ("errors", Json.Int errors);
              ("warnings", Json.Int warnings);
              ("allowlist", Json.List (List.map alloc_allow_json Alloc_lint.allowlist));
              ("diagnostics", Json.List (List.map alloc_diag_json diags));
            ]))
  else begin
    List.iter (fun d -> print_endline (Alloc_lint.diagnostic_to_string d)) diags;
    Printf.printf "analyzed %d file(s) against %s: %s\n" files_count baseline
      (if Alloc_lint.has_errors diags then "FAILED" else "ok")
  end;
  if Alloc_lint.has_errors diags then exit 1

let lint_alloc_cmd =
  let paths_arg =
    Arg.(
      value
      & pos_all string [ "lib"; "bin"; "bench"; "examples"; "test" ]
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to analyze (default: lib bin bench examples test).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt string Alloc_lint.default_golden_name
      & info [ "baseline" ] ~docv:"FILE" ~doc:"Golden allocation inventory to diff against.")
  in
  let write_arg =
    Arg.(
      value & flag
      & info [ "write-baseline" ]
          ~doc:
            "Refresh: write the current inventory to the baseline file and exit 0.  Review the \
             diff before committing — every delta must be explained by an intentional hot-path \
             change.")
  in
  let inventory_arg =
    Arg.(
      value & flag
      & info [ "inventory" ]
          ~doc:"Print the current inventory as JSON instead of diffing.  Always exits 0.")
  in
  let sites_arg =
    Arg.(
      value & flag
      & info [ "sites" ]
          ~doc:
            "Print every classified allocation site (file:line class root function) instead of \
             diffing — the per-site audit trail behind an inventory count.  Always exits 0.")
  in
  let seed_violation_arg =
    Arg.(
      value & flag
      & info [ "seed-violation" ]
          ~doc:
            "Analyze a bundled fake hot loop that boxes floats, closes over a variable and builds \
             throwaway lists per round, diffed against an empty golden inventory, to demonstrate \
             the diagnostics.")
  in
  let run json baseline write inventory sites seed_violation paths =
    if seed_violation then
      alloc_report ~json
        ~files_count:(List.length Alloc_lint.seed_violation_files)
        ~baseline:"(empty golden)" (Alloc_lint.seed_violation ())
    else if sites then
      List.iter
        (fun (s : Alloc_lint.site) ->
          Printf.printf "%s:%d: %s %s %s\n" s.site_file s.site_line
            (Alloc_lint.class_label s.site_class)
            s.site_root s.site_fn)
        (Alloc_lint.sites_paths paths)
    else if write || inventory then begin
      let inv = Alloc_lint.inventory_paths paths in
      let text = Json.to_string_pretty (Alloc_lint.json_of_inventory inv) in
      if write then begin
        let oc = open_out baseline in
        output_string oc text;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s (%d hot root(s))\n" baseline (List.length inv)
      end
      else print_endline text
    end
    else
      alloc_report ~json
        ~files_count:(List.length (Source_lint.source_files paths))
        ~baseline (Alloc_lint.lint_paths ~golden_path:baseline paths)
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:
         "Hot-path allocation inventory: walk the approximate call graph from the annotated hot \
          roots (engine round phases, shard phases, channel resolution, voting kernels), classify \
          every syntactic allocation site and diff the per-root per-class counts against the \
          committed golden inventory.  A class a hot root did not previously allocate is an \
          error; count growth is a warning.  Pairs with the dynamic words/active-round gate in \
          `bench compare`.")
    Term.(
      const run $ json_arg $ baseline_arg $ write_arg $ inventory_arg $ sites_arg
      $ seed_violation_arg $ paths_arg)

let lint_group =
  Cmd.group
    (Cmd.info "lint" ~doc:"Static validation of configurations and sources.")
    [ lint_scenario_cmd; lint_source_cmd; lint_share_cmd; lint_alloc_cmd ]

(* --- check twobit ------------------------------------------------------ *)

let report_outcome label = function
  | Model_check.Pass { configurations } ->
    Printf.printf "%s: ok — %d adversary configurations, all invariants hold\n" label
      configurations;
    true
  | Model_check.Fail counterexample ->
    Printf.printf "%s: VIOLATION\n%s\n" label (Model_check.counterexample_to_string counterexample);
    false

let check_twobit_cmd =
  let budget_arg =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"N" ~doc:"Adversary broadcast budget (exhaustive for this bound).")
  in
  let receivers_arg =
    Arg.(value & opt int 2 & info [ "receivers" ] ~docv:"K" ~doc:"Honest receivers in the frame.")
  in
  let msg_len_arg =
    Arg.(
      value & opt int 2
      & info [ "msg-len" ] ~docv:"L" ~doc:"Message length for the 1Hop stream check.")
  in
  let seed_violation_arg =
    Arg.(
      value & flag
      & info [ "seed-violation" ]
          ~doc:
            "Use a deliberately broken receiver (deaf to the veto round) to demonstrate a \
             counterexample trace.")
  in
  let run budget receivers msg_len seed_violation =
    let impl = if seed_violation then Model_check.faulty_skip_veto else Model_check.reference in
    match
      let frame =
        report_outcome
          (Printf.sprintf "2Bit frame  (budget %d, %d receivers)" budget receivers)
          (Model_check.check_two_bit ~impl ~receivers ~budget ())
      in
      let stream =
        report_outcome
          (Printf.sprintf "1Hop stream (budget %d, %d-bit messages)" budget msg_len)
          (Model_check.check_one_hop ~impl ~msg_len ~budget ())
      in
      frame && stream
    with
    | true -> ()
    | false -> exit 1
    | exception Invalid_argument msg ->
      Printf.eprintf "invalid arguments: %s\n" msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "twobit"
       ~doc:
         "Bounded model checking: enumerate every Byzantine transmit/silence pattern within the \
          budget over the 2Bit frame and the 1Hop stream, asserting the paper's no-forgery and \
          agreement invariants.")
    Term.(const run $ budget_arg $ receivers_arg $ msg_len_arg $ seed_violation_arg)

(* --- check vote --------------------------------------------------------- *)

let report_vote label = function
  | Vote_check.Pass { configurations; states } ->
    Printf.printf "%s: ok — %d Byzantine configurations, %d checked states, all invariants hold\n"
      label configurations states;
    true
  | Vote_check.Fail ce ->
    Printf.printf "%s: VIOLATION\n%s\n" label (Vote_check.counterexample_to_string ce);
    false

let check_vote_cmd =
  let radius_arg =
    Arg.(
      value & opt int 0
      & info [ "radius" ] ~docv:"R"
          ~doc:"Neighbourhood radius 1-3 to check (default: all three).")
  in
  let seed_violation_arg =
    Arg.(
      value & flag
      & info [ "seed-violation" ]
          ~doc:
            "Plant a quorum off-by-one (MultiPathRB commits at t instead of t+1 pieces of \
             evidence, NeighborWatchRB commits one vote early) to demonstrate a counterexample \
             trace.")
  in
  let run radius seed_violation =
    let radii =
      match radius with
      | 0 -> [ 1; 2; 3 ]
      | r when r >= 1 && r <= 3 -> [ r ]
      | r ->
        Printf.eprintf "radius %d out of range (the checker enumerates radii 1-3)\n" r;
        exit 2
    in
    let mp_impl = if seed_violation then Vote_check.mp_seeded else Vote_check.mp_reference in
    let nw_impl = if seed_violation then Vote_check.nw_seeded else Vote_check.nw_reference in
    let ok = ref true in
    List.iter
      (fun r ->
        let tally label outcome = if not (report_vote label outcome) then ok := false in
        tally
          (Printf.sprintf "MultiPathRB quorum    (R=%d, t=%d)" r
             (Bounds.multi_path_tolerance ~radius:r))
          (Vote_check.check_multi_path ~impl:mp_impl ~radius:r ());
        tally
          (Printf.sprintf "NeighborWatchRB vote  (R=%d, 1-voting)" r)
          (Vote_check.check_neighbor_watch ~impl:nw_impl ~votes:1 ~radius:r ());
        tally
          (Printf.sprintf "NeighborWatchRB vote  (R=%d, 2-voting)" r)
          (Vote_check.check_neighbor_watch ~impl:nw_impl ~votes:2 ~radius:r ()))
      radii;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "vote"
       ~doc:
         "Exhaustive checking of the multi-hop voting layer: enumerate Byzantine evidence \
          injection/withholding/replay patterns against MultiPathRB's t+1 common-neighbourhood \
          quorum (incremental index, full scan and an independent reference implementation must \
          agree) and liar stream patterns against NeighborWatchRB's frontier vote (1- and \
          2-voting).")
    Term.(const run $ radius_arg $ seed_violation_arg)

(* --- check determinism ------------------------------------------------- *)

let check_determinism_cmd =
  let max_rounds_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-rounds" ] ~docv:"N" ~doc:"Cap traced rounds per run (keeps the check cheap).")
  in
  let modes_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "modes" ] ~docv:"M1,M2,..."
          ~doc:
            "Comma-separated engine modes to cross-check (dense, sparse, sharded:K); one traced \
             run per mode, every pair diffed.  Default: run each scenario twice in the default \
             mode.")
  in
  let parse_modes spec =
    let labels =
      List.filter (fun l -> l <> "") (List.map String.trim (String.split_on_char ',' spec))
    in
    let modes =
      List.map
        (fun label ->
          match Determinism.mode_of_label label with
          | Some mode -> mode
          | None ->
            Printf.eprintf "unknown engine mode %s (expected dense, sparse or sharded:K)\n" label;
            exit 2)
        labels
    in
    if modes = [] then begin
      Printf.eprintf "--modes needs at least one mode (dense, sparse or sharded:K)\n";
      exit 2
    end;
    modes
  in
  let run all max_rounds modes names =
    let targets = resolve_targets all names in
    let modes = Option.map parse_modes modes in
    let failed = ref false in
    List.iter
      (fun (name, spec) ->
        match modes with
        | None -> (
          match Determinism.check_spec ~max_rounds spec with
          | Determinism.Deterministic { rounds } ->
            Printf.printf "%s: deterministic over %d rounds\n" name rounds
          | Determinism.Diverged _ as outcome ->
            Printf.printf "%s: %s\n" name (Determinism.outcome_to_string outcome);
            failed := true)
        | Some modes ->
          List.iter
            (fun ((la, lb), outcome) ->
              match outcome with
              | Determinism.Deterministic { rounds } ->
                Printf.printf "%s [%s vs %s]: deterministic over %d rounds\n" name la lb rounds
              | Determinism.Diverged _ ->
                Printf.printf "%s [%s vs %s]: %s\n" name la lb
                  (Determinism.outcome_to_string outcome);
                failed := true)
            (Determinism.check_modes ~max_rounds modes spec))
      targets;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "determinism"
       ~doc:
         "Run each scenario twice with the same seed and diff the full round-by-round channel \
          trace; any divergence is hidden nondeterminism.  With --modes, run once per engine \
          mode instead and diff every pair — divergence there is a bug in one of the two named \
          loop implementations.")
    Term.(const run $ all_arg $ max_rounds_arg $ modes_arg $ names_arg)

let check_group =
  Cmd.group
    (Cmd.info "check" ~doc:"Dynamic verifiers: model checking and determinism.")
    [ check_twobit_cmd; check_vote_cmd; check_determinism_cmd ]

(* --- all ----------------------------------------------------------------- *)

(* One umbrella run of every analyzer: the three source analyzers (source,
   share, alloc) share a single read+parse of the tree instead of parsing
   it three times, and each analyzer's wall time is reported so CI logs
   show where `dune build @lint` spends its budget. *)

type analyzer_result = {
  ar_name : string;
  ar_wall : float;
  ar_failed : bool;
  ar_errors : int;
  ar_warnings : int;
  ar_diags : Json.t list;  (* machine form, analyzer-specific shape *)
  ar_lines : string list;  (* human form *)
}

let analyzer_json r =
  Json.Obj
    [
      ("name", Json.String r.ar_name);
      ("wall_seconds", Json.Float r.ar_wall);
      ("failed", Json.Bool r.ar_failed);
      ("errors", Json.Int r.ar_errors);
      ("warnings", Json.Int r.ar_warnings);
      ("diagnostics", Json.List r.ar_diags);
    ]

(* A pass/fail check entry: its report line, whether it failed, and the
   JSON diagnostic to emit when it did. *)
let check_entries entries =
  let fails = List.filter (fun (_, failed, _) -> failed) entries in
  ( fails <> [],
    List.length fails,
    0,
    List.filter_map (fun (_, _, json) -> json) entries,
    List.map (fun (line, _, _) -> line) entries )

let model_entry label outcome =
  match outcome with
  | Model_check.Pass { configurations } ->
    (Printf.sprintf "%s: ok — %d adversary configurations" label configurations, false, None)
  | Model_check.Fail ce ->
    let message = Model_check.counterexample_to_string ce in
    ( Printf.sprintf "%s: VIOLATION\n%s" label message,
      true,
      Some (Json.Obj [ ("check", Json.String label); ("message", Json.String message) ]) )

let vote_entry label outcome =
  match outcome with
  | Vote_check.Pass { configurations; states } ->
    ( Printf.sprintf "%s: ok — %d configurations, %d states" label configurations states,
      false,
      None )
  | Vote_check.Fail ce ->
    let message = Vote_check.counterexample_to_string ce in
    ( Printf.sprintf "%s: VIOLATION\n%s" label message,
      true,
      Some (Json.Obj [ ("check", Json.String label); ("message", Json.String message) ]) )

let all_cmd =
  let paths_arg =
    Arg.(
      value
      & pos_all string [ "lib"; "bin"; "bench"; "examples"; "test" ]
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories for the source analyzers (default: lib bin bench examples \
             test).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt string Alloc_lint.default_golden_name
      & info [ "alloc-baseline" ] ~docv:"FILE"
          ~doc:"Golden allocation inventory for the alloc analyzer.")
  in
  let run json baseline paths =
    let files = Source_lint.source_files paths in
    let contents = List.map (fun path -> (path, Callgraph.read_file path)) files in
    let parsed, parse_errors =
      List.fold_left
        (fun (parsed, errors) (path, text) ->
          match Callgraph.parse_string ~path text with
          | Ok structure -> ((path, structure) :: parsed, errors)
          | Error line -> (parsed, (path, line) :: errors))
        ([], []) contents
    in
    let parsed = List.rev parsed and parse_errors = List.rev parse_errors in
    let results = ref [] in
    let timed name f =
      let t0 = Unix.gettimeofday () in
      let failed, errors, warnings, diags, lines = f () in
      results :=
        {
          ar_name = name;
          ar_wall = Unix.gettimeofday () -. t0;
          ar_failed = failed;
          ar_errors = errors;
          ar_warnings = warnings;
          ar_diags = diags;
          ar_lines = lines;
        }
        :: !results
    in
    timed "source" (fun () ->
        let per_file =
          List.map (fun (path, structure) -> Source_lint.lint_structure_used ~path structure) parsed
        in
        let diags =
          List.map
            (fun (path, line) ->
              {
                Source_lint.severity = Lint.Error;
                file = path;
                line;
                code = "parse-error";
                message = "file does not parse as an OCaml implementation";
              })
            parse_errors
          @ List.concat_map fst per_file
          @ Source_lint.unused_diagnostics ~used:(List.concat_map snd per_file) ~files
        in
        ( Source_lint.has_errors diags,
          List.length (List.filter (fun d -> d.Source_lint.severity = Lint.Error) diags),
          List.length (List.filter (fun d -> d.Source_lint.severity = Lint.Warning) diags),
          List.map source_diag_json diags,
          List.map Source_lint.diagnostic_to_string diags ));
    timed "share" (fun () ->
        let diags = Share_lint.lint_structures parsed in
        ( Share_lint.has_errors diags,
          List.length (List.filter (fun d -> d.Share_lint.severity = Lint.Error) diags),
          List.length (List.filter (fun d -> d.Share_lint.severity = Lint.Warning) diags),
          List.map share_diag_json diags,
          List.map Share_lint.diagnostic_to_string diags ));
    timed "alloc" (fun () ->
        let diags =
          Alloc_lint.lint_structures ~golden_name:baseline
            ~golden:(Alloc_lint.load_golden baseline) parsed
        in
        ( Alloc_lint.has_errors diags,
          List.length (List.filter (fun d -> d.Alloc_lint.severity = Lint.Error) diags),
          List.length (List.filter (fun d -> d.Alloc_lint.severity = Lint.Warning) diags),
          List.map alloc_diag_json diags,
          List.map Alloc_lint.diagnostic_to_string diags ));
    timed "scenario" (fun () ->
        let diags =
          List.concat_map (fun (name, spec) -> Lint.lint ~name spec) Scenario.presets
        in
        ( Lint.has_errors diags,
          Lint.count Lint.Error diags,
          Lint.count Lint.Warning diags,
          List.map scenario_diag_json diags,
          List.map Lint.diagnostic_to_string diags ));
    (* Quick model-check budget: exhaustive for budget 3, the same cell the
       standalone @lint rule always ran. *)
    timed "twobit" (fun () ->
        check_entries
          [
            model_entry "2Bit frame (budget 3, 2 receivers)"
              (Model_check.check_two_bit ~impl:Model_check.reference ~receivers:2 ~budget:3 ());
            model_entry "1Hop stream (budget 3, 2-bit messages)"
              (Model_check.check_one_hop ~impl:Model_check.reference ~msg_len:2 ~budget:3 ());
          ]);
    timed "vote" (fun () ->
        check_entries
          (List.concat_map
             (fun radius ->
               [
                 vote_entry
                   (Printf.sprintf "MultiPathRB quorum (R=%d, t=%d)" radius
                      (Bounds.multi_path_tolerance ~radius))
                   (Vote_check.check_multi_path ~impl:Vote_check.mp_reference ~radius ());
                 vote_entry
                   (Printf.sprintf "NeighborWatchRB vote (R=%d, 1-voting)" radius)
                   (Vote_check.check_neighbor_watch ~impl:Vote_check.nw_reference ~votes:1 ~radius
                      ());
                 vote_entry
                   (Printf.sprintf "NeighborWatchRB vote (R=%d, 2-voting)" radius)
                   (Vote_check.check_neighbor_watch ~impl:Vote_check.nw_reference ~votes:2 ~radius
                      ());
               ])
             [ 1; 2; 3 ]));
    timed "determinism" (fun () ->
        check_entries
          (List.map
             (fun (name, spec) ->
               match Determinism.check_spec ~max_rounds:20_000 spec with
               | Determinism.Deterministic { rounds } ->
                 (Printf.sprintf "%s: deterministic over %d rounds" name rounds, false, None)
               | Determinism.Diverged _ as outcome ->
                 let message = Determinism.outcome_to_string outcome in
                 ( Printf.sprintf "%s: %s" name message,
                   true,
                   Some
                     (Json.Obj
                        [ ("check", Json.String name); ("message", Json.String message) ]) ))
             Scenario.presets));
    let results = List.rev !results in
    let failed = List.exists (fun r -> r.ar_failed) results in
    if json then
      print_string
        (Json.to_string_pretty
           (Json.Obj
              [
                ("analyzer", Json.String "all");
                ("files", Json.Int (List.length files));
                ("analyzers", Json.List (List.map analyzer_json results));
                ("failed", Json.Bool failed);
              ]))
    else begin
      List.iter
        (fun r ->
          Printf.printf "== %-12s %6.2fs  %s" r.ar_name r.ar_wall
            (if r.ar_failed then "FAILED" else "ok");
          if r.ar_errors > 0 || r.ar_warnings > 0 then
            Printf.printf " (%d error(s), %d warning(s))" r.ar_errors r.ar_warnings;
          print_newline ();
          List.iter (fun line -> Printf.printf "   %s\n" line) r.ar_lines)
        results;
      Printf.printf "all: %d analyzer(s) over %d file(s): %s\n" (List.length results)
        (List.length files)
        (if failed then "FAILED" else "ok")
    end;
    if failed then exit 1
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every analyzer — source, share and alloc lint behind one shared parse of the tree, \
          scenario lint over the bundled presets, the quick model-check budget, the voting \
          checker and the determinism diff — reporting per-analyzer wall times and failing if \
          any analyzer fails.")
    Term.(const run $ json_arg $ baseline_arg $ paths_arg)

let () =
  let doc = "protocol-invariant verifier and scenario linter (static checking)" in
  let info = Cmd.info "securebit_lint" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ lint_group; check_group; all_cmd ]))
