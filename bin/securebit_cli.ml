(* securebit — command-line front end.

   `securebit run`   simulates one authenticated broadcast and prints the
                     metrics the paper reports;
   `securebit fig`   regenerates a table/figure of the evaluation (E1–E8,
                     A1–A5, bounds, mobile, or `all`);
   `securebit bench` runs the registered experiments and writes the JSON
                     results file;
   `securebit topo`  prints topology statistics of a deployment. *)

open Cmdliner

(* --- shared options ---------------------------------------------------- *)

let map_arg =
  Arg.(value & opt float 20.0 & info [ "map" ] ~docv:"UNITS" ~doc:"Square map side length.")

let nodes_arg =
  Arg.(value & opt int 600 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of devices.")

let radius_arg =
  Arg.(value & opt float 4.0 & info [ "r"; "radius" ] ~docv:"R" ~doc:"Broadcast range.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let message_arg =
  Arg.(
    value
    & opt string "1011"
    & info [ "m"; "message" ] ~docv:"BITS" ~doc:"Broadcast message as a bit pattern.")

let protocol_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "nw" ] -> Ok (Scenario.Neighbor_watch { votes = 1 })
    | [ "nw2" ] -> Ok (Scenario.Neighbor_watch { votes = 2 })
    | [ "mp"; t ] -> (
      match int_of_string_opt t with
      | Some tolerance when tolerance >= 0 -> Ok (Scenario.Multi_path { tolerance })
      | Some _ | None -> Error (`Msg "mp:<t> needs a non-negative integer"))
    | [ "epidemic" ] -> Ok Scenario.Epidemic
    | [ "cpa"; t ] -> (
      match int_of_string_opt t with
      | Some tolerance when tolerance >= 0 -> Ok (Scenario.Certified { tolerance })
      | Some _ | None -> Error (`Msg "cpa:<t> needs a non-negative integer"))
    | _ -> Error (`Msg "expected nw | nw2 | mp:<t> | epidemic | cpa:<t>")
  in
  let print fmt = function
    | Scenario.Neighbor_watch { votes = 1 } -> Format.pp_print_string fmt "nw"
    | Scenario.Neighbor_watch { votes = _ } -> Format.pp_print_string fmt "nw2"
    | Scenario.Multi_path { tolerance } -> Format.fprintf fmt "mp:%d" tolerance
    | Scenario.Epidemic -> Format.pp_print_string fmt "epidemic"
    | Scenario.Certified { tolerance } -> Format.fprintf fmt "cpa:%d" tolerance
  in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv (Scenario.Neighbor_watch { votes = 1 })
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"Protocol: nw (NeighborWatchRB), nw2 (2-voting), mp:<t> (MultiPathRB), epidemic.")

let faults_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "none" ] -> Ok Scenario.No_faults
    | [ "crash"; f ] -> (
      match float_of_string_opt f with
      | Some fraction -> Ok (Scenario.Crash fraction)
      | None -> Error (`Msg "crash:<fraction>"))
    | [ "lie"; f ] -> (
      match float_of_string_opt f with
      | Some fraction -> Ok (Scenario.Lying fraction)
      | None -> Error (`Msg "lie:<fraction>"))
    | [ "jam"; f; b; p ] -> (
      match (float_of_string_opt f, int_of_string_opt b, float_of_string_opt p) with
      | Some fraction, Some budget, Some probability ->
        Ok (Scenario.Jamming { fraction; budget; probability })
      | _ -> Error (`Msg "jam:<fraction>:<budget>:<probability>"))
    | [ "sjam"; f; b; p ] -> (
      match (float_of_string_opt f, int_of_string_opt b, float_of_string_opt p) with
      | Some fraction, Some budget, Some probability ->
        Ok (Scenario.Selective_jam { fraction; budget; probability })
      | _ -> Error (`Msg "sjam:<fraction>:<budget>:<probability>"))
    | _ -> Error (`Msg "expected none | crash:<f> | lie:<f> | jam:<f>:<b>:<p> | sjam:<f>:<b>:<p>")
  in
  let print fmt = function
    | Scenario.No_faults -> Format.pp_print_string fmt "none"
    | Scenario.Crash f -> Format.fprintf fmt "crash:%g" f
    | Scenario.Lying f -> Format.fprintf fmt "lie:%g" f
    | Scenario.Jamming { fraction; budget; probability } ->
      Format.fprintf fmt "jam:%g:%d:%g" fraction budget probability
    | Scenario.Selective_jam { fraction; budget; probability } ->
      Format.fprintf fmt "sjam:%g:%d:%g" fraction budget probability
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt faults_conv Scenario.No_faults
    & info [ "f"; "faults" ] ~docv:"FAULTS"
        ~doc:"Fault model: none, crash:<f>, lie:<f>, jam:<f>:<budget>:<p>.")

let radio_conv =
  Arg.enum [ ("friis", Scenario.Friis); ("disk", Scenario.Disk_l2); ("grid", Scenario.Disk_linf) ]

let radio_arg =
  Arg.(
    value
    & opt radio_conv Scenario.Friis
    & info [ "radio" ] ~docv:"MODEL" ~doc:"Radio model: friis, disk (L2) or grid (L-infinity).")

let clusters_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "clusters" ] ~docv:"K" ~doc:"Deploy in K normal clusters instead of uniformly.")

let relay_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "heard-cap" ] ~docv:"K" ~doc:"Cap MultiPathRB HEARD relays per bit (default: none).")

let build_spec map nodes radius seed message protocol faults radio clusters relay_cap =
  {
    Scenario.default with
    map_w = map;
    map_h = map;
    deployment =
      (match clusters with
      | None -> Scenario.Uniform nodes
      | Some clusters -> Scenario.Clustered { n = nodes; clusters; stddev = 2.0 });
    radio;
    radius;
    message = Bitvec.of_string message;
    protocol;
    faults;
    heard_relay_limit = relay_cap;
    seed;
  }

let spec_term =
  Term.(
    const build_spec $ map_arg $ nodes_arg $ radius_arg $ seed_arg $ message_arg $ protocol_arg
    $ faults_arg $ radio_arg $ clusters_arg $ relay_cap_arg)

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let run spec =
    let result = Scenario.run spec in
    let s = Scenario.summarize result in
    let table = Table.create ~title:"broadcast summary" ~columns:[ "metric"; "value" ] in
    Table.add_row table [ "honest nodes"; Table.cell_i s.Scenario.honest_nodes ];
    Table.add_row table [ "delivered"; Table.cell_pct s.Scenario.completion_rate ];
    Table.add_row table [ "correct of delivered"; Table.cell_pct s.Scenario.correct_of_delivered ];
    Table.add_row table [ "correct overall"; Table.cell_pct s.Scenario.correct_rate ];
    Table.add_row table [ "rounds"; Table.cell_i s.Scenario.rounds ];
    Table.add_row table [ "total broadcasts"; Table.cell_i s.Scenario.total_broadcasts ];
    Table.add_row table [ "mean completion round"; Table.cell_f ~decimals:0 s.Scenario.mean_completion_round ];
    Table.add_row table [ "hit round cap"; string_of_bool s.Scenario.hit_cap ];
    Table.print table
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one authenticated broadcast and print its metrics.")
    Term.(const run $ spec_term)

(* --- fig ---------------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Run trial cells on N worker domains.")

let scale_conv = Arg.enum [ ("quick", Experiment.Quick); ("paper", Experiment.Paper) ]

let scale_arg =
  Arg.(
    value
    & opt (some scale_conv) None
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Experiment scale: quick or paper. Defaults to quick (or to paper when \
           the deprecated FULL=1 environment variable is set).")

let fig_cmd =
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Use the paper-scale parameters (slow); same as --scale paper.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit tables as CSV instead of aligned text.")
  in
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id: e1..e8, a1..a5, bounds, mobile or all.")
  in
  let run full scale csv jobs id =
    let scale =
      match scale with
      | Some scale -> scale
      | None -> if full then Experiment.Paper else Figures.scale_of_env ()
    in
    let show job =
      let outcome = Runner.run_job ~jobs ~scale job in
      if csv then print_string (Table.to_csv outcome.Runner.table)
      else print_string (Runner.render outcome)
    in
    let selected =
      match String.lowercase_ascii id with
      | "all" -> Some Registry.all
      | "e8" ->
        (* `e8` expands to the three Theorem 5 sweeps. *)
        Some
          (List.filter
             (fun job -> List.mem job.Experiment.id [ "e8a"; "e8b"; "e8c" ])
             Registry.all)
      | other -> Option.map (fun job -> [ job ]) (Registry.find other)
    in
    match selected with
    | Some jobs_list -> List.iter show jobs_list
    | None ->
      Printf.eprintf "unknown experiment id %s (known: %s)\n" id
        (String.concat " " Registry.ids);
      exit 1
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate a table/figure of the paper's evaluation.")
    Term.(const run $ full_arg $ scale_arg $ csv_arg $ jobs_arg $ id_arg)

(* --- bench --------------------------------------------------------------- *)

let bench_cmd =
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"IDS"
          ~doc:"Run only these experiment ids (comma-separated, repeatable).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) (Some "BENCH_results.json")
      & info [ "json" ] ~docv:"PATH" ~doc:"Where to write the JSON results file.")
  in
  let no_json_arg =
    Arg.(value & flag & info [ "no-json" ] ~doc:"Skip the JSON results file.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASE.json"
          ~doc:
            "After the run, diff per-experiment wall times against this baseline results \
             file and exit non-zero if any experiment regressed by more than 20%.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Record per-experiment Gc allocation deltas and rounds-per-second into the \
             results JSON (baseline comparisons ignore them).")
  in
  let sanitize_arg =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Re-run each experiment's trials sequentially after the parallel pass and fail if \
             any result diverges — the dynamic check of the --jobs N determinism guarantee.  \
             No-op at --jobs 1.")
  in
  let run scale jobs only json_path no_json compare_base profile sanitize =
    let scale = match scale with Some scale -> scale | None -> Figures.scale_of_env () in
    let only = List.concat_map (String.split_on_char ',') only in
    let json_path = if no_json then None else json_path in
    match Bench.run { Bench.scale; jobs; only; json_path; profile; sanitize } with
    | Ok outcomes ->
      Option.iter
        (fun base ->
          match Bench.compare_outcomes ~base outcomes with
          | Error message ->
            prerr_endline message;
            exit 2
          | Ok (report, any_regression) ->
            print_string report;
            if any_regression then exit 1)
        compare_base
    | Error message ->
      prerr_endline message;
      exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the registered experiments (optionally domain-parallel) and write \
          the JSON results file.")
    Term.(
      const run $ scale_arg $ jobs_arg $ only_arg $ json_arg $ no_json_arg $ compare_arg
      $ profile_arg $ sanitize_arg)

(* --- scale -------------------------------------------------------------- *)

let scale_cmd =
  let ints_conv = Arg.(list int) in
  let floats_conv = Arg.(list float) in
  let strings_conv = Arg.(list string) in
  let label_arg =
    Arg.(
      value
      & opt string Campaign.default.Campaign.label
      & info [ "label" ] ~docv:"NAME" ~doc:"Campaign label (archive subdirectory).")
  in
  let nodes_list_arg =
    Arg.(
      value
      & opt ints_conv Campaign.default.Campaign.node_counts
      & info [ "nodes" ] ~docv:"N,N,..." ~doc:"Node counts to sweep.")
  in
  let density_arg =
    Arg.(
      value
      & opt floats_conv Campaign.default.Campaign.densities
      & info [ "density" ] ~docv:"D,D,..." ~doc:"Target average degrees to sweep.")
  in
  let adversaries_arg =
    Arg.(
      value
      & opt strings_conv Campaign.default.Campaign.adversaries
      & info [ "adversaries" ] ~docv:"A,A,..."
          ~doc:
            (Printf.sprintf "Adversary mixes to sweep (known: %s)."
               (String.concat ", " Campaign.known_adversaries)))
  in
  let classes_conv =
    Arg.(list (enum [ ("uniform", Campaign.Uniform_radio); ("expander", Campaign.Expander_synthetic) ]))
  in
  let classes_arg =
    Arg.(
      value
      & opt classes_conv Campaign.default.Campaign.classes
      & info [ "classes" ] ~docv:"C,C,..." ~doc:"Graph classes: uniform, expander.")
  in
  let tiles_arg =
    Arg.(
      value
      & opt int Campaign.default.Campaign.tiles
      & info [ "tiles"; "domains" ] ~docv:"K"
          ~doc:"Engine tiles (domains); 1 runs the serial sparse loop.")
  in
  let warm_arg =
    Arg.(
      value
      & opt int Campaign.default.Campaign.warm
      & info [ "warm" ] ~docv:"K" ~doc:"Warm runs per cell on the cold run's topology.")
  in
  let cap_arg =
    Arg.(
      value
      & opt int Campaign.default.Campaign.cap
      & info [ "cap" ] ~docv:"ROUNDS" ~doc:"Engine round cap per run.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Archive one JSON per run plus a manifest under DIR/label/.")
  in
  let mem_ceiling_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "mem-ceiling" ] ~docv:"MWORDS"
          ~doc:"Fail if any run's peak major heap exceeds this many million words.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-run every campaign run on the serial sparse engine and fail unless the \
             round-by-round traces are byte-identical.")
  in
  let dry_run_arg =
    Arg.(value & flag & info [ "dry-run" ] ~doc:"Print the planned runs and execute nothing.")
  in
  let run label nodes density adversaries classes protocol tiles seed cap warm message out
      mem_ceiling check dry_run =
    let config =
      {
        Campaign.label;
        node_counts = nodes;
        densities = density;
        adversaries;
        classes;
        protocol;
        tiles;
        seed;
        cap;
        warm;
        message;
        out_dir = out;
        mem_ceiling_words = Option.map (fun mw -> int_of_float (mw *. 1e6)) mem_ceiling;
        check;
        dry_run;
      }
    in
    match Campaign.run config with
    | Ok (_, failed) -> if failed then exit 1
    | Error message ->
      prerr_endline message;
      exit 2
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run a scale campaign: sweep node count x density x adversary mix over uniform-radio \
          and expander graphs on the sharded engine, with cold/warm runs and archived results.")
    Term.(
      const run $ label_arg $ nodes_list_arg $ density_arg $ adversaries_arg $ classes_arg
      $ protocol_arg $ tiles_arg $ seed_arg $ cap_arg $ warm_arg $ message_arg $ out_arg
      $ mem_ceiling_arg $ check_arg $ dry_run_arg)

(* --- topo --------------------------------------------------------------- *)

let topo_cmd =
  let run spec =
    (* Statistics, not delivery: a stranded node is exactly the kind of
       thing this command exists to report, so never fail fast on it. *)
    let result = Scenario.run { spec with Scenario.cap = 0; allow_unreachable = true } in
    let topology = result.Scenario.topology in
    let source = result.Scenario.source in
    let table = Table.create ~title:"topology" ~columns:[ "metric"; "value" ] in
    Table.add_row table [ "nodes"; Table.cell_i (Topology.size topology) ];
    Table.add_row table [ "density"; Table.cell_f (Deployment.density (Topology.deployment topology)) ];
    Table.add_row table [ "average degree"; Table.cell_f (Topology.avg_degree topology) ];
    Table.add_row table [ "reachable from source"; Table.cell_i (Topology.reachable_from topology source) ];
    Table.add_row table [ "hop diameter (from source)"; Table.cell_i (Topology.hop_diameter_from topology source) ];
    Table.print table
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Print topology statistics for a deployment.")
    Term.(const run $ spec_term)

let () =
  let doc = "authenticated broadcast in radio networks (SPAA 2010 reproduction)" in
  let info = Cmd.info "securebit" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; fig_cmd; bench_cmd; scale_cmd; topo_cmd ]))
