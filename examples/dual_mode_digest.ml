(* Dual-mode broadcast demo (Section 1, "Interpretation").

   A 32-bit payload is flooded by the fast, insecure epidemic protocol; an
   8-bit digest of it travels over NeighborWatchRB.  Devices accept the
   flooded payload only when the authenticated digest matches, so liars
   can no longer make anyone accept a forged payload — at a fraction of
   the cost of authenticating every payload bit.

   Run with: dune exec examples/dual_mode_digest.exe *)

let () =
  let base = Scenario.preset_exn "dual_mode_digest" in
  let message = base.Scenario.message in
  Printf.printf "payload: %s (32 bits)\n" (Bitvec.to_string message);
  Printf.printf "12%% of the devices flood a forged payload and lie about its digest\n\n";
  let result = Dual_mode.run { Dual_mode.base; digest_len = 8 } in
  let epi_only =
    Scenario.summarize (Scenario.run { base with Scenario.protocol = Scenario.Epidemic })
  in
  let table = Table.create ~title:"dual-mode vs plain epidemic" ~columns:[ "metric"; "value" ] in
  Table.add_row table
    [ "plain epidemic: correct deliveries"; Table.cell_pct epi_only.Scenario.correct_of_delivered ];
  Table.add_row table
    [ "dual-mode: accepted the real payload"; Table.cell_pct result.Dual_mode.accepted_correct_rate ];
  Table.add_row table
    [ "dual-mode: forged payloads rejected"; Table.cell_pct result.Dual_mode.rejected_fake_rate ];
  Table.add_row table [ "epidemic phase rounds";
    Table.cell_i result.Dual_mode.epidemic.Scenario.engine.Engine.rounds_used ];
  Table.add_row table [ "digest phase rounds";
    Table.cell_i result.Dual_mode.digest.Scenario.engine.Engine.rounds_used ];
  Table.add_row table
    [ "slowdown vs plain epidemic"; Table.cell_f ~decimals:1 result.Dual_mode.slowdown ^ "x" ];
  Table.print table;
  print_endline "\nOnly the 8 digest bits pay the authentication overhead; the 32";
  print_endline "payload bits ride the cheap channel."
