(* Lying attack demo (the experiments behind Figure 6).

   A growing fraction of devices runs the correct protocol but starts out
   committed to a fake message.  The unauthenticated epidemic baseline
   adopts whatever arrives first; NeighborWatchRB contains the fake as
   long as no R/3 square consists of liars only.

   Run with: dune exec examples/lying_attack.exe *)

(* The "lying_attack" preset fixes the map and deployment; the sweep
   only varies the protocol and the liar fraction. *)
let run protocol fraction =
  let spec =
    {
      (Scenario.preset_exn "lying_attack") with
      Scenario.protocol;
      faults = (if fraction = 0.0 then Scenario.No_faults else Scenario.Lying fraction);
    }
  in
  Scenario.run spec

let correctness protocol fraction = Scenario.summarize (run protocol fraction)

let () =
  let table =
    Table.create ~title:"lying devices: correct deliveries"
      ~columns:[ "byzantine"; "epidemic"; "NeighborWatchRB"; "2-vote NW" ]
  in
  List.iter
    (fun fraction ->
      let cell protocol = Table.cell_pct (correctness protocol fraction).Scenario.correct_of_delivered in
      Table.add_row table
        [
          Table.cell_pct fraction;
          cell Scenario.Epidemic;
          cell (Scenario.Neighbor_watch { votes = 1 });
          cell (Scenario.Neighbor_watch { votes = 2 });
        ])
    [ 0.0; 0.05; 0.10; 0.15; 0.20 ];
  Table.print table;
  print_endline "\nEvery delivery the watch protocols make is authenticated bit-by-bit;";
  print_endline "the epidemic baseline happily spreads whatever it hears first.";
  print_endline "\nWhere the fake wins (NeighborWatchRB, 20% liars — note how fake";
  print_endline "regions grow around liar-only squares and freeze at boundaries):\n";
  Ascii_map.print (run (Scenario.Neighbor_watch { votes = 1 }) 0.20)
