(* Clustered deployment demo (Section 6.2, "Non-uniform Node
   Distributions").

   Devices are scattered in normal clusters around random centres using
   Marsaglia's polar method, as in the paper.  NeighborWatchRB keeps
   working as long as the cluster graph stays connected; nodes cut off
   from the source simply never complete.

   Run with: dune exec examples/clustered_network.exe *)

(* The "clustered_network" preset carries the clustered deployment; the
   uniform control run swaps only the deployment, everything else equal. *)
let run deployment faults =
  let spec = { (Scenario.preset_exn "clustered_network") with Scenario.deployment; faults } in
  let result = Scenario.run spec in
  (Scenario.summarize result, result)

let () =
  let clustered = (Scenario.preset_exn "clustered_network").Scenario.deployment in
  let uniform =
    match clustered with
    | Scenario.Clustered { n; _ } -> Scenario.Uniform n
    | _ -> assert false
  in
  let table =
    Table.create ~title:"uniform vs clustered deployment (NeighborWatchRB)"
      ~columns:[ "deployment"; "liars"; "reached"; "delivered"; "correct of delivered" ]
  in
  List.iter
    (fun (name, deployment) ->
      List.iter
        (fun (fault_name, faults) ->
          let s, result = run deployment faults in
          let reachable =
            Topology.reachable_from result.Scenario.topology result.Scenario.source
          in
          Table.add_row table
            [
              name;
              fault_name;
              Printf.sprintf "%d/400" reachable;
              Table.cell_pct s.Scenario.completion_rate;
              Table.cell_pct s.Scenario.correct_of_delivered;
            ])
        [ ("none", Scenario.No_faults); ("10%", Scenario.Lying 0.10) ])
    [ ("uniform", uniform); ("clustered", clustered) ];
  Table.print table;
  print_endline "\nTight clusters (spread well under the radio range, as here) concentrate";
  print_endline "honest witnesses in each watch square — the regime where the paper";
  print_endline "observes clustering helping correctness.  Loose clusters instead expose";
  print_endline "sparse inter-cluster bridges to the liars (try stddev = 2.5)."
