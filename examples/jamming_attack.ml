(* Jamming attack demo (the experiment of Section 6.1).

   10% of the devices jam veto rounds with probability 1/5 until their
   broadcast budget runs out.  The protocol always completes; the delay it
   suffers is linear in the adversary's budget — the energy property of
   Theorems 1/2: every 6-round interval of disruption costs the attacker
   at least one broadcast.

   Run with: dune exec examples/jamming_attack.exe *)

let () =
  let table =
    Table.create ~title:"veto-round jamming vs completion time"
      ~columns:[ "budget per jammer"; "rounds"; "delay vs clean"; "completed" ]
  in
  (* The "jamming_attack" preset fixes everything but the budget, which
     the sweep below overrides point by point. *)
  let run budget =
    let base = Scenario.preset_exn "jamming_attack" in
    let faults =
      match base.Scenario.faults with
      | Scenario.Jamming { fraction; probability; budget = _ } ->
          Scenario.Jamming { fraction; budget; probability }
      | _ -> assert false
    in
    Scenario.summarize (Scenario.run { base with Scenario.faults })
  in
  let clean = run 0 in
  let points = ref [] in
  List.iter
    (fun budget ->
      let s = run budget in
      points := (float_of_int budget, float_of_int s.Scenario.rounds) :: !points;
      Table.add_row table
        [
          Table.cell_i budget;
          Table.cell_i s.Scenario.rounds;
          Table.cell_i (s.Scenario.rounds - clean.Scenario.rounds);
          Table.cell_pct s.Scenario.completion_rate;
        ])
    [ 0; 25; 50; 100; 200 ];
  Table.print table;
  let fit = Stats.linear_fit (List.rev !points) in
  Printf.printf "\ndelay grows linearly with the jamming budget: %.1f rounds per broadcast (r2 = %.2f)\n"
    fit.Stats.slope fit.Stats.r2
