(* Quickstart: one authenticated broadcast, built from the core API
   directly (no experiment harness), so each moving part is visible:

     deployment -> radio -> topology -> protocol context -> machines -> engine

   The parameters come from the "quickstart" preset, so the scenario
   linter validates exactly this configuration.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let spec = Scenario.preset_exn "quickstart" in

  (* 1. Deploy the devices uniformly at random (120 on a 10x10 map). *)
  let n = match spec.Scenario.deployment with Scenario.Uniform n -> n | _ -> assert false in
  let rng = Rng.create spec.Scenario.seed in
  let deployment =
    Deployment.uniform rng ~n ~width:spec.Scenario.map_w ~height:spec.Scenario.map_h
  in

  (* 2. Free-space radio with decode range R and carrier sensing beyond it
        (the WSNet-like model of the paper's simulations). *)
  let radio = Propagation.friis spec.Scenario.radius in
  let topology = Topology.build deployment radio in
  Printf.printf "deployed %d devices, average degree %.1f, hop diameter %d\n"
    (Deployment.size deployment) (Topology.avg_degree topology)
    (Topology.hop_diameter_from topology (Deployment.center_node deployment));

  (* 3. The source sits at the centre and broadcasts four bits. *)
  let source = Deployment.center_node deployment in
  let message = spec.Scenario.message in

  (* 4. NeighborWatchRB context: R/3 squares, TDMA schedule, 1-voting. *)
  let config =
    Neighbor_watch.default_config ~radius:spec.Scenario.radius ~msg_len:(Bitvec.length message)
  in
  let ctx = Neighbor_watch.make_ctx config ~topology ~source in
  let machines =
    Array.init (Deployment.size deployment) (fun i ->
        if i = source then Neighbor_watch.machine ctx i (Neighbor_watch.Source message)
        else Neighbor_watch.machine ctx i Neighbor_watch.Relay)
  in

  (* 5. Run the synchronous round engine until everyone delivers (the
        sparse mode skips the rounds the TDMA schedule leaves silent). *)
  let waiters = Array.init (Deployment.size deployment) (fun i -> i <> source) in
  let result = Engine.run ~mode:`Sparse ~topology ~machines ~waiters ~cap:1_000_000 () in

  let delivered = Array.to_list result.Engine.delivered in
  let ok = List.length (List.filter (fun d -> d = Some message) delivered) in
  Printf.printf "message %s delivered by %d/%d devices in %d rounds (%d broadcasts)\n"
    (Bitvec.to_string message) ok (Deployment.size deployment) result.Engine.rounds_used
    (Array.fold_left ( + ) 0 result.Engine.broadcasts);
  let slowest =
    Array.fold_left max 0 result.Engine.completion_round
  in
  Printf.printf "last device completed at round %d\n" slowest
