(* Explicit graph classes demo.

   The paper's analysis lives on dense deployments in a square; the
   synthetic graph families drop that assumption.  This demo runs the
   "graph_corridor" preset — CPA with tolerance 1 on a corridor map
   (dense rooms chained by width-one halls) — and then swaps protocol
   and graph class to show both failure axes:

   - CPA needs t+1 = 2 vouchers to cross a cut, so it commits the first
     room and stalls at the hall (bootstrap percolation below threshold);
     on the 8-adjacent lattice (degree up to 8) it completes.
   - MultiPathRB carries its evidence in frames rather than in the
     geometry, so it crosses the corridor fine.

   Run with: dune exec examples/graph_classes.exe *)

let base = Scenario.preset_exn "graph_corridor"
let lattice = Scenario.Lattice { width = 10; height = 10 }

let cases =
  [
    ("corridor", base.Scenario.deployment); ("lattice", lattice);
  ]

let protocols =
  [
    ("CPA t=1", base.Scenario.protocol);
    ("MultiPathRB t=1", Scenario.Multi_path { tolerance = 1 });
    ("NeighborWatchRB", Scenario.Neighbor_watch { votes = 1 });
  ]

let () =
  let table =
    Table.create ~title:"protocols across explicit graph classes"
      ~columns:[ "graph"; "protocol"; "completed"; "correct"; "rounds" ]
  in
  List.iter
    (fun (graph_name, deployment) ->
      List.iter
        (fun (protocol_name, protocol) ->
          let spec = { base with Scenario.deployment; protocol } in
          let s = Scenario.summarize (Scenario.run spec) in
          Table.add_row table
            [
              graph_name;
              protocol_name;
              Table.cell_pct s.Scenario.completion_rate;
              Table.cell_pct s.Scenario.correct_rate;
              Table.cell_i s.Scenario.rounds;
            ])
        protocols)
    cases;
  Table.print table;
  print_newline ();
  print_endline
    "CPA stalls at the corridor's width-one cuts (it needs t+1 = 2 vouchers);";
  print_endline
    "MultiPathRB's framed evidence crosses them, and the lattice's degree-8";
  print_endline "neighbourhoods give every protocol what it needs."
