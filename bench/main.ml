(* Benchmark harness.

   Running this executable:

   1. executes every registered experiment — the paper's tables and
      figures (Section 6), the Theorem 5 running-time sweeps, and the
      DESIGN.md ablations — at Quick scale by default, or at the paper's
      parameters with `--scale paper` (MultiPathRB at paper scale is very
      slow, exactly as the paper reports); `--jobs N` runs the trial cells
      on N domains with output byte-identical to `--jobs 1`;
   2. writes the structured results (per-experiment wall time, rows,
      aggregates, fit slopes) to BENCH_results.json (`--json PATH` to
      move it);
   3. runs a Bechamel microbenchmark suite with one [Test.make] per
      experiment id (a miniature instance of that table's inner
      simulation) and one per protocol primitive (skipped when `--only`
      narrows the run or `--no-micro` is given).

   Perf-regression mode:

     bench/main.exe compare BASE.json [CURRENT.json]

   diffs two results files (CURRENT defaults to BENCH_results.json),
   prints per-experiment speedups, and exits 1 when any experiment is
   more than 20% slower than the baseline.  `--compare BASE.json` does
   the same against the freshly produced results after a normal run.
   The committed BENCH_baseline.json (quick scale, --jobs 1) is the
   baseline the @ci alias compares against. *)

open Bechamel
open Toolkit

let tiny_spec protocol =
  {
    Scenario.default with
    map_w = 8.0;
    map_h = 8.0;
    deployment = Scenario.Uniform 80;
    radius = 3.0;
    message = Bitvec.of_string "101";
    protocol;
    heard_relay_limit = Some 4;
  }

let run_spec spec = ignore (Scenario.summarize (Scenario.run spec))

(* One kernel per experiment id: a miniature instance of the simulation at
   the heart of that table/figure. *)
let experiment_kernels =
  [
    ( "E1.fig5-crash",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            deployment = Scenario.Uniform 60 } );
    ( "E2.jamming",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            faults = Scenario.Jamming { fraction = 0.1; budget = 20; probability = 0.2 } } );
    ( "E3.fig6-lying",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            faults = Scenario.Lying 0.05 } );
    ( "E4.fig7-density",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 2 })) with
            faults = Scenario.Lying 0.05 } );
    ( "E5.clustered",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            deployment = Scenario.Clustered { n = 80; clusters = 4; stddev = 1.5 } } );
    ( "E6.mapsize",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            message = Bitvec.of_string "10110" } );
    ("E7.epidemic", fun () -> run_spec (tiny_spec Scenario.Epidemic));
    ( "E8.theory-grid",
      fun () ->
        run_spec
          {
            (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            deployment = Scenario.Grid;
            radio = Scenario.Disk_linf;
            radius = 2.0;
            square_side = Some 1.0;
          } );
    ( "MP.multipath",
      fun () ->
        run_spec
          {
            (tiny_spec (Scenario.Multi_path { tolerance = 1 })) with
            map_w = 6.0;
            map_h = 6.0;
            deployment = Scenario.Uniform 40;
            radius = 2.0;
            message = Bitvec.of_string "10";
          } );
    ( "G1.graphs",
      fun () ->
        run_spec
          {
            (tiny_spec (Scenario.Multi_path { tolerance = 1 })) with
            deployment = Scenario.Grid_holes { width = 8; height = 6; holes = 5 };
            message = Bitvec.of_string "10";
          } );
  ]

(* Protocol primitives, benchmarked in isolation. *)
let primitive_kernels =
  let payload = Bitvec.random (Rng.create 99) 256 in
  [
    ( "prim.two-bit-exchange",
      fun () ->
        let sender = Two_bit.Sender.create ~b1:true ~b2:false in
        let receiver = Two_bit.Receiver.create () in
        for phase = 0 to 5 do
          let s_tx = Two_bit.Sender.act sender ~phase in
          let r_tx = Two_bit.Receiver.act receiver ~phase in
          Two_bit.Sender.observe sender ~phase ~activity:r_tx;
          Two_bit.Receiver.observe receiver ~phase ~activity:s_tx
        done;
        ignore (Two_bit.Sender.outcome sender);
        ignore (Two_bit.Receiver.outcome receiver) );
    ( "prim.one-hop-64bit-stream",
      fun () ->
        let sender = One_hop.Sender.create () in
        let receiver = One_hop.Receiver.create () in
        for i = 0 to 63 do
          One_hop.Sender.push sender (i land 3 = 1)
        done;
        while One_hop.Sender.has_current sender do
          let parity, data = One_hop.Sender.current sender in
          One_hop.Receiver.push_two_bit receiver ~parity ~data;
          One_hop.Sender.advance sender
        done );
    ( "prim.voting-quorum-30",
      let items =
        List.init 30 (fun i ->
            {
              Voting.origin = (i, 2 * i);
              value = true;
              points = [ Point.make (float_of_int (i mod 7)) (float_of_int (i mod 5)) ];
            })
      in
      fun () -> ignore (Voting.quorum ~radius:4.0 ~need:8 ~value:true items) );
    ( "prim.frame-roundtrip",
      let codec = Frame.codec ~msg_len:16 ~coord_range:8.0 ~coord_step:0.5 in
      fun () ->
        let frame = Frame.Heard { index = 7; value = true; cause = (3, -2) } in
        match Frame.decode codec (Frame.encode codec frame) with
        | Some _ -> ()
        | None -> assert false );
    ("prim.digest-256bit", fun () -> ignore (Bitvec.digest ~size:8 payload));
  ]

let tests =
  List.map
    (fun (name, f) -> Test.make ~name (Staged.stage f))
    (experiment_kernels @ primitive_kernels)

let microbenchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:30 ~quota:(Time.second 0.4) ~kde:None ~sampling:(`Linear 1)
      ~stabilize:false ()
  in
  let table =
    Table.create ~title:"Bechamel microbenchmarks (OLS time per run)"
      ~columns:[ "kernel"; "time/run"; "r2" ]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols (List.hd instances) raw in
      (* Rows in kernel-name order, not unspecified hash order: the table
         feeds BENCH_results.json comparisons and must be stable. *)
      let rows =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [])
      in
      List.iter
        (fun (name, ols_result) ->
          let time_cell =
            match Analyze.OLS.estimates ols_result with
            | Some (ns :: _) ->
              if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            | Some [] | None -> "n/a"
          in
          let r2_cell =
            match Analyze.OLS.r_square ols_result with
            | Some r2 -> Printf.sprintf "%.3f" r2
            | None -> "-"
          in
          Table.add_row table [ name; time_cell; r2_cell ])
        rows)
    tests;
  Table.print table

(* Print a comparison report and turn regressions into exit code 1. *)
let finish_compare = function
  | Error message ->
    prerr_endline message;
    exit 2
  | Ok (report, any_regression) ->
    print_string report;
    if any_regression then exit 1

let () =
  let options = ref { (Bench.default_options ()) with json_path = Some "BENCH_results.json" } in
  let compare_base = ref None in
  let no_micro = ref false in
  let campaign = ref Campaign.default in
  let anons = ref [] in
  let set_scale s =
    match String.lowercase_ascii s with
    | "quick" -> options := { !options with scale = Experiment.Quick }
    | "paper" -> options := { !options with scale = Experiment.Paper }
    | other -> raise (Arg.Bad (Printf.sprintf "--scale %s (expected quick or paper)" other))
  in
  let add_only ids =
    options :=
      { !options with only = !options.only @ String.split_on_char ',' ids }
  in
  let speclist =
    [
      ( "--scale",
        Arg.String set_scale,
        "SCALE  quick (default) or paper; overrides the deprecated FULL=1 env var" );
      ("--jobs", Arg.Int (fun n -> options := { !options with jobs = n }), "N  worker domains");
      ( "--only",
        Arg.String add_only,
        "IDS  comma-separated experiment ids to run (also skips microbenchmarks)" );
      ( "--json",
        Arg.String (fun p -> options := { !options with json_path = Some p }),
        "PATH  results file (default BENCH_results.json)" );
      ("--no-json", Arg.Unit (fun () -> options := { !options with json_path = None }), " skip the results file");
      ("--no-micro", Arg.Set no_micro, " skip the Bechamel microbenchmark suite");
      ( "--profile",
        Arg.Unit (fun () -> options := { !options with profile = true }),
        " record per-experiment Gc allocation deltas and rounds/s (plus per-worker stats) into \
         the results JSON (ignored by compare)" );
      ( "--sanitize",
        Arg.Unit (fun () -> options := { !options with sanitize = true }),
        " re-run each experiment's trials sequentially and fail on any divergence from the \
         parallel results (dynamic --jobs N determinism check; no-op at --jobs 1)" );
      ( "--compare",
        Arg.String (fun p -> compare_base := Some p),
        "BASE.json  after the run, diff wall times against this baseline; exit 1 on a >20% \
         regression" );
      (* `scale` campaign options (ignored without the scale subcommand). *)
      ( "--nodes",
        Arg.String
          (fun s ->
            campaign :=
              { !campaign with
                Campaign.node_counts = List.map int_of_string (String.split_on_char ',' s) }),
        "N,N,...  (scale) node counts to sweep" );
      ( "--density",
        Arg.String
          (fun s ->
            campaign :=
              { !campaign with
                Campaign.densities = List.map float_of_string (String.split_on_char ',' s) }),
        "D,D,...  (scale) target average degrees to sweep" );
      ( "--adversaries",
        Arg.String
          (fun s ->
            campaign := { !campaign with Campaign.adversaries = String.split_on_char ',' s }),
        "A,A,...  (scale) adversary mixes: honest, crash, lying, jam" );
      ( "--classes",
        Arg.String
          (fun s ->
            campaign :=
              { !campaign with
                Campaign.classes =
                  List.map
                    (function
                      | "uniform" -> Campaign.Uniform_radio
                      | "expander" -> Campaign.Expander_synthetic
                      | other ->
                        raise (Arg.Bad (Printf.sprintf "--classes %s (expected uniform or expander)" other)))
                    (String.split_on_char ',' s) }),
        "C,C,...  (scale) graph classes: uniform, expander" );
      ( "--tiles",
        Arg.Int (fun k -> campaign := { !campaign with Campaign.tiles = k }),
        "K  (scale) engine tiles; 1 = the serial sparse loop" );
      ( "--warm",
        Arg.Int (fun k -> campaign := { !campaign with Campaign.warm = k }),
        "K  (scale) warm runs per cell on the cold run's topology" );
      ( "--label",
        Arg.String (fun l -> campaign := { !campaign with Campaign.label = l }),
        "NAME  (scale) campaign label / archive subdirectory" );
      ( "--out",
        Arg.String (fun d -> campaign := { !campaign with Campaign.out_dir = Some d }),
        "DIR  (scale) archive one JSON per run plus a manifest under DIR/label/" );
      ( "--mem-ceiling",
        Arg.Float
          (fun mw ->
            campaign :=
              { !campaign with Campaign.mem_ceiling_words = Some (int_of_float (mw *. 1e6)) }),
        "MWORDS  (scale) fail if any run peaks above this many million heap words" );
      ( "--check",
        Arg.Unit (fun () -> campaign := { !campaign with Campaign.check = true }),
        " (scale) re-run each campaign run on the serial engine and diff the traces" );
      ( "--dry-run",
        Arg.Unit (fun () -> campaign := { !campaign with Campaign.dry_run = true }),
        " (scale) print the planned runs and execute nothing" );
    ]
  in
  Arg.parse speclist
    (fun anon -> anons := !anons @ [ anon ])
    "bench/main.exe [--scale quick|paper] [--jobs N] [--only e1,e2,...] [--json PATH]\n\
     bench/main.exe compare BASE.json [CURRENT.json]\n\
     bench/main.exe scale [--nodes N,N] [--density D,D] [--tiles K] [--dry-run] ...";
  match !anons with
  | [ "scale" ] -> (
    match Campaign.run !campaign with
    | Ok (_, failed) -> if failed then exit 1
    | Error message ->
      prerr_endline message;
      exit 2)
  | "scale" :: _ ->
    prerr_endline "scale takes no further positional arguments";
    exit 2
  | [ "compare"; base ] ->
    finish_compare (Bench.compare_files ~base ~current:"BENCH_results.json" ())
  | [ "compare"; base; current ] -> finish_compare (Bench.compare_files ~base ~current ())
  | "compare" :: _ ->
    prerr_endline "compare takes a baseline file and an optional current file";
    exit 2
  | anon :: _ ->
    prerr_endline (Printf.sprintf "unexpected argument %s" anon);
    exit 2
  | [] -> (
    let t0 = Unix.gettimeofday () in
    match Bench.run !options with
    | Error message ->
      prerr_endline message;
      exit 2
    | Ok outcomes ->
      if !options.only = [] && not !no_micro then microbenchmarks ();
      Printf.printf "\ntotal wall time: %.1fs\n%!" (Unix.gettimeofday () -. t0);
      Option.iter
        (fun base -> finish_compare (Bench.compare_outcomes ~base outcomes))
        !compare_base)
