(* Mobile broadcast demo — the paper's future-work direction "adapting the
   protocol to mobile nodes" (Section 7), realised as epoch-based
   re-clustering: within an epoch locations are fixed (squares, schedules
   and neighbourhoods derive from them as usual); between epochs devices
   move by random waypoint and keep the bits they committed — commitment is
   a local, already-authenticated fact.

   Run with: dune exec examples/mobile_network.exe *)

let () =
  print_endline "NeighborWatchRB over a mobile network (random waypoint).";
  print_endline "Epoch-based: locations are re-read between epochs; committed bits survive.\n";
  let config = { Mobile.default with nodes = 150; epoch_rounds = 2500 } in
  Table.print (Mobile.table config ~speeds:[ 0.0; 0.001; 0.003; 0.01 ]);
  print_endline "\nSafety is untouched by movement (every delivered message is authentic);";
  print_endline "what speed costs is per-epoch liveness, and what it buys is ferrying:";
  let sparse =
    { config with nodes = 60; map = 16.0; epoch_rounds = 3000; max_epochs = 20 }
  in
  let static = Mobile.run { sparse with model = { sparse.model with Mobility.speed = 0.0 } } in
  let moving = Mobile.run { sparse with model = { sparse.model with Mobility.speed = 0.01 } } in
  Printf.printf
    "sparse network (60 nodes on 16x16): static completion %.0f%%, mobile completion %.0f%%\n"
    (100.0 *. static.Mobile.completion_rate)
    (100.0 *. moving.Mobile.completion_rate)
