examples/quickstart.mli:
