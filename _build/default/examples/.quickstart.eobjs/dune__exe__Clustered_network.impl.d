examples/clustered_network.ml: List Printf Scenario Table Topology
