examples/clustered_network.mli:
