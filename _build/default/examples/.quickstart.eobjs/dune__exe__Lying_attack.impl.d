examples/lying_attack.ml: Ascii_map Bitvec List Scenario Table
