examples/jamming_attack.mli:
