examples/quickstart.ml: Array Bitvec Deployment Engine List Neighbor_watch Printf Propagation Rng Topology
