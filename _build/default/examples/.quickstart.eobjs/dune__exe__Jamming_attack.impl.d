examples/jamming_attack.ml: List Printf Scenario Stats Table
