examples/dual_mode_digest.ml: Bitvec Dual_mode Engine Printf Rng Scenario Table
