examples/lying_attack.mli:
