examples/mobile_network.mli:
