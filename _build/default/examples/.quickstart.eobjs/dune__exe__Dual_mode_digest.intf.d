examples/dual_mode_digest.mli:
