examples/mobile_network.ml: Mobile Mobility Printf Table
