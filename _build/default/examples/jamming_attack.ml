(* Jamming attack demo (the experiment of Section 6.1).

   10% of the devices jam veto rounds with probability 1/5 until their
   broadcast budget runs out.  The protocol always completes; the delay it
   suffers is linear in the adversary's budget — the energy property of
   Theorems 1/2: every 6-round interval of disruption costs the attacker
   at least one broadcast.

   Run with: dune exec examples/jamming_attack.exe *)

let () =
  let table =
    Table.create ~title:"veto-round jamming vs completion time"
      ~columns:[ "budget per jammer"; "rounds"; "delay vs clean"; "completed" ]
  in
  let run budget =
    let spec =
      {
        Scenario.default with
        map_w = 12.0;
        map_h = 12.0;
        deployment = Scenario.Uniform 220;
        radius = 4.0;
        faults = Scenario.Jamming { fraction = 0.1; budget; probability = 0.2 };
        seed = 5;
      }
    in
    Scenario.summarize (Scenario.run spec)
  in
  let clean = run 0 in
  let points = ref [] in
  List.iter
    (fun budget ->
      let s = run budget in
      points := (float_of_int budget, float_of_int s.Scenario.rounds) :: !points;
      Table.add_row table
        [
          Table.cell_i budget;
          Table.cell_i s.Scenario.rounds;
          Table.cell_i (s.Scenario.rounds - clean.Scenario.rounds);
          Table.cell_pct s.Scenario.completion_rate;
        ])
    [ 0; 25; 50; 100; 200 ];
  Table.print table;
  let fit = Stats.linear_fit (List.rev !points) in
  Printf.printf "\ndelay grows linearly with the jamming budget: %.1f rounds per broadcast (r2 = %.2f)\n"
    fit.Stats.slope fit.Stats.r2
