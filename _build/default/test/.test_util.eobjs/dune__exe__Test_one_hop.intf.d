test/test_one_hop.mli:
