test/test_invariants.ml: Alcotest Array Bitvec Engine List QCheck QCheck_alcotest Scenario
