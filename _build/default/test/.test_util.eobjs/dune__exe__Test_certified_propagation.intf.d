test/test_certified_propagation.mli:
