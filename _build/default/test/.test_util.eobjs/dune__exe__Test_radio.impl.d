test/test_radio.ml: Alcotest Channel Format Int List Point Propagation QCheck QCheck_alcotest Rng
