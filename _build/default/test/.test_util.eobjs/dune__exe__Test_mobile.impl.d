test/test_mobile.ml: Alcotest Array Deployment Mobile Mobility Node Point Rng String Table
