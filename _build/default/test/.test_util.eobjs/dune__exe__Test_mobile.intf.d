test/test_mobile.mli:
