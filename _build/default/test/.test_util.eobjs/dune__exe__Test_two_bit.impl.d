test/test_two_bit.ml: Alcotest List Printf Two_bit
