test/test_multi_path.mli:
