test/test_dual_mode.mli:
