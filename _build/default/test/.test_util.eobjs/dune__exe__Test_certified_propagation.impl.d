test/test_certified_propagation.ml: Alcotest Array Bitvec Certified_propagation Deployment List Node Point Propagation Topology
