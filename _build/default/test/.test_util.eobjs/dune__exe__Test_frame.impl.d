test/test_frame.ml: Alcotest Bitvec Format Frame List Point QCheck QCheck_alcotest
