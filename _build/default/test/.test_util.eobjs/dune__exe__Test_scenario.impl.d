test/test_scenario.ml: Alcotest Array Ascii_map Bitvec Experiment List Point Scenario String Topology
