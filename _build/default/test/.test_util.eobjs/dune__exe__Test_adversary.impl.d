test/test_adversary.ml: Alcotest Bounds Budget Engine Jammer List Printf Rng String Table
