test/test_voting.ml: Alcotest List Point QCheck QCheck_alcotest Rng Voting
