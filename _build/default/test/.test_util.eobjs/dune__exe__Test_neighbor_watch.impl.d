test/test_neighbor_watch.ml: Alcotest Array Bitvec Budget Channel Deployment Engine Jammer List Neighbor_watch Printf Propagation Rng Scenario Squares Topology
