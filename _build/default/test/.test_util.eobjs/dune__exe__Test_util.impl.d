test/test_util.ml: Alcotest Array Bitvec List QCheck QCheck_alcotest Rng Stats String Table
