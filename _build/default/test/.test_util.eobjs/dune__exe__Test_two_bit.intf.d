test/test_two_bit.mli:
