test/test_one_hop.ml: Alcotest Bitvec List One_hop QCheck QCheck_alcotest Rng
