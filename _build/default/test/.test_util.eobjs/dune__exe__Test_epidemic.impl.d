test/test_epidemic.ml: Alcotest Array Bitvec Deployment Engine Epidemic List Printf Propagation Scenario Topology
