test/test_multi_path.ml: Alcotest Array Bitvec Deployment Engine List Multi_path Point Printf Propagation Scenario Topology
