test/test_geometry.ml: Alcotest Box List Point QCheck QCheck_alcotest Rng Squares
