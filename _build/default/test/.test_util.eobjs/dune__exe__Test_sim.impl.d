test/test_sim.ml: Alcotest Array Bitvec Channel Deployment Engine Int List Node Point Propagation QCheck QCheck_alcotest Rng Schedule Squares Stats Topology
