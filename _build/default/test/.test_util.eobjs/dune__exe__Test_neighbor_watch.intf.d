test/test_neighbor_watch.mli:
