test/test_dual_mode.ml: Alcotest Bitvec Dual_mode Engine Rng Scenario
