(* Tests for the dual-mode protocol: epidemic payload + authenticated
   digest. *)

let base message =
  {
    Scenario.default with
    map_w = 10.0;
    map_h = 10.0;
    deployment = Scenario.Uniform 150;
    radius = 3.0;
    message;
  }

let test_clean_run_accepts () =
  let message = Bitvec.random (Rng.create 11) 24 in
  let result = Dual_mode.run { Dual_mode.base = base message; digest_len = 8 } in
  Alcotest.(check bool) "nearly all accept" true (result.Dual_mode.accepted_rate >= 0.95);
  Alcotest.(check (float 1e-9)) "accepted = accepted correct"
    result.Dual_mode.accepted_rate result.Dual_mode.accepted_correct_rate;
  Alcotest.(check bool) "total = sum of phases" true
    (result.Dual_mode.total_rounds
    = result.Dual_mode.epidemic.Scenario.engine.Engine.rounds_used
      + result.Dual_mode.digest.Scenario.engine.Engine.rounds_used);
  Alcotest.(check bool) "slowdown above 1" true (result.Dual_mode.slowdown > 1.0)

let test_fakes_rejected_by_digest () =
  let message = Bitvec.random (Rng.create 13) 24 in
  let spec = { (base message) with Scenario.faults = Scenario.Lying 0.15; seed = 3 } in
  let result = Dual_mode.run { Dual_mode.base = spec; digest_len = 12 } in
  (* Fake flooded payloads fail digest verification (up to the 2^-12
     collision chance of this non-cryptographic digest). *)
  Alcotest.(check bool) "no fake accepted" true
    (result.Dual_mode.accepted_correct_rate >= result.Dual_mode.accepted_rate -. 1e-9);
  Alcotest.(check bool) "fakes explicitly rejected" true
    (result.Dual_mode.rejected_fake_rate >= 0.99)

let test_bigger_digest_costs_more () =
  let message = Bitvec.random (Rng.create 17) 24 in
  let small = Dual_mode.run { Dual_mode.base = base message; digest_len = 2 } in
  let large = Dual_mode.run { Dual_mode.base = base message; digest_len = 16 } in
  Alcotest.(check bool) "digest size drives the authenticated phase" true
    (large.Dual_mode.total_rounds > small.Dual_mode.total_rounds)

let () =
  Alcotest.run "dual_mode"
    [
      ( "dual-mode",
        [
          Alcotest.test_case "clean run accepts" `Quick test_clean_run_accepts;
          Alcotest.test_case "fakes rejected by digest" `Quick test_fakes_rejected_by_digest;
          Alcotest.test_case "bigger digest costs more" `Quick test_bigger_digest_costs_more;
        ] );
    ]
