(* Tests for the mobility model and the epoch-based mobile broadcast. *)

(* --- Mobility.waypoint model ------------------------------------------ *)

let deployment () = Deployment.uniform (Rng.create 1) ~n:50 ~width:10.0 ~height:10.0

let test_zero_speed_is_static () =
  let d = deployment () in
  let m = Mobility.create (Rng.create 2) { Mobility.speed = 0.0; pause = 0 } d in
  Mobility.advance m ~rounds:10_000;
  Alcotest.(check (float 1e-9)) "no displacement" 0.0 (Mobility.displacement m d)

let test_moves_within_bounds () =
  let d = deployment () in
  let m = Mobility.create (Rng.create 3) { Mobility.speed = 0.01; pause = 10 } d in
  for _ = 1 to 20 do
    Mobility.advance m ~rounds:500;
    Array.iter
      (fun (node : Node.t) ->
        Alcotest.(check bool) "inside the map" true
          (node.Node.pos.Point.x >= -1e-9 && node.Node.pos.Point.x <= 10.0 +. 1e-9
          && node.Node.pos.Point.y >= -1e-9 && node.Node.pos.Point.y <= 10.0 +. 1e-9))
      (Mobility.deployment m).Deployment.nodes
  done

let test_displacement_grows () =
  let d = deployment () in
  let m = Mobility.create (Rng.create 4) { Mobility.speed = 0.01; pause = 0 } d in
  Mobility.advance m ~rounds:100;
  let early = Mobility.displacement m d in
  Mobility.advance m ~rounds:5_000;
  let late = Mobility.displacement m d in
  Alcotest.(check bool) "moves" true (early > 0.0);
  Alcotest.(check bool) "keeps moving" true (late > early)

let test_travel_bounded_by_speed () =
  let d = deployment () in
  let m = Mobility.create (Rng.create 5) { Mobility.speed = 0.002; pause = 0 } d in
  Mobility.advance m ~rounds:1000;
  let moved = Mobility.deployment m in
  Array.iteri
    (fun i (node : Node.t) ->
      let travelled = Point.dist_l2 node.Node.pos d.Deployment.nodes.(i).Node.pos in
      (* Net displacement cannot exceed total travel distance. *)
      Alcotest.(check bool) "speed x rounds bounds displacement" true (travelled <= 2.0 +. 1e-6))
    moved.Deployment.nodes

let test_ids_preserved () =
  let d = deployment () in
  let m = Mobility.create (Rng.create 6) { Mobility.speed = 0.01; pause = 0 } d in
  Mobility.advance m ~rounds:100;
  Array.iteri
    (fun i (node : Node.t) -> Alcotest.(check int) "dense ids" i node.Node.id)
    (Mobility.deployment m).Deployment.nodes

(* --- Mobile epoch runner ---------------------------------------------- *)

let base =
  {
    Mobile.default with
    nodes = 120;
    map = 10.0;
    epoch_rounds = 2500;
    max_epochs = 8;
    seed = 9;
  }

let test_static_epochs_complete () =
  let result = Mobile.run { base with model = { base.model with Mobility.speed = 0.0 } } in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 result.Mobile.completion_rate;
  Alcotest.(check (float 1e-9)) "all correct" 1.0 result.Mobile.correct_rate

let test_mobile_epochs_complete_and_stay_authentic () =
  (* Requested epochs are shorter than the (L+2)-cycle minimum; the runner
     clamps them, and the broadcast survives the re-clusterings. *)
  let result =
    Mobile.run
      { base with epoch_rounds = 800; model = { base.model with Mobility.speed = 0.005 } }
  in
  Alcotest.(check bool) "completes" true (result.Mobile.completion_rate >= 0.99);
  Alcotest.(check (float 1e-9)) "every delivery authentic"
    result.Mobile.completion_rate result.Mobile.correct_rate

let test_mobility_ferries_across_partitions () =
  (* A deployment too sparse to percolate statically: movement carries
     committed bits across the gaps. *)
  let sparse =
    { base with nodes = 50; map = 16.0; epoch_rounds = 3000; max_epochs = 20; seed = 3 }
  in
  let static = Mobile.run { sparse with model = { sparse.model with Mobility.speed = 0.0 } } in
  let moving = Mobile.run { sparse with model = { sparse.model with Mobility.speed = 0.01 } } in
  Alcotest.(check bool) "static run is partitioned" true
    (static.Mobile.completion_rate < 0.9);
  Alcotest.(check bool) "mobility improves completion" true
    (moving.Mobile.completion_rate > static.Mobile.completion_rate +. 0.1)

let test_mobile_with_liars_stays_safe () =
  let result =
    Mobile.run
      { base with liar_fraction = 0.1; model = { base.model with Mobility.speed = 0.005 } }
  in
  (* Lying can reduce correctness but mobile honest nodes never deliver a
     message that is neither the true nor... the fake: deliveries are
     whole committed prefixes, so anything delivered and wrong equals the
     fake or a stalled mix; here we assert the aggregate stays sane. *)
  Alcotest.(check bool) "rates well-formed" true
    (result.Mobile.correct_rate <= result.Mobile.completion_rate +. 1e-9
    && result.Mobile.correct_rate >= 0.0)

let test_table_renders () =
  let t = Mobile.table { base with Mobile.nodes = 60 } ~speeds:[ 0.0 ] in
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let () =
  Alcotest.run "mobile"
    [
      ( "waypoint",
        [
          Alcotest.test_case "zero speed static" `Quick test_zero_speed_is_static;
          Alcotest.test_case "bounds respected" `Quick test_moves_within_bounds;
          Alcotest.test_case "displacement grows" `Quick test_displacement_grows;
          Alcotest.test_case "travel bounded by speed" `Quick test_travel_bounded_by_speed;
          Alcotest.test_case "ids preserved" `Quick test_ids_preserved;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "static completes" `Quick test_static_epochs_complete;
          Alcotest.test_case "mobile completes, authentic" `Quick
            test_mobile_epochs_complete_and_stay_authentic;
          Alcotest.test_case "ferrying across partitions" `Quick
            test_mobility_ferries_across_partitions;
          Alcotest.test_case "liars stay contained" `Quick test_mobile_with_liars_stays_safe;
          Alcotest.test_case "table renders" `Quick test_table_renders;
        ] );
    ]
