(* Tests for the adversary library: budgets and jamming machines, plus the
   theoretical tolerance bounds. *)

let test_budget_limits () =
  let b = Budget.create 3 in
  Alcotest.(check bool) "spend 1" true (Budget.try_spend b);
  Alcotest.(check bool) "spend 2" true (Budget.try_spend b);
  Alcotest.(check bool) "spend 3" true (Budget.try_spend b);
  Alcotest.(check bool) "exhausted" false (Budget.try_spend b);
  Alcotest.(check int) "spent" 3 (Budget.spent b);
  Alcotest.(check (option int)) "remaining" (Some 0) (Budget.remaining b)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "never exhausted" true (Budget.try_spend b)
  done;
  Alcotest.(check int) "still counts" 100 (Budget.spent b);
  Alcotest.(check (option int)) "no limit" None (Budget.remaining b);
  let b' = Budget.create (-1) in
  Alcotest.(check (option int)) "negative means unlimited" None (Budget.remaining b')

let test_budget_zero () =
  let b = Budget.create 0 in
  Alcotest.(check bool) "nothing to spend" false (Budget.try_spend b)

let drive machine rounds =
  List.init rounds (fun r ->
      match machine.Engine.act r with Engine.Transmit _ -> 1 | Engine.Silent -> 0)

let test_scripted_jammer () =
  let budget = Budget.create 4 in
  let machine = Jammer.scripted (fun ~round:_ ~phase -> phase = 4) ~budget in
  let txs = drive machine 60 in
  (* phases 4 of the first 4 intervals only *)
  Alcotest.(check int) "budget caps transmissions" 4 (List.fold_left ( + ) 0 txs);
  List.iteri
    (fun r tx -> if tx = 1 then Alcotest.(check int) "only phase 4" 4 (r mod 6))
    txs;
  Alcotest.(check (option Alcotest.reject)) "never delivers" None (machine.Engine.delivered ())

let test_veto_jammer_targets_veto_rounds () =
  let rng = Rng.create 3 in
  let budget = Budget.unlimited () in
  let machine = Jammer.veto_jammer ~rng ~budget ~probability:1.0 in
  let txs = drive machine 36 in
  Alcotest.(check int) "both veto rounds of every interval" 12 (List.fold_left ( + ) 0 txs);
  List.iteri
    (fun r tx ->
      let phase = r mod 6 in
      if phase <= 3 then Alcotest.(check int) "data/ack rounds untouched" 0 tx)
    txs

let test_veto_jammer_probability_zero () =
  let rng = Rng.create 4 in
  let machine = Jammer.veto_jammer ~rng ~budget:(Budget.unlimited ()) ~probability:0.0 in
  Alcotest.(check int) "never jams" 0 (List.fold_left ( + ) 0 (drive machine 120))

let test_blanket_jammer_spends_budget () =
  let rng = Rng.create 5 in
  let budget = Budget.create 10 in
  let machine = Jammer.blanket_jammer ~rng ~budget ~probability:0.5 in
  ignore (drive machine 200);
  Alcotest.(check int) "spent exactly its budget" 10 (Budget.spent budget)

(* --- bounds ----------------------------------------------------------- *)

let test_bounds_values () =
  (* R = 4 (the experiments' usual radius). *)
  Alcotest.(check int) "neighbourhood" 80 (Bounds.neighbourhood_size ~radius:4);
  Alcotest.(check int) "koo" 18 (Bounds.koo_bound ~radius:4);
  Alcotest.(check int) "multipath" 17 (Bounds.multi_path_tolerance ~radius:4);
  Alcotest.(check int) "neighbourwatch" 3 (Bounds.neighbor_watch_tolerance ~radius:4);
  Alcotest.(check int) "2-voting" 7 (Bounds.two_voting_tolerance ~radius:4)

let test_bounds_ordering () =
  List.iter
    (fun radius ->
      let nw = Bounds.neighbor_watch_tolerance ~radius in
      let nw2 = Bounds.two_voting_tolerance ~radius in
      let mp = Bounds.multi_path_tolerance ~radius in
      Alcotest.(check bool)
        (Printf.sprintf "NW <= 2vote <= MP at R=%d" radius)
        true
        (nw <= nw2 && nw2 <= mp);
      Alcotest.(check bool) "MP below Koo" true (mp < Bounds.koo_bound ~radius))
    [ 2; 3; 4; 6; 8 ]

let test_bounds_table () =
  let table = Bounds.summary_table ~radii:[ 2; 4 ] in
  let rendered = Table.render table in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let () =
  Alcotest.run "adversary"
    [
      ( "budget",
        [
          Alcotest.test_case "limits" `Quick test_budget_limits;
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "zero" `Quick test_budget_zero;
        ] );
      ( "jammers",
        [
          Alcotest.test_case "scripted" `Quick test_scripted_jammer;
          Alcotest.test_case "veto jammer" `Quick test_veto_jammer_targets_veto_rounds;
          Alcotest.test_case "probability zero" `Quick test_veto_jammer_probability_zero;
          Alcotest.test_case "blanket spends budget" `Quick test_blanket_jammer_spends_budget;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "values at R=4" `Quick test_bounds_values;
          Alcotest.test_case "ordering" `Quick test_bounds_ordering;
          Alcotest.test_case "summary table" `Quick test_bounds_table;
        ] );
    ]
