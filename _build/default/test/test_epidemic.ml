(* Tests for the epidemic flooding baseline: speed, lack of fault
   tolerance, rebroadcast bounds. *)

let message = Bitvec.of_string "10110"

let run ?(seed = 1) ?(faults = Scenario.No_faults) ?(n = 150) ?(map = 10.0) () =
  let spec =
    {
      Scenario.default with
      map_w = map;
      map_h = map;
      deployment = Scenario.Uniform n;
      radius = 2.0;
      message;
      protocol = Scenario.Epidemic;
      faults;
      seed;
    }
  in
  Scenario.run spec

let test_floods_everyone () =
  let s = Scenario.summarize (run ()) in
  Alcotest.(check bool) "completion >= 99%" true (s.Scenario.completion_rate >= 0.99);
  Alcotest.(check (float 1e-9)) "correct without faults" 1.0 s.Scenario.correct_of_delivered

let test_faster_than_neighbor_watch () =
  let epi = Scenario.summarize (run ()) in
  let nw =
    Scenario.summarize
      (Scenario.run
         {
           Scenario.default with
           map_w = 10.0;
           map_h = 10.0;
           deployment = Scenario.Uniform 150;
           radius = 2.0;
           message;
           protocol = Scenario.Neighbor_watch { votes = 1 };
         })
  in
  Alcotest.(check bool) "epidemic is faster" true (epi.Scenario.rounds < nw.Scenario.rounds);
  let slowdown = float_of_int nw.Scenario.rounds /. float_of_int (max 1 epi.Scenario.rounds) in
  (* The paper reports ≈7.7x; under our shared TDMA MAC the ratio lands in
     the same small-constant band. *)
  Alcotest.(check bool)
    (Printf.sprintf "slowdown in band (got %.1f)" slowdown)
    true
    (slowdown >= 2.0 && slowdown <= 60.0)

let test_adopts_fake_messages () =
  (* No authentication: liars poison a visible fraction of nodes. *)
  let corrupted =
    List.exists
      (fun seed ->
        let s = Scenario.summarize (run ~faults:(Scenario.Lying 0.10) ~seed ()) in
        s.Scenario.delivered_correct < s.Scenario.delivered_any)
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "epidemic adopts fakes" true corrupted

let test_repeats_bound_broadcasts () =
  let result = run () in
  Array.iter
    (fun count ->
      Alcotest.(check bool) "per-node broadcasts <= repeats" true
        (count <= Epidemic.default_config.Epidemic.repeats))
    result.Scenario.engine.Engine.broadcasts

let test_crash_can_disconnect () =
  let s = Scenario.summarize (run ~faults:(Scenario.Crash 0.7) ~n:80 ()) in
  (* With 70% of 80 devices crashed the flood cannot blanket the map; the
     run must still terminate quickly via idle-stop. *)
  Alcotest.(check bool) "not everyone reached" true (s.Scenario.completion_rate < 1.0);
  Alcotest.(check bool) "terminates early" true (not s.Scenario.hit_cap)

let test_direct_api_machines () =
  let deployment = Deployment.grid ~width:5 ~height:5 in
  let topology = Topology.build deployment (Propagation.disk_linf 2.0) in
  let source = Deployment.center_node deployment in
  let ctx = Epidemic.make_ctx Epidemic.default_config ~topology ~source in
  Alcotest.(check bool) "cycle bounded by nodes+1" true (Epidemic.cycle ctx <= 26);
  Alcotest.(check int) "cycle_rounds = 6 x cycle" (6 * Epidemic.cycle ctx)
    (Epidemic.cycle_rounds ctx);
  let machines =
    Array.init 25 (fun i ->
        if i = source then Epidemic.machine ctx i (Epidemic.Source message)
        else Epidemic.machine ctx i Epidemic.Relay)
  in
  let waiters = Array.init 25 (fun i -> i <> source) in
  let result =
    Engine.run ~idle_stop:(4 * Epidemic.cycle_rounds ctx) ~topology ~machines ~waiters
      ~cap:100_000 ()
  in
  Array.iteri
    (fun i delivered ->
      match delivered with
      | Some bits -> Alcotest.(check bool) "payload intact" true (Bitvec.equal bits message)
      | None -> Alcotest.fail (Printf.sprintf "node %d missed the flood" i))
    result.Engine.delivered

let () =
  Alcotest.run "epidemic"
    [
      ( "baseline",
        [
          Alcotest.test_case "floods everyone" `Quick test_floods_everyone;
          Alcotest.test_case "faster than NW" `Quick test_faster_than_neighbor_watch;
          Alcotest.test_case "adopts fake messages" `Quick test_adopts_fake_messages;
          Alcotest.test_case "repeats bound broadcasts" `Quick test_repeats_bound_broadcasts;
          Alcotest.test_case "crash can disconnect" `Quick test_crash_can_disconnect;
          Alcotest.test_case "direct API" `Quick test_direct_api_machines;
        ] );
    ]
