(* End-to-end tests for NeighborWatchRB: correct dissemination on the
   analytic grid and on random Euclidean deployments, fault containment
   (liars, jammers), the square catch-up rule, and the pipelining claim. *)

let message = Bitvec.of_string "1011"

let run_scenario ?(seed = 1) ?(votes = 1) ?(faults = Scenario.No_faults) ?(msg = message)
    ?(n = 150) ?(map = 10.0) ?(radius = 3.0) ?(radio = Scenario.Friis) ?square_side
    ?(pipelined = true) () =
  let spec =
    {
      Scenario.default with
      map_w = map;
      map_h = map;
      deployment = Scenario.Uniform n;
      radio;
      radius;
      message = msg;
      protocol = Scenario.Neighbor_watch { votes };
      faults;
      square_side;
      pipelined;
      seed;
    }
  in
  (spec, Scenario.run spec)

let test_grid_broadcast_completes () =
  let spec =
    {
      Scenario.default with
      map_w = 12.0;
      map_h = 12.0;
      deployment = Scenario.Grid;
      radio = Scenario.Disk_linf;
      radius = 2.0;
      square_side = Some (Squares.analytic_side ~radius:2.0);
      message;
    }
  in
  let s = Scenario.summarize (Scenario.run spec) in
  Alcotest.(check (float 1e-9)) "everyone completes" 1.0 s.Scenario.completion_rate;
  Alcotest.(check (float 1e-9)) "everyone correct" 1.0 s.Scenario.correct_rate;
  Alcotest.(check bool) "no cap" false s.Scenario.hit_cap

let test_uniform_broadcast_completes () =
  let _, result = run_scenario () in
  let s = Scenario.summarize result in
  Alcotest.(check bool) "completion >= 99%" true (s.Scenario.completion_rate >= 0.99);
  Alcotest.(check (float 1e-9)) "all delivered are correct" 1.0 s.Scenario.correct_of_delivered

let test_deliveries_never_fake_without_liars () =
  (* Across several seeds, honest runs deliver only the authentic message. *)
  List.iter
    (fun seed ->
      let _, result = run_scenario ~seed () in
      let s = Scenario.summarize result in
      Alcotest.(check int)
        (Printf.sprintf "seed %d" seed)
        s.Scenario.delivered_any s.Scenario.delivered_correct)
    [ 2; 3; 4; 5; 6 ]

let test_two_voting_requires_two_providers () =
  (* A three-node line: source, then two relays in consecutive squares.
     The last relay hears only one square, so with votes = 2 it can commit
     only... from the source if in range; place it out of source range. *)
  let _, result1 = run_scenario ~votes:1 ~n:60 ~map:8.0 () in
  let _, result2 = run_scenario ~votes:2 ~n:60 ~map:8.0 () in
  let s1 = Scenario.summarize result1 and s2 = Scenario.summarize result2 in
  Alcotest.(check bool) "2-voting never beats 1-voting completion" true
    (s2.Scenario.completion_rate <= s1.Scenario.completion_rate +. 1e-9);
  Alcotest.(check (float 1e-9)) "2-voting stays correct" 1.0 s2.Scenario.correct_of_delivered

let test_crash_reduces_completion_gracefully () =
  let _, result = run_scenario ~faults:(Scenario.Crash 0.5) ~n:120 () in
  let s = Scenario.summarize result in
  (* Whatever completes must still be correct. *)
  Alcotest.(check (float 1e-9)) "correct" 1.0 s.Scenario.correct_of_delivered

let test_jamming_delays_but_completes () =
  let _, no_jam = run_scenario ~n:120 () in
  let _, jam =
    run_scenario ~n:120
      ~faults:(Scenario.Jamming { fraction = 0.1; budget = 40; probability = 0.2 })
      ()
  in
  let s0 = Scenario.summarize no_jam and s1 = Scenario.summarize jam in
  Alcotest.(check bool) "jamming still completes" true (s1.Scenario.completion_rate >= 0.99);
  Alcotest.(check bool) "jamming costs time" true (s1.Scenario.rounds > s0.Scenario.rounds);
  Alcotest.(check (float 1e-9)) "jamming cannot corrupt" 1.0 s1.Scenario.correct_of_delivered

let test_lying_contained_at_low_fraction () =
  let _, result = run_scenario ~faults:(Scenario.Lying 0.03) ~seed:3 () in
  let s = Scenario.summarize result in
  Alcotest.(check bool) "most deliveries correct" true (s.Scenario.correct_of_delivered >= 0.9)

let test_lying_wins_eventually () =
  (* With enough liars, fake messages do spread (the steep drop-off of
     Figure 6); at 35% some honest nodes must have adopted the fake. *)
  let corrupted =
    List.exists
      (fun seed ->
        let _, result = run_scenario ~faults:(Scenario.Lying 0.35) ~seed () in
        let s = Scenario.summarize result in
        s.Scenario.delivered_correct < s.Scenario.delivered_any)
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "heavy lying corrupts some node" true corrupted

let test_stalled_run_terminates_early () =
  let spec, result = run_scenario ~faults:(Scenario.Lying 0.35) ~seed:1 () in
  Alcotest.(check bool) "wedged run cut before cap" true
    (result.Scenario.engine.Engine.rounds_used < spec.Scenario.cap)

let test_liars_count_as_delivered_fake () =
  let _, result = run_scenario ~faults:(Scenario.Lying 0.10) ~seed:2 () in
  (* Liars are excluded from the honest set and hence from the metrics. *)
  let s = Scenario.summarize result in
  Alcotest.(check bool) "honest set shrank" true (s.Scenario.honest_nodes < 150 - 1)

(* --- direct-API tests (no Scenario) --------------------------------- *)

let grid_ctx_and_machines ~side ~radius ~msg ~liars =
  let deployment = Deployment.grid ~width:side ~height:side in
  let topology = Topology.build deployment (Propagation.disk_linf radius) in
  let source = Deployment.center_node deployment in
  let config =
    {
      (Neighbor_watch.analytic_config ~radius ~msg_len:(Bitvec.length msg)) with
      Neighbor_watch.catchup_failures = 10;
    }
  in
  let ctx = Neighbor_watch.make_ctx config ~topology ~source in
  let fake = Bitvec.init (Bitvec.length msg) (fun i -> not (Bitvec.get msg i)) in
  let machines =
    Array.init (Deployment.size deployment) (fun i ->
        if i = source then Neighbor_watch.machine ctx i (Neighbor_watch.Source msg)
        else if List.mem i liars then Neighbor_watch.machine ctx i (Neighbor_watch.Liar fake)
        else Neighbor_watch.machine ctx i Neighbor_watch.Relay)
  in
  (ctx, topology, source, machines)

let test_committed_bits_and_progress () =
  let msg = Bitvec.of_string "110" in
  let ctx, topology, source, machines =
    grid_ctx_and_machines ~side:7 ~radius:2.0 ~msg ~liars:[]
  in
  let n = Topology.size topology in
  let before = Neighbor_watch.progress ctx in
  let waiters = Array.init n (fun i -> i <> source) in
  let result = Engine.run ~topology ~machines ~waiters ~cap:200_000 () in
  Alcotest.(check bool) "progress grew" true (Neighbor_watch.progress ctx > before);
  for i = 0 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "node %d committed the message" i)
      (Bitvec.to_string msg)
      (Bitvec.to_string (Neighbor_watch.committed_bits ctx i));
    match result.Engine.delivered.(i) with
    | Some bits -> Alcotest.(check bool) "delivered = message" true (Bitvec.equal bits msg)
    | None -> Alcotest.fail "grid node did not deliver"
  done

let test_liar_vetoed_when_square_has_honest_node () =
  (* R = 4 on the grid gives analytic squares of side 2 holding 4 nodes
     each; a single liar per square is always vetoed, so no honest node
     ever delivers the fake message (Theorem 3's guarantee). *)
  let msg = Bitvec.of_string "1010" in
  let ctx, topology, source, machines =
    grid_ctx_and_machines ~side:9 ~radius:4.0 ~msg ~liars:[ 1; 30 ]
  in
  ignore ctx;
  let n = Topology.size topology in
  let waiters = Array.init n (fun i -> i <> source && i <> 1 && i <> 30) in
  let result = Engine.run ~idle_stop:20_000 ~topology ~machines ~waiters ~cap:500_000 () in
  for i = 0 to n - 1 do
    if i <> 1 && i <> 30 then begin
      match result.Engine.delivered.(i) with
      | Some bits ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d not corrupted" i)
          true (Bitvec.equal bits msg)
      | None -> Alcotest.fail "honest node did not deliver"
    end
  done

let test_catchup_rescues_asymmetric_jam () =
  (* A scripted jammer sits where it can jam R6 for part of a square only;
     without the catch-up rule the square can deadlock (DESIGN.md).  With
     it, the broadcast still completes. *)
  let msg = Bitvec.of_string "1011" in
  let side = 9 in
  let radius = 4.0 in
  let deployment = Deployment.grid ~width:side ~height:side in
  let topology = Topology.build deployment (Propagation.disk_linf radius) in
  let source = Deployment.center_node deployment in
  let config =
    {
      (Neighbor_watch.analytic_config ~radius ~msg_len:(Bitvec.length msg)) with
      Neighbor_watch.catchup_failures = 8;
    }
  in
  let ctx = Neighbor_watch.make_ctx config ~topology ~source in
  let n = Deployment.size deployment in
  let jammer_id = (side * side) - 1 (* a corner: in range of some square members only *) in
  let budget = Budget.create 400 in
  let machines =
    Array.init n (fun i ->
        if i = source then Neighbor_watch.machine ctx i (Neighbor_watch.Source msg)
        else if i = jammer_id then
          Jammer.scripted (fun ~round:_ ~phase -> phase = 5) ~budget
        else Neighbor_watch.machine ctx i Neighbor_watch.Relay)
  in
  let waiters = Array.init n (fun i -> i <> source && i <> jammer_id) in
  let result = Engine.run ~idle_stop:30_000 ~topology ~machines ~waiters ~cap:2_000_000 () in
  let delivered_all =
    Array.for_all (fun x -> x) (Array.mapi (fun i w -> (not w) || result.Engine.delivered.(i) <> None) waiters)
  in
  Alcotest.(check bool) "all honest delivered despite R6 jamming" true delivered_all;
  Array.iteri
    (fun i d ->
      match d with
      | Some bits when waiters.(i) ->
        Alcotest.(check bool) "authentic" true (Bitvec.equal bits msg)
      | Some _ | None -> ())
    result.Engine.delivered

let test_pipelining_beats_store_and_forward () =
  let long = Bitvec.random (Rng.create 9) 12 in
  let _, piped = run_scenario ~msg:long ~n:120 ~map:12.0 () in
  let _, naive = run_scenario ~msg:long ~n:120 ~map:12.0 ~pipelined:false () in
  let sp = Scenario.summarize piped and sn = Scenario.summarize naive in
  Alcotest.(check bool) "both complete" true
    (sp.Scenario.completion_rate >= 0.99 && sn.Scenario.completion_rate >= 0.99);
  Alcotest.(check bool) "pipelining is materially faster" true
    (float_of_int sn.Scenario.rounds >= 1.5 *. float_of_int sp.Scenario.rounds)

let test_realistic_channel () =
  (* Capture effect plus 1% packet loss (the WSNet-like channel): the
     protocol still completes — lost packets only look like collisions,
     which the 2Bit layer already treats as activity and retries. *)
  let spec =
    {
      Scenario.default with
      map_w = 10.0;
      map_h = 10.0;
      deployment = Scenario.Uniform 150;
      radius = 3.0;
      channel = Channel.realistic;
      seed = 4;
    }
  in
  let s = Scenario.summarize (Scenario.run spec) in
  Alcotest.(check bool) "completes under loss and capture" true
    (s.Scenario.completion_rate >= 0.99);
  Alcotest.(check (float 1e-9)) "still authenticated" 1.0 s.Scenario.correct_of_delivered

let test_liar_yields_in_mixed_square () =
  (* A liar alone among honest square-mates gets vetoed, gives up, and ends
     up relaying — and even delivering — the true message itself. *)
  let msg = Bitvec.of_string "1010" in
  let ctx, topology, source, machines =
    grid_ctx_and_machines ~side:9 ~radius:4.0 ~msg ~liars:[ 5 ]
  in
  ignore ctx;
  let n = Topology.size topology in
  let waiters = Array.init n (fun i -> i <> source && i <> 5) in
  let result = Engine.run ~idle_stop:20_000 ~topology ~machines ~waiters ~cap:500_000 () in
  (match result.Engine.delivered.(5) with
  | Some bits ->
    Alcotest.(check bool) "the liar itself converges to the truth" true (Bitvec.equal bits msg)
  | None -> Alcotest.fail "yielded liar never delivered");
  Array.iteri
    (fun i delivered ->
      if waiters.(i) then begin
        match delivered with
        | Some bits -> Alcotest.(check bool) "honest unaffected" true (Bitvec.equal bits msg)
        | None -> Alcotest.fail (Printf.sprintf "node %d missed the broadcast" i)
      end)
    result.Engine.delivered

let test_square_side_must_reach_neighbors () =
  (* Squares must be small enough that members hear each other and every
     node of an adjacent square; with side 2R the meta-node abstraction
     breaks down on a Euclidean radio and the broadcast no longer blankets
     the map. *)
  let _, good = run_scenario ~n:200 ~radius:3.0 () in
  let _, bad = run_scenario ~n:200 ~radius:3.0 ~square_side:6.0 () in
  let sg = Scenario.summarize good and sb = Scenario.summarize bad in
  Alcotest.(check bool) "R/3 side blankets the map" true (sg.Scenario.completion_rate >= 0.99);
  Alcotest.(check bool) "2R side degrades" true
    (sb.Scenario.completion_rate < sg.Scenario.completion_rate)

let () =
  Alcotest.run "neighbor_watch"
    [
      ( "dissemination",
        [
          Alcotest.test_case "grid broadcast completes" `Quick test_grid_broadcast_completes;
          Alcotest.test_case "uniform broadcast completes" `Quick
            test_uniform_broadcast_completes;
          Alcotest.test_case "no fake deliveries without liars" `Quick
            test_deliveries_never_fake_without_liars;
          Alcotest.test_case "2-voting conservative" `Quick test_two_voting_requires_two_providers;
          Alcotest.test_case "committed bits and progress" `Quick test_committed_bits_and_progress;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash graceful" `Quick test_crash_reduces_completion_gracefully;
          Alcotest.test_case "jamming delays, completes" `Quick test_jamming_delays_but_completes;
          Alcotest.test_case "lying contained at 3%" `Quick test_lying_contained_at_low_fraction;
          Alcotest.test_case "heavy lying corrupts" `Quick test_lying_wins_eventually;
          Alcotest.test_case "wedged run cut early" `Quick test_stalled_run_terminates_early;
          Alcotest.test_case "liar bookkeeping" `Quick test_liars_count_as_delivered_fake;
          Alcotest.test_case "liar vetoed inside square" `Quick
            test_liar_vetoed_when_square_has_honest_node;
          Alcotest.test_case "catch-up under asymmetric jam" `Quick
            test_catchup_rescues_asymmetric_jam;
          Alcotest.test_case "realistic channel" `Quick test_realistic_channel;
          Alcotest.test_case "liar yields in mixed square" `Quick
            test_liar_yields_in_mixed_square;
        ] );
      ( "design",
        [
          Alcotest.test_case "pipelining beats store-and-forward" `Quick
            test_pipelining_beats_store_and_forward;
          Alcotest.test_case "square side sizing" `Quick test_square_side_must_reach_neighbors;
        ] );
    ]
