(* End-to-end tests for MultiPathRB: authenticated dissemination via
   SOURCE/COMMIT/HEARD voting, tolerance tuning, liar behaviour, and the
   HEARD relay cap. *)

let message = Bitvec.of_string "101"

let run ?(seed = 1) ?(tolerance = 1) ?(faults = Scenario.No_faults) ?(n = 80) ?(map = 8.0)
    ?(radius = 2.0) ?(relay_limit = Some 4) ?(radio = Scenario.Friis) () =
  let spec =
    {
      Scenario.default with
      map_w = map;
      map_h = map;
      deployment = Scenario.Uniform n;
      radio;
      radius;
      message;
      protocol = Scenario.Multi_path { tolerance };
      faults;
      heard_relay_limit = relay_limit;
      seed;
    }
  in
  (spec, Scenario.run spec)

let test_completes_and_correct () =
  let _, result = run () in
  let s = Scenario.summarize result in
  Alcotest.(check bool) "completes" true (s.Scenario.completion_rate >= 0.95);
  Alcotest.(check (float 1e-9)) "all correct" 1.0 s.Scenario.correct_of_delivered

let test_grid_exact () =
  let spec =
    {
      Scenario.default with
      map_w = 8.0;
      map_h = 8.0;
      deployment = Scenario.Grid;
      radio = Scenario.Disk_linf;
      radius = 2.0;
      message;
      protocol = Scenario.Multi_path { tolerance = 1 };
      heard_relay_limit = Some 4;
    }
  in
  let s = Scenario.summarize (Scenario.run spec) in
  Alcotest.(check bool) "grid completes" true (s.Scenario.completion_rate >= 0.99);
  Alcotest.(check (float 1e-9)) "grid correct" 1.0 s.Scenario.correct_of_delivered

let test_multiple_seeds_all_correct () =
  List.iter
    (fun seed ->
      let _, result = run ~seed () in
      let s = Scenario.summarize result in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: delivered = correct" seed)
        s.Scenario.delivered_any s.Scenario.delivered_correct)
    [ 2; 3; 4 ]

let test_higher_tolerance_harder_completion () =
  let _, low = run ~tolerance:1 ~n:60 () in
  let _, high = run ~tolerance:6 ~relay_limit:(Some 9) ~n:60 () in
  let sl = Scenario.summarize low and sh = Scenario.summarize high in
  Alcotest.(check bool) "t=6 completes no more than t=1" true
    (sh.Scenario.completion_rate <= sl.Scenario.completion_rate +. 1e-9)

let test_tolerance_zero_is_fragile () =
  (* With t = 0 a single COMMIT suffices, so a lying neighbour corrupts
     immediately: the attack machinery works. *)
  let corrupted =
    List.exists
      (fun seed ->
        let _, result = run ~tolerance:0 ~faults:(Scenario.Lying 0.15) ~seed () in
        let s = Scenario.summarize result in
        s.Scenario.delivered_correct < s.Scenario.delivered_any)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "t=0 gets corrupted by liars" true corrupted

let test_tolerance_resists_light_lying () =
  let _, result = run ~tolerance:2 ~relay_limit:(Some 5) ~faults:(Scenario.Lying 0.04) ~seed:2 () in
  let s = Scenario.summarize result in
  Alcotest.(check bool) "mostly correct under 4% liars" true
    (s.Scenario.correct_of_delivered >= 0.9)

let test_relay_cap_reduces_traffic () =
  let _, capped = run ~relay_limit:(Some 2) () in
  let _, generous = run ~relay_limit:(Some 12) () in
  let sc = Scenario.summarize capped and sg = Scenario.summarize generous in
  Alcotest.(check bool) "cap saves broadcasts" true
    (sc.Scenario.total_broadcasts < sg.Scenario.total_broadcasts)

let test_progress_and_committed_bits () =
  let deployment = Deployment.grid ~width:7 ~height:7 in
  let topology = Topology.build deployment (Propagation.disk_linf 2.0) in
  let source = Deployment.center_node deployment in
  let config =
    {
      (Multi_path.default_config ~radius:2.0 ~tolerance:1 ~msg_len:2) with
      Multi_path.heard_relay_limit = Some 3;
    }
  in
  let ctx = Multi_path.make_ctx config ~topology ~source in
  let msg = Bitvec.of_string "10" in
  let n = Topology.size topology in
  let machines =
    Array.init n (fun i ->
        if i = source then Multi_path.machine ctx i (Multi_path.Source msg)
        else Multi_path.machine ctx i Multi_path.Relay)
  in
  let before = Multi_path.progress ctx in
  let waiters = Array.init n (fun i -> i <> source) in
  let result = Engine.run ~idle_stop:50_000 ~topology ~machines ~waiters ~cap:3_000_000 () in
  Alcotest.(check bool) "progress grew" true (Multi_path.progress ctx > before);
  Alcotest.(check bool) "no cap" false result.Engine.hit_cap;
  for i = 0 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "node %d committed" i)
      "10"
      (Bitvec.to_string (Multi_path.committed_bits ctx i))
  done

let test_sources_beyond_range_need_votes () =
  (* Sanity on the voting path: nodes outside the source's sense range can
     only commit through COMMIT/HEARD quorums, and they do. *)
  let _, result = run ~map:12.0 ~n:180 ~seed:5 () in
  let sense = Propagation.sense_range (Propagation.friis 2.0) in
  let far_delivered = ref 0 and far_total = ref 0 in
  let source_pos = Topology.position result.Scenario.topology result.Scenario.source in
  Array.iteri
    (fun i delivered ->
      if i <> result.Scenario.source then begin
        let pos = Topology.position result.Scenario.topology i in
        if Point.dist_l2 pos source_pos > sense then begin
          incr far_total;
          if delivered <> None then incr far_delivered
        end
      end)
    result.Scenario.engine.Engine.delivered;
  Alcotest.(check bool) "there are far nodes" true (!far_total > 0);
  Alcotest.(check bool) "most far nodes committed via voting" true
    (float_of_int !far_delivered >= 0.9 *. float_of_int !far_total)

let () =
  Alcotest.run "multi_path"
    [
      ( "dissemination",
        [
          Alcotest.test_case "completes and correct" `Quick test_completes_and_correct;
          Alcotest.test_case "grid exact" `Quick test_grid_exact;
          Alcotest.test_case "multiple seeds correct" `Quick test_multiple_seeds_all_correct;
          Alcotest.test_case "voting beyond source range" `Quick
            test_sources_beyond_range_need_votes;
          Alcotest.test_case "progress and committed bits" `Quick
            test_progress_and_committed_bits;
        ] );
      ( "tolerance",
        [
          Alcotest.test_case "higher t, harder completion" `Quick
            test_higher_tolerance_harder_completion;
          Alcotest.test_case "t=0 fragile" `Quick test_tolerance_zero_is_fragile;
          Alcotest.test_case "t=2 resists light lying" `Quick test_tolerance_resists_light_lying;
          Alcotest.test_case "relay cap reduces traffic" `Quick test_relay_cap_reduces_traffic;
        ] );
    ]
