(* Tests for the 2Bit-Protocol (Theorem 1).

   The heart of this suite is an exhaustive check of the theorem over a
   closed-form model of one neighbourhood: one honest sender, [k] honest
   receivers, and an adversary that may inject activity into any subset of
   the six rounds (the adversary cannot remove activity — silence cannot be
   forged).  For all 2^6 adversary patterns, all four bit pairs and several
   receiver counts, we check:

   - Authenticity: a receiver that returns Success returns exactly the bits
     the sender sent.
   - Termination: if the sender returns Success, every receiver returned
     Success.
   - Energy: if anyone fails, the adversary was active in at least one
     round. *)

let drive ~b1 ~b2 ~receivers ~adversary =
  let sender = Two_bit.Sender.create ~b1 ~b2 in
  let rxs = List.init receivers (fun _ -> Two_bit.Receiver.create ()) in
  for phase = 0 to 5 do
    let sender_tx = Two_bit.Sender.act sender ~phase in
    let rx_txs = List.map (fun r -> Two_bit.Receiver.act r ~phase) rxs in
    let adv_tx = adversary phase in
    (* Everyone is mutually in range: activity on the channel is the OR of
       all transmissions; a transmitter does not hear itself. *)
    let any l = List.exists (fun b -> b) l in
    let sender_hears = any rx_txs || adv_tx in
    Two_bit.Sender.observe sender ~phase ~activity:sender_hears;
    List.iteri
      (fun i r ->
        let others = List.filteri (fun j _ -> j <> i) rx_txs in
        let hears = sender_tx || any others || adv_tx in
        Two_bit.Receiver.observe r ~phase ~activity:hears)
      rxs
  done;
  let sender_outcome =
    match Two_bit.Sender.outcome sender with
    | Some o -> o
    | None -> Alcotest.fail "sender outcome missing"
  in
  let receiver_outcomes =
    List.map
      (fun r ->
        match Two_bit.Receiver.outcome r with
        | Some o -> o
        | None -> Alcotest.fail "receiver outcome missing")
      rxs
  in
  (sender_outcome, receiver_outcomes)

let test_clean_exchange () =
  List.iter
    (fun (b1, b2) ->
      let sender_outcome, receivers =
        drive ~b1 ~b2 ~receivers:3 ~adversary:(fun _ -> false)
      in
      Alcotest.(check bool) "sender succeeds" true (sender_outcome = Two_bit.Success);
      List.iter
        (fun (outcome, bits) ->
          Alcotest.(check bool) "receiver succeeds" true (outcome = Two_bit.Success);
          Alcotest.(check (pair bool bool)) "bits delivered" (b1, b2) bits)
        receivers)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_theorem1_exhaustive () =
  let cases = ref 0 in
  for adv_mask = 0 to 63 do
    let adversary phase = adv_mask land (1 lsl phase) <> 0 in
    List.iter
      (fun (b1, b2) ->
        List.iter
          (fun receivers ->
            incr cases;
            let sender_outcome, receiver_outcomes =
              drive ~b1 ~b2 ~receivers ~adversary
            in
            (* Authenticity. *)
            List.iter
              (fun (outcome, bits) ->
                if outcome = Two_bit.Success then
                  Alcotest.(check (pair bool bool))
                    (Printf.sprintf "authenticity (mask %d)" adv_mask)
                    (b1, b2) bits)
              receiver_outcomes;
            (* Termination. *)
            if sender_outcome = Two_bit.Success then
              List.iter
                (fun (outcome, _) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "termination (mask %d)" adv_mask)
                    true (outcome = Two_bit.Success))
                receiver_outcomes;
            (* Energy. *)
            let anyone_failed =
              sender_outcome = Two_bit.Failure
              || List.exists (fun (o, _) -> o = Two_bit.Failure) receiver_outcomes
            in
            if anyone_failed then
              Alcotest.(check bool)
                (Printf.sprintf "energy (mask %d)" adv_mask)
                true (adv_mask <> 0))
          [ 1; 2; 5 ])
      [ (false, false); (false, true); (true, false); (true, true) ]
  done;
  Alcotest.(check int) "covered all cases" (64 * 4 * 3) !cases

let test_bit_flip_is_never_accepted () =
  (* The adversary injects activity in R1 to turn a sent 0 into a received
     1; the sender detects the bogus acknowledgements and vetoes. *)
  let sender_outcome, receivers =
    drive ~b1:false ~b2:false ~receivers:2 ~adversary:(fun phase -> phase = 0)
  in
  Alcotest.(check bool) "sender vetoes" true (sender_outcome = Two_bit.Failure);
  List.iter
    (fun (outcome, _) ->
      Alcotest.(check bool) "no receiver accepts the flip" true (outcome = Two_bit.Failure))
    receivers

let test_jam_r5_fails_receivers () =
  let _, receivers = drive ~b1:true ~b2:false ~receivers:2 ~adversary:(fun p -> p = 4) in
  List.iter
    (fun (outcome, _) ->
      Alcotest.(check bool) "R5 jam fails receivers" true (outcome = Two_bit.Failure))
    receivers

let test_jam_r6_fails_sender () =
  let sender_outcome, receivers =
    drive ~b1:true ~b2:true ~receivers:2 ~adversary:(fun p -> p = 5)
  in
  Alcotest.(check bool) "R6 jam fails sender" true (sender_outcome = Two_bit.Failure);
  (* Receivers decided before R6 and keep their (correct) bits. *)
  List.iter
    (fun (outcome, bits) ->
      Alcotest.(check bool) "receivers already succeeded" true (outcome = Two_bit.Success);
      Alcotest.(check (pair bool bool)) "correct bits" (true, true) bits)
    receivers

let test_sender_vetoed_flag () =
  let sender = Two_bit.Sender.create ~b1:true ~b2:false in
  (* No acknowledgements arrive for the sent 1: mismatch. *)
  for phase = 0 to 5 do
    ignore (Two_bit.Sender.act sender ~phase);
    Two_bit.Sender.observe sender ~phase ~activity:false
  done;
  Alcotest.(check bool) "vetoed" true (Two_bit.Sender.vetoed sender);
  Alcotest.(check bool) "failure" true (Two_bit.Sender.outcome sender = Some Two_bit.Failure)

let test_blocker_vetoes_data () =
  let blocker = Two_bit.Blocker.create () in
  Alcotest.(check bool) "silent before" false (Two_bit.Blocker.act blocker ~phase:4);
  Two_bit.Blocker.observe blocker ~phase:0 ~activity:true;
  Alcotest.(check bool) "saw data" true (Two_bit.Blocker.saw_data blocker);
  Alcotest.(check bool) "vetoes R5" true (Two_bit.Blocker.act blocker ~phase:4);
  Alcotest.(check bool) "vetoes R6" true (Two_bit.Blocker.act blocker ~phase:5);
  Alcotest.(check bool) "never transmits in data rounds" false (Two_bit.Blocker.act blocker ~phase:0)

let test_blocker_ignores_acks () =
  let blocker = Two_bit.Blocker.create () in
  Two_bit.Blocker.observe blocker ~phase:1 ~activity:true;
  Two_bit.Blocker.observe blocker ~phase:3 ~activity:true;
  Alcotest.(check bool) "ack rounds are not data" false (Two_bit.Blocker.saw_data blocker);
  Alcotest.(check bool) "no veto" false (Two_bit.Blocker.act blocker ~phase:4)

let test_outcome_not_ready_early () =
  let sender = Two_bit.Sender.create ~b1:true ~b2:true in
  Alcotest.(check bool) "sender pending" true (Two_bit.Sender.outcome sender = None);
  let receiver = Two_bit.Receiver.create () in
  Alcotest.(check bool) "receiver pending" true (Two_bit.Receiver.outcome receiver = None)

let test_bad_phase_rejected () =
  let sender = Two_bit.Sender.create ~b1:true ~b2:true in
  Alcotest.(check bool) "act phase 6 rejected" true
    (try
       ignore (Two_bit.Sender.act sender ~phase:6);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "two_bit"
    [
      ( "protocol",
        [
          Alcotest.test_case "clean exchange, all bit pairs" `Quick test_clean_exchange;
          Alcotest.test_case "Theorem 1, exhaustive adversaries" `Quick test_theorem1_exhaustive;
          Alcotest.test_case "bit flip never accepted" `Quick test_bit_flip_is_never_accepted;
          Alcotest.test_case "R5 jam fails receivers" `Quick test_jam_r5_fails_receivers;
          Alcotest.test_case "R6 jam fails sender only" `Quick test_jam_r6_fails_sender;
          Alcotest.test_case "sender veto flag" `Quick test_sender_vetoed_flag;
          Alcotest.test_case "outcomes not ready early" `Quick test_outcome_not_ready_early;
          Alcotest.test_case "bad phase rejected" `Quick test_bad_phase_rejected;
        ] );
      ( "blocker",
        [
          Alcotest.test_case "vetoes on data activity" `Quick test_blocker_vetoes_data;
          Alcotest.test_case "ignores acknowledgements" `Quick test_blocker_ignores_acks;
        ] );
    ]
