type origin = int * int
type item = { origin : origin; value : bool; points : Point.t list }

let distinct_origins ~value items =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun item -> if item.value = value then Hashtbl.replace seen item.origin ())
    items;
  Hashtbl.length seen

let count_in_window items ~x0 ~y0 ~size =
  let inside (p : Point.t) =
    p.x >= x0 -. 1e-9 && p.x <= x0 +. size +. 1e-9 && p.y >= y0 -. 1e-9
    && p.y <= y0 +. size +. 1e-9
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun item ->
      if (not (Hashtbl.mem seen item.origin)) && List.for_all inside item.points then
        Hashtbl.replace seen item.origin ())
    items;
  Hashtbl.length seen

let quorum ~radius ~need ~value items =
  let voting = List.filter (fun item -> item.value = value) items in
  if need <= 0 then true
  else if distinct_origins ~value voting < need then false
  else begin
    let size = 2.0 *. radius in
    let points = List.concat_map (fun item -> item.points) voting in
    (* A minimal window has its left edge at some point's x and its top
       edge at some point's y, so anchoring candidates there is complete. *)
    let xs = List.sort_uniq compare (List.map (fun (p : Point.t) -> p.x) points) in
    let ys = List.sort_uniq compare (List.map (fun (p : Point.t) -> p.y) points) in
    List.exists
      (fun x0 ->
        List.exists (fun y0 -> count_in_window voting ~x0 ~y0 ~size >= need) ys)
      xs
  end
