(** On-air payloads.

    The bit-by-bit protocols of the paper never inspect payload contents:
    every decision is made from carrier sensing alone (silence vs activity),
    because a Byzantine device can forge any content but cannot forge
    silence.  [Blip] stands for any such energy burst — a data mark, an
    acknowledgement, a veto, or jamming noise.  [Packet] carries a whole
    message in one transmission and is used only by the unauthenticated
    epidemic baseline, which does trust contents. *)

type t =
  | Blip
  | Packet of Bitvec.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
