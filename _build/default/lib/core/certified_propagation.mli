(** The certified propagation algorithm (CPA) of Koo (PODC'04) and
    Bhandari–Vaidya (PODC'05) — the protocol MultiPathRB descends from.

    CPA works in a much friendlier model than this paper's: single-hop
    communication is reliable and authenticated (no jamming, no spoofing,
    no collisions), so a whole message travels in one round and carries its
    sender's identity.  A node commits when it hears the message directly
    from the source, or when [t + 1] already-committed nodes inside one
    common neighbourhood vouch for it ({!Voting.quorum} again — Byzantine
    nodes can lie about their own commitment but cannot impersonate
    others, and at most [t] of any neighbourhood lie).

    CPA is *not* runnable over a Byzantine radio — that gap is precisely
    the paper's contribution — but it is the natural baseline for what the
    voting layer costs once the radio is hardened.  The A5 ablation
    compares its round count with MultiPathRB's on identical topologies.

    The module brings its own synchronous reliable-message engine
    (messages from all neighbours arrive each round, attributed to their
    true senders), since the radio {!Engine} would be the wrong substrate
    by design. *)

type config = {
  radius : float;  (** neighbourhood radius of the commit rule *)
  tolerance : int;  (** t *)
}

type role = Source | Honest | Liar of Bitvec.t

type result = {
  rounds : int;  (** rounds until quiescence *)
  committed : Bitvec.t option array;  (** per-node committed value *)
  messages : int;  (** total messages sent *)
}

val run :
  config -> topology:Topology.t -> source:Node.id -> message:Bitvec.t ->
  roles:role array -> max_rounds:int -> result
(** Synchronous execution: each round, every node that committed in the
    previous round announces its value to all its decode neighbours; liars
    announce their fake value from the start and never relay.  Stops at
    quiescence (no new commitment) or [max_rounds]. *)
