(** MultiPathRB (Section 4, Level 2): optimally resilient authenticated
    broadcast by multi-path voting.

    Every node owns its own TDMA slot and runs the 1Hop-Protocol towards
    all its neighbours, streaming self-delimiting {!Frame} messages.  The
    source streams ⟨SOURCE, bᵢ⟩ frames; its direct neighbours commit from
    them (authenticated by Theorem 2).  A node that commits bit [i] streams
    ⟨COMMIT, bᵢ⟩; a node that receives a COMMIT from [v] streams
    ⟨HEARD, v, bᵢ⟩.  Everyone else commits through the {!Voting.quorum}
    rule: [t + 1] pieces of evidence with distinct origins inside one
    common neighbourhood.  Tolerates up to [t < R(2R+1)/2] Byzantine nodes
    per neighbourhood — the Koo optimum — at a substantial message cost
    (the paper finds it orders of magnitude slower than epidemic flooding).

    Senders are identified by schedule slot, so spoofing another node
    requires transmitting in its slot, where the honest owner vetoes.

    The [`Liar] role reproduces the paper's lying experiments: the device
    is pre-committed to a fake message, broadcasts COMMIT frames for it,
    and never relays HEARD messages from correct nodes. *)

type config = {
  radius : float;  (** neighbourhood radius R used by the commit rule *)
  tolerance : int;  (** t: the protocol commits on t+1 concurring origins *)
  msg_len : int;
  coord_step : float;  (** quantisation of positions in HEARD frames *)
  heard_relay_limit : int option;
      (** optional cap on HEARD frames relayed per bit; [None] (the
          protocol as written) relays every COMMIT heard.  The scaled-down
          benchmark harness uses a cap, documented in DESIGN.md. *)
}

val default_config : radius:float -> tolerance:int -> msg_len:int -> config

type ctx

val make_ctx : config -> topology:Topology.t -> source:Node.id -> ctx
val schedule : ctx -> Schedule.t

type role = Source of Bitvec.t | Relay | Liar of Bitvec.t

val machine : ctx -> Node.id -> role -> Msg.t Engine.machine
val committed_bits : ctx -> Node.id -> Bitvec.t

val progress : ctx -> int
(** Monotone progress counter (committed bits plus stream bits received),
    used to cut wedged simulations short; see
    {!Neighbor_watch.progress}. *)
