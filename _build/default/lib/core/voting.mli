(** The MultiPathRB commit rule (Section 4, Level 2).

    A node may commit to a bit value once it holds at least [t + 1] pieces
    of evidence — COMMIT messages and HEARD messages — whose senders and
    causes all lie in one common neighbourhood [N]: since at most [t] nodes
    of any neighbourhood are Byzantine, at least one piece must then come
    from an honest node, which authenticates the value.

    Evidence items are keyed by their *origin* (the committing node: the
    sender of a COMMIT, or the cause of a HEARD), because [t + 1] copies
    must arrive through node-disjoint paths; multiple items from the same
    origin count once.  Each item carries the set of points that must fit
    in [N]: the origin's position, plus the witness's position for HEARD
    evidence.

    A point set fits some L-infinity ball of radius [R] iff it fits a
    [2R × 2R] window; [quorum] scans candidate windows anchored at evidence
    coordinates.  (For the Euclidean simulation model this box test is the
    standard L-infinity approximation of the neighbourhood; the analytic
    model is exactly L-infinity.) *)

type origin = int * int
(** Quantised position used as the identity of a committing node. *)

type item = { origin : origin; value : bool; points : Point.t list }

val quorum : radius:float -> need:int -> value:bool -> item list -> bool
(** [quorum ~radius ~need ~value items]: is there a set of at least [need]
    items with distinct origins, all carrying [value], whose point sets fit
    together in one L-infinity ball of radius [radius]? *)

val distinct_origins : value:bool -> item list -> int
(** Number of distinct origins voting for [value] (the cheap pre-check). *)
