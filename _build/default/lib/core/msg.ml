type t = Blip | Packet of Bitvec.t

let equal a b =
  match (a, b) with
  | Blip, Blip -> true
  | Packet x, Packet y -> Bitvec.equal x y
  | (Blip | Packet _), _ -> false

let pp fmt = function
  | Blip -> Format.pp_print_string fmt "blip"
  | Packet bits -> Format.fprintf fmt "packet(%a)" Bitvec.pp bits
