lib/core/frame.mli: Bitvec Point
