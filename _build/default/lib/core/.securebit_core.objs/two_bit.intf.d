lib/core/two_bit.mli:
