lib/core/one_hop.ml: Bitvec Buffer
