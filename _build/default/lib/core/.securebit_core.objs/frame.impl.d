lib/core/frame.ml: Bitvec Float Point
