lib/core/epidemic.mli: Bitvec Engine Msg Node Topology
