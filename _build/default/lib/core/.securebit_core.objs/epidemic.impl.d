lib/core/epidemic.ml: Bitvec Channel Engine Hashtbl Msg Node Propagation Schedule Topology
