lib/core/voting.ml: Hashtbl List Point
