lib/core/multi_path.mli: Bitvec Engine Msg Node Schedule Topology
