lib/core/neighbor_watch.ml: Array Bitvec Buffer Channel Deployment Engine Hashtbl List Msg Node One_hop Option Schedule Squares String Topology Two_bit
