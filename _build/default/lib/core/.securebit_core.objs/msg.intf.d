lib/core/msg.mli: Bitvec Format
