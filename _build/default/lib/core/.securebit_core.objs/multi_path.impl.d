lib/core/multi_path.ml: Array Bitvec Buffer Channel Engine Frame Hashtbl List Msg Node One_hop Point Propagation Schedule Topology Two_bit Voting
