lib/core/certified_propagation.mli: Bitvec Node Topology
