lib/core/certified_propagation.ml: Array Bitvec List Node Queue Topology Voting
