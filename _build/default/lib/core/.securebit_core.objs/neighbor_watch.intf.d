lib/core/neighbor_watch.mli: Bitvec Engine Msg Node Schedule Squares Topology
