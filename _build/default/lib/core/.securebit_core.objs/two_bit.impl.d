lib/core/two_bit.ml:
