lib/core/voting.mli: Point
