lib/core/one_hop.mli: Bitvec
