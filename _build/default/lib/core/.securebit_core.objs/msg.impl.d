lib/core/msg.ml: Bitvec Format
