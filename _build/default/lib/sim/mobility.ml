type model = { speed : float; pause : int }

type waypoint = { mutable target : Point.t; mutable pause_left : int }

type t = {
  model : model;
  rng : Rng.t;
  width : float;
  height : float;
  positions : Point.t array;
  waypoints : waypoint array;
}

let random_point rng ~width ~height = Point.make (Rng.float rng width) (Rng.float rng height)

let create rng model (d : Deployment.t) =
  let width = d.Deployment.width and height = d.Deployment.height in
  {
    model;
    rng;
    width;
    height;
    positions = Array.map (fun (n : Node.t) -> n.Node.pos) d.Deployment.nodes;
    waypoints =
      Array.map
        (fun (_ : Node.t) -> { target = random_point rng ~width ~height; pause_left = 0 })
        d.Deployment.nodes;
  }

(* Advance one node by a travel distance, possibly across several
   waypoints. *)
let advance_node t i distance =
  let w = t.waypoints.(i) in
  let budget = ref distance in
  while !budget > 1e-9 do
    if w.pause_left > 0 then begin
      (* Consume pause in distance-equivalent units so a single [advance]
         call can span both pause and travel. *)
      let pause_distance = float_of_int w.pause_left *. t.model.speed in
      if pause_distance >= !budget then begin
        w.pause_left <- w.pause_left - int_of_float (ceil (!budget /. t.model.speed));
        budget := 0.0
      end
      else begin
        budget := !budget -. pause_distance;
        w.pause_left <- 0
      end
    end
    else begin
      let p = t.positions.(i) in
      let d = Point.dist_l2 p w.target in
      if d <= !budget then begin
        t.positions.(i) <- w.target;
        budget := !budget -. d;
        w.target <- random_point t.rng ~width:t.width ~height:t.height;
        w.pause_left <- t.model.pause
      end
      else begin
        let frac = !budget /. d in
        t.positions.(i) <-
          Point.make
            (p.Point.x +. (frac *. (w.target.Point.x -. p.Point.x)))
            (p.Point.y +. (frac *. (w.target.Point.y -. p.Point.y)));
        budget := 0.0
      end
    end
  done

let advance t ~rounds =
  let distance = float_of_int rounds *. t.model.speed in
  if distance > 0.0 then
    Array.iteri (fun i _ -> advance_node t i distance) t.positions

let deployment t =
  {
    Deployment.width = t.width;
    height = t.height;
    nodes = Array.mapi (fun i p -> Node.make i p) t.positions;
  }

let displacement t (reference : Deployment.t) =
  let total =
    Array.to_list
      (Array.mapi
         (fun i p -> Point.dist_l2 p reference.Deployment.nodes.(i).Node.pos)
         t.positions)
  in
  Stats.mean total
