(** Node mobility (the paper's future-work direction "adapting the
    protocol to mobile nodes").

    The classic random-waypoint model: each device picks a uniform target
    on the map, travels towards it in straight line at its speed, pauses,
    and repeats.  Positions advance in simulation rounds so mobility
    composes with the round engine: the epoch-based mobile broadcast
    (see {!Mobile}) alternates protocol epochs with position updates. *)

type model = { speed : float (** map units per round *); pause : int (** rounds at target *) }

type t

val create : Rng.t -> model -> Deployment.t -> t
(** Start from a deployment's positions; the deployment itself is not
    modified. *)

val advance : t -> rounds:int -> unit
(** Move every node [rounds] rounds forward along its waypoint path. *)

val deployment : t -> Deployment.t
(** Current positions as a deployment (same map and node ids). *)

val displacement : t -> Deployment.t -> float
(** Mean distance between current positions and those of a reference
    deployment (for tests and diagnostics). *)
