lib/sim/mobility.ml: Array Deployment Node Point Rng Stats
