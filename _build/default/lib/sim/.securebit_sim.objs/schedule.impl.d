lib/sim/schedule.ml: Array Deployment Hashtbl List Node Point Squares Topology
