lib/sim/schedule.mli: Node Squares Topology
