lib/sim/engine.ml: Array Bitvec Channel List Rng Topology
