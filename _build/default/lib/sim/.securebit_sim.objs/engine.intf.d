lib/sim/engine.mli: Bitvec Channel Rng Topology
