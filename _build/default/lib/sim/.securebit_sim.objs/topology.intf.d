lib/sim/topology.mli: Deployment Node Point Propagation
