lib/sim/deployment.ml: Array List Node Point Rng
