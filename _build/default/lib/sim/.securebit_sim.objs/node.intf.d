lib/sim/node.mli: Format Point
