lib/sim/node.ml: Format Point
