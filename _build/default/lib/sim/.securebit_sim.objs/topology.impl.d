lib/sim/topology.ml: Array Deployment Hashtbl List Node Point Propagation Queue
