lib/sim/deployment.mli: Node Point Rng
