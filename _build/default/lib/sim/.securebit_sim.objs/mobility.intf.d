lib/sim/mobility.mli: Deployment Rng
