let rounds_per_interval = 6
let interval_of_round r = r / rounds_per_interval
let phase_of_round r = r mod rounds_per_interval

type t = { cycle : int; slots : int array }

let cycle t = t.cycle
let slot_of t group = t.slots.(group)
let active_slot t ~interval = interval mod t.cycle
let source_slot = 0

let for_squares squares ~radius =
  assert (radius > 0.0);
  let side = Squares.side squares in
  (* Same-slot squares at grid distance k have closest points (k-1)·side
     apart; keep that above 3R. *)
  let k = max 3 (1 + int_of_float (ceil (3.0 *. radius /. side))) in
  let slots =
    Array.init (Squares.count squares) (fun id ->
        let cx, cy = Squares.coords squares id in
        1 + (cx mod k) + (k * (cy mod k)))
  in
  { cycle = (k * k) + 1; slots }

let for_nodes topology ~conflict_range ~source =
  let deployment = topology.Topology.deployment in
  let nodes = deployment.Deployment.nodes in
  let n = Array.length nodes in
  (* Conflict neighbours via a spatial hash of cell size [conflict_range]. *)
  let cell_of (p : Point.t) =
    (int_of_float (p.x /. conflict_range), int_of_float (p.y /. conflict_range))
  in
  let cells = Hashtbl.create (max 16 n) in
  Array.iter
    (fun (node : Node.t) ->
      let key = cell_of node.pos in
      Hashtbl.replace cells key (node.id :: (try Hashtbl.find cells key with Not_found -> [])))
    nodes;
  let conflicts id =
    let p = nodes.(id).Node.pos in
    let cx, cy = cell_of p in
    let acc = ref [] in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt cells (cx + dx, cy + dy) with
        | None -> ()
        | Some ids ->
          List.iter
            (fun j ->
              if j <> id && Point.dist_l2 p nodes.(j).Node.pos <= conflict_range then
                acc := j :: !acc)
            ids
      done
    done;
    !acc
  in
  let colors = Array.make n (-1) in
  let max_color = ref 0 in
  for id = 0 to n - 1 do
    if id <> source then begin
      let used = List.filter_map (fun j -> if colors.(j) >= 0 then Some colors.(j) else None)
          (conflicts id)
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      let c = first_free 0 in
      colors.(id) <- c;
      if c > !max_color then max_color := c
    end
  done;
  let slots = Array.map (fun c -> if c < 0 then source_slot else c + 1) colors in
  slots.(source) <- source_slot;
  { cycle = !max_color + 2; slots }
