type id = int
type t = { id : id; pos : Point.t }

let make id pos = { id; pos }
let pp fmt t = Format.fprintf fmt "node %d @ %a" t.id Point.pp t.pos
