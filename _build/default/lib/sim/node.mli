(** Network devices.

    A node is an id plus a position; each node knows its own location (the
    localisation-service assumption of Section 1).  Behaviour — honest
    protocol, crash, jamming, lying — is attached separately when a
    simulation is assembled, so the same deployment can be reused across
    adversary models. *)

type id = int

type t = { id : id; pos : Point.t }

val make : id -> Point.t -> t
val pp : Format.formatter -> t -> unit
