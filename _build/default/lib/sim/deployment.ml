type t = { width : float; height : float; nodes : Node.t array }

let grid ~width ~height =
  assert (width > 0 && height > 0);
  let nodes =
    Array.init (width * height) (fun i ->
        let x = i mod width and y = i / width in
        Node.make i (Point.make (float_of_int x) (float_of_int y)))
  in
  { width = float_of_int (width - 1); height = float_of_int (height - 1); nodes }

let uniform rng ~n ~width ~height =
  assert (n > 0 && width > 0.0 && height > 0.0);
  let nodes =
    Array.init n (fun i -> Node.make i (Point.make (Rng.float rng width) (Rng.float rng height)))
  in
  { width; height; nodes }

let clustered rng ~n ~clusters ~stddev ~width ~height =
  assert (n > 0 && clusters > 0 && stddev >= 0.0);
  let centres =
    Array.init clusters (fun _ -> Point.make (Rng.float rng width) (Rng.float rng height))
  in
  let clamp hi v = max 0.0 (min hi v) in
  let nodes =
    Array.init n (fun i ->
        let c = Rng.pick rng centres in
        let x = clamp width (Rng.normal rng ~mean:c.Point.x ~stddev) in
        let y = clamp height (Rng.normal rng ~mean:c.Point.y ~stddev) in
        Node.make i (Point.make x y))
  in
  { width; height; nodes }

let density t =
  let area = max 1e-9 (t.width *. t.height) in
  float_of_int (Array.length t.nodes) /. area

let size t = Array.length t.nodes

let node_at t p =
  let found = ref None in
  Array.iter (fun (n : Node.t) -> if Point.equal n.pos p then found := Some n.id) t.nodes;
  !found

let closest_to t p =
  assert (Array.length t.nodes > 0);
  let best = ref 0 and best_d = ref infinity in
  Array.iter
    (fun (n : Node.t) ->
      let d = Point.dist_l2 n.pos p in
      if d < !best_d then begin
        best := n.id;
        best_d := d
      end)
    t.nodes;
  !best

let center_node t = closest_to t (Point.make (t.width /. 2.0) (t.height /. 2.0))

let subset t ~keep =
  let kept = Array.of_list (List.filter (fun (n : Node.t) -> keep n.id) (Array.to_list t.nodes)) in
  let nodes = Array.mapi (fun i (n : Node.t) -> Node.make i n.pos) kept in
  { t with nodes }
