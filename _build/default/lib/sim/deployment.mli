(** Device deployments.

    The paper analyses a unit grid and simulates maps of 20×20 to 60×60
    length units with up to 4000 nodes placed uniformly at random or in
    clusters (normal scatter around random centres, sampled with Marsaglia's
    polar method). *)

type t = { width : float; height : float; nodes : Node.t array }

val grid : width:int -> height:int -> t
(** One node at every integer point of the [width × height] grid (the
    analytic model).  Node ids are assigned in row-major order. *)

val uniform : Rng.t -> n:int -> width:float -> height:float -> t
(** [n] nodes placed independently and uniformly at random. *)

val clustered :
  Rng.t -> n:int -> clusters:int -> stddev:float -> width:float -> height:float -> t
(** [clusters] centres placed uniformly at random; each node picks a random
    centre and scatters around it with a symmetric normal of the given
    standard deviation, clamped to the map. *)

val density : t -> float
(** Nodes per unit area (the paper's density measure). *)

val size : t -> int
val node_at : t -> Point.t -> Node.id option
(** Id of a node at exactly this position, if any (grid deployments). *)

val closest_to : t -> Point.t -> Node.id
(** Id of the node closest (L2) to a point; the experiments use it to pick
    the source at the centre of the map.  Requires a non-empty deployment. *)

val center_node : t -> Node.id
(** [closest_to] the map centre. *)

val subset : t -> keep:(Node.id -> bool) -> t
(** Restrict to the nodes satisfying [keep]; ids are re-assigned densely in
    the original order.  Used to crash devices out of a deployment. *)
