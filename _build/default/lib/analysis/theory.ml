type sweep = { table : Table.t; fit : Stats.fit }

let grid_spec ~side ~message =
  {
    Scenario.default with
    map_w = float_of_int (side - 1);
    map_h = float_of_int (side - 1);
    deployment = Scenario.Grid;
    radio = Scenario.Disk_linf;
    radius = 2.0;
    (* The analytic square sizing ⌈R/2⌉: on the unit grid every square is
       non-empty, which the R/3 simulation sizing does not guarantee. *)
    square_side = Some (Squares.analytic_side ~radius:2.0);
    message;
  }

let config scale = match scale with Figures.Quick -> Experiment.quick | Figures.Paper -> Experiment.paper

let budget_sweep scale =
  let side = match scale with Figures.Quick -> 11 | Figures.Paper -> 17 in
  let budgets =
    match scale with
    | Figures.Quick -> [ 0; 30; 60; 120 ]
    | Figures.Paper -> [ 0; 50; 100; 200; 400 ]
  in
  let table =
    Table.create ~title:"E8a (Theorem 5): rounds vs adversary budget (grid)"
      ~columns:[ "budget"; "rounds"; "completed" ]
  in
  let points = ref [] in
  List.iter
    (fun budget ->
      let spec =
        {
          (grid_spec ~side ~message:(Bitvec.of_string "1011")) with
          Scenario.faults =
            (if budget = 0 then Scenario.No_faults
             else Scenario.Jamming { fraction = 0.05; budget; probability = 1.0 });
        }
      in
      let agg = Experiment.measure (config scale) spec in
      points := (float_of_int budget, agg.Experiment.rounds) :: !points;
      Table.add_row table
        [
          Table.cell_i budget;
          Table.cell_f ~decimals:0 agg.Experiment.rounds;
          Table.cell_pct agg.Experiment.completion_rate;
        ])
    budgets;
  { table; fit = Stats.linear_fit (List.rev !points) }

let diameter_sweep scale =
  let sides =
    match scale with Figures.Quick -> [ 7; 11; 15; 19 ] | Figures.Paper -> [ 9; 15; 21; 27; 33 ]
  in
  let table =
    Table.create ~title:"E8b (Theorem 5): rounds vs hop diameter (grids)"
      ~columns:[ "grid"; "hop diameter"; "rounds"; "completed" ]
  in
  let points = ref [] in
  List.iter
    (fun side ->
      let spec = grid_spec ~side ~message:(Bitvec.of_string "1011") in
      let result = Scenario.run spec in
      let diameter =
        float_of_int (Topology.hop_diameter_from result.Scenario.topology result.Scenario.source)
      in
      let agg = Experiment.measure (config scale) spec in
      points := (diameter, agg.Experiment.rounds) :: !points;
      Table.add_row table
        [
          Printf.sprintf "%dx%d" side side;
          Table.cell_f ~decimals:0 diameter;
          Table.cell_f ~decimals:0 agg.Experiment.rounds;
          Table.cell_pct agg.Experiment.completion_rate;
        ])
    sides;
  { table; fit = Stats.linear_fit (List.rev !points) }

let length_sweep scale =
  let side = match scale with Figures.Quick -> 11 | Figures.Paper -> 15 in
  let lengths =
    match scale with Figures.Quick -> [ 2; 4; 8; 16 ] | Figures.Paper -> [ 2; 4; 8; 16; 32; 64 ]
  in
  let table =
    Table.create ~title:"E8c (Theorem 5): rounds vs message length (grid)"
      ~columns:[ "message bits"; "rounds"; "completed" ]
  in
  let points = ref [] in
  List.iter
    (fun len ->
      let message = Bitvec.random (Rng.create (50 + len)) len in
      let spec = grid_spec ~side ~message in
      let agg = Experiment.measure (config scale) spec in
      points := (float_of_int len, agg.Experiment.rounds) :: !points;
      Table.add_row table
        [
          Table.cell_i len;
          Table.cell_f ~decimals:0 agg.Experiment.rounds;
          Table.cell_pct agg.Experiment.completion_rate;
        ])
    lengths;
  { table; fit = Stats.linear_fit (List.rev !points) }

let all scale = [ budget_sweep scale; diameter_sweep scale; length_sweep scale ]
