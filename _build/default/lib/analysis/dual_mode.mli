(** The dual-mode protocol conjectured in Section 1 ("Interpretation") and
    supported by the measurements of Section 6.2.

    The full message is broadcast by fast, unauthenticated epidemic
    flooding; a short digest of it is broadcast with NeighborWatchRB.  A
    node accepts the flooded message only if the authenticated digest
    matches, so security rests on the digest while almost all bits travel
    on the cheap channel.  The two phases run back-to-back (first flooding,
    then the digest broadcast), so the total time is the sum of the two
    phases' times. *)

type config = {
  base : Scenario.spec;
      (** deployment/radio/faults template; its [message] is the full
          message and its [protocol] field is ignored *)
  digest_len : int;
}

type result = {
  epidemic : Scenario.result;
  digest : Scenario.result;
  accepted_rate : float;
      (** honest nodes holding a flooded message whose digest verifies *)
  accepted_correct_rate : float;
      (** honest nodes that accepted the *authentic* message *)
  rejected_fake_rate : float;
      (** honest nodes that received a fake flooded message and correctly
          rejected it thanks to the digest *)
  total_rounds : int;
  slowdown : float;  (** total_rounds / epidemic-only rounds *)
}

val run : config -> result
