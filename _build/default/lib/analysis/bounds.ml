let neighbourhood_size ~radius = (((2 * radius) + 1) * ((2 * radius) + 1)) - 1
let koo_bound ~radius = radius * ((2 * radius) + 1) / 2
let multi_path_tolerance ~radius = koo_bound ~radius - 1

let neighbor_watch_tolerance ~radius =
  let side = (radius + 1) / 2 in
  (side * side) - 1

let two_voting_tolerance ~radius = (radius * radius / 2) - 1

let summary_table ~radii =
  let table =
    Table.create ~title:"per-neighbourhood Byzantine tolerance (analytic bounds)"
      ~columns:
        [ "R"; "neighbourhood"; "Koo impossibility"; "MultiPathRB"; "NeighborWatchRB"; "2-vote NW" ]
  in
  List.iter
    (fun radius ->
      let nb = neighbourhood_size ~radius in
      let cell t = Printf.sprintf "%d (%.0f%%)" t (100.0 *. float_of_int t /. float_of_int nb) in
      Table.add_row table
        [
          Table.cell_i radius;
          Table.cell_i nb;
          Printf.sprintf ">= %d" (koo_bound ~radius);
          cell (multi_path_tolerance ~radius);
          cell (neighbor_watch_tolerance ~radius);
          cell (two_voting_tolerance ~radius);
        ])
    radii;
  table
