(** Validation of the running-time bound of Theorem 5:
    delivery in O(β·D + log|Σ|) rounds.

    The theorem is asymptotic, so the check is empirical linearity on the
    analytic model (L-infinity grid): completion time should grow linearly
    (high r²) in each of

    - the adversary's broadcast budget β at fixed diameter and message,
    - the network diameter D at fixed β and message,
    - the message length (≈ log|Σ|) at fixed β and D,

    which is exactly what a tight O(βD + log|Σ|) bound predicts for
    one-variable sweeps. *)

type sweep = { table : Table.t; fit : Stats.fit }

val budget_sweep : Figures.scale -> sweep
(** E8a: rounds vs per-jammer budget on a grid. *)

val diameter_sweep : Figures.scale -> sweep
(** E8b: rounds vs hop diameter across grid sizes. *)

val length_sweep : Figures.scale -> sweep
(** E8c: rounds vs message length on a fixed grid. *)

val all : Figures.scale -> sweep list
