(** Regeneration of every table and figure of the paper's evaluation
    (Section 6), plus the ablations called out in DESIGN.md.

    Each generator runs the corresponding simulations and renders the same
    rows/series the paper reports.  [Quick] is a scaled-down configuration
    (smaller maps, fewer repetitions, a HEARD relay cap for MultiPathRB)
    sized so the whole suite completes in minutes; [Paper] reproduces the
    paper's parameters — at MultiPathRB's paper scale this is
    overnight-slow, exactly as the authors report ("the simulation becomes
    prohibitively slow").  EXPERIMENTS.md records paper-vs-measured for
    each experiment id. *)

type scale = Quick | Paper

val scale_of_env : unit -> scale
(** [Paper] when the environment variable [FULL] is set to a non-empty
    value other than ["0"], else [Quick]. *)

val fig5_crash : scale -> Table.t
(** E1 — Figure 5: completion rate vs deployment density under crash
    failures, for NW, 2-vote NW, and MultiPathRB (t = 3, 5). *)

val jamming : scale -> Table.t * Stats.fit
(** E2 — §6.1 jamming: completion time vs per-jammer broadcast budget (10%
    jammers hitting veto rounds with probability 1/5); the fit documents
    the linear budget→delay relation the paper describes. *)

val fig6_lying : scale -> Table.t
(** E3 — Figure 6: fraction of delivered messages that are correct vs the
    fraction of lying devices. *)

val fig7_density : scale -> Table.t
(** E4 — Figure 7: maximum Byzantine fraction tolerated while ≥90% of
    honest nodes still receive the correct message, vs density.
    MultiPathRB rows only at [Paper] scale (as in the paper, which stops
    it at density 5). *)

val clustered : scale -> Table.t
(** E5 — §6.2 non-uniform deployments: NW completion/correctness under
    uniform vs clustered placement, with and without liars. *)

val map_size : scale -> Table.t * Stats.fit * Stats.fit
(** E6 — §6.2 varying map size: NW rounds and broadcasts vs hop diameter;
    the two fits document the linear scaling the paper reports. *)

val epidemic_comparison : scale -> Table.t * float
(** E7 — §6.2: NW completion time relative to the epidemic baseline across
    map sizes; returns the mean slowdown (paper: ≈7.7×). *)

val ablation_pipeline : scale -> Table.t
(** A1: pipelined forwarding vs naive store-and-forward, across message
    lengths — the paper's central performance claim (Section 5). *)

val ablation_square : scale -> Table.t
(** A2: square side R/2 (analytic sizing) vs R/3 (simulation sizing) on
    the Euclidean radio — why the implementation shrinks the squares. *)

val ablation_jamprob : scale -> Table.t
(** A3: jammer veto-round probability sweep at fixed budget (the paper
    found 1/5 near-optimal for the attacker). *)

val ablation_dualmode : scale -> Table.t
(** A4: the dual-mode scheme (§1 "Interpretation"): slowdown over plain
    epidemic flooding as a function of digest size. *)

val ablation_cpa : scale -> Table.t
(** A5: certified propagation (Koo/Bhandari–Vaidya) on its idealised
    authenticated channel vs MultiPathRB on the Byzantine radio, on
    identical topologies — the cost of hardening the radio. *)

val all : scale -> Table.t list
(** Every table above, in experiment order. *)
