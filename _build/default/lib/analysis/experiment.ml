type config = { repetitions : int; base_seed : int }

let quick = { repetitions = 3; base_seed = 1000 }
let paper = { repetitions = 6; base_seed = 1000 }

let seeds config = List.init config.repetitions (fun i -> config.base_seed + (7919 * i))

let run config spec =
  List.map (fun seed -> Scenario.summarize (Scenario.run { spec with Scenario.seed })) (seeds config)

type aggregate = {
  completion_rate : float;
  correct_of_delivered : float;
  correct_rate : float;
  rounds : float;
  broadcasts : float;
  runs : int;
}

let aggregate summaries =
  let f sel = List.map sel summaries in
  let trimmed_mean sel = Stats.mean (Stats.trimmed (f sel)) in
  {
    completion_rate = Stats.mean (f (fun s -> s.Scenario.completion_rate));
    correct_of_delivered = Stats.mean (f (fun s -> s.Scenario.correct_of_delivered));
    correct_rate = Stats.mean (f (fun s -> s.Scenario.correct_rate));
    rounds = trimmed_mean (fun s -> float_of_int s.Scenario.rounds);
    broadcasts = trimmed_mean (fun s -> float_of_int s.Scenario.total_broadcasts);
    runs = List.length summaries;
  }

let measure config spec = aggregate (run config spec)
