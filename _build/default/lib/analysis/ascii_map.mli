(** ASCII rendering of a finished run: who delivered what, where.

    Makes the spatial dynamics of the paper visible in a terminal — the
    source-centred wave of correct deliveries, liar-seeded fake regions,
    and the frozen boundaries between them (the snowball effect of
    Section 6.1).

    Legend: [S] source, [#] delivered the authentic message, [x] delivered
    a fake message, [.] delivered nothing, [L] lying device, [J] jamming
    device, [ ] empty area.  Each character cell aggregates the nodes in
    one square patch of the map; conflicting nodes in a cell render by
    severity (fake > none > correct). *)

val render : ?cell:float -> Scenario.result -> string
(** [render ?cell result] draws the deployment on a grid of [cell]-sized
    patches (default 1.0 map unit). *)

val print : ?cell:float -> Scenario.result -> unit
