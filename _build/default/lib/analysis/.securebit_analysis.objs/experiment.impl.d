lib/analysis/experiment.ml: List Scenario Stats
