lib/analysis/ascii_map.mli: Scenario
