lib/analysis/scenario.ml: Array Bitvec Budget Channel Deployment Engine Epidemic Float Jammer List Multi_path Neighbor_watch Node Propagation Rng Schedule Stats Topology
