lib/analysis/mobile.ml: Array Bitvec Deployment Engine Float List Mobility Neighbor_watch Printf Propagation Rng Scenario Schedule Table Topology
