lib/analysis/bounds.mli: Table
