lib/analysis/theory.ml: Bitvec Experiment Figures List Printf Rng Scenario Squares Stats Table Topology
