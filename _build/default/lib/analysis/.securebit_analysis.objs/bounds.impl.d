lib/analysis/bounds.ml: List Printf Table
