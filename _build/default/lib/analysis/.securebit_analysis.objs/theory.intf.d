lib/analysis/theory.mli: Figures Stats Table
