lib/analysis/figures.mli: Stats Table
