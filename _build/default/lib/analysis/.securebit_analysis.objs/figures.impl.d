lib/analysis/figures.ml: Array Bitvec Certified_propagation Dual_mode Experiment List Printf Rng Scenario Squares Stats Sys Table Topology
