lib/analysis/scenario.mli: Bitvec Channel Engine Node Topology
