lib/analysis/ascii_map.ml: Array Bitvec Buffer Deployment Engine Node Point Scenario Topology
