lib/analysis/dual_mode.ml: Array Bitvec Engine Scenario
