lib/analysis/dual_mode.mli: Scenario
