lib/analysis/mobile.mli: Bitvec Mobility Table
