lib/analysis/experiment.mli: Scenario
