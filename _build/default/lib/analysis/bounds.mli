(** Theoretical fault-tolerance bounds quoted by the paper.

    All bounds are per neighbourhood, for the analytic L-infinity model
    with communication radius [R] on the unit grid:

    - Koo's impossibility: no protocol tolerates
      [t >= R(2R+1)/2] Byzantine devices per neighbourhood;
    - MultiPathRB matches it: [t < R(2R+1)/2];
    - NeighborWatchRB: [t < ⌈R/2⌉²] (one honest node per square);
    - 2-voting NeighborWatchRB: roughly [t < R²/2].

    These are used by tests and by the experiment index to relate the
    tunable [t] of MultiPathRB to the neighbourhood size. *)

val neighbourhood_size : radius:int -> int
(** Number of grid nodes in an L-infinity ball of the given radius,
    excluding the centre: [(2R+1)² - 1]. *)

val koo_bound : radius:int -> int
(** Largest [t] that is *impossible* to tolerate is [koo_bound]; every
    [t < koo_bound] is feasible (Koo 2004): [R(2R+1)/2]. *)

val multi_path_tolerance : radius:int -> int
(** Maximum [t] MultiPathRB tolerates: [koo_bound - 1]. *)

val neighbor_watch_tolerance : radius:int -> int
(** Maximum [t] NeighborWatchRB tolerates: [⌈R/2⌉² - 1]. *)

val two_voting_tolerance : radius:int -> int
(** Maximum [t] of the 2-voting variant: [⌊R²/2⌋ - 1]. *)

val summary_table : radii:int list -> Table.t
(** The bounds side by side, with the fraction of the neighbourhood each
    represents. *)
