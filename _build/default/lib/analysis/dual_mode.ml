type config = { base : Scenario.spec; digest_len : int }

type result = {
  epidemic : Scenario.result;
  digest : Scenario.result;
  accepted_rate : float;
  accepted_correct_rate : float;
  rejected_fake_rate : float;
  total_rounds : int;
  slowdown : float;
}

let run config =
  let message = config.base.Scenario.message in
  let digest_value = Bitvec.digest ~size:config.digest_len message in
  let epidemic =
    Scenario.run { config.base with Scenario.protocol = Scenario.Epidemic }
  in
  let digest =
    Scenario.run
      {
        config.base with
        Scenario.protocol = Scenario.Neighbor_watch { votes = 1 };
        message = digest_value;
      }
  in
  let n = Array.length epidemic.Scenario.honest in
  let honest_total = ref 0 in
  let accepted = ref 0 in
  let accepted_correct = ref 0 in
  let fake_received = ref 0 in
  let fake_rejected = ref 0 in
  for i = 0 to n - 1 do
    if epidemic.Scenario.honest.(i) && i <> epidemic.Scenario.source then begin
      incr honest_total;
      let flooded = epidemic.Scenario.engine.Engine.delivered.(i) in
      let auth_digest = digest.Scenario.engine.Engine.delivered.(i) in
      match (flooded, auth_digest) with
      | Some payload, Some d ->
        let verifies = Bitvec.equal (Bitvec.digest ~size:config.digest_len payload) d in
        let is_real = Bitvec.equal payload message in
        if verifies then begin
          incr accepted;
          if is_real then incr accepted_correct
        end;
        if not is_real then begin
          incr fake_received;
          if not verifies then incr fake_rejected
        end
      | Some payload, None ->
        (* No authenticated digest arrived: nothing can be accepted, so a
           fake flooded payload is (vacuously) rejected. *)
        if not (Bitvec.equal payload message) then begin
          incr fake_received;
          incr fake_rejected
        end
      | None, (Some _ | None) -> ()
    end
  done;
  let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  let epidemic_rounds = epidemic.Scenario.engine.Engine.rounds_used in
  let total_rounds = epidemic_rounds + digest.Scenario.engine.Engine.rounds_used in
  {
    epidemic;
    digest;
    accepted_rate = ratio !accepted !honest_total;
    accepted_correct_rate = ratio !accepted_correct !honest_total;
    rejected_fake_rate = ratio !fake_rejected !fake_received;
    total_rounds;
    slowdown = (if epidemic_rounds = 0 then 1.0 else float_of_int total_rounds /. float_of_int epidemic_rounds);
  }
