(** Repetition harness.

    The paper repeats each experiment 6–20 times with outliers discarded
    (Section 6, "Methodology"); this module runs a scenario across seeds
    and aggregates the per-run summaries the same way. *)

type config = { repetitions : int; base_seed : int }

val quick : config
(** 3 repetitions — the scaled-down default of the benchmark harness. *)

val paper : config
(** 6 repetitions, as in most of the paper's experiments. *)

val seeds : config -> int list

val run : config -> Scenario.spec -> Scenario.summary list
(** Run the spec once per seed (spec seed replaced). *)

type aggregate = {
  completion_rate : float;
  correct_of_delivered : float;
  correct_rate : float;
  rounds : float;  (** outlier-trimmed mean over runs *)
  broadcasts : float;  (** outlier-trimmed mean over runs *)
  runs : int;
}

val aggregate : Scenario.summary list -> aggregate

val measure : config -> Scenario.spec -> aggregate
(** [aggregate] of [run]. *)
