(** Byzantine broadcast budgets.

    The running-time analysis bounds the adversary by β, the maximum number
    of broadcasts Byzantine devices may make per neighbourhood (Section 1,
    "Metrics"): continual jamming drains batteries and exposes the
    devices, so disruption is a finite resource.  A [Budget.t] is shared by
    the adversarial machines of one device (or one coordinated group) and
    refuses further broadcasts once spent. *)

type t

val create : int -> t
(** [create n]: allow [n] broadcasts.  Negative means unlimited. *)

val unlimited : unit -> t

val try_spend : t -> bool
(** Consume one broadcast if available; [false] once exhausted. *)

val spent : t -> int
val remaining : t -> int option
(** [None] for unlimited budgets. *)
