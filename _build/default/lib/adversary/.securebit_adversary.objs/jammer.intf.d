lib/adversary/jammer.mli: Budget Engine Msg Rng
