lib/adversary/budget.ml: Option
