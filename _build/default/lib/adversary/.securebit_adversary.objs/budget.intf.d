lib/adversary/budget.mli:
