lib/adversary/jammer.ml: Budget Engine Msg Rng Schedule
