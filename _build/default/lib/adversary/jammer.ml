let machine_of_predicate pred ~budget =
  let act round =
    let phase = Schedule.phase_of_round round in
    if pred ~round ~phase && Budget.try_spend budget then Engine.Transmit Msg.Blip
    else Engine.Silent
  in
  { Engine.act; observe = (fun _ _ -> ()); delivered = (fun () -> None) }

let veto_jammer ~rng ~budget ~probability =
  machine_of_predicate ~budget (fun ~round:_ ~phase ->
      (phase = 4 || phase = 5) && Rng.bernoulli rng probability)

let blanket_jammer ~rng ~budget ~probability =
  machine_of_predicate ~budget (fun ~round:_ ~phase:_ -> Rng.bernoulli rng probability)

let scripted pred ~budget = machine_of_predicate pred ~budget
