type t = { limit : int option; mutable used : int }

let create n = { limit = (if n < 0 then None else Some n); used = 0 }
let unlimited () = { limit = None; used = 0 }

let try_spend t =
  match t.limit with
  | None ->
    t.used <- t.used + 1;
    true
  | Some limit ->
    if t.used < limit then begin
      t.used <- t.used + 1;
      true
    end
    else false

let spent t = t.used
let remaining t = Option.map (fun limit -> max 0 (limit - t.used)) t.limit
