lib/geometry/squares.ml: List Point
