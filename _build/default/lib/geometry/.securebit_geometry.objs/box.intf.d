lib/geometry/box.mli: Point
