lib/geometry/box.ml: List Point
