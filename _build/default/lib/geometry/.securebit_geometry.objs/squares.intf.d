lib/geometry/squares.mli: Point
