(** Partition of the deployment area into the squares of NeighborWatchRB.

    The protocol partitions the plane into squares of maximal side such that
    any two nodes in (8-)adjacent squares can communicate: side [⌈R/2⌉] in
    the analytical L-infinity model, and [R/3] for the simulation model over
    Euclidean distance (the reduced size the paper's implementation uses to
    guarantee propagation between adjacent squares under L2 range — across
    two diagonal squares the L2 separation is at most [2·√2·side ≤ R]
    when [side = R/3]).  All nodes in a square act as one "meta-node". *)

type t

val make : side:float -> width:float -> height:float -> t
(** Partition of [\[0,width\] × \[0,height\]] into squares of side [side]
    (the last row/column may be narrower).  Requires positive arguments. *)

val side : t -> float
val count : t -> int
(** Total number of squares. *)

val cols : t -> int
val rows : t -> int

val square_of : t -> Point.t -> int
(** Id of the square containing a point (points outside the area are clamped
    to the border squares). *)

val coords : t -> int -> int * int
(** Grid coordinates [(cx, cy)] of a square id. *)

val id_of_coords : t -> int * int -> int option
(** Inverse of [coords]; [None] outside the grid. *)

val neighbors : t -> int -> int list
(** The up-to-8 adjacent squares (excluding the square itself). *)

val center : t -> int -> Point.t
(** Geometric centre of a square. *)

val analytic_side : radius:float -> float
(** [⌈R/2⌉], the analytic square side (Section 4). *)

val simulation_side : radius:float -> float
(** [R/3], the reduced side the paper's simulations use (Section 6). *)
