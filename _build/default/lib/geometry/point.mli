(** Points in the plane and the two metrics used by the paper.

    The analytical model (Section 3) places nodes on an integer grid and uses
    the L-infinity norm: [v] neighbours [w] iff [|x2-x1| <= R] and
    [|y2-y1| <= R].  The simulation model uses Euclidean (L2) distance under
    Friis free-space propagation. *)

type t = { x : float; y : float }

val make : float -> float -> t
val dist_l2 : t -> t -> float
val dist_linf : t -> t -> float
val within_l2 : float -> t -> t -> bool
(** [within_l2 r a b] iff [dist_l2 a b <= r]. *)

val within_linf : float -> t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type metric = L2 | Linf

val dist : metric -> t -> t -> float
val within : metric -> float -> t -> t -> bool
