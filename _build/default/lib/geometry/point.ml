type t = { x : float; y : float }

let make x y = { x; y }

let dist_l2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let dist_linf a b = max (abs_float (a.x -. b.x)) (abs_float (a.y -. b.y))
let within_l2 r a b = dist_l2 a b <= r
let within_linf r a b = dist_linf a b <= r
let equal a b = a.x = b.x && a.y = b.y
let pp fmt t = Format.fprintf fmt "(%.2f, %.2f)" t.x t.y

type metric = L2 | Linf

let dist = function L2 -> dist_l2 | Linf -> dist_linf
let within = function L2 -> within_l2 | Linf -> within_linf
