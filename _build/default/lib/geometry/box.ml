type t = { x_min : float; y_min : float; x_max : float; y_max : float }

let of_points = function
  | [] -> invalid_arg "Box.of_points: empty list"
  | p :: ps ->
    List.fold_left
      (fun b (q : Point.t) ->
        {
          x_min = min b.x_min q.x;
          y_min = min b.y_min q.y;
          x_max = max b.x_max q.x;
          y_max = max b.y_max q.y;
        })
      { x_min = p.Point.x; y_min = p.Point.y; x_max = p.Point.x; y_max = p.Point.y }
      ps

let contains b (p : Point.t) =
  p.x >= b.x_min && p.x <= b.x_max && p.y >= b.y_min && p.y <= b.y_max

let width b = b.x_max -. b.x_min
let height b = b.y_max -. b.y_min

let fit_in_linf_ball ~radius = function
  | [] -> true
  | pts ->
    let b = of_points pts in
    width b <= 2.0 *. radius && height b <= 2.0 *. radius

(* Minimum enclosing circle, Welzl's algorithm without randomization (the
   evidence sets involved are tiny, so the worst case does not matter). *)
let circle_from2 (a : Point.t) (b : Point.t) =
  let cx = (a.x +. b.x) /. 2.0 and cy = (a.y +. b.y) /. 2.0 in
  (Point.make cx cy, Point.dist_l2 a b /. 2.0)

let circle_from3 (a : Point.t) (b : Point.t) (c : Point.t) =
  let ax = a.x and ay = a.y in
  let bx = b.x -. ax and by = b.y -. ay in
  let cx = c.x -. ax and cy = c.y -. ay in
  let d = 2.0 *. ((bx *. cy) -. (by *. cx)) in
  if abs_float d < 1e-12 then None
  else begin
    let b2 = (bx *. bx) +. (by *. by) in
    let c2 = (cx *. cx) +. (cy *. cy) in
    let ux = ((cy *. b2) -. (by *. c2)) /. d in
    let uy = ((bx *. c2) -. (cx *. b2)) /. d in
    let centre = Point.make (ax +. ux) (ay +. uy) in
    Some (centre, Point.dist_l2 centre a)
  end

let in_circle (centre, r) p = Point.dist_l2 centre p <= r +. 1e-9

let trivial_circle = function
  | [] -> (Point.make 0.0 0.0, 0.0)
  | [ p ] -> (p, 0.0)
  | [ p; q ] -> circle_from2 p q
  | [ p; q; r ] -> (
    match circle_from3 p q r with
    | Some c -> c
    | None ->
      (* Collinear boundary: the widest pair determines the circle. *)
      let pairs = [ (p, q); (p, r); (q, r) ] in
      let widest =
        List.fold_left
          (fun (best, d) (a, b) ->
            let d' = Point.dist_l2 a b in
            if d' > d then ((a, b), d') else (best, d))
          (((p, q) : Point.t * Point.t), Point.dist_l2 p q)
          pairs
      in
      let (a, b), _ = widest in
      circle_from2 a b)
  | _ -> assert false (* a circle boundary never needs more than 3 points *)

let rec mec points boundary =
  if List.length boundary = 3 then trivial_circle boundary
  else begin
    match points with
    | [] -> trivial_circle boundary
    | p :: ps ->
      let c = mec ps boundary in
      if in_circle c p then c else mec ps (p :: boundary)
  end

let fit_in_l2_ball ~radius = function
  | [] -> true
  | pts ->
    let _, r = mec pts [] in
    r <= radius +. 1e-9
