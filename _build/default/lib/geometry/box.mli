(** Axis-aligned boxes and the common-neighbourhood test of MultiPathRB.

    The MultiPathRB commit rule (Section 4) asks whether a set of evidence
    points all lie in *some* neighbourhood [N], i.e. some L-infinity ball of
    radius [R].  A point set fits in such a ball iff its bounding box has
    width and height at most [2R]; [fit_in_linf_ball] tests exactly that. *)

type t = { x_min : float; y_min : float; x_max : float; y_max : float }

val of_points : Point.t list -> t
(** Bounding box; raises [Invalid_argument] on the empty list. *)

val contains : t -> Point.t -> bool
val width : t -> float
val height : t -> float

val fit_in_linf_ball : radius:float -> Point.t list -> bool
(** [fit_in_linf_ball ~radius pts] iff there exists a centre [c] with every
    point of [pts] within L-infinity distance [radius] of [c].  True for the
    empty list. *)

val fit_in_l2_ball : radius:float -> Point.t list -> bool
(** Same question for Euclidean balls, decided by the minimum enclosing
    circle (Welzl's algorithm); used when simulating MultiPathRB on the
    realistic L2 radio model. *)
