type t = { side : float; width : float; height : float; cols : int; rows : int }

let make ~side ~width ~height =
  if side <= 0.0 || width <= 0.0 || height <= 0.0 then invalid_arg "Squares.make";
  let cols = max 1 (int_of_float (ceil (width /. side))) in
  let rows = max 1 (int_of_float (ceil (height /. side))) in
  { side; width; height; cols; rows }

let side t = t.side
let count t = t.cols * t.rows
let cols t = t.cols
let rows t = t.rows

let clamp lo hi v = max lo (min hi v)

let square_of t (p : Point.t) =
  let cx = clamp 0 (t.cols - 1) (int_of_float (p.x /. t.side)) in
  let cy = clamp 0 (t.rows - 1) (int_of_float (p.y /. t.side)) in
  (cy * t.cols) + cx

let coords t id = (id mod t.cols, id / t.cols)

let id_of_coords t (cx, cy) =
  if cx < 0 || cx >= t.cols || cy < 0 || cy >= t.rows then None else Some ((cy * t.cols) + cx)

let neighbors t id =
  let cx, cy = coords t id in
  let candidates =
    [ (-1, -1); (0, -1); (1, -1); (-1, 0); (1, 0); (-1, 1); (0, 1); (1, 1) ]
  in
  List.filter_map (fun (dx, dy) -> id_of_coords t (cx + dx, cy + dy)) candidates

let center t id =
  let cx, cy = coords t id in
  let x = min t.width ((float_of_int cx +. 0.5) *. t.side) in
  let y = min t.height ((float_of_int cy +. 0.5) *. t.side) in
  Point.make x y

let analytic_side ~radius = ceil (radius /. 2.0)
let simulation_side ~radius = radius /. 3.0
