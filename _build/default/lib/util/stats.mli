(** Descriptive statistics for experiment post-processing.

    The paper repeats each experiment 6–20 times and discards outliers before
    reporting; [trimmed] implements that step.  [linear_fit] backs the
    running-time validation of Theorem 5 (rounds should grow linearly in the
    adversary budget, the diameter, and the message length). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 points. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,1\]], linear interpolation. *)

val summarize : float list -> summary
(** All of the above in one record. *)

val trimmed : float list -> float list
(** Drop values outside [median ± 1.5·IQR] (the usual Tukey fence), the
    outlier-discarding rule used before averaging repetitions. *)

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : (float * float) list -> fit
(** Least-squares line through [(x, y)] points.  [r2] is the coefficient of
    determination; degenerate inputs give [r2 = 0]. *)
