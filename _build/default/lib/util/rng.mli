(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every simulation in this repository draws randomness exclusively through
    this module so that experiments are reproducible from a single integer
    seed.  [split] derives an independent stream, which lets concurrent
    experiment repetitions use disjoint randomness without coordination. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the state of [t]; the copies evolve independently. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val normal : t -> mean:float -> stddev:float -> float
(** Normal deviate via Marsaglia's polar method (the algorithm the paper
    cites, from Knuth vol. 2, for clustered deployments). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct values from
    [\[0, n)].  Requires [0 <= k <= n]. *)

val bits : t -> int -> bool array
(** [bits t k] is an array of [k] fair random bits. *)
