lib/util/bitvec.ml: Array Format Printf Rng String
