lib/util/rng.mli:
