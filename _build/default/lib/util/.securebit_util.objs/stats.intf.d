lib/util/stats.mli:
