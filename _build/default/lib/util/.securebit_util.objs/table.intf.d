lib/util/table.mli:
