type t = bool array
(* Invariant: never mutated after construction; all exposed operations copy. *)

let length = Array.length
let get t i = t.(i)
let create n b = Array.make n b
let init = Array.init
let of_list = Array.of_list
let to_list = Array.to_list

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %c" c))

let to_string t = String.init (Array.length t) (fun i -> if t.(i) then '1' else '0')

let of_int ~width n =
  assert (n >= 0 && width >= 0);
  Array.init width (fun i -> (n lsr (width - 1 - i)) land 1 = 1)

let to_int t =
  assert (Array.length t <= 62);
  Array.fold_left (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0 t

let append = Array.append
let concat = Array.concat
let sub t ~pos ~len = Array.sub t pos len
let equal a b = a = b
let random rng n = Rng.bits rng n
let empty = [||]
let snoc t b = Array.append t [| b |]
let fold_left = Array.fold_left

let digest ~size m =
  assert (size > 0);
  (* Fold the message into a 62-bit accumulator with a multiplicative mix,
     then take [size] bits.  Not cryptographic, but collision-scattering
     enough that a random fake message almost never matches. *)
  let mask = (1 lsl 61) - 1 in
  let acc =
    Array.fold_left
      (fun acc b ->
        let acc = (acc * 0x5DEECE66D) + if b then 0xB504F333F9DE649 else 1 in
        acc land mask)
      (0x9E3779B9 land mask) m
  in
  let acc = acc lxor (acc lsr 31) in
  init size (fun i -> (acc lsr (i mod 61)) land 1 = 1)

let pp fmt t = Format.pp_print_string fmt (to_string t)
