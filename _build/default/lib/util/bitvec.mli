(** Immutable bit vectors.

    The broadcast payloads of the paper are short bit strings (4–5 bits in
    the experiments); protocols transmit and authenticate them one bit at a
    time.  This module is the common representation for messages, frames and
    digests. *)

type t

val length : t -> int
val get : t -> int -> bool
val create : int -> bool -> t
val init : int -> (int -> bool) -> t
val of_list : bool list -> t
val to_list : t -> bool list
val of_string : string -> t
(** [of_string "1011"] parses a bit pattern.  Raises [Invalid_argument] on
    characters other than '0' and '1'. *)

val to_string : t -> string
val of_int : width:int -> int -> t
(** Big-endian encoding of a non-negative integer in [width] bits. *)

val to_int : t -> int
(** Big-endian decoding; requires [length <= 62]. *)

val append : t -> t -> t
val concat : t list -> t
val sub : t -> pos:int -> len:int -> t
val equal : t -> t -> bool
val random : Rng.t -> int -> t
val empty : t
val snoc : t -> bool -> t
(** [snoc t b] appends one bit. *)

val fold_left : ('a -> bool -> 'a) -> 'a -> t -> 'a

val digest : size:int -> t -> t
(** [digest ~size m] is a deterministic non-cryptographic [size]-bit digest
    of [m] (a mixed fold), used by the dual-mode protocol of Section 1
    ("Interpretation"): the full message goes over the fast epidemic channel
    and only this digest over the authenticated channel. *)

val pp : Format.formatter -> t -> unit
