(** Plain-text tables for experiment output.

    Every figure/table generator renders its rows through this module so the
    benchmark harness prints the same series the paper reports in a uniform,
    diffable format. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** Rows must have as many cells as there are columns. *)

val render : t -> string
(** Aligned plain-text rendering with the title and a header rule. *)

val to_csv : t -> string
val print : t -> unit
(** [render] to stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Float cell with fixed decimals (default 2). *)

val cell_pct : float -> string
(** [cell_pct 0.42] is ["42.0%"]. *)

val cell_i : int -> string
