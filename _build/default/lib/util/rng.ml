type t = {
  mutable state : int64;
  mutable spare : float option; (* cached second deviate of the polar method *)
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed); spare = None }

let copy t = { state = t.state; spare = t.spare }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t; spare = None }

let int t n =
  assert (n > 0);
  (* Rejection sampling over the positive-int range to avoid modulo bias. *)
  let mask = max_int in
  let rec loop () =
    let raw = Int64.to_int (int64 t) land mask in
    let v = raw mod n in
    if raw - v > mask - n + 1 then loop () else v
  in
  loop ()

let float t x =
  (* 53 high bits give a uniform double in [0, 1). *)
  let raw = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. x

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let normal t ~mean ~stddev =
  let standard =
    match t.spare with
    | Some v ->
      t.spare <- None;
      v
    | None ->
      let rec draw () =
        let u = (2.0 *. float t 1.0) -. 1.0 in
        let v = (2.0 *. float t 1.0) -. 1.0 in
        let s = (u *. u) +. (v *. v) in
        if s >= 1.0 || s = 0.0 then draw ()
        else begin
          let m = sqrt (-2.0 *. log s /. s) in
          t.spare <- Some (v *. m);
          u *. m
        end
      in
      draw ()
  in
  mean +. (stddev *. standard)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

let bits t k = Array.init k (fun _ -> bool t)
