type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): %d cells, expected %d" t.title (List.length row)
         (List.length t.columns));
  t.rows <- row :: t.rows

let all_rows t = t.columns :: List.rev t.rows

let render t =
  let rows = all_rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record_widths rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let header = line t.columns in
  let rule = String.make (String.length header) '-' in
  let body = List.map line (List.rev t.rows) in
  String.concat "\n" (("== " ^ t.title ^ " ==") :: header :: rule :: body) ^ "\n"

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (List.map line (all_rows t)) ^ "\n"

let print t = print_string (render t)
let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let cell_i = string_of_int
