type t =
  | Disk of Point.metric * float
  | Friis of { rx_range : float; sense_range : float }

let disk_linf r = Disk (Point.Linf, r)
let disk_l2 r = Disk (Point.L2, r)

let friis ?(sense_factor = 1.8) r =
  assert (r > 0.0 && sense_factor >= 1.0);
  Friis { rx_range = r; sense_range = sense_factor *. r }

let received_power t ~src ~dst =
  match t with
  | Disk (metric, r) -> if Point.within metric r src dst then 1.0 else 0.0
  | Friis { rx_range; sense_range = _ } ->
    let d = Point.dist_l2 src dst in
    if d <= 0.0 then infinity
    else begin
      let ratio = rx_range /. d in
      ratio *. ratio
    end

let sense_threshold = function
  | Disk _ -> 0.5
  | Friis { rx_range; sense_range } ->
    let ratio = rx_range /. sense_range in
    ratio *. ratio

let rx_range = function Disk (_, r) -> r | Friis { rx_range; _ } -> rx_range
let sense_range = function Disk (_, r) -> r | Friis { sense_range; _ } -> sense_range
