lib/radio/channel.ml: Format List Rng
