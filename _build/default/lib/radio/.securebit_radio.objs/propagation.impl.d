lib/radio/propagation.ml: Point
