lib/radio/propagation.mli: Point
