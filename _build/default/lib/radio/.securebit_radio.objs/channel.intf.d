lib/radio/channel.mli: Format Rng
