(** Radio propagation models.

    Powers are normalised so that the reception threshold is 1.0: a signal
    decodes iff its received power is at least 1.0 and is carrier-sensed iff
    its power is at least the model's sense threshold.

    - [Disk] is the idealised model of the paper's analysis: full power
      within the communication radius (under the chosen metric), nothing
      beyond it.
    - [Friis] is the free-space path-loss model used by WSNet for the
      simulations: power decays as [1/d²], parameterised here by the
      distance at which decoding stops ([rx_range]) and the larger distance
      at which the channel can still be carrier-sensed ([sense_range]). *)

type t =
  | Disk of Point.metric * float  (** metric and communication radius *)
  | Friis of { rx_range : float; sense_range : float }

val disk_linf : float -> t
(** Analytic model: L-infinity disk of the given radius. *)

val disk_l2 : float -> t
(** Unit-disk model under Euclidean distance. *)

val friis : ?sense_factor:float -> float -> t
(** [friis r] is free space with decode range [r] and sense range
    [sense_factor · r] (default factor 1.8, i.e. energy is detectable well
    past the decode range, as with a real carrier-sensing MAC). *)

val received_power : t -> src:Point.t -> dst:Point.t -> float
(** Normalised power of a unit transmission from [src] at [dst]. *)

val sense_threshold : t -> float
(** Normalised power above which the channel appears busy. *)

val rx_range : t -> float
(** Nominal decode range (used for topology statistics). *)

val sense_range : t -> float
(** Maximal distance at which a transmission has any effect; neighbour
    tables must include every node within this distance. *)
