(* Benchmark harness.

   Running this executable:

   1. regenerates every table and figure of the paper's evaluation
      (Section 6), the Theorem 5 running-time sweeps, and the DESIGN.md
      ablations — at Quick scale by default, or at the paper's parameters
      with FULL=1 (MultiPathRB at paper scale is very slow, exactly as the
      paper reports);
   2. runs a Bechamel microbenchmark suite with one [Test.make] per
      experiment id (a miniature instance of that table's inner simulation)
      and one per protocol primitive. *)

open Bechamel
open Toolkit

let tiny_spec protocol =
  {
    Scenario.default with
    map_w = 8.0;
    map_h = 8.0;
    deployment = Scenario.Uniform 80;
    radius = 3.0;
    message = Bitvec.of_string "101";
    protocol;
    heard_relay_limit = Some 4;
  }

let run_spec spec = ignore (Scenario.summarize (Scenario.run spec))

(* One kernel per experiment id: a miniature instance of the simulation at
   the heart of that table/figure. *)
let experiment_kernels =
  [
    ( "E1.fig5-crash",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            deployment = Scenario.Uniform 60 } );
    ( "E2.jamming",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            faults = Scenario.Jamming { fraction = 0.1; budget = 20; probability = 0.2 } } );
    ( "E3.fig6-lying",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            faults = Scenario.Lying 0.05 } );
    ( "E4.fig7-density",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 2 })) with
            faults = Scenario.Lying 0.05 } );
    ( "E5.clustered",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            deployment = Scenario.Clustered { n = 80; clusters = 4; stddev = 1.5 } } );
    ( "E6.mapsize",
      fun () ->
        run_spec
          { (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            message = Bitvec.of_string "10110" } );
    ("E7.epidemic", fun () -> run_spec (tiny_spec Scenario.Epidemic));
    ( "E8.theory-grid",
      fun () ->
        run_spec
          {
            (tiny_spec (Scenario.Neighbor_watch { votes = 1 })) with
            deployment = Scenario.Grid;
            radio = Scenario.Disk_linf;
            radius = 2.0;
            square_side = Some 1.0;
          } );
    ( "MP.multipath",
      fun () ->
        run_spec
          {
            (tiny_spec (Scenario.Multi_path { tolerance = 1 })) with
            map_w = 6.0;
            map_h = 6.0;
            deployment = Scenario.Uniform 40;
            radius = 2.0;
            message = Bitvec.of_string "10";
          } );
  ]

(* Protocol primitives, benchmarked in isolation. *)
let primitive_kernels =
  let payload = Bitvec.random (Rng.create 99) 256 in
  [
    ( "prim.two-bit-exchange",
      fun () ->
        let sender = Two_bit.Sender.create ~b1:true ~b2:false in
        let receiver = Two_bit.Receiver.create () in
        for phase = 0 to 5 do
          let s_tx = Two_bit.Sender.act sender ~phase in
          let r_tx = Two_bit.Receiver.act receiver ~phase in
          Two_bit.Sender.observe sender ~phase ~activity:r_tx;
          Two_bit.Receiver.observe receiver ~phase ~activity:s_tx
        done;
        ignore (Two_bit.Sender.outcome sender);
        ignore (Two_bit.Receiver.outcome receiver) );
    ( "prim.one-hop-64bit-stream",
      fun () ->
        let sender = One_hop.Sender.create () in
        let receiver = One_hop.Receiver.create () in
        for i = 0 to 63 do
          One_hop.Sender.push sender (i land 3 = 1)
        done;
        while One_hop.Sender.has_current sender do
          let parity, data = One_hop.Sender.current sender in
          One_hop.Receiver.push_two_bit receiver ~parity ~data;
          One_hop.Sender.advance sender
        done );
    ( "prim.voting-quorum-30",
      let items =
        List.init 30 (fun i ->
            {
              Voting.origin = (i, 2 * i);
              value = true;
              points = [ Point.make (float_of_int (i mod 7)) (float_of_int (i mod 5)) ];
            })
      in
      fun () -> ignore (Voting.quorum ~radius:4.0 ~need:8 ~value:true items) );
    ( "prim.frame-roundtrip",
      let codec = Frame.codec ~msg_len:16 ~coord_range:8.0 ~coord_step:0.5 in
      fun () ->
        let frame = Frame.Heard { index = 7; value = true; cause = (3, -2) } in
        match Frame.decode codec (Frame.encode codec frame) with
        | Some _ -> ()
        | None -> assert false );
    ("prim.digest-256bit", fun () -> ignore (Bitvec.digest ~size:8 payload));
  ]

let tests =
  List.map
    (fun (name, f) -> Test.make ~name (Staged.stage f))
    (experiment_kernels @ primitive_kernels)

let microbenchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:30 ~quota:(Time.second 0.4) ~kde:None ~sampling:(`Linear 1)
      ~stabilize:false ()
  in
  let table =
    Table.create ~title:"Bechamel microbenchmarks (OLS time per run)"
      ~columns:[ "kernel"; "time/run"; "r2" ]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols (List.hd instances) raw in
      Hashtbl.iter
        (fun name ols_result ->
          let time_cell =
            match Analyze.OLS.estimates ols_result with
            | Some (ns :: _) ->
              if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            | Some [] | None -> "n/a"
          in
          let r2_cell =
            match Analyze.OLS.r_square ols_result with
            | Some r2 -> Printf.sprintf "%.3f" r2
            | None -> "-"
          in
          Table.add_row table [ name; time_cell; r2_cell ])
        results)
    tests;
  Table.print table

let () =
  let scale = Figures.scale_of_env () in
  Printf.printf "securebit benchmark harness — scale: %s\n\n%!"
    (match scale with
    | Figures.Quick -> "Quick (set FULL=1 for paper-scale parameters)"
    | Figures.Paper -> "Paper");
  let t0 = Unix.gettimeofday () in
  let stamp () = Printf.printf "[elapsed %.1fs]\n\n%!" (Unix.gettimeofday () -. t0) in
  let print_table t =
    Table.print t;
    stamp ()
  in
  print_table (Figures.fig5_crash scale);
  let jam_table, jam_fit = Figures.jamming scale in
  Table.print jam_table;
  Printf.printf "E2 linearity: rounds = %.2f x budget + %.0f (r2 = %.3f)\n%!" jam_fit.Stats.slope
    jam_fit.Stats.intercept jam_fit.Stats.r2;
  stamp ();
  print_table (Figures.fig6_lying scale);
  print_table (Figures.fig7_density scale);
  print_table (Figures.clustered scale);
  let size_table, round_fit, bcast_fit = Figures.map_size scale in
  Table.print size_table;
  Printf.printf "E6 linearity vs hop diameter: rounds r2 = %.3f, broadcasts r2 = %.3f\n%!"
    round_fit.Stats.r2 bcast_fit.Stats.r2;
  stamp ();
  let epi_table, slowdown = Figures.epidemic_comparison scale in
  Table.print epi_table;
  Printf.printf "E7: mean NW/epidemic slowdown = %.1fx (paper reports ~7.7x)\n%!" slowdown;
  stamp ();
  List.iter
    (fun { Theory.table; fit } ->
      Table.print table;
      Printf.printf "fit: slope = %.2f, r2 = %.3f\n%!" fit.Stats.slope fit.Stats.r2;
      stamp ())
    (Theory.all scale);
  print_table (Figures.ablation_pipeline scale);
  print_table (Figures.ablation_square scale);
  print_table (Figures.ablation_jamprob scale);
  print_table (Figures.ablation_dualmode scale);
  print_table (Figures.ablation_cpa scale);
  print_table
    (Bounds.summary_table ~radii:[ 2; 3; 4; 6; 8 ]);
  (* A sparse deployment, so the table shows the interesting regime:
     static partitions that movement ferries the message across. *)
  let mobile_config =
    match scale with
    | Figures.Quick ->
      { Mobile.default with nodes = 60; map = 16.0; epoch_rounds = 3000; max_epochs = 20 }
    | Figures.Paper ->
      { Mobile.default with nodes = 240; map = 32.0; epoch_rounds = 4000; max_epochs = 30 }
  in
  print_table (Mobile.table mobile_config ~speeds:[ 0.0; 0.003; 0.01 ]);
  microbenchmarks ();
  Printf.printf "\ntotal wall time: %.1fs\n%!" (Unix.gettimeofday () -. t0)
