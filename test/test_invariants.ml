(* Cross-cutting end-to-end invariants, property-tested over randomised
   scenarios.  These are the paper's safety theorems exercised through the
   whole stack (deployment → radio → engine → protocol):

   - Authenticity (Theorems 1–4): an honest node only ever delivers a
     message some device actually injected — the true message, or, under
     lying, possibly the liars' message; never a spliced third value.
   - Jamming can delay but never corrupt.
   - Engine accounting invariants. *)

let small_spec ~seed ~protocol ~faults =
  {
    Scenario.default with
    map_w = 8.0;
    map_h = 8.0;
    deployment = Scenario.Uniform 80;
    radius = 2.5;
    message = Bitvec.of_string "1011";
    protocol;
    faults;
    heard_relay_limit = Some 4;
    cap = 400_000;
    seed;
  }

let deliveries result =
  let out = ref [] in
  Array.iteri
    (fun i delivered ->
      if result.Scenario.honest.(i) && i <> result.Scenario.source then begin
        match delivered with Some bits -> out := bits :: !out | None -> ()
      end)
    result.Scenario.engine.Engine.delivered;
  !out

let prop_nw_lying_never_splices =
  QCheck.Test.make ~name:"NW under lying: every delivery is the true or the fake message"
    ~count:12
    QCheck.(pair (int_bound 10_000) (int_range 0 30))
    (fun (seed, liar_pct) ->
      let spec =
        small_spec ~seed
          ~protocol:(Scenario.Neighbor_watch { votes = 1 })
          ~faults:(if liar_pct = 0 then Scenario.No_faults
                   else Scenario.Lying (float_of_int liar_pct /. 100.0))
      in
      let result = Scenario.run spec in
      let fake = Scenario.fake_message spec.Scenario.message in
      List.for_all
        (fun bits -> Bitvec.equal bits spec.Scenario.message || Bitvec.equal bits fake)
        (deliveries result))

let prop_nw_jamming_never_corrupts =
  QCheck.Test.make ~name:"NW under jamming: every delivery is the true message" ~count:10
    QCheck.(pair (int_bound 10_000) (int_range 0 100))
    (fun (seed, budget) ->
      let spec =
        small_spec ~seed
          ~protocol:(Scenario.Neighbor_watch { votes = 1 })
          ~faults:(Scenario.Jamming { fraction = 0.1; budget; probability = 0.2 })
      in
      let result = Scenario.run spec in
      List.for_all
        (fun bits -> Bitvec.equal bits spec.Scenario.message)
        (deliveries result))

let prop_two_voting_subset_of_single =
  QCheck.Test.make ~name:"2-voting delivers a subset: completion never exceeds 1-voting"
    ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let run votes =
        Scenario.summarize
          (Scenario.run
             (small_spec ~seed ~protocol:(Scenario.Neighbor_watch { votes })
                ~faults:Scenario.No_faults))
      in
      (run 2).Scenario.delivered_any <= (run 1).Scenario.delivered_any)

let prop_mp_no_faults_all_correct =
  QCheck.Test.make ~name:"MultiPathRB without faults never delivers wrong bits" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let spec =
        small_spec ~seed ~protocol:(Scenario.Multi_path { tolerance = 1 })
          ~faults:Scenario.No_faults
      in
      let result = Scenario.run spec in
      List.for_all
        (fun bits -> Bitvec.equal bits spec.Scenario.message)
        (deliveries result))

let prop_engine_accounting =
  QCheck.Test.make ~name:"engine accounting: completion rounds within run, broadcasts positive"
    ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let spec =
        small_spec ~seed
          ~protocol:(Scenario.Neighbor_watch { votes = 1 })
          ~faults:Scenario.No_faults
      in
      let result = Scenario.run spec in
      let e = result.Scenario.engine in
      let ok_completion =
        Array.for_all (fun r -> r >= -1 && r < e.Engine.rounds_used) e.Engine.completion_round
      in
      let ok_honest_delivery =
        Array.to_list e.Engine.completion_round
        |> List.mapi (fun i r -> (i, r))
        |> List.for_all (fun (i, r) ->
               (not result.Scenario.honest.(i)) || r < 0
               || e.Engine.delivered.(i) <> None)
      in
      let ok_broadcasts = Array.for_all (fun b -> b >= 0) e.Engine.broadcasts in
      ok_completion && ok_honest_delivery && ok_broadcasts)

let prop_determinism =
  QCheck.Test.make ~name:"identical specs give identical outcomes" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let spec =
        small_spec ~seed
          ~protocol:(Scenario.Neighbor_watch { votes = 1 })
          ~faults:(Scenario.Lying 0.1)
      in
      let a = Scenario.summarize (Scenario.run spec) in
      let b = Scenario.summarize (Scenario.run spec) in
      a = b)

let qtests =
  [
    prop_nw_lying_never_splices;
    prop_nw_jamming_never_corrupts;
    prop_two_voting_subset_of_single;
    prop_mp_no_faults_all_correct;
    prop_engine_accounting;
    prop_determinism;
  ]

let () =
  Alcotest.run "invariants"
    [ ("end-to-end", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests) ]
