(* Dense/sparse engine equivalence.

   The wakeup-driven sparse loop is only allowed to exist because it is
   byte-identical to the dense reference: same delivered bits, same
   completion rounds, same broadcast counts, same stop round, and the
   same round-by-round channel trace (skipped rounds appearing as the
   all-silent digests they are).  This suite drives both loops over the
   full protocol x fault-model matrix plus a lossy-channel case, and a
   QCheck property does the same over randomized scenarios. *)

let small_spec ~protocol ~faults ~seed ~n =
  {
    Scenario.default with
    Scenario.map_w = 8.0;
    map_h = 8.0;
    deployment = Scenario.Uniform n;
    radius = 4.0;
    message = Bitvec.of_string "101";
    protocol;
    faults;
    cap = 3_000;
    (* Random 25-node deployments on an 8x8 map do occasionally strand a
       node; partial coverage is fine here — equivalence, not delivery,
       is the property under test. *)
    allow_unreachable = true;
    seed;
  }

let bits =
  Alcotest.testable (fun fmt b -> Format.pp_print_string fmt (Bitvec.to_string b)) Bitvec.equal

let check_equivalent name spec =
  let dense_trace, dense = Determinism.capture_spec ~mode:`Dense spec in
  let sparse_trace, sparse = Determinism.capture_spec ~mode:`Sparse spec in
  (match Determinism.diff dense_trace sparse_trace with
  | Determinism.Deterministic _ -> ()
  | Determinism.Diverged _ as o ->
    Alcotest.failf "%s: dense/sparse traces differ: %s" name (Determinism.outcome_to_string o));
  let d = dense.Scenario.engine and s = sparse.Scenario.engine in
  Alcotest.(check int) (name ^ ": rounds_used") d.Engine.rounds_used s.Engine.rounds_used;
  Alcotest.(check bool) (name ^ ": hit_cap") d.Engine.hit_cap s.Engine.hit_cap;
  Alcotest.(check (array int)) (name ^ ": broadcasts") d.Engine.broadcasts s.Engine.broadcasts;
  Alcotest.(check (array int))
    (name ^ ": completion rounds")
    d.Engine.completion_round s.Engine.completion_round;
  Alcotest.(check (array (option bits)))
    (name ^ ": delivered bits")
    d.Engine.delivered s.Engine.delivered

let protocols =
  [
    ("nw1", Scenario.Neighbor_watch { votes = 1 });
    ("nw2", Scenario.Neighbor_watch { votes = 2 });
    ("mp1", Scenario.Multi_path { tolerance = 1 });
    ("epi", Scenario.Epidemic);
  ]

let fault_models =
  [
    ("honest", Scenario.No_faults);
    ("crash", Scenario.Crash 0.2);
    ("jam", Scenario.Jamming { fraction = 0.1; budget = 5; probability = 0.5 });
    ("lying", Scenario.Lying 0.15);
  ]

let matrix_case (pname, protocol) (fname, faults) =
  let name = pname ^ "/" ^ fname in
  Alcotest.test_case name `Quick (fun () ->
      let seed = String.fold_left (fun h c -> (h * 131) + Char.code c) 7 name land 0xFFFF in
      check_equivalent name (small_spec ~protocol ~faults ~seed ~n:50))

(* Loss draws happen during Phase-1 fan-out, so the CSR link order and the
   restriction of fan-out to scheduled transmitters must not perturb the
   RNG stream. *)
let test_lossy_channel () =
  let spec =
    {
      (small_spec ~protocol:(Scenario.Neighbor_watch { votes = 1 }) ~faults:Scenario.No_faults
         ~seed:7 ~n:50)
      with
      Scenario.channel = Channel.realistic;
    }
  in
  check_equivalent "nw1/lossy" spec

(* Randomized scenarios: any protocol, any fault model, lossy or ideal
   channel, arbitrary seed and deployment size. *)
let prop_random_scenarios =
  QCheck.Test.make ~name:"dense/sparse byte-identical on random scenarios" ~count:12
    QCheck.(
      quad (int_bound 100_000) (int_range 0 (List.length protocols - 1))
        (int_range 0 (List.length fault_models - 1))
        (int_range 25 60))
    (fun (seed, p, f, n) ->
      let pname, protocol = List.nth protocols p in
      let fname, faults = List.nth fault_models f in
      let spec = small_spec ~protocol ~faults ~seed ~n in
      let spec =
        if seed mod 2 = 0 then { spec with Scenario.channel = Channel.realistic } else spec
      in
      check_equivalent (Printf.sprintf "%s/%s seed %d n %d" pname fname seed n) spec;
      true)

let () =
  Alcotest.run "equivalence"
    [
      ( "protocol x fault matrix",
        List.concat_map (fun p -> List.map (matrix_case p) fault_models) protocols );
      ("lossy channel", [ Alcotest.test_case "nw1 under loss" `Quick test_lossy_channel ]);
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) [ prop_random_scenarios ] );
    ]
