(* Dense/sparse/sharded engine equivalence.

   The wakeup-driven sparse loop and the domain-sharded loop are only
   allowed to exist because they are byte-identical to the dense
   reference: same delivered bits, same completion rounds, same broadcast
   counts, same stop round, and the same round-by-round channel trace
   (skipped rounds appearing as the all-silent digests they are).  This
   suite drives all three loops over the full protocol x fault-model
   matrix plus a lossy-channel case; QCheck properties do the same over
   randomized scenarios, randomized tile counts, and fully randomized
   tile assignments (the sharded engine must not depend on the cut). *)

let small_spec ~protocol ~faults ~seed ~n =
  {
    Scenario.default with
    Scenario.map_w = 8.0;
    map_h = 8.0;
    deployment = Scenario.Uniform n;
    radius = 4.0;
    message = Bitvec.of_string "101";
    protocol;
    faults;
    cap = 3_000;
    (* Random 25-node deployments on an 8x8 map do occasionally strand a
       node; partial coverage is fine here — equivalence, not delivery,
       is the property under test. *)
    allow_unreachable = true;
    seed;
  }

let bits =
  Alcotest.testable (fun fmt b -> Format.pp_print_string fmt (Bitvec.to_string b)) Bitvec.equal

let check_same_results name label (a : Scenario.result) (b : Scenario.result) =
  let d = a.Scenario.engine and s = b.Scenario.engine in
  let check what = Alcotest.(check what) in
  check Alcotest.int (name ^ ": rounds_used " ^ label) d.Engine.rounds_used s.Engine.rounds_used;
  check Alcotest.bool (name ^ ": hit_cap " ^ label) d.Engine.hit_cap s.Engine.hit_cap;
  check
    Alcotest.(array int)
    (name ^ ": broadcasts " ^ label)
    d.Engine.broadcasts s.Engine.broadcasts;
  check
    Alcotest.(array int)
    (name ^ ": completion rounds " ^ label)
    d.Engine.completion_round s.Engine.completion_round;
  check
    Alcotest.(array (option bits))
    (name ^ ": delivered bits " ^ label)
    d.Engine.delivered s.Engine.delivered

let check_same_trace name label ref_trace trace =
  match Determinism.diff ref_trace trace with
  | Determinism.Deterministic _ -> ()
  | Determinism.Diverged _ as o ->
    Alcotest.failf "%s: %s traces differ: %s" name label (Determinism.outcome_to_string o)

(* Three-way equivalence: dense is the reference; sparse and a sharded run
   (with the given tile count, or a tile-assignment override) must match
   it in trace and in every result field. *)
let check_equivalent ?tile_of ?(tiles = 3) name spec =
  let dense_trace, dense = Determinism.capture_spec ~mode:`Dense spec in
  let sparse_trace, sparse = Determinism.capture_spec ~mode:`Sparse spec in
  let sharded_trace, sharded =
    Determinism.capture_spec ~mode:(`Sharded tiles) ?tile_of spec
  in
  check_same_trace name "dense/sparse" dense_trace sparse_trace;
  check_same_trace name "dense/sharded" dense_trace sharded_trace;
  check_same_results name "dense/sparse" dense sparse;
  check_same_results name "dense/sharded" dense sharded

let protocols =
  [
    ("nw1", Scenario.Neighbor_watch { votes = 1 });
    ("nw2", Scenario.Neighbor_watch { votes = 2 });
    ("mp1", Scenario.Multi_path { tolerance = 1 });
    ("epi", Scenario.Epidemic);
    ("cpa1", Scenario.Certified { tolerance = 1 });
  ]

let fault_models =
  [
    ("honest", Scenario.No_faults);
    ("crash", Scenario.Crash 0.2);
    ("jam", Scenario.Jamming { fraction = 0.1; budget = 5; probability = 0.5 });
    ("lying", Scenario.Lying 0.15);
  ]

let matrix_case (pname, protocol) (fname, faults) =
  let name = pname ^ "/" ^ fname in
  Alcotest.test_case name `Quick (fun () ->
      let seed = String.fold_left (fun h c -> (h * 131) + Char.code c) 7 name land 0xFFFF in
      check_equivalent name (small_spec ~protocol ~faults ~seed ~n:50))

(* Packed vs boxed observation path: [Engine.boxed_machine] strips every
   machine's packed observer, forcing the engine's variant-observation
   bridge.  Both paths must be byte-identical per protocol per engine
   mode — the packed encoding is an optimization, never a semantic. *)
let packed_modes = [ ("dense", `Dense); ("sparse", `Sparse); ("sharded", `Sharded 3) ]

let packed_case (pname, protocol) (mname, mode) =
  let name = pname ^ "/" ^ mname in
  Alcotest.test_case name `Quick (fun () ->
      let seed = String.fold_left (fun h c -> (h * 131) + Char.code c) 11 name land 0xFFFF in
      let spec = small_spec ~protocol ~faults:(Scenario.Lying 0.15) ~seed ~n:50 in
      let packed_trace, packed = Determinism.capture_spec ~mode spec in
      let boxed_trace, boxed = Determinism.capture_spec ~mode ~boxed:true spec in
      check_same_trace name "packed/boxed" packed_trace boxed_trace;
      check_same_results name "packed/boxed" packed boxed)

(* Loss draws happen during Phase-1 fan-out — serially on the coordinator
   in the sharded rounds — so the CSR link order, the restriction of
   fan-out to scheduled transmitters, and the tile merge must not perturb
   the RNG stream. *)
let test_lossy_channel () =
  let spec =
    {
      (small_spec ~protocol:(Scenario.Neighbor_watch { votes = 1 }) ~faults:Scenario.No_faults
         ~seed:7 ~n:50)
      with
      Scenario.channel = Channel.realistic;
    }
  in
  check_equivalent "nw1/lossy" spec

(* Randomized scenarios: any protocol, any fault model, lossy or ideal
   channel, arbitrary seed, deployment size and tile count. *)
let prop_random_scenarios =
  QCheck.Test.make ~name:"all engine modes byte-identical on random scenarios" ~count:12
    QCheck.(
      quad (int_bound 100_000) (int_range 0 (List.length protocols - 1))
        (int_range 0 (List.length fault_models - 1))
        (int_range 25 60))
    (fun (seed, p, f, n) ->
      let pname, protocol = List.nth protocols p in
      let fname, faults = List.nth fault_models f in
      let spec = small_spec ~protocol ~faults ~seed ~n in
      let spec =
        if seed mod 2 = 0 then { spec with Scenario.channel = Channel.realistic } else spec
      in
      let tiles = 2 + (seed mod 4) in
      check_equivalent ~tiles (Printf.sprintf "%s/%s seed %d n %d" pname fname seed n) spec;
      true)

(* Any tile assignment, same bytes: the sharded engine's determinism must
   not depend on the partition heuristic, so compare the serial reference
   against a uniformly random (unbalanced, non-contiguous, possibly
   empty-tiled) assignment. *)
let prop_random_partition =
  QCheck.Test.make ~name:"sharded byte-identical under arbitrary tile assignments" ~count:10
    QCheck.(
      quad (int_bound 100_000) (int_bound 100_000) (int_range 2 6) (int_range 25 60))
    (fun (seed, tile_seed, tiles, n) ->
      let protocol = List.nth protocols (seed mod List.length protocols) |> snd in
      let faults = List.nth fault_models (tile_seed mod List.length fault_models) |> snd in
      let spec = small_spec ~protocol ~faults ~seed ~n in
      let tile_rng = Rng.create tile_seed in
      let tile_of = Array.init n (fun _ -> Rng.int tile_rng tiles) in
      check_equivalent ~tiles ~tile_of
        (Printf.sprintf "random partition seed %d tiles %d n %d" seed tiles n)
        spec;
      true)

let () =
  Alcotest.run "equivalence"
    [
      ( "protocol x fault matrix",
        List.concat_map (fun p -> List.map (matrix_case p) fault_models) protocols );
      ( "packed vs boxed observations",
        List.concat_map (fun p -> List.map (packed_case p) packed_modes) protocols );
      ("lossy channel", [ Alcotest.test_case "nw1 under loss" `Quick test_lossy_channel ]);
      ( "properties",
        List.map
          (fun t -> QCheck_alcotest.to_alcotest ~long:false t)
          [ prop_random_scenarios; prop_random_partition ] );
    ]
