(* Tests for the 1Hop-Protocol stream layer: alternating parity, lossless
   in-order delivery, retransmission handling, and the catch-up pointer. *)

let test_parity_alternates () =
  Alcotest.(check bool) "first parity is 1" true (One_hop.parity_of_index 0);
  Alcotest.(check bool) "second is 0" false (One_hop.parity_of_index 1);
  for i = 0 to 20 do
    Alcotest.(check bool) "alternation" true
      (One_hop.parity_of_index i = not (One_hop.parity_of_index (i + 1)))
  done

let test_sender_basics () =
  let s = One_hop.Sender.create () in
  Alcotest.(check bool) "empty stream" false (One_hop.Sender.has_current s);
  Alcotest.(check int) "nothing sent" 0 (One_hop.Sender.sent s);
  One_hop.Sender.push s true;
  One_hop.Sender.push s false;
  Alcotest.(check int) "two queued" 2 (One_hop.Sender.total s);
  Alcotest.(check bool) "has current" true (One_hop.Sender.has_current s);
  let parity, data = One_hop.Sender.current s in
  Alcotest.(check (pair bool bool)) "first bit with parity 1" (true, true) (parity, data);
  One_hop.Sender.advance s;
  let parity, data = One_hop.Sender.current s in
  Alcotest.(check (pair bool bool)) "second bit with parity 0" (false, false) (parity, data);
  One_hop.Sender.advance s;
  Alcotest.(check bool) "drained" false (One_hop.Sender.has_current s);
  One_hop.Sender.advance s;
  Alcotest.(check int) "advance past end is a no-op" 2 (One_hop.Sender.sent s)

let test_sender_skip_to () =
  let s = One_hop.Sender.create () in
  List.iter (One_hop.Sender.push s) [ true; true; false; true ];
  One_hop.Sender.skip_to s 2;
  Alcotest.(check int) "skipped forward" 2 (One_hop.Sender.sent s);
  One_hop.Sender.skip_to s 1;
  Alcotest.(check int) "never backwards" 2 (One_hop.Sender.sent s);
  One_hop.Sender.skip_to s 99;
  Alcotest.(check int) "clamped to total" 4 (One_hop.Sender.sent s)

let test_receiver_assembles_stream () =
  let r = One_hop.Receiver.create () in
  One_hop.Receiver.push_two_bit r ~parity:true ~data:true;
  One_hop.Receiver.push_two_bit r ~parity:false ~data:false;
  One_hop.Receiver.push_two_bit r ~parity:true ~data:true;
  Alcotest.(check int) "three bits" 3 (One_hop.Receiver.received r);
  Alcotest.(check string) "stream content" "101" (Bitvec.to_string (One_hop.Receiver.bits r));
  Alcotest.(check bool) "get" true (One_hop.Receiver.get r 0);
  Alcotest.(check string) "prefix" "10" (Bitvec.to_string (One_hop.Receiver.prefix r 2))

let test_receiver_ignores_retransmission () =
  let r = One_hop.Receiver.create () in
  One_hop.Receiver.push_two_bit r ~parity:true ~data:true;
  (* The sender retries bit 0 (same parity): receivers must not take it as
     a new bit — even with different data (a garbled retry). *)
  One_hop.Receiver.push_two_bit r ~parity:true ~data:true;
  One_hop.Receiver.push_two_bit r ~parity:true ~data:false;
  Alcotest.(check int) "duplicates dropped" 1 (One_hop.Receiver.received r);
  Alcotest.(check string) "original value kept" "1" (Bitvec.to_string (One_hop.Receiver.bits r))

let test_silence_is_not_a_bit () =
  (* Before anything is sent the expected parity is 1, so a (0, x) pattern
     — which is what pure silence would decode to — is not accepted as the
     first bit. *)
  let r = One_hop.Receiver.create () in
  One_hop.Receiver.push_two_bit r ~parity:false ~data:false;
  Alcotest.(check int) "silence rejected" 0 (One_hop.Receiver.received r)

let prop_lossless_transfer =
  QCheck.Test.make ~name:"sender-to-receiver transfer is lossless and ordered" ~count:200
    QCheck.(small_list bool)
    (fun bits ->
      let s = One_hop.Sender.create () in
      let r = One_hop.Receiver.create () in
      List.iter (One_hop.Sender.push s) bits;
      while One_hop.Sender.has_current s do
        let parity, data = One_hop.Sender.current s in
        One_hop.Receiver.push_two_bit r ~parity ~data;
        One_hop.Sender.advance s
      done;
      Bitvec.to_list (One_hop.Receiver.bits r) = bits)

let prop_retries_are_harmless =
  QCheck.Test.make ~name:"arbitrary per-bit retry counts do not corrupt the stream" ~count:200
    QCheck.(pair (small_list bool) (int_bound 10_000))
    (fun (bits, seed) ->
      let rng = Rng.create seed in
      let s = One_hop.Sender.create () in
      let r = One_hop.Receiver.create () in
      List.iter (One_hop.Sender.push s) bits;
      while One_hop.Sender.has_current s do
        let parity, data = One_hop.Sender.current s in
        (* The 2Bit exchange may fail for the sender but succeed for the
           receiver (or vice versa): deliver 1 + k copies. *)
        for _ = 0 to Rng.int rng 3 do
          One_hop.Receiver.push_two_bit r ~parity ~data
        done;
        One_hop.Sender.advance s
      done;
      Bitvec.to_list (One_hop.Receiver.bits r) = bits)

let prop_interleaved_push =
  QCheck.Test.make ~name:"bits pushed while transferring still arrive in order" ~count:100
    QCheck.(pair (small_list bool) (small_list bool))
    (fun (first, second) ->
      let s = One_hop.Sender.create () in
      let r = One_hop.Receiver.create () in
      List.iter (One_hop.Sender.push s) first;
      let step () =
        if One_hop.Sender.has_current s then begin
          let parity, data = One_hop.Sender.current s in
          One_hop.Receiver.push_two_bit r ~parity ~data;
          One_hop.Sender.advance s
        end
      in
      step ();
      List.iter (One_hop.Sender.push s) second;
      while One_hop.Sender.has_current s do
        step ()
      done;
      Bitvec.to_list (One_hop.Receiver.bits r) = first @ second)

let qtests = [ prop_lossless_transfer; prop_retries_are_harmless; prop_interleaved_push ]

let () =
  Alcotest.run "one_hop"
    [
      ( "stream",
        [
          Alcotest.test_case "parity alternates" `Quick test_parity_alternates;
          Alcotest.test_case "sender basics" `Quick test_sender_basics;
          Alcotest.test_case "skip_to" `Quick test_sender_skip_to;
          Alcotest.test_case "receiver assembles" `Quick test_receiver_assembles_stream;
          Alcotest.test_case "retransmissions ignored" `Quick test_receiver_ignores_retransmission;
          Alcotest.test_case "silence is not a bit" `Quick test_silence_is_not_a_bit;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
