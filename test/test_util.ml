(* Tests for the util library: Rng, Stats, Bitvec, Table. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose tolerance = Alcotest.(check (float tolerance))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = List.init 20 (fun _ -> Rng.int64 a = Rng.int64 b) in
  Alcotest.(check bool) "different seeds diverge" true (List.mem false same)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split_independence () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all (fun b -> b) seen)

let test_rng_float_bounds () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never fires" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always fires" true (Rng.bernoulli rng 1.0)
  done

let test_rng_normal_moments () =
  let rng = Rng.create 23 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Rng.normal rng ~mean:3.0 ~stddev:2.0) in
  let s = Stats.summarize samples in
  check_float_loose 0.1 "mean near 3" 3.0 s.Stats.mean;
  check_float_loose 0.1 "stddev near 2" 2.0 s.Stats.stddev

let test_rng_shuffle_permutes () =
  let rng = Rng.create 29 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 31 in
  let sample = Rng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "10 values" 10 (List.length sample);
  Alcotest.(check int) "all distinct" 10 (List.length (List.sort_uniq Int.compare sample));
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) sample

let test_rng_bits_length () =
  let rng = Rng.create 37 in
  Alcotest.(check int) "k bits" 12 (Array.length (Rng.bits rng 12))

(* --- Stats ----------------------------------------------------------- *)

let test_stats_mean_median () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "median singleton" 7.0 (Stats.median [ 7.0 ])

let test_stats_stddev () =
  check_float "known stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] *. sqrt (7.0 /. 8.0));
  check_float "constant data" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  check_float "fewer than 2" 0.0 (Stats.stddev [ 42.0 ])

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0 = min" 10.0 (Stats.percentile 0.0 xs);
  check_float "p1 = max" 40.0 (Stats.percentile 1.0 xs);
  check_float "p50 interpolates" 25.0 (Stats.percentile 0.5 xs)

let test_stats_summarize () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max;
  check_float "median" 2.0 s.Stats.median

let test_stats_trimmed () =
  let xs = [ 10.0; 11.0; 9.0; 10.5; 9.5; 1000.0 ] in
  let t = Stats.trimmed xs in
  Alcotest.(check bool) "outlier dropped" false (List.mem 1000.0 t);
  Alcotest.(check int) "rest kept" 5 (List.length t);
  Alcotest.(check (list (float 0.0))) "short lists untouched" [ 1.0; 99.0 ]
    (Stats.trimmed [ 1.0; 99.0 ])

let test_stats_linear_fit_exact () =
  let points = List.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let fit = Stats.linear_fit points in
  check_float_loose 1e-9 "slope" 2.0 fit.Stats.slope;
  check_float_loose 1e-9 "intercept" 1.0 fit.Stats.intercept;
  check_float_loose 1e-9 "r2" 1.0 fit.Stats.r2

let test_stats_linear_fit_degenerate () =
  let fit = Stats.linear_fit [ (1.0, 5.0); (1.0, 7.0) ] in
  check_float "vertical data has no slope" 0.0 fit.Stats.slope;
  let fit2 = Stats.linear_fit [] in
  check_float "empty" 0.0 fit2.Stats.r2

let prop_linear_fit_recovers_line =
  QCheck.Test.make ~name:"linear_fit recovers exact lines" ~count:100
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0) (int_range 3 20))
    (fun (slope, intercept, n) ->
      let points =
        List.init n (fun i ->
            let x = float_of_int i in
            (x, (slope *. x) +. intercept))
      in
      let fit = Stats.linear_fit points in
      abs_float (fit.Stats.slope -. slope) < 1e-6
      && abs_float (fit.Stats.intercept -. intercept) < 1e-6)

(* --- Bitvec ----------------------------------------------------------- *)

let test_bitvec_string_roundtrip () =
  let s = "101101001" in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string (Bitvec.of_string s));
  Alcotest.(check string) "empty" "" (Bitvec.to_string Bitvec.empty)

let test_bitvec_of_string_invalid () =
  Alcotest.check_raises "bad char" (Invalid_argument "Bitvec.of_string: bad char x") (fun () ->
      ignore (Bitvec.of_string "10x1"))

let test_bitvec_int_roundtrip () =
  Alcotest.(check int) "decode" 11 (Bitvec.to_int (Bitvec.of_string "1011"));
  Alcotest.(check string) "encode" "01011" (Bitvec.to_string (Bitvec.of_int ~width:5 11))

let prop_bitvec_int_roundtrip =
  QCheck.Test.make ~name:"of_int/to_int roundtrip" ~count:200
    QCheck.(int_range 0 100000)
    (fun n -> Bitvec.to_int (Bitvec.of_int ~width:20 n) = n)

let test_bitvec_ops () =
  let a = Bitvec.of_string "10" and b = Bitvec.of_string "01" in
  Alcotest.(check string) "append" "1001" (Bitvec.to_string (Bitvec.append a b));
  Alcotest.(check string) "concat" "100110" (Bitvec.to_string (Bitvec.concat [ a; b; a ]));
  Alcotest.(check string) "sub" "00" (Bitvec.to_string (Bitvec.sub (Bitvec.of_string "1001") ~pos:1 ~len:2));
  Alcotest.(check string) "snoc" "101" (Bitvec.to_string (Bitvec.snoc a true));
  Alcotest.(check bool) "equal" true (Bitvec.equal a (Bitvec.of_string "10"));
  Alcotest.(check bool) "not equal" false (Bitvec.equal a b);
  Alcotest.(check int) "fold counts ones" 2
    (Bitvec.fold_left (fun acc bit -> if bit then acc + 1 else acc) 0 (Bitvec.of_string "0101"))

let test_bitvec_digest_deterministic () =
  let m = Bitvec.of_string "110010111" in
  Alcotest.(check string) "same input same digest"
    (Bitvec.to_string (Bitvec.digest ~size:8 m))
    (Bitvec.to_string (Bitvec.digest ~size:8 m));
  Alcotest.(check int) "requested size" 8 (Bitvec.length (Bitvec.digest ~size:8 m))

let test_bitvec_digest_separates () =
  let rng = Rng.create 41 in
  let collisions = ref 0 in
  for _ = 1 to 200 do
    let a = Bitvec.random rng 32 and b = Bitvec.random rng 32 in
    if (not (Bitvec.equal a b))
       && Bitvec.equal (Bitvec.digest ~size:16 a) (Bitvec.digest ~size:16 b)
    then incr collisions
  done;
  Alcotest.(check bool) "16-bit digests rarely collide" true (!collisions <= 2)

let prop_bitvec_list_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200
    QCheck.(small_list bool)
    (fun bits -> Bitvec.to_list (Bitvec.of_list bits) = bits)

(* Word-level scratch API.  [w] is one word of bits, so [w + k] lengths
   and positions straddle the packed-word boundary the engine's halo
   buffers exercise. *)
let w = Bitvec.bits_per_word

let test_bitvec_popcount () =
  Alcotest.(check int) "empty" 0 (Bitvec.popcount Bitvec.empty);
  Alcotest.(check int) "mixed" 3 (Bitvec.popcount (Bitvec.of_string "101001"));
  Alcotest.(check int) "all ones across words" (w + 5) (Bitvec.popcount (Bitvec.create (w + 5) true));
  Alcotest.(check int) "all zeros across words" 0 (Bitvec.popcount (Bitvec.create (w + 5) false))

let test_bitvec_set () =
  let v = Bitvec.create (w + 3) false in
  Bitvec.set v 0 true;
  Bitvec.set v (w - 1) true;
  Bitvec.set v w true;
  (* last bit of word 0, first bit of word 1 *)
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit w-1" true (Bitvec.get v (w - 1));
  Alcotest.(check bool) "bit w" true (Bitvec.get v w);
  Alcotest.(check bool) "bit w+1 untouched" false (Bitvec.get v (w + 1));
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v w false;
  Alcotest.(check bool) "cleared" false (Bitvec.get v w);
  Alcotest.(check int) "popcount after clear" 2 (Bitvec.popcount v)

let test_bitvec_set_range () =
  (* Fill straddling the word boundary, then clear a sub-range of it. *)
  let v = Bitvec.create (2 * w) false in
  Bitvec.set_range v ~pos:(w - 3) ~len:6 true;
  Alcotest.(check int) "filled" 6 (Bitvec.popcount v);
  for i = 0 to (2 * w) - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "bit %d" i)
      (i >= w - 3 && i < w + 3)
      (Bitvec.get v i)
  done;
  Bitvec.set_range v ~pos:(w - 1) ~len:2 false;
  Alcotest.(check int) "partially cleared" 4 (Bitvec.popcount v);
  (* Whole-word fill keeps padding above [length] canonical (digest and
     equal rely on it); equality with a freshly built vector checks that. *)
  let u = Bitvec.create (w + 7) false in
  Bitvec.set_range u ~pos:0 ~len:(w + 7) true;
  Alcotest.(check bool) "full fill = create true" true (Bitvec.equal u (Bitvec.create (w + 7) true));
  Bitvec.set_range u ~pos:0 ~len:0 false;
  Alcotest.(check bool) "empty range is a no-op" true (Bitvec.equal u (Bitvec.create (w + 7) true))

let test_bitvec_iter_set () =
  let v = Bitvec.create (2 * w) false in
  let expected = [ 0; 5; w - 1; w; w + 9; (2 * w) - 1 ] in
  List.iter (fun i -> Bitvec.set v i true) expected;
  let seen = ref [] in
  Bitvec.iter_set (fun i -> seen := i :: !seen) v;
  Alcotest.(check (list int)) "ascending set indices" expected (List.rev !seen);
  Bitvec.iter_set (fun _ -> Alcotest.fail "no bits set") (Bitvec.create w false)

let test_bitvec_blit () =
  let check_blit ~src_pos ~dst_pos ~len name =
    let src = Bitvec.init (2 * w) (fun i -> i mod 3 = 0) in
    let dst = Bitvec.init (2 * w) (fun i -> i mod 5 = 0) in
    let reference =
      Bitvec.init (2 * w) (fun i ->
          if i >= dst_pos && i < dst_pos + len then (i - dst_pos + src_pos) mod 3 = 0
          else i mod 5 = 0)
    in
    Bitvec.blit ~src ~src_pos ~dst ~dst_pos ~len;
    Alcotest.(check bool) name true (Bitvec.equal dst reference)
  in
  (* Word-aligned fast path, unaligned, boundary-straddling, empty. *)
  check_blit ~src_pos:0 ~dst_pos:w ~len:w "aligned word copy";
  check_blit ~src_pos:0 ~dst_pos:0 ~len:(2 * w) "aligned full copy";
  check_blit ~src_pos:3 ~dst_pos:(w - 2) ~len:7 "unaligned straddling copy";
  check_blit ~src_pos:(w - 1) ~dst_pos:1 ~len:(w + 1) "long unaligned copy";
  check_blit ~src_pos:5 ~dst_pos:9 ~len:0 "empty copy is a no-op"

let prop_bitvec_word_ops_match_naive =
  (* set_range/popcount/iter_set against the naive per-bit model, at
     lengths clustered around the word boundary. *)
  QCheck.Test.make ~name:"word-level ops match per-bit model" ~count:200
    QCheck.(triple (int_range 0 (3 * 62)) (int_range 0 (3 * 62)) (int_range 0 (3 * 62)))
    (fun (len, a, b) ->
      let pos = min a b mod max 1 (max 1 len) in
      let sublen = min (len - pos) (max a b mod max 1 (max 1 len)) in
      let v = Bitvec.init len (fun i -> i mod 7 < 3) in
      if len > 0 && sublen >= 0 then Bitvec.set_range v ~pos ~len:sublen true;
      let model i = (i >= pos && i < pos + sublen && len > 0) || i mod 7 < 3 in
      let pops = ref 0 and iter_ok = ref true in
      let last = ref (-1) in
      Bitvec.iter_set
        (fun i ->
          if i <= !last || not (model i) then iter_ok := false;
          last := i;
          incr pops)
        v;
      let expected = ref 0 in
      for i = 0 to len - 1 do
        if model i then incr expected
      done;
      !iter_ok && !pops = !expected && Bitvec.popcount v = !expected)

(* --- Calendar ---------------------------------------------------------- *)

let test_calendar_basic () =
  let c = Calendar.create () in
  Alcotest.(check bool) "starts empty" true (Calendar.is_empty c);
  Calendar.add c 5 50;
  Calendar.add c 1 10;
  Calendar.add c 3 30;
  Alcotest.(check int) "size" 3 (Calendar.size c);
  Alcotest.(check int) "min key" 1 (Calendar.min_key c);
  Alcotest.(check int) "pop returns payload" 10 (Calendar.pop_min c);
  Alcotest.(check int) "next min" 3 (Calendar.min_key c);
  Alcotest.(check int) "pop 2" 30 (Calendar.pop_min c);
  Alcotest.(check int) "pop 3" 50 (Calendar.pop_min c);
  Alcotest.(check bool) "empty again" true (Calendar.is_empty c)

let test_calendar_duplicates_and_clear () =
  let c = Calendar.create ~capacity:1 () in
  (* The engine leans on lazy deletion: the same machine may be queued at
     several rounds, and duplicate (key, value) pairs must all come back. *)
  Calendar.add c 2 7;
  Calendar.add c 2 7;
  Calendar.add c 2 9;
  Alcotest.(check int) "duplicates kept" 3 (Calendar.size c);
  let popped = List.sort Int.compare (List.init 3 (fun _ -> Calendar.pop_min c)) in
  Alcotest.(check (list int)) "payloads preserved" [ 7; 7; 9 ] popped;
  Calendar.add c 4 1;
  Calendar.clear c;
  Alcotest.(check bool) "clear empties" true (Calendar.is_empty c);
  Alcotest.(check bool) "min_key on empty raises" true
    (try
       ignore (Calendar.min_key c);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "pop_min on empty raises" true
    (try
       ignore (Calendar.pop_min c);
       false
     with Invalid_argument _ -> true)

(* Drain order must be nondecreasing in key, whatever the insertion order,
   including through capacity growth from a tiny initial array. *)
let prop_calendar_drains_sorted =
  QCheck.Test.make ~name:"calendar drains keys in nondecreasing order" ~count:200
    QCheck.(small_list (pair (int_range 0 1000) (int_range 0 50)))
    (fun pairs ->
      let c = Calendar.create ~capacity:1 () in
      List.iter (fun (k, v) -> Calendar.add c k v) pairs;
      let rec drain acc last =
        if Calendar.is_empty c then List.rev acc
        else begin
          let k = Calendar.min_key c in
          if k < last then raise Exit;
          let v = Calendar.pop_min c in
          drain ((k, v) :: acc) k
        end
      in
      match drain [] min_int with
      | drained ->
        (* Same multiset of entries out as in. *)
        let pair_compare (k1, v1) (k2, v2) =
          match Int.compare k1 k2 with 0 -> Int.compare v1 v2 | c -> c
        in
        List.sort pair_compare drained = List.sort pair_compare pairs
      | exception Exit -> false)

(* --- Table ------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  Table.add_row t [ "long-cell"; "z" ];
  let rendered = Table.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains rendered needle))
    [ "demo"; "long-cell"; "bb" ]

let test_table_arity () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.(check bool) "wrong arity raises" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,1"; "plain" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma cell quoted" true
    (String.length csv > 0
    &&
    let lines = String.split_on_char '\n' csv in
    List.exists (fun l -> l = "\"x,1\",plain") lines)

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "pct" "42.0%" (Table.cell_pct 0.42);
  Alcotest.(check string) "int" "17" (Table.cell_i 17)

let qtests =
  [
    prop_linear_fit_recovers_line;
    prop_bitvec_int_roundtrip;
    prop_bitvec_list_roundtrip;
    prop_bitvec_word_ops_match_naive;
    prop_calendar_drains_sorted;
  ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sampling without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "bits length" `Quick test_rng_bits_length;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and median" `Quick test_stats_mean_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "trimmed" `Quick test_stats_trimmed;
          Alcotest.test_case "linear fit exact" `Quick test_stats_linear_fit_exact;
          Alcotest.test_case "linear fit degenerate" `Quick test_stats_linear_fit_degenerate;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "invalid string" `Quick test_bitvec_of_string_invalid;
          Alcotest.test_case "int roundtrip" `Quick test_bitvec_int_roundtrip;
          Alcotest.test_case "ops" `Quick test_bitvec_ops;
          Alcotest.test_case "digest deterministic" `Quick test_bitvec_digest_deterministic;
          Alcotest.test_case "digest separates" `Quick test_bitvec_digest_separates;
          Alcotest.test_case "popcount" `Quick test_bitvec_popcount;
          Alcotest.test_case "set across word boundary" `Quick test_bitvec_set;
          Alcotest.test_case "set_range across word boundary" `Quick test_bitvec_set_range;
          Alcotest.test_case "iter_set ascending" `Quick test_bitvec_iter_set;
          Alcotest.test_case "blit aligned and unaligned" `Quick test_bitvec_blit;
        ] );
      ( "calendar",
        [
          Alcotest.test_case "ordering" `Quick test_calendar_basic;
          Alcotest.test_case "duplicates, clear, empty errors" `Quick
            test_calendar_duplicates_and_clear;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
