(* Tests for the geometry library: Point, Box (incl. minimum enclosing
   circle), Squares. *)

let check_float = Alcotest.(check (float 1e-9))
let point = Point.make

(* --- Point ------------------------------------------------------------ *)

let test_point_distances () =
  let a = point 0.0 0.0 and b = point 3.0 4.0 in
  check_float "l2" 5.0 (Point.dist_l2 a b);
  check_float "linf" 4.0 (Point.dist_linf a b);
  check_float "l2 self" 0.0 (Point.dist_l2 a a)

let test_point_within () =
  let a = point 0.0 0.0 and b = point 3.0 4.0 in
  Alcotest.(check bool) "within l2 5" true (Point.within_l2 5.0 a b);
  Alcotest.(check bool) "not within l2 4.9" false (Point.within_l2 4.9 a b);
  Alcotest.(check bool) "within linf 4" true (Point.within_linf 4.0 a b);
  Alcotest.(check bool) "not within linf 3.9" false (Point.within_linf 3.9 a b)

let test_point_metric_dispatch () =
  let a = point 0.0 0.0 and b = point 1.0 1.0 in
  check_float "L2 dispatch" (sqrt 2.0) (Point.dist Point.L2 a b);
  check_float "Linf dispatch" 1.0 (Point.dist Point.Linf a b);
  Alcotest.(check bool) "within dispatch" true (Point.within Point.Linf 1.0 a b);
  Alcotest.(check bool) "equal" true (Point.equal a (point 0.0 0.0))

(* --- Box ---------------------------------------------------------------- *)

let test_box_of_points () =
  let b = Box.of_points [ point 1.0 5.0; point (-2.0) 3.0; point 4.0 0.0 ] in
  check_float "x_min" (-2.0) b.Box.x_min;
  check_float "x_max" 4.0 b.Box.x_max;
  check_float "y_min" 0.0 b.Box.y_min;
  check_float "y_max" 5.0 b.Box.y_max;
  check_float "width" 6.0 (Box.width b);
  check_float "height" 5.0 (Box.height b);
  Alcotest.(check bool) "contains inner" true (Box.contains b (point 0.0 2.0));
  Alcotest.(check bool) "excludes outer" false (Box.contains b (point 5.0 2.0))

let test_box_empty_raises () =
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Box.of_points []);
       false
     with Invalid_argument _ -> true)

let test_fit_linf () =
  Alcotest.(check bool) "empty fits" true (Box.fit_in_linf_ball ~radius:1.0 []);
  Alcotest.(check bool) "tight fit" true
    (Box.fit_in_linf_ball ~radius:1.0 [ point 0.0 0.0; point 2.0 2.0 ]);
  Alcotest.(check bool) "too wide" false
    (Box.fit_in_linf_ball ~radius:1.0 [ point 0.0 0.0; point 2.1 0.0 ]);
  Alcotest.(check bool) "three points" true
    (Box.fit_in_linf_ball ~radius:2.0 [ point 0.0 0.0; point 4.0 0.0; point 2.0 4.0 ])

let test_fit_l2 () =
  Alcotest.(check bool) "empty fits" true (Box.fit_in_l2_ball ~radius:1.0 []);
  Alcotest.(check bool) "single point" true (Box.fit_in_l2_ball ~radius:0.0 [ point 3.0 3.0 ]);
  Alcotest.(check bool) "pair diameter" true
    (Box.fit_in_l2_ball ~radius:1.0 [ point 0.0 0.0; point 2.0 0.0 ]);
  Alcotest.(check bool) "pair too far" false
    (Box.fit_in_l2_ball ~radius:0.99 [ point 0.0 0.0; point 2.0 0.0 ]);
  (* Equilateral triangle with side 2: circumradius 2/sqrt(3) ≈ 1.1547. *)
  let tri = [ point 0.0 0.0; point 2.0 0.0; point 1.0 (sqrt 3.0) ] in
  Alcotest.(check bool) "triangle circumradius fits" true (Box.fit_in_l2_ball ~radius:1.16 tri);
  Alcotest.(check bool) "triangle too tight" false (Box.fit_in_l2_ball ~radius:1.14 tri);
  Alcotest.(check bool) "collinear" true
    (Box.fit_in_l2_ball ~radius:2.0 [ point 0.0 0.0; point 2.0 0.0; point 4.0 0.0 ])

let prop_fit_linf_ball =
  QCheck.Test.make ~name:"points sampled in an Linf ball always fit it" ~count:200
    QCheck.(pair (int_range 1 12) (int_bound 10_000))
    (fun (count, seed) ->
      let rng = Rng.create seed in
      let radius = 1.0 +. Rng.float rng 5.0 in
      let cx = Rng.float rng 20.0 and cy = Rng.float rng 20.0 in
      let points =
        List.init count (fun _ ->
            point
              (cx +. Rng.float rng (2.0 *. radius) -. radius)
              (cy +. Rng.float rng (2.0 *. radius) -. radius))
      in
      Box.fit_in_linf_ball ~radius points)

let prop_fit_l2_ball_necessary =
  QCheck.Test.make ~name:"pair spread beyond 2r never fits an L2 ball of radius r" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let radius = 1.0 +. Rng.float rng 5.0 in
      let gap = (2.0 *. radius) +. 0.1 +. Rng.float rng 3.0 in
      not (Box.fit_in_l2_ball ~radius [ point 0.0 0.0; point gap 0.0 ]))

(* --- Squares ------------------------------------------------------------ *)

let squares = Squares.make ~side:2.0 ~width:10.0 ~height:6.0

let test_squares_shape () =
  Alcotest.(check int) "cols" 5 (Squares.cols squares);
  Alcotest.(check int) "rows" 3 (Squares.rows squares);
  Alcotest.(check int) "count" 15 (Squares.count squares);
  check_float "side" 2.0 (Squares.side squares)

let test_squares_assignment () =
  Alcotest.(check int) "origin square" 0 (Squares.square_of squares (point 0.0 0.0));
  Alcotest.(check int) "interior" ((1 * 5) + 2) (Squares.square_of squares (point 4.5 3.9));
  Alcotest.(check int) "outside clamps" (Squares.count squares - 1)
    (Squares.square_of squares (point 99.0 99.0))

let test_squares_coords_roundtrip () =
  for id = 0 to Squares.count squares - 1 do
    match Squares.id_of_coords squares (Squares.coords squares id) with
    | Some id' -> Alcotest.(check int) "roundtrip" id id'
    | None -> Alcotest.fail "coords out of range"
  done;
  Alcotest.(check (option int)) "out of grid" None (Squares.id_of_coords squares (5, 0));
  Alcotest.(check (option int)) "negative" None (Squares.id_of_coords squares (-1, 0))

let test_squares_neighbors () =
  let corner = Squares.square_of squares (point 0.0 0.0) in
  Alcotest.(check int) "corner has 3" 3 (List.length (Squares.neighbors squares corner));
  let edge = Squares.square_of squares (point 4.5 0.0) in
  Alcotest.(check int) "edge has 5" 5 (List.length (Squares.neighbors squares edge));
  let middle = Squares.square_of squares (point 4.5 3.0) in
  Alcotest.(check int) "middle has 8" 8 (List.length (Squares.neighbors squares middle));
  Alcotest.(check bool) "self excluded" false (List.mem middle (Squares.neighbors squares middle))

let test_squares_center () =
  let c = Squares.center squares 0 in
  check_float "cx" 1.0 c.Point.x;
  check_float "cy" 1.0 c.Point.y

let test_squares_sides () =
  check_float "analytic side R=4" 2.0 (Squares.analytic_side ~radius:4.0);
  check_float "analytic side R=5" 3.0 (Squares.analytic_side ~radius:5.0);
  check_float "simulation side" (4.0 /. 3.0) (Squares.simulation_side ~radius:4.0)

let prop_squares_adjacent_communicate =
  (* The defining property of the simulation square size R/3: any two
     points in 8-adjacent squares are within Euclidean distance R. *)
  QCheck.Test.make ~name:"R/3 squares: adjacent squares are in L2 range" ~count:300
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let radius = 2.0 +. Rng.float rng 6.0 in
      let side = Squares.simulation_side ~radius in
      let sq = Squares.make ~side ~width:20.0 ~height:20.0 in
      let p = point (Rng.float rng 20.0) (Rng.float rng 20.0) in
      let q = point (Rng.float rng 20.0) (Rng.float rng 20.0) in
      let sp = Squares.square_of sq p and sq_id = Squares.square_of sq q in
      if sp = sq_id || List.mem sq_id (Squares.neighbors sq sp) then
        Point.dist_l2 p q <= radius +. 1e-9
      else true)

let qtests = [ prop_fit_linf_ball; prop_fit_l2_ball_necessary; prop_squares_adjacent_communicate ]

let () =
  Alcotest.run "geometry"
    [
      ( "point",
        [
          Alcotest.test_case "distances" `Quick test_point_distances;
          Alcotest.test_case "within" `Quick test_point_within;
          Alcotest.test_case "metric dispatch" `Quick test_point_metric_dispatch;
        ] );
      ( "box",
        [
          Alcotest.test_case "of_points" `Quick test_box_of_points;
          Alcotest.test_case "empty raises" `Quick test_box_empty_raises;
          Alcotest.test_case "fit linf" `Quick test_fit_linf;
          Alcotest.test_case "fit l2 (mec)" `Quick test_fit_l2;
        ] );
      ( "squares",
        [
          Alcotest.test_case "shape" `Quick test_squares_shape;
          Alcotest.test_case "assignment" `Quick test_squares_assignment;
          Alcotest.test_case "coords roundtrip" `Quick test_squares_coords_roundtrip;
          Alcotest.test_case "neighbors" `Quick test_squares_neighbors;
          Alcotest.test_case "center" `Quick test_squares_center;
          Alcotest.test_case "paper sides" `Quick test_squares_sides;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
