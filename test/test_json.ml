(* Tests for the hand-rolled JSON reader/writer: escaping, number
   formatting, nesting, the pretty printer, and the parser `bench compare`
   uses to read results files back. *)

let compact v expected () = Alcotest.(check string) "compact" expected (Json.to_string v)

let test_atoms =
  [
    ("null", compact Json.Null "null");
    ("true", compact (Json.Bool true) "true");
    ("false", compact (Json.Bool false) "false");
    ("int", compact (Json.Int (-42)) "-42");
    ("string", compact (Json.String "plain") "\"plain\"");
  ]

let test_escaping =
  [
    ("quote", compact (Json.String {|say "hi"|}) {|"say \"hi\""|});
    ("backslash", compact (Json.String {|a\b|}) {|"a\\b"|});
    ("newline+tab", compact (Json.String "a\n\tb") {|"a\n\tb"|});
    ("cr, backspace, formfeed", compact (Json.String "\r\b\012") {|"\r\b\f"|});
    ("control chars", compact (Json.String "\000\031") {|"\u0000\u001f"|});
    ("key escaping", compact (Json.Obj [ ("a\"b", Json.Null) ]) {|{"a\"b":null}|});
  ]

let test_numbers =
  [
    ("integer-valued float", compact (Json.Float 3.0) "3.0");
    ("negative zero", compact (Json.Float (-0.0)) "-0.0");
    ("plain fraction", compact (Json.Float 1.5) "1.5");
    ("tenth", compact (Json.Float 0.1) "0.1");
    ("nan is null", compact (Json.Float Float.nan) "null");
    ("infinity is null", compact (Json.Float Float.infinity) "null");
    ("neg infinity is null", compact (Json.Float Float.neg_infinity) "null");
  ]

let test_nesting =
  [
    ("empty list", compact (Json.List []) "[]");
    ("empty obj", compact (Json.Obj []) "{}");
    ( "mixed",
      compact
        (Json.Obj
           [
             ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
             ("b", Json.Obj [ ("c", Json.String "d") ]);
           ])
        {|{"a":[1,true,null],"b":{"c":"d"}}|} );
  ]

let test_pretty () =
  let v =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("empty", Json.List []);
        ("sub", Json.Obj [ ("k", Json.Float 2.5) ]);
      ]
  in
  let expected =
    "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"sub\": {\n    \"k\": 2.5\n  }\n}\n"
  in
  Alcotest.(check string) "pretty" expected (Json.to_string_pretty v)

(* The shortest-decimal rule must still round-trip exactly. *)
let prop_number_roundtrips =
  QCheck.Test.make ~name:"Json.number round-trips finite floats" ~count:1000
    QCheck.(pair (float_range (-1e9) 1e9) (int_range (-20) 20))
    (fun (mantissa, exponent) ->
      let f = mantissa *. (10.0 ** float_of_int exponent) in
      QCheck.assume (Float.is_finite f);
      float_of_string (Json.number f) = f)

(* --- parser -------------------------------------------------------------- *)

let parses input expected () =
  match Json.of_string input with
  | Ok v -> Alcotest.(check bool) ("parse " ^ input) true (v = expected)
  | Error m -> Alcotest.failf "parse %s: %s" input m

let rejects input () =
  match Json.of_string input with
  | Ok _ -> Alcotest.failf "accepted %s" input
  | Error _ -> ()

let test_parse_values =
  [
    ("null", parses "null" Json.Null);
    ("bools", parses " true " (Json.Bool true));
    ("int", parses "-42" (Json.Int (-42)));
    ("int stays int", parses "1000000" (Json.Int 1_000_000));
    ("fraction is float", parses "1.5" (Json.Float 1.5));
    ("exponent is float", parses "1e3" (Json.Float 1000.0));
    ("capital exponent", parses "2E2" (Json.Float 200.0));
    ("string", parses {|"hi"|} (Json.String "hi"));
    ("escapes", parses {|"a\n\t\"\\A"|} (Json.String "a\n\t\"\\A"));
    ( "surrogate pair",
      parses {|"😀"|} (Json.String "\xf0\x9f\x98\x80") );
    ("nested", parses {|{"a":[1,true,null],"b":{"c":"d"}}|}
       (Json.Obj
          [
            ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
            ("b", Json.Obj [ ("c", Json.String "d") ]);
          ]));
    ("empty containers", parses "[ { } , [ ] ]" (Json.List [ Json.Obj []; Json.List [] ]));
  ]

let test_parse_errors =
  [
    ("empty input", rejects "");
    ("trailing garbage", rejects "null x");
    ("unterminated string", rejects {|"abc|});
    ("bad escape", rejects {|"\q"|});
    ("unpaired surrogate", rejects {|"\ud83dA"|});
    ("missing comma", rejects "[1 2]");
    ("missing colon", rejects {|{"a" 1}|});
    ("bare word", rejects "nope");
  ]

let test_accessors () =
  let v =
    match Json.of_string {|{"id":"e1","wall_seconds":2.5,"rows":[1,2]}|} with
    | Ok v -> v
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check (option string)) "member string" (Some "e1")
    (Option.bind (Json.member "id" v) Json.to_string_opt);
  Alcotest.(check (option (float 1e-9))) "member float" (Some 2.5)
    (Option.bind (Json.member "wall_seconds" v) Json.to_float_opt);
  Alcotest.(check (option int)) "list length" (Some 2)
    (Option.map List.length (Option.bind (Json.member "rows" v) Json.to_list_opt));
  Alcotest.(check (option string)) "missing member" None
    (Option.bind (Json.member "nope" v) Json.to_string_opt);
  Alcotest.(check (option (float 1e-9))) "ints read as floats" (Some 1.0)
    (Option.bind (Json.member "rows" v)
       (fun rows -> Option.bind (Json.to_list_opt rows) (fun l -> Json.to_float_opt (List.hd l))))

(* Everything the writer emits must parse back to the same value (modulo
   NaN/infinity, which serialize as null). *)
let json_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let atom =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) small_signed_int;
               map (fun f -> Json.Float f) (float_bound_exclusive 1e6);
               map (fun s -> Json.String s) string_printable;
             ]
         in
         if n <= 0 then atom
         else
           frequency
             [
               (2, atom);
               (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair string_printable (self (n / 2)))) );
             ])

let prop_parse_roundtrips =
  QCheck.Test.make ~name:"of_string (to_string v) = v" ~count:500
    (QCheck.make json_gen)
    (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string_pretty v) = Ok v)

let qtests = [ prop_number_roundtrips; prop_parse_roundtrips ]

let () =
  let quick (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "json"
    [
      ("atoms", List.map quick test_atoms);
      ("escaping", List.map quick test_escaping);
      ("numbers", List.map quick test_numbers);
      ("nesting", List.map quick test_nesting);
      ("pretty", [ Alcotest.test_case "indentation" `Quick test_pretty ]);
      ("parse", List.map quick test_parse_values);
      ("parse errors", List.map quick test_parse_errors);
      ("accessors", [ Alcotest.test_case "member and coercions" `Quick test_accessors ]);
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
