(* Tests for the hand-rolled JSON writer: escaping, number formatting,
   nesting, and the pretty printer. *)

let compact v expected () = Alcotest.(check string) "compact" expected (Json.to_string v)

let test_atoms =
  [
    ("null", compact Json.Null "null");
    ("true", compact (Json.Bool true) "true");
    ("false", compact (Json.Bool false) "false");
    ("int", compact (Json.Int (-42)) "-42");
    ("string", compact (Json.String "plain") "\"plain\"");
  ]

let test_escaping =
  [
    ("quote", compact (Json.String {|say "hi"|}) {|"say \"hi\""|});
    ("backslash", compact (Json.String {|a\b|}) {|"a\\b"|});
    ("newline+tab", compact (Json.String "a\n\tb") {|"a\n\tb"|});
    ("cr, backspace, formfeed", compact (Json.String "\r\b\012") {|"\r\b\f"|});
    ("control chars", compact (Json.String "\000\031") {|"\u0000\u001f"|});
    ("key escaping", compact (Json.Obj [ ("a\"b", Json.Null) ]) {|{"a\"b":null}|});
  ]

let test_numbers =
  [
    ("integer-valued float", compact (Json.Float 3.0) "3.0");
    ("negative zero", compact (Json.Float (-0.0)) "-0.0");
    ("plain fraction", compact (Json.Float 1.5) "1.5");
    ("tenth", compact (Json.Float 0.1) "0.1");
    ("nan is null", compact (Json.Float Float.nan) "null");
    ("infinity is null", compact (Json.Float Float.infinity) "null");
    ("neg infinity is null", compact (Json.Float Float.neg_infinity) "null");
  ]

let test_nesting =
  [
    ("empty list", compact (Json.List []) "[]");
    ("empty obj", compact (Json.Obj []) "{}");
    ( "mixed",
      compact
        (Json.Obj
           [
             ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
             ("b", Json.Obj [ ("c", Json.String "d") ]);
           ])
        {|{"a":[1,true,null],"b":{"c":"d"}}|} );
  ]

let test_pretty () =
  let v =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("empty", Json.List []);
        ("sub", Json.Obj [ ("k", Json.Float 2.5) ]);
      ]
  in
  let expected =
    "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"sub\": {\n    \"k\": 2.5\n  }\n}\n"
  in
  Alcotest.(check string) "pretty" expected (Json.to_string_pretty v)

(* The shortest-decimal rule must still round-trip exactly. *)
let prop_number_roundtrips =
  QCheck.Test.make ~name:"Json.number round-trips finite floats" ~count:1000
    QCheck.(pair (float_range (-1e9) 1e9) (int_range (-20) 20))
    (fun (mantissa, exponent) ->
      let f = mantissa *. (10.0 ** float_of_int exponent) in
      QCheck.assume (Float.is_finite f);
      float_of_string (Json.number f) = f)

let qtests = [ prop_number_roundtrips ]

let () =
  let quick (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "json"
    [
      ("atoms", List.map quick test_atoms);
      ("escaping", List.map quick test_escaping);
      ("numbers", List.map quick test_numbers);
      ("nesting", List.map quick test_nesting);
      ("pretty", [ Alcotest.test_case "indentation" `Quick test_pretty ]);
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
