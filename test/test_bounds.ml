(* Cross-checks of the closed-form resilience bounds in
   lib/analysis/bounds.ml against brute-force lattice enumeration.  The
   formulas all count lattice points in regions of the unit grid; here we
   count the points one by one instead and require exact agreement. *)

let radii = [ 1; 2; 3; 4; 5; 6 ]

(* Lattice points of the L-inf ball of the given radius, minus the centre:
   the analytic grid neighbourhood of Section 3. *)
let brute_neighbourhood radius =
  let count = ref 0 in
  for x = -radius to radius do
    for y = -radius to radius do
      if not (x = 0 && y = 0) then incr count
    done
  done;
  !count

(* Lattice points of the open upper half of the neighbourhood (y >= 1).
   Koo's impossibility region is half of the neighbourhood boundary strip;
   its size R(2R+1) halves to the R(2R+1)/2 bound. *)
let brute_half_neighbourhood radius =
  let count = ref 0 in
  for x = -radius to radius do
    for y = 1 to radius do
      if abs x <= radius && y >= 1 then incr count
    done
  done;
  !count

(* ⌈R/2⌉ without arithmetic tricks: the smallest s with 2s >= R. *)
let ceil_half radius =
  let rec go s = if 2 * s >= radius then s else go (s + 1) in
  go 0

(* Lattice points of an s x s square — the honest witnesses a watch square
   must outnumber. *)
let brute_square s =
  let count = ref 0 in
  for x = 0 to s - 1 do
    for y = 0 to s - 1 do
      ignore (x + y);
      incr count
    done
  done;
  !count

let test_neighbourhood () =
  List.iter
    (fun radius ->
      Alcotest.(check int)
        (Printf.sprintf "neighbourhood R=%d" radius)
        (brute_neighbourhood radius)
        (Bounds.neighbourhood_size ~radius))
    radii

let test_koo_bound () =
  List.iter
    (fun radius ->
      Alcotest.(check int)
        (Printf.sprintf "Koo R=%d" radius)
        (brute_half_neighbourhood radius / 2)
        (Bounds.koo_bound ~radius);
      Alcotest.(check int)
        (Printf.sprintf "MultiPathRB tolerance R=%d" radius)
        (Bounds.koo_bound ~radius - 1)
        (Bounds.multi_path_tolerance ~radius))
    radii

(* The (radius + 1) / 2 integer rounding in neighbor_watch_tolerance must
   be exactly the paper's ⌈R/2⌉ — the easy off-by-one to get wrong. *)
let test_ceil_rounding () =
  List.iter
    (fun radius ->
      Alcotest.(check int)
        (Printf.sprintf "(R+1)/2 = ceil(R/2) for R=%d" radius)
        (ceil_half radius)
        ((radius + 1) / 2))
    (radii @ [ 7; 8; 9; 10; 99; 100 ]);
  (* spot values, straight from the definition *)
  Alcotest.(check int) "ceil(1/2)" 1 (ceil_half 1);
  Alcotest.(check int) "ceil(2/2)" 1 (ceil_half 2);
  Alcotest.(check int) "ceil(3/2)" 2 (ceil_half 3);
  Alcotest.(check int) "ceil(4/2)" 2 (ceil_half 4);
  Alcotest.(check int) "ceil(5/2)" 3 (ceil_half 5);
  Alcotest.(check int) "ceil(6/2)" 3 (ceil_half 6)

let test_neighbor_watch_tolerance () =
  List.iter
    (fun radius ->
      Alcotest.(check int)
        (Printf.sprintf "NeighborWatchRB t < ceil(R/2)^2, R=%d" radius)
        (brute_square (ceil_half radius) - 1)
        (Bounds.neighbor_watch_tolerance ~radius))
    radii

let test_two_voting_tolerance () =
  List.iter
    (fun radius ->
      Alcotest.(check int)
        (Printf.sprintf "2-voting t < R^2/2, R=%d" radius)
        ((brute_square radius / 2) - 1)
        (Bounds.two_voting_tolerance ~radius))
    radii

(* Ordering sanity across the whole radius range: every protocol tolerates
   less than Koo's impossibility bound, the optimally resilient MultiPathRB
   never tolerates fewer faults than either watch variant, and 2-voting
   never tolerates fewer faults than 1-voting (R^2/2 >= ceil(R/2)^2 for
   R >= 2; R = 1 is degenerate, the 2-voting bound collapses to -1). *)
let test_ordering () =
  List.iter
    (fun radius ->
      let nw = Bounds.neighbor_watch_tolerance ~radius in
      let tv = Bounds.two_voting_tolerance ~radius in
      let mp = Bounds.multi_path_tolerance ~radius in
      let koo = Bounds.koo_bound ~radius in
      Alcotest.(check bool) (Printf.sprintf "nw < koo, R=%d" radius) true (nw < koo);
      Alcotest.(check bool) (Printf.sprintf "2v < koo, R=%d" radius) true (tv < koo);
      if radius >= 2 then
        Alcotest.(check bool) (Printf.sprintf "nw <= 2v, R=%d" radius) true (nw <= tv);
      Alcotest.(check bool) (Printf.sprintf "nw <= mp, R=%d" radius) true (nw <= mp);
      Alcotest.(check bool) (Printf.sprintf "2v <= mp, R=%d" radius) true (tv <= mp);
      Alcotest.(check bool) (Printf.sprintf "mp < koo, R=%d" radius) true (mp < koo))
    radii

let () =
  Alcotest.run "bounds"
    [
      ( "lattice enumeration",
        [
          Alcotest.test_case "neighbourhood size" `Quick test_neighbourhood;
          Alcotest.test_case "Koo impossibility bound" `Quick test_koo_bound;
          Alcotest.test_case "ceil(R/2) rounding" `Quick test_ceil_rounding;
          Alcotest.test_case "NeighborWatchRB tolerance" `Quick test_neighbor_watch_tolerance;
          Alcotest.test_case "2-voting tolerance" `Quick test_two_voting_tolerance;
          Alcotest.test_case "bound ordering" `Quick test_ordering;
        ] );
    ]
