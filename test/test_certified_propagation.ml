(* Tests for the CPA baseline (Koo / Bhandari–Vaidya): dissemination on
   the ideal authenticated channel, its t+1 quorum rule, and its tolerance
   breaking point. *)

let message = Bitvec.of_string "101"

let grid_setup ~side ~radius =
  let deployment = Deployment.grid ~width:side ~height:side in
  let topology = Topology.build deployment (Propagation.disk_linf radius) in
  let source = Deployment.center_node deployment in
  (topology, source)

let roles_with topology source liars fake =
  Array.init (Topology.size topology) (fun i ->
      if i = source then Certified_propagation.Reference.Source
      else if List.mem i liars then Certified_propagation.Reference.Liar fake
      else Certified_propagation.Reference.Honest)

let count_value result value =
  Array.fold_left
    (fun acc c -> if c = Some value then acc + 1 else acc)
    0 result.Certified_propagation.Reference.committed

let test_floods_grid () =
  let topology, source = grid_setup ~side:9 ~radius:2.0 in
  let roles = roles_with topology source [] message in
  let result =
    Certified_propagation.Reference.run
      { Certified_propagation.Reference.radius = 2.0; tolerance = 1 }
      ~topology ~source ~message ~roles ~max_rounds:1000
  in
  Alcotest.(check int) "everyone commits the message" 81 (count_value result message);
  Alcotest.(check bool) "terminates quickly" true (result.Certified_propagation.Reference.rounds < 50)

let test_rounds_scale_with_distance () =
  let run side =
    let topology, source = grid_setup ~side ~radius:2.0 in
    let roles = roles_with topology source [] message in
    (Certified_propagation.Reference.run
       { Certified_propagation.Reference.radius = 2.0; tolerance = 1 }
       ~topology ~source ~message ~roles ~max_rounds:1000)
      .Certified_propagation.Reference.rounds
  in
  Alcotest.(check bool) "bigger grid, more rounds" true (run 15 > run 7)

let test_tolerance_blocks_isolated_liars () =
  let topology, source = grid_setup ~side:9 ~radius:2.0 in
  let fake = Bitvec.of_string "010" in
  (* Two liars, far apart: never t+1 = 3 concurring in a neighbourhood. *)
  let roles = roles_with topology source [ 0; 80 ] fake in
  let result =
    Certified_propagation.Reference.run
      { Certified_propagation.Reference.radius = 2.0; tolerance = 2 }
      ~topology ~source ~message ~roles ~max_rounds:1000
  in
  Alcotest.(check int) "no honest node adopts the fake" 0 (count_value result fake - 2);
  Alcotest.(check int) "honest all reach the truth" 79 (count_value result message)

let test_quorum_of_liars_breaks_it () =
  let topology, source = grid_setup ~side:9 ~radius:2.0 in
  let fake = Bitvec.of_string "010" in
  (* t = 1, and two colocated liars form a fake quorum of t+1 = 2. *)
  let roles = roles_with topology source [ 0; 1 ] fake in
  let result =
    Certified_propagation.Reference.run
      { Certified_propagation.Reference.radius = 2.0; tolerance = 1 }
      ~topology ~source ~message ~roles ~max_rounds:1000
  in
  Alcotest.(check bool) "some honest node is deceived" true (count_value result fake > 2)

let test_messages_bounded () =
  let topology, source = grid_setup ~side:7 ~radius:2.0 in
  let roles = roles_with topology source [] message in
  let result =
    Certified_propagation.Reference.run
      { Certified_propagation.Reference.radius = 2.0; tolerance = 1 }
      ~topology ~source ~message ~roles ~max_rounds:1000
  in
  (* Every node announces at most once. *)
  Alcotest.(check bool) "at most one announcement per node" true
    (result.Certified_propagation.Reference.messages <= Topology.size topology)

let test_disconnected_nodes_stay_silent () =
  let nodes =
    [|
      Node.make 0 (Point.make 0.0 0.0);
      Node.make 1 (Point.make 1.0 0.0);
      Node.make 2 (Point.make 50.0 0.0);
    |]
  in
  let deployment = { Deployment.width = 51.0; height = 1.0; nodes } in
  let topology = Topology.build deployment (Propagation.disk_l2 2.0) in
  let roles = roles_with topology 0 [] message in
  let result =
    Certified_propagation.Reference.run
      { Certified_propagation.Reference.radius = 2.0; tolerance = 0 }
      ~topology ~source:0 ~message ~roles ~max_rounds:100
  in
  Alcotest.(check bool) "neighbour commits" true
    (result.Certified_propagation.Reference.committed.(1) = Some message);
  Alcotest.(check (option Alcotest.reject)) "distant node never commits" None
    result.Certified_propagation.Reference.committed.(2)

let () =
  Alcotest.run "certified_propagation"
    [
      ( "cpa",
        [
          Alcotest.test_case "floods the grid" `Quick test_floods_grid;
          Alcotest.test_case "rounds scale with distance" `Quick test_rounds_scale_with_distance;
          Alcotest.test_case "isolated liars contained" `Quick
            test_tolerance_blocks_isolated_liars;
          Alcotest.test_case "liar quorum deceives" `Quick test_quorum_of_liars_breaks_it;
          Alcotest.test_case "messages bounded" `Quick test_messages_bounded;
          Alcotest.test_case "disconnection" `Quick test_disconnected_nodes_stay_silent;
        ] );
    ]
