(* Tests for the static-analysis subsystem (lib/check): the bounded model
   checker, the scenario linter, and the determinism checker. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- model checker: the reference machines satisfy every invariant ------- *)

let configurations = function
  | Model_check.Pass { configurations } -> configurations
  | Model_check.Fail c ->
    Alcotest.failf "unexpected counterexample:\n%s" (Model_check.counterexample_to_string c)

let test_two_bit_reference () =
  (* Exhaustive for each budget; at budget 3 the space is exactly
     4 bit pairs x sum_{k<=3} C(6,k) = 4 * 42 jam masks. *)
  List.iter
    (fun budget -> ignore (configurations (Model_check.check_two_bit ~budget ())))
    [ 0; 1; 2 ];
  Alcotest.(check int) "4 * (1+6+15+20) configurations at budget 3" 168
    (configurations (Model_check.check_two_bit ~budget:3 ()));
  Alcotest.(check int) "single receiver also passes" 168
    (configurations (Model_check.check_two_bit ~receivers:1 ~budget:3 ()))

let test_one_hop_reference () =
  List.iter
    (fun budget -> ignore (configurations (Model_check.check_one_hop ~budget ())))
    [ 0; 1; 2; 3 ];
  ignore (configurations (Model_check.check_one_hop ~msg_len:3 ~budget:2 ()))

(* --- model checker: the seeded violation produces a counterexample ------- *)

let expect_fail = function
  | Model_check.Fail c -> c
  | Model_check.Pass { configurations } ->
    Alcotest.failf "expected a counterexample, got Pass over %d configurations" configurations

let test_skip_veto_frame_counterexample () =
  let c =
    expect_fail (Model_check.check_two_bit ~impl:Model_check.faulty_skip_veto ~budget:1 ())
  in
  (* A receiver deaf to the veto round accepts bits the sender cancelled:
     one injected broadcast in a data phase is enough. *)
  Alcotest.(check string) "violated invariant" "receiver-no-forgery" c.Model_check.invariant;
  Alcotest.(check int) "within budget" 1 c.Model_check.budget;
  Alcotest.(check bool) "adversary actually spent" true (c.Model_check.spent >= 1);
  Alcotest.(check bool) "spent within budget" true (c.Model_check.spent <= c.Model_check.budget);
  Alcotest.(check bool) "trace is non-empty" true (c.Model_check.trace <> []);
  List.iter
    (fun (e : Model_check.phase_event) ->
      Alcotest.(check bool) "phases in range" true (e.phase >= 0 && e.phase <= 5))
    c.Model_check.trace;
  let rendered = Model_check.counterexample_to_string c in
  Alcotest.(check bool) "rendering names the invariant" true
    (contains ~affix:"receiver-no-forgery" rendered);
  Alcotest.(check bool) "rendering shows the veto phase" true
    (contains ~affix:"R5 veto" rendered)

let test_skip_veto_stream_counterexample () =
  let c =
    expect_fail (Model_check.check_one_hop ~impl:Model_check.faulty_skip_veto ~budget:3 ())
  in
  Alcotest.(check bool) "trace is non-empty" true (c.Model_check.trace <> []);
  Alcotest.(check bool) "spent within budget" true
    (c.Model_check.spent >= 1 && c.Model_check.spent <= c.Model_check.budget)

(* --- scenario linter ----------------------------------------------------- *)

let has_code code diags = List.exists (fun d -> d.Lint.code = code) diags

let test_lint_presets_clean () =
  let reports = Lint.lint_presets () in
  Alcotest.(check bool) "all presets linted" true (List.length reports >= 6);
  List.iter
    (fun (name, diags) ->
      Alcotest.(check int) (name ^ " has no errors") 0 (Lint.count Lint.Error diags);
      (* dual_mode_digest deliberately overruns the plain NeighborWatchRB
         bound (the demo shows dual-mode containment beyond it), so it is
         allowed exactly the byz-tolerance warning and nothing else. *)
      if name = "dual_mode_digest" then
        List.iter
          (fun d ->
            if d.Lint.severity = Lint.Warning then
              Alcotest.(check string) (name ^ " warning is byz-tolerance") "byz-tolerance"
                d.Lint.code)
          diags
      else Alcotest.(check int) (name ^ " has no warnings") 0 (Lint.count Lint.Warning diags))
    reports

let test_lint_default_clean () =
  Alcotest.(check bool) "default spec has no errors" false
    (Lint.has_errors (Lint.lint ~name:"default" Scenario.default))

let test_lint_catches_bad_specs () =
  let d = Scenario.default in
  let lint spec = Lint.lint ~name:"bad" spec in
  Alcotest.(check bool) "zero round cap" true (has_code "cap" (lint { d with cap = 0 }));
  Alcotest.(check bool) "negative radius" true (has_code "radius" (lint { d with radius = -1.0 }));
  Alcotest.(check bool) "tolerance above Koo's bound" true
    (has_code "koo-impossibility"
       (lint { d with protocol = Scenario.Multi_path { tolerance = 999 } }));
  Alcotest.(check bool) "fault fraction above 1" true
    (has_code "fraction" (lint { d with faults = Scenario.Lying 1.5 }));
  Alcotest.(check bool) "oversized watch squares" true
    (has_code "square-geometry" (lint { d with square_side = Some 10.0 }));
  Alcotest.(check bool) "relay cap of zero" true
    (has_code "relay-limit"
       (lint
          {
            d with
            protocol = Scenario.Multi_path { tolerance = 1 };
            heard_relay_limit = Some 0;
          }));
  (* All of the above are Errors, not mere Warnings. *)
  Alcotest.(check bool) "cap diagnostic is an error" true
    (Lint.has_errors (lint { d with cap = 0 }))

let test_lint_byz_tolerance_warning () =
  (* 600 nodes on a 20x20 map with R=4: ~75 devices per neighbourhood, so
     40% liars vastly exceeds the ceil(R/2)^2 - 1 = 3 bound. *)
  let diags = Lint.lint ~name:"overrun" { Scenario.default with faults = Scenario.Lying 0.4 } in
  Alcotest.(check bool) "byz-tolerance warning fires" true (has_code "byz-tolerance" diags);
  Alcotest.(check bool) "it is a warning, not an error" false (Lint.has_errors diags)

let test_lint_diagnostic_rendering () =
  match Lint.lint ~name:"render" { Scenario.default with cap = 0 } with
  | [] -> Alcotest.fail "expected a diagnostic"
  | d :: _ ->
    let s = Lint.diagnostic_to_string d in
    Alcotest.(check bool) "names the scenario" true (contains ~affix:"render" s);
    Alcotest.(check bool) "names the field" true (contains ~affix:"cap" s);
    Alcotest.(check bool) "states the severity" true (contains ~affix:"error" s)

(* --- voting-layer checker ------------------------------------------------ *)

let vote_pass name = function
  | Vote_check.Pass { configurations; states } ->
    Alcotest.(check bool) (name ^ ": enumerated configurations") true (configurations > 0);
    Alcotest.(check bool) (name ^ ": states cover configurations") true (states >= configurations);
    configurations
  | Vote_check.Fail c ->
    Alcotest.failf "%s: unexpected counterexample:\n%s" name (Vote_check.counterexample_to_string c)

let vote_fail name = function
  | Vote_check.Fail c -> c
  | Vote_check.Pass { configurations; _ } ->
    Alcotest.failf "%s: expected a counterexample, got Pass over %d configurations" name
      configurations

let test_vote_multi_path_reference () =
  (* Radius 1 has tolerance 0: the only free choices are the two honest
     counts x two interleavings, all zero-adversary. *)
  Alcotest.(check int) "radius 1 is the 4-configuration degenerate space" 4
    (vote_pass "mp r=1" (Vote_check.check_multi_path ~radius:1 ()));
  let c2 = vote_pass "mp r=2" (Vote_check.check_multi_path ~radius:2 ()) in
  let c3 = vote_pass "mp r=3" (Vote_check.check_multi_path ~radius:3 ()) in
  Alcotest.(check bool) "space grows with the tolerance" true (c3 > c2 && c2 > 4)

let test_vote_multi_path_seeded () =
  let c = vote_fail "mp seeded" (Vote_check.check_multi_path ~impl:Vote_check.mp_seeded ~radius:2 ()) in
  Alcotest.(check string) "violated invariant" "mp-agreement" c.Vote_check.invariant;
  Alcotest.(check string) "protocol" "MultiPathRB" c.Vote_check.protocol;
  Alcotest.(check int) "radius" 2 c.Vote_check.radius;
  Alcotest.(check bool) "trace is non-empty" true (c.Vote_check.trace <> []);
  let rendered = Vote_check.counterexample_to_string c in
  Alcotest.(check bool) "rendering names the invariant" true
    (contains ~affix:"mp-agreement" rendered)

let test_vote_neighbor_watch_reference () =
  ignore (vote_pass "nw 1-voting r=2" (Vote_check.check_neighbor_watch ~votes:1 ~radius:2 ()));
  ignore (vote_pass "nw 2-voting r=3" (Vote_check.check_neighbor_watch ~votes:2 ~radius:3 ()))

let test_vote_neighbor_watch_seeded () =
  (* A threshold one vote short commits before the frontier has the
     evidence; the from-scratch reference poll disagrees at the first
     divergence.  At votes = 1 the broken threshold is 0, so the commit
     happens at the initial poll, before any event: the trace is empty by
     construction and only the setup line locates the failure. *)
  let c1 =
    vote_fail "nw seeded, 1-voting"
      (Vote_check.check_neighbor_watch ~impl:Vote_check.nw_seeded ~votes:1 ~radius:2 ())
  in
  Alcotest.(check string) "violated invariant" "nw-agreement" c1.Vote_check.invariant;
  Alcotest.(check string) "protocol" "NeighborWatchRB" c1.Vote_check.protocol;
  Alcotest.(check bool) "setup locates the configuration" true (c1.Vote_check.setup <> "");
  (* At votes = 2 the broken threshold is 1: the premature commit needs one
     real stream agreement first, so the trace shows the triggering event. *)
  let c2 =
    vote_fail "nw seeded, 2-voting"
      (Vote_check.check_neighbor_watch ~impl:Vote_check.nw_seeded ~votes:2 ~radius:2 ())
  in
  Alcotest.(check string) "violated invariant" "nw-agreement" c2.Vote_check.invariant;
  Alcotest.(check bool) "trace shows the triggering event" true (c2.Vote_check.trace <> [])

(* --- source lint ---------------------------------------------------------- *)

let source_codes diags = List.map (fun d -> d.Source_lint.code) diags

let test_source_lint_fixtures () =
  let hashtbl_fixture =
    "let report tbl =\n  Hashtbl.iter (fun k v -> Printf.printf \"%d %d\\n\" k v) tbl\n"
  in
  Alcotest.(check (list string)) "Hashtbl.iter into output is flagged" [ "hashtbl-order" ]
    (source_codes (Source_lint.lint_string ~path:"lib/analysis/report.ml" hashtbl_fixture));
  let random_fixture = "let jitter () = Random.int 10\n" in
  (match Source_lint.lint_string ~path:"lib/core/noise.ml" random_fixture with
  | [ d ] ->
    Alcotest.(check string) "unseeded Random is flagged" "ambient-random" d.Source_lint.code;
    Alcotest.(check int) "line number" 1 d.Source_lint.line;
    Alcotest.(check bool) "it is an error" true (d.Source_lint.severity = Lint.Error)
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags));
  let clean_fixture =
    "let tally tbl =\n\
    \  List.sort (fun (a, _) (b, _) -> String.compare a b)\n\
    \    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])\n"
  in
  (* Hashtbl.fold is still flagged (sorting after does not make the fold
     deterministic for non-commutative accumulators) unless allowlisted. *)
  Alcotest.(check (list string)) "fold flagged outside the allowlist" [ "hashtbl-order" ]
    (source_codes (Source_lint.lint_string ~path:"lib/analysis/tally.ml" clean_fixture));
  Alcotest.(check (list string)) "same text allowlisted in bench/main.ml" []
    (source_codes (Source_lint.lint_string ~path:"bench/main.ml" clean_fixture));
  Alcotest.(check (list string)) "typed comparators are clean" []
    (source_codes
       (Source_lint.lint_string ~path:"lib/core/sorting.ml"
          "let xs = List.sort Float.compare [ 1.0; 2.0 ]\n"))

let test_source_lint_exemptions () =
  let wall_clock = "let stamp () = Unix.gettimeofday ()\n" in
  Alcotest.(check (list string)) "wall clock flagged in protocol code" [ "wall-clock" ]
    (source_codes (Source_lint.lint_string ~path:"lib/core/clock.ml" wall_clock));
  Alcotest.(check (list string)) "wall clock allowed under lib/run/" []
    (source_codes (Source_lint.lint_string ~path:"lib/run/wall.ml" wall_clock));
  Alcotest.(check (list string)) "wall clock allowed under bench/" []
    (source_codes (Source_lint.lint_string ~path:"bench/timing.ml" wall_clock));
  let atomics = "let counter = Atomic.make 0\n" in
  Alcotest.(check (list string)) "atomics flagged outside lib/run/" [ "domain-outside-run" ]
    (source_codes (Source_lint.lint_string ~path:"lib/sim/counter.ml" atomics));
  Alcotest.(check (list string)) "atomics allowed in the job pool" []
    (source_codes (Source_lint.lint_string ~path:"lib/run/pool.ml" atomics))

let test_source_lint_engine_mode () =
  let bare = "let r = Engine.run ~topology ~machines ~waiters ~cap:100 ()\n" in
  (match Source_lint.lint_string ~path:"lib/analysis/driver.ml" bare with
  | [ d ] ->
    Alcotest.(check string) "Engine.run without ~mode is flagged" "engine-mode" d.Source_lint.code;
    Alcotest.(check int) "line number" 1 d.Source_lint.line
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags));
  let pinned = "let r = Engine.run ~mode:`Sparse ~topology ~machines ~waiters ~cap:100 ()\n" in
  Alcotest.(check (list string)) "explicit ~mode is clean" []
    (source_codes (Source_lint.lint_string ~path:"lib/analysis/driver.ml" pinned));
  let forwarded = "let r ?mode () = Engine.run ?mode ~topology ~machines ~waiters ~cap:100 ()\n" in
  Alcotest.(check (list string)) "forwarding ?mode is clean" []
    (source_codes (Source_lint.lint_string ~path:"lib/analysis/driver.ml" forwarded));
  Alcotest.(check (list string)) "the dense/sparse harness under lib/check is exempt" []
    (source_codes (Source_lint.lint_string ~path:"lib/check/equivalence.ml" bare));
  (* Only applications are flagged: naming the function (to pass it along)
     does not commit to a mode at that point. *)
  Alcotest.(check (list string)) "a bare reference is clean" []
    (source_codes (Source_lint.lint_string ~path:"lib/analysis/driver.ml" "let f = Engine.run\n"))

let test_source_lint_parse_error () =
  match Source_lint.lint_string ~path:"lib/broken.ml" "let let let" with
  | [ d ] -> Alcotest.(check string) "parse error code" "parse-error" d.Source_lint.code
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags)

let test_source_lint_dangling_paths () =
  Alcotest.(check (list string)) "dangling paths are skipped, not raised on" []
    (Source_lint.source_files [ "no/such/dir"; "also/missing.ml" ])

(* --- allowlist hygiene ----------------------------------------------------- *)

let test_unused_allowlist_helper () =
  let allowlist = [ ("lib/a.ml", "x"); ("lib/b.ml", "y") ] in
  Alcotest.(check (list (pair string string)))
    "an entry that suppressed nothing is reported"
    [ ("lib/b.ml", "y") ]
    (Lint.unused_allowlist ~allowlist
       ~used:[ ("lib/a.ml", "x") ]
       ~files:[ "lib/a.ml"; "lib/b.ml" ]);
  (* Entries whose file was not visited are not judged: linting one file
     must not condemn the rest of the allowlist. *)
  Alcotest.(check (list (pair string string)))
    "entries outside the visited file set are not judged" []
    (Lint.unused_allowlist ~allowlist ~used:[] ~files:[ "lib/other.ml" ]);
  (* Suffix matching: the visited path may be absolute. *)
  Alcotest.(check (list (pair string string)))
    "suffix-matched files count as visited"
    [ ("lib/a.ml", "x") ]
    (Lint.unused_allowlist ~allowlist ~used:[] ~files:[ "/sandbox/repo/lib/a.ml" ])

let test_source_lint_allowlist_use_tracking () =
  (* bench/main.ml has a hashtbl-order allowlist entry; a fold uses it... *)
  let fold = "let t tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n" in
  let diags, used = Source_lint.lint_string_used ~path:"bench/main.ml" fold in
  Alcotest.(check int) "suppressed" 0 (List.length diags);
  Alcotest.(check (list (pair string string)))
    "entry recorded as used"
    [ ("bench/main.ml", "hashtbl-order") ]
    used;
  (* ...and clean contents leave it unused. *)
  let diags, used = Source_lint.lint_string_used ~path:"bench/main.ml" "let x = 1\n" in
  Alcotest.(check int) "nothing flagged" 0 (List.length diags);
  Alcotest.(check (list (pair string string))) "nothing used" [] used

(* --- share lint ------------------------------------------------------------ *)

let share_codes diags = List.map (fun d -> d.Share_lint.code) diags

let test_share_lint_seed_violation () =
  let diags = Share_lint.seed_violation () in
  Alcotest.(check bool) "the demo fails the lint" true (Share_lint.has_errors diags);
  Alcotest.(check (list string))
    "all three rules fire on the bundled demo"
    [ "capture-mutates"; "global-mutable-core"; "shared-mutable" ]
    (List.sort_uniq String.compare (share_codes diags));
  (* The cross-module half: the task lives in lib/analysis but reaches the
     sim-layer cache, so the diagnostic must name the foreign global. *)
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "cross-module capture names the foreign global" true
    (List.exists
       (fun d ->
         d.Share_lint.code = "shared-mutable"
         && d.Share_lint.file = "lib/analysis/seed_sweep.ml"
         && contains "Seed_cache.cache" d.Share_lint.message)
       diags)

let test_share_lint_clean_and_atomic () =
  let clean = "let sweep specs = Pool.map_array ~jobs:4 (fun spec -> 2 * spec) specs\n" in
  Alcotest.(check (list string)) "a self-contained task is clean" []
    (share_codes (Share_lint.lint_strings [ ("lib/analysis/sweep.ml", clean) ]));
  (* Atomics are the sanctioned cross-domain cell: inventoried, never
     flagged. *)
  let atomic =
    "let hits = Atomic.make 0\n\
     let sweep specs =\n\
    \  Pool.map_array ~jobs:4 (fun spec -> Atomic.incr hits; 2 * spec) specs\n"
  in
  Alcotest.(check (list string)) "an Atomic-mediated counter is clean" []
    (share_codes (Share_lint.lint_strings [ ("lib/run/sweep.ml", atomic) ]))

let test_share_lint_global_mutable_core () =
  let cache = "let cache = Hashtbl.create 16\nlet lookup k = Hashtbl.find_opt cache k\n" in
  (match Share_lint.lint_strings [ ("lib/sim/cache.ml", cache) ] with
  | [ d ] ->
    Alcotest.(check string) "toplevel mutable state in lib/sim" "global-mutable-core"
      d.Share_lint.code;
    Alcotest.(check int) "line of the binding" 1 d.Share_lint.line
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags));
  (* The same binding outside the state-free layers is inventoried but only
     an error if a pool task reaches it. *)
  Alcotest.(check (list string)) "mutable module state outside core/sim is tolerated" []
    (share_codes (Share_lint.lint_strings [ ("lib/analysis/cache.ml", cache) ]));
  (* A function that merely allocates a fresh table per call is not module
     state. *)
  Alcotest.(check (list string)) "per-call allocation is not a global" []
    (share_codes
       (Share_lint.lint_strings [ ("lib/sim/fresh.ml", "let create n = Hashtbl.create n\n") ]))

let test_share_lint_reaches_named_helpers () =
  (* The task itself is innocent; the helper it calls mutates module
     state.  The intra-file call summary must follow the edge. *)
  let src =
    "let total = ref 0\n\
     let bump n = total := !total + n\n\
     let sweep specs = Pool.map_array ~jobs:2 (fun s -> bump s; s) specs\n"
  in
  (match Share_lint.lint_strings [ ("lib/analysis/sweep.ml", src) ] with
  | [ d ] ->
    Alcotest.(check string) "reached through the helper" "shared-mutable" d.Share_lint.code
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags));
  (* Same helper handed to the pool by name instead of inside a lambda. *)
  let named =
    "let total = ref 0\n\
     let bump n =\n\
    \  total := !total + n;\n\
    \  n\n\
     let sweep specs = Pool.map_array ~jobs:2 bump specs\n"
  in
  Alcotest.(check (list string)) "named task functions are analyzed" [ "shared-mutable" ]
    (share_codes (Share_lint.lint_strings [ ("lib/analysis/named.ml", named) ]))

let test_share_lint_racy_fixture () =
  (* The committed fixture, linted under a production path so the audited
     allowlist entry for its real location does not mask the finding. *)
  let contents =
    In_channel.with_open_bin "fixtures/racy_counter.ml" In_channel.input_all
  in
  Alcotest.(check (list string)) "the racy fixture is flagged statically" [ "shared-mutable" ]
    (share_codes (Share_lint.lint_strings [ ("lib/analysis/racy_counter.ml", contents) ]));
  (* At its committed path the entry suppresses the finding — and is
     therefore used, so no unused-allowlist complaint either. *)
  Alcotest.(check (list string)) "allowlisted at its committed path" []
    (share_codes (Share_lint.lint_strings [ ("test/fixtures/racy_counter.ml", contents) ]))

let test_share_lint_unused_allowlist () =
  (* lib/run/pool.ml carries a capture-mutates audit; contents that no
     longer exercise it must surface the stale entry. *)
  match Share_lint.lint_strings [ ("lib/run/pool.ml", "let x = 1\n") ] with
  | [ d ] ->
    Alcotest.(check string) "stale audit is an error" "unused-allowlist" d.Share_lint.code
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags)

let test_share_lint_parse_error () =
  match Share_lint.lint_strings [ ("lib/broken.ml", "let let let") ] with
  | [ d ] -> Alcotest.(check string) "parse error code" "parse-error" d.Share_lint.code
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags)

(* --- callgraph ------------------------------------------------------------ *)

let parse_exn ~path contents =
  match Callgraph.parse_string ~path contents with
  | Ok structure -> structure
  | Error line -> Alcotest.failf "%s:%d: fixture does not parse" path line

(* A family of programs with the write hidden behind a helper chain of
   varying depth, handed to the pool either in a lambda or by name.  The
   property: Share_lint flags the program as shared-mutable exactly when
   Callgraph's whole-tree reachability from the task function reaches a
   function whose summary writes the global — the two analyses are built
   on the same machinery and must give the same verdict. *)
let chain_program ~named ~writes depth =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "let total = ref 0\n";
  Buffer.add_string buf
    (if writes then "let h0 n = total := !total + n; n\n" else "let h0 n = n + 1\n");
  for i = 1 to depth - 1 do
    Buffer.add_string buf (Printf.sprintf "let h%d n = h%d n\n" i (i - 1))
  done;
  let top = Printf.sprintf "h%d" (depth - 1) in
  Buffer.add_string buf
    (if named then Printf.sprintf "let sweep specs = Pool.map_array ~jobs:2 %s specs\n" top
     else Printf.sprintf "let sweep specs = Pool.map_array ~jobs:2 (fun s -> %s s) specs\n" top);
  Buffer.contents buf

let test_callgraph_matches_share_lint_verdicts () =
  List.iter
    (fun (named, writes, depth) ->
      let label = Printf.sprintf "named=%b writes=%b depth=%d" named writes depth in
      let src = chain_program ~named ~writes depth in
      let path = "lib/analysis/chain.ml" in
      let share_flags =
        List.exists
          (fun d -> d.Share_lint.code = "shared-mutable")
          (Share_lint.lint_strings [ (path, src) ])
      in
      let graph = Callgraph.build [ (path, parse_exn ~path src) ] in
      let reached = Callgraph.reachable graph ~roots:[ "Chain.sweep" ] in
      let graph_flags =
        List.exists
          (fun fn ->
            List.exists
              (fun (w : Callgraph.write) -> w.Callgraph.target = "total")
              fn.Callgraph.fn_summary.Callgraph.fn_writes)
          reached
      in
      Alcotest.(check bool) (label ^ ": sweep itself is reached") true
        (List.exists (fun fn -> fn.Callgraph.fn_qual = "Chain.sweep") reached);
      Alcotest.(check bool) (label ^ ": verdicts agree") share_flags graph_flags;
      Alcotest.(check bool) (label ^ ": expected verdict") writes share_flags)
    (List.concat_map
       (fun depth -> [ (false, true, depth); (true, true, depth); (false, false, depth) ])
       [ 1; 2; 3 ])

(* --- alloc lint ----------------------------------------------------------- *)

let alloc_codes diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Alloc_lint.code) diags)

let empty_golden =
  Json.Obj [ ("schema", Json.String Alloc_lint.schema); ("roots", Json.List []) ]

let boxy_roots = [ ("boxy-round", [ "Boxy_hot_loop.process_round" ]) ]

let boxy_files () =
  [
    ( "lib/sim/boxy_hot_loop.ml",
      In_channel.with_open_bin "fixtures/boxy_hot_loop.ml" In_channel.input_all );
  ]

let test_alloc_seed_violation () =
  let diags = Alloc_lint.seed_violation () in
  Alcotest.(check bool) "the demo fails the lint" true (Alloc_lint.has_errors diags);
  Alcotest.(check (list string)) "every diagnostic is a new hot-path class"
    [ "new-alloc-class" ] (alloc_codes diags);
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " fires on the demo") true
        (List.exists (fun d -> contains ~affix:("class " ^ cls) d.Alloc_lint.message) diags))
    [ "boxed-float"; "closure"; "list"; "tuple" ]

(* The acceptance bar for the analyzer: an injected hot-path boxed-float
   allocation (the committed fixture) must come back as a new-alloc-class
   error, located in the offending file. *)
let test_alloc_boxy_fixture () =
  let diags = Alloc_lint.lint_strings ~roots:boxy_roots ~golden:(Some empty_golden) (boxy_files ()) in
  Alcotest.(check bool) "the fixture fails the lint" true (Alloc_lint.has_errors diags);
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " flagged as a new class") true
        (List.exists
           (fun d ->
             d.Alloc_lint.severity = Lint.Error
             && d.Alloc_lint.code = "new-alloc-class"
             && d.Alloc_lint.file = "lib/sim/boxy_hot_loop.ml"
             && d.Alloc_lint.line > 0
             && contains ~affix:("class " ^ cls) d.Alloc_lint.message)
           diags))
    [ "boxed-float"; "closure"; "list" ]

(* The packed-observation regression tripwire: the fixture's old-style
   observe path (per-receiver option/tuple boxing, a closure over the
   round, a throwaway list per call) must keep tripping the analyzer on
   every class the flat-state engine rewrite eliminated. *)
let test_alloc_boxy_observe_path () =
  let roots = [ ("boxy-observe", [ "Boxy_hot_loop.observe_boxy" ]) ] in
  let diags = Alloc_lint.lint_strings ~roots ~golden:(Some empty_golden) (boxy_files ()) in
  Alcotest.(check bool) "the observe path fails the lint" true (Alloc_lint.has_errors diags);
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " flagged on the observe path") true
        (List.exists
           (fun d ->
             d.Alloc_lint.severity = Lint.Error
             && d.Alloc_lint.code = "new-alloc-class"
             && d.Alloc_lint.file = "lib/sim/boxy_hot_loop.ml"
             && contains ~affix:("class " ^ cls) d.Alloc_lint.message)
           diags))
    [ "closure"; "tuple"; "ref"; "list" ]

let test_alloc_inventory_roundtrip_and_diff () =
  let files = boxy_files () in
  let inv = Alloc_lint.inventory_strings ~roots:boxy_roots files in
  Alcotest.(check bool) "the fixture has an inventory" true (inv <> []);
  (* JSON roundtrip is lossless. *)
  (match Alloc_lint.inventory_of_json (Alloc_lint.json_of_inventory inv) with
  | Ok roundtrip -> Alcotest.(check bool) "json roundtrip" true (roundtrip = inv)
  | Error message -> Alcotest.fail message);
  (* Linted against its own inventory the fixture is clean... *)
  Alcotest.(check (list string)) "clean against its own inventory" []
    (alloc_codes
       (Alloc_lint.lint_strings ~roots:boxy_roots
          ~golden:(Some (Alloc_lint.json_of_inventory inv))
          files));
  let tweak f =
    List.map
      (fun (root, classes) ->
        (root, List.map (fun (cls, n) -> (cls, if cls = "boxed-float" then f n else n)) classes))
      inv
  in
  (* ...a golden one boxed-float site short makes growth a warning, not an
     error... *)
  let grown =
    Alloc_lint.lint_strings ~roots:boxy_roots
      ~golden:(Some (Alloc_lint.json_of_inventory (tweak (fun n -> n - 1))))
      files
  in
  Alcotest.(check (list string)) "count growth is a warning" [ "alloc-count-growth" ]
    (alloc_codes grown);
  Alcotest.(check bool) "growth alone does not fail the lint" false (Alloc_lint.has_errors grown);
  (* ...and a golden with one extra site nudges toward a refresh. *)
  let shrunk =
    Alloc_lint.lint_strings ~roots:boxy_roots
      ~golden:(Some (Alloc_lint.json_of_inventory (tweak (fun n -> n + 1))))
      files
  in
  Alcotest.(check (list string)) "count shrink is an info nudge" [ "alloc-count-shrink" ]
    (alloc_codes shrunk);
  Alcotest.(check bool) "shrink does not fail the lint" false (Alloc_lint.has_errors shrunk)

let test_alloc_missing_baseline () =
  (match Alloc_lint.lint_strings ~roots:boxy_roots ~golden:None (boxy_files ()) with
  | [ d ] ->
    Alcotest.(check string) "missing baseline is an error" "baseline-missing" d.Alloc_lint.code;
    Alcotest.(check bool) "it is an error" true (d.Alloc_lint.severity = Lint.Error)
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags));
  match Alloc_lint.lint_strings ~roots:boxy_roots ~golden:(Some Json.Null) (boxy_files ()) with
  | [ d ] ->
    Alcotest.(check string) "unreadable baseline is an error" "baseline-missing" d.Alloc_lint.code
  | diags -> Alcotest.failf "expected one diagnostic, got %d" (List.length diags)

let test_alloc_unused_allowlist () =
  (* The committed allowlist audits Engine.process_round classes in
     lib/sim/engine.ml; a fake engine.ml without those sites must surface
     every entry as stale, located at its definition line in the
     allowlist module itself. *)
  let diags =
    Alloc_lint.lint_strings ~golden:(Some empty_golden)
      [ ("lib/sim/engine.ml", "let process_round x = x + 1\n") ]
  in
  let stale = List.filter (fun d -> d.Alloc_lint.code = "unused-allowlist") diags in
  Alcotest.(check int) "every committed audit is stale on the fake tree"
    (List.length Alloc_lint.allowlist) (List.length stale);
  List.iter
    (fun d ->
      Alcotest.(check string) "located in the allowlist module" Alloc_lint.allowlist_file
        d.Alloc_lint.file;
      Alcotest.(check bool) "at its definition line" true (d.Alloc_lint.line > 0))
    stale;
  (* Linting a tree that never visits the audited file judges nothing. *)
  Alcotest.(check (list string)) "unvisited files are not judged" []
    (alloc_codes
       (Alloc_lint.lint_strings ~golden:(Some empty_golden)
          [ ("lib/analysis/other.ml", "let x = 1\n") ]))

let test_alloc_parse_error () =
  match
    List.filter
      (fun d -> d.Alloc_lint.code = "parse-error")
      (Alloc_lint.lint_strings ~roots:boxy_roots ~golden:(Some empty_golden)
         [ ("lib/broken.ml", "let let let") ])
  with
  | [ d ] -> Alcotest.(check string) "parse error located" "lib/broken.ml" d.Alloc_lint.file
  | diags -> Alcotest.failf "expected one parse error, got %d" (List.length diags)

(* --- golden diagnostic codes ---------------------------------------------- *)

(* The stable codes are the machine-readable interface of `securebit_lint
   --json`.  Adding a code extends these lists; renaming or dropping one is
   a breaking change and must be flagged by review. *)

let test_golden_codes () =
  Alcotest.(check (list string))
    "scenario linter codes"
    [
      "map-dims"; "radius"; "message"; "cap"; "deployment"; "channel"; "votes"; "square-geometry";
      "sparse-squares"; "unused-field"; "tolerance"; "koo-impossibility"; "relay-limit"; "fraction";
      "budget"; "probability"; "byz-tolerance"; "non-geometric-bound";
    ]
    Lint.codes;
  Alcotest.(check (list string))
    "source lint codes"
    [
      "hashtbl-order"; "poly-compare"; "poly-hash"; "ambient-random"; "wall-clock";
      "domain-outside-run"; "engine-mode"; "unused-allowlist"; "parse-error";
    ]
    Source_lint.codes;
  Alcotest.(check (list string))
    "share lint codes"
    [ "global-mutable-core"; "shared-mutable"; "capture-mutates"; "unused-allowlist"; "parse-error" ]
    Share_lint.codes;
  Alcotest.(check (list string))
    "alloc lint codes"
    [
      "new-alloc-class"; "alloc-count-growth"; "alloc-count-shrink"; "baseline-missing";
      "unused-allowlist"; "parse-error";
    ]
    Alloc_lint.codes

(* --- determinism checker ------------------------------------------------- *)

let digest round transmitters observations =
  { Engine.round; transmitters; observations }

let test_fingerprints () =
  Alcotest.(check int) "silence" 0 (Engine.fingerprint_observation Channel.Silence);
  Alcotest.(check int) "busy" 1 (Engine.fingerprint_observation Channel.Busy);
  Alcotest.(check bool) "clear is distinct from both" true
    (Engine.fingerprint_observation (Channel.Clear 42) >= 2);
  Alcotest.(check int) "equal payloads fingerprint equally"
    (Engine.fingerprint_observation (Channel.Clear (1, true)))
    (Engine.fingerprint_observation (Channel.Clear (1, true)))

let test_diff_equal_and_divergent () =
  let a = [| digest 0 [ 1 ] [| 0; 1 |]; digest 1 [] [| 0; 0 |] |] in
  let b = [| digest 0 [ 1 ] [| 0; 1 |]; digest 1 [ 0 ] [| 1; 0 |] |] in
  (match Determinism.diff a a with
  | Determinism.Deterministic { rounds } -> Alcotest.(check int) "rounds" 2 rounds
  | Determinism.Diverged _ -> Alcotest.fail "identical traces reported divergent");
  (match Determinism.diff a b with
  | Determinism.Diverged { round; first; second } ->
    Alcotest.(check int) "first divergent round" 1 round;
    Alcotest.(check bool) "both digests present" true (first <> None && second <> None)
  | Determinism.Deterministic _ -> Alcotest.fail "divergence missed");
  match Determinism.diff a [| digest 0 [ 1 ] [| 0; 1 |] |] with
  | Determinism.Diverged { round; second; _ } ->
    Alcotest.(check int) "truncation detected at the shorter length" 1 round;
    Alcotest.(check bool) "second trace ended" true (second = None)
  | Determinism.Deterministic _ -> Alcotest.fail "truncated trace reported equal"

let test_check_spec_deterministic () =
  match Scenario.preset "epidemic_baseline" with
  | None -> Alcotest.fail "missing preset"
  | Some spec -> begin
    match Determinism.check_spec ~max_rounds:2_000 spec with
    | Determinism.Deterministic { rounds } ->
      Alcotest.(check bool) "executed some rounds" true (rounds > 0)
    | Determinism.Diverged _ as o ->
      Alcotest.failf "seeded run diverged: %s" (Determinism.outcome_to_string o)
  end

let test_mode_labels_roundtrip () =
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        (Determinism.mode_label mode ^ " roundtrips")
        true
        (Determinism.mode_of_label (Determinism.mode_label mode) = Some mode))
    [ `Dense; `Sparse; `Sharded 1; `Sharded 4 ];
  Alcotest.(check bool) "unknown spelling rejected" true (Determinism.mode_of_label "bogus" = None);
  Alcotest.(check bool) "non-positive tile count rejected" true
    (Determinism.mode_of_label "sharded:0" = None)

let test_check_modes_cross_mode () =
  match Scenario.preset "epidemic_baseline" with
  | None -> Alcotest.fail "missing preset"
  | Some spec ->
    let results =
      Determinism.check_modes ~max_rounds:2_000 [ `Dense; `Sparse; `Sharded 2 ] spec
    in
    Alcotest.(check (list (pair string string)))
      "every pair of modes is diffed"
      [ ("dense", "sparse"); ("dense", "sharded:2"); ("sparse", "sharded:2") ]
      (List.map fst results);
    List.iter
      (fun ((a, b), outcome) ->
        match outcome with
        | Determinism.Deterministic { rounds } ->
          Alcotest.(check bool) (a ^ " vs " ^ b ^ " traced rounds") true (rounds > 0)
        | Determinism.Diverged _ as o ->
          Alcotest.failf "%s vs %s diverged: %s" a b (Determinism.outcome_to_string o))
      results;
    (* A single mode degenerates to the run-twice form. *)
    match Determinism.check_modes ~max_rounds:2_000 [ `Sparse ] spec with
    | [ (("sparse", "sparse"), Determinism.Deterministic _) ] -> ()
    | other -> Alcotest.failf "expected one self-pair, got %d entries" (List.length other)

(* Hidden cross-run state is exactly what the checker exists to catch:
   a machine driven by a counter that survives from the first run into the
   second produces a different transmission schedule the second time. *)
let test_collector_catches_shared_state () =
  let nodes = [| Node.make 0 (Point.make 0.0 0.0); Node.make 1 (Point.make 1.0 0.0) |] in
  let d = { Deployment.width = 1.0; height = 1.0; nodes } in
  let topology = Topology.build d (Propagation.disk_l2 1.5) in
  let leaked = ref 0 in
  let run () =
    let chatty =
      {
        Engine.act =
          (fun _ ->
            incr leaked;
            if !leaked mod 2 = 0 then Engine.Transmit 7 else Engine.Silent);
        observe = (fun _ _ -> ());
        observe_packed = None;
        delivered = (fun () -> None);
        next_active = Engine.always_active;
      }
    in
    let tap, finish = Determinism.collector () in
    ignore
      (Engine.run ~tap ~topology ~machines:[| chatty; Engine.silent_machine |]
         ~waiters:[| true; true |] ~cap:3 ());
    finish ()
  in
  let first = run () in
  let second = run () in
  Alcotest.(check int) "both runs traced to the cap" 3 (Array.length first);
  match Determinism.diff first second with
  | Determinism.Diverged { round; _ } ->
    (* Odd counter parity flips between runs of an odd-length schedule, so
       the very first round already differs. *)
    Alcotest.(check int) "diverges immediately" 0 round
  | Determinism.Deterministic _ -> Alcotest.fail "leaked state not detected"

let () =
  Alcotest.run "check"
    [
      ( "model checker",
        [
          Alcotest.test_case "2Bit reference passes (budgets 0-3)" `Quick test_two_bit_reference;
          Alcotest.test_case "1Hop reference passes (budgets 0-3)" `Quick test_one_hop_reference;
          Alcotest.test_case "skip-veto frame counterexample" `Quick
            test_skip_veto_frame_counterexample;
          Alcotest.test_case "skip-veto stream counterexample" `Quick
            test_skip_veto_stream_counterexample;
        ] );
      ( "scenario linter",
        [
          Alcotest.test_case "presets are clean" `Quick test_lint_presets_clean;
          Alcotest.test_case "default is clean" `Quick test_lint_default_clean;
          Alcotest.test_case "bad specs are caught" `Quick test_lint_catches_bad_specs;
          Alcotest.test_case "byz-tolerance warning" `Quick test_lint_byz_tolerance_warning;
          Alcotest.test_case "diagnostic rendering" `Quick test_lint_diagnostic_rendering;
        ] );
      ( "vote checker",
        [
          Alcotest.test_case "MultiPathRB reference passes (radii 1-3)" `Quick
            test_vote_multi_path_reference;
          Alcotest.test_case "MultiPathRB seeded quorum off-by-one caught" `Quick
            test_vote_multi_path_seeded;
          Alcotest.test_case "NeighborWatchRB reference passes (1- and 2-voting)" `Quick
            test_vote_neighbor_watch_reference;
          Alcotest.test_case "NeighborWatchRB seeded quorum off-by-one caught" `Quick
            test_vote_neighbor_watch_seeded;
        ] );
      ( "source lint",
        [
          Alcotest.test_case "fixtures are flagged with stable codes" `Quick
            test_source_lint_fixtures;
          Alcotest.test_case "directory exemptions" `Quick test_source_lint_exemptions;
          Alcotest.test_case "Engine.run mode pinning" `Quick test_source_lint_engine_mode;
          Alcotest.test_case "parse errors surface as diagnostics" `Quick
            test_source_lint_parse_error;
          Alcotest.test_case "dangling paths skipped" `Quick test_source_lint_dangling_paths;
          Alcotest.test_case "golden diagnostic codes" `Quick test_golden_codes;
        ] );
      ( "allowlist hygiene",
        [
          Alcotest.test_case "unused entries reported" `Quick test_unused_allowlist_helper;
          Alcotest.test_case "source lint tracks entry use" `Quick
            test_source_lint_allowlist_use_tracking;
          Alcotest.test_case "share lint flags stale entries" `Quick
            test_share_lint_unused_allowlist;
        ] );
      ( "share lint",
        [
          Alcotest.test_case "seed violation fires all rules" `Quick
            test_share_lint_seed_violation;
          Alcotest.test_case "clean and Atomic-mediated tasks pass" `Quick
            test_share_lint_clean_and_atomic;
          Alcotest.test_case "lib/core and lib/sim are state-free" `Quick
            test_share_lint_global_mutable_core;
          Alcotest.test_case "reachability through named helpers" `Quick
            test_share_lint_reaches_named_helpers;
          Alcotest.test_case "racy fixture flagged statically" `Quick
            test_share_lint_racy_fixture;
          Alcotest.test_case "parse errors surface as diagnostics" `Quick
            test_share_lint_parse_error;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "whole-tree reachability matches share-lint verdicts" `Quick
            test_callgraph_matches_share_lint_verdicts;
        ] );
      ( "alloc lint",
        [
          Alcotest.test_case "seed violation fires on every class" `Quick
            test_alloc_seed_violation;
          Alcotest.test_case "boxy fixture flagged as new hot-path classes" `Quick
            test_alloc_boxy_fixture;
          Alcotest.test_case "old boxy observe path still trips the analyzer" `Quick
            test_alloc_boxy_observe_path;
          Alcotest.test_case "inventory roundtrip, growth and shrink" `Quick
            test_alloc_inventory_roundtrip_and_diff;
          Alcotest.test_case "missing or unreadable baseline is an error" `Quick
            test_alloc_missing_baseline;
          Alcotest.test_case "stale allowlist entries located" `Quick
            test_alloc_unused_allowlist;
          Alcotest.test_case "parse errors surface as diagnostics" `Quick
            test_alloc_parse_error;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "observation fingerprints" `Quick test_fingerprints;
          Alcotest.test_case "trace diff" `Quick test_diff_equal_and_divergent;
          Alcotest.test_case "seeded scenario is deterministic" `Quick
            test_check_spec_deterministic;
          Alcotest.test_case "mode labels roundtrip" `Quick test_mode_labels_roundtrip;
          Alcotest.test_case "cross-mode traces byte-identical" `Quick
            test_check_modes_cross_mode;
          Alcotest.test_case "shared state across runs detected" `Quick
            test_collector_catches_shared_state;
        ] );
    ]
