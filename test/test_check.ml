(* Tests for the static-analysis subsystem (lib/check): the bounded model
   checker, the scenario linter, and the determinism checker. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- model checker: the reference machines satisfy every invariant ------- *)

let configurations = function
  | Model_check.Pass { configurations } -> configurations
  | Model_check.Fail c ->
    Alcotest.failf "unexpected counterexample:\n%s" (Model_check.counterexample_to_string c)

let test_two_bit_reference () =
  (* Exhaustive for each budget; at budget 3 the space is exactly
     4 bit pairs x sum_{k<=3} C(6,k) = 4 * 42 jam masks. *)
  List.iter
    (fun budget -> ignore (configurations (Model_check.check_two_bit ~budget ())))
    [ 0; 1; 2 ];
  Alcotest.(check int) "4 * (1+6+15+20) configurations at budget 3" 168
    (configurations (Model_check.check_two_bit ~budget:3 ()));
  Alcotest.(check int) "single receiver also passes" 168
    (configurations (Model_check.check_two_bit ~receivers:1 ~budget:3 ()))

let test_one_hop_reference () =
  List.iter
    (fun budget -> ignore (configurations (Model_check.check_one_hop ~budget ())))
    [ 0; 1; 2; 3 ];
  ignore (configurations (Model_check.check_one_hop ~msg_len:3 ~budget:2 ()))

(* --- model checker: the seeded violation produces a counterexample ------- *)

let expect_fail = function
  | Model_check.Fail c -> c
  | Model_check.Pass { configurations } ->
    Alcotest.failf "expected a counterexample, got Pass over %d configurations" configurations

let test_skip_veto_frame_counterexample () =
  let c =
    expect_fail (Model_check.check_two_bit ~impl:Model_check.faulty_skip_veto ~budget:1 ())
  in
  (* A receiver deaf to the veto round accepts bits the sender cancelled:
     one injected broadcast in a data phase is enough. *)
  Alcotest.(check string) "violated invariant" "receiver-no-forgery" c.Model_check.invariant;
  Alcotest.(check int) "within budget" 1 c.Model_check.budget;
  Alcotest.(check bool) "adversary actually spent" true (c.Model_check.spent >= 1);
  Alcotest.(check bool) "spent within budget" true (c.Model_check.spent <= c.Model_check.budget);
  Alcotest.(check bool) "trace is non-empty" true (c.Model_check.trace <> []);
  List.iter
    (fun (e : Model_check.phase_event) ->
      Alcotest.(check bool) "phases in range" true (e.phase >= 0 && e.phase <= 5))
    c.Model_check.trace;
  let rendered = Model_check.counterexample_to_string c in
  Alcotest.(check bool) "rendering names the invariant" true
    (contains ~affix:"receiver-no-forgery" rendered);
  Alcotest.(check bool) "rendering shows the veto phase" true
    (contains ~affix:"R5 veto" rendered)

let test_skip_veto_stream_counterexample () =
  let c =
    expect_fail (Model_check.check_one_hop ~impl:Model_check.faulty_skip_veto ~budget:3 ())
  in
  Alcotest.(check bool) "trace is non-empty" true (c.Model_check.trace <> []);
  Alcotest.(check bool) "spent within budget" true
    (c.Model_check.spent >= 1 && c.Model_check.spent <= c.Model_check.budget)

(* --- scenario linter ----------------------------------------------------- *)

let has_code code diags = List.exists (fun d -> d.Lint.code = code) diags

let test_lint_presets_clean () =
  let reports = Lint.lint_presets () in
  Alcotest.(check bool) "all presets linted" true (List.length reports >= 6);
  List.iter
    (fun (name, diags) ->
      Alcotest.(check int) (name ^ " has no errors") 0 (Lint.count Lint.Error diags);
      Alcotest.(check int) (name ^ " has no warnings") 0 (Lint.count Lint.Warning diags))
    reports

let test_lint_default_clean () =
  Alcotest.(check bool) "default spec has no errors" false
    (Lint.has_errors (Lint.lint ~name:"default" Scenario.default))

let test_lint_catches_bad_specs () =
  let d = Scenario.default in
  let lint spec = Lint.lint ~name:"bad" spec in
  Alcotest.(check bool) "zero round cap" true (has_code "cap" (lint { d with cap = 0 }));
  Alcotest.(check bool) "negative radius" true (has_code "radius" (lint { d with radius = -1.0 }));
  Alcotest.(check bool) "tolerance above Koo's bound" true
    (has_code "koo-impossibility"
       (lint { d with protocol = Scenario.Multi_path { tolerance = 999 } }));
  Alcotest.(check bool) "fault fraction above 1" true
    (has_code "fraction" (lint { d with faults = Scenario.Lying 1.5 }));
  Alcotest.(check bool) "oversized watch squares" true
    (has_code "square-geometry" (lint { d with square_side = Some 10.0 }));
  Alcotest.(check bool) "relay cap of zero" true
    (has_code "relay-limit"
       (lint
          {
            d with
            protocol = Scenario.Multi_path { tolerance = 1 };
            heard_relay_limit = Some 0;
          }));
  (* All of the above are Errors, not mere Warnings. *)
  Alcotest.(check bool) "cap diagnostic is an error" true
    (Lint.has_errors (lint { d with cap = 0 }))

let test_lint_byz_tolerance_warning () =
  (* 600 nodes on a 20x20 map with R=4: ~75 devices per neighbourhood, so
     40% liars vastly exceeds the ceil(R/2)^2 - 1 = 3 bound. *)
  let diags = Lint.lint ~name:"overrun" { Scenario.default with faults = Scenario.Lying 0.4 } in
  Alcotest.(check bool) "byz-tolerance warning fires" true (has_code "byz-tolerance" diags);
  Alcotest.(check bool) "it is a warning, not an error" false (Lint.has_errors diags)

let test_lint_diagnostic_rendering () =
  match Lint.lint ~name:"render" { Scenario.default with cap = 0 } with
  | [] -> Alcotest.fail "expected a diagnostic"
  | d :: _ ->
    let s = Lint.diagnostic_to_string d in
    Alcotest.(check bool) "names the scenario" true (contains ~affix:"render" s);
    Alcotest.(check bool) "names the field" true (contains ~affix:"cap" s);
    Alcotest.(check bool) "states the severity" true (contains ~affix:"error" s)

(* --- determinism checker ------------------------------------------------- *)

let digest round transmitters observations =
  { Engine.round; transmitters; observations }

let test_fingerprints () =
  Alcotest.(check int) "silence" 0 (Engine.fingerprint_observation Channel.Silence);
  Alcotest.(check int) "busy" 1 (Engine.fingerprint_observation Channel.Busy);
  Alcotest.(check bool) "clear is distinct from both" true
    (Engine.fingerprint_observation (Channel.Clear 42) >= 2);
  Alcotest.(check int) "equal payloads fingerprint equally"
    (Engine.fingerprint_observation (Channel.Clear (1, true)))
    (Engine.fingerprint_observation (Channel.Clear (1, true)))

let test_diff_equal_and_divergent () =
  let a = [| digest 0 [ 1 ] [| 0; 1 |]; digest 1 [] [| 0; 0 |] |] in
  let b = [| digest 0 [ 1 ] [| 0; 1 |]; digest 1 [ 0 ] [| 1; 0 |] |] in
  (match Determinism.diff a a with
  | Determinism.Deterministic { rounds } -> Alcotest.(check int) "rounds" 2 rounds
  | Determinism.Diverged _ -> Alcotest.fail "identical traces reported divergent");
  (match Determinism.diff a b with
  | Determinism.Diverged { round; first; second } ->
    Alcotest.(check int) "first divergent round" 1 round;
    Alcotest.(check bool) "both digests present" true (first <> None && second <> None)
  | Determinism.Deterministic _ -> Alcotest.fail "divergence missed");
  match Determinism.diff a [| digest 0 [ 1 ] [| 0; 1 |] |] with
  | Determinism.Diverged { round; second; _ } ->
    Alcotest.(check int) "truncation detected at the shorter length" 1 round;
    Alcotest.(check bool) "second trace ended" true (second = None)
  | Determinism.Deterministic _ -> Alcotest.fail "truncated trace reported equal"

let test_check_spec_deterministic () =
  match Scenario.preset "epidemic_baseline" with
  | None -> Alcotest.fail "missing preset"
  | Some spec -> begin
    match Determinism.check_spec ~max_rounds:2_000 spec with
    | Determinism.Deterministic { rounds } ->
      Alcotest.(check bool) "executed some rounds" true (rounds > 0)
    | Determinism.Diverged _ as o ->
      Alcotest.failf "seeded run diverged: %s" (Determinism.outcome_to_string o)
  end

(* Hidden cross-run state is exactly what the checker exists to catch:
   a machine driven by a counter that survives from the first run into the
   second produces a different transmission schedule the second time. *)
let test_collector_catches_shared_state () =
  let nodes = [| Node.make 0 (Point.make 0.0 0.0); Node.make 1 (Point.make 1.0 0.0) |] in
  let d = { Deployment.width = 1.0; height = 1.0; nodes } in
  let topology = Topology.build d (Propagation.disk_l2 1.5) in
  let leaked = ref 0 in
  let run () =
    let chatty =
      {
        Engine.act =
          (fun _ ->
            incr leaked;
            if !leaked mod 2 = 0 then Engine.Transmit 7 else Engine.Silent);
        observe = (fun _ _ -> ());
        delivered = (fun () -> None);
      }
    in
    let tap, finish = Determinism.collector () in
    ignore
      (Engine.run ~tap ~topology ~machines:[| chatty; Engine.silent_machine |]
         ~waiters:[| true; true |] ~cap:3 ());
    finish ()
  in
  let first = run () in
  let second = run () in
  Alcotest.(check int) "both runs traced to the cap" 3 (Array.length first);
  match Determinism.diff first second with
  | Determinism.Diverged { round; _ } ->
    (* Odd counter parity flips between runs of an odd-length schedule, so
       the very first round already differs. *)
    Alcotest.(check int) "diverges immediately" 0 round
  | Determinism.Deterministic _ -> Alcotest.fail "leaked state not detected"

let () =
  Alcotest.run "check"
    [
      ( "model checker",
        [
          Alcotest.test_case "2Bit reference passes (budgets 0-3)" `Quick test_two_bit_reference;
          Alcotest.test_case "1Hop reference passes (budgets 0-3)" `Quick test_one_hop_reference;
          Alcotest.test_case "skip-veto frame counterexample" `Quick
            test_skip_veto_frame_counterexample;
          Alcotest.test_case "skip-veto stream counterexample" `Quick
            test_skip_veto_stream_counterexample;
        ] );
      ( "scenario linter",
        [
          Alcotest.test_case "presets are clean" `Quick test_lint_presets_clean;
          Alcotest.test_case "default is clean" `Quick test_lint_default_clean;
          Alcotest.test_case "bad specs are caught" `Quick test_lint_catches_bad_specs;
          Alcotest.test_case "byz-tolerance warning" `Quick test_lint_byz_tolerance_warning;
          Alcotest.test_case "diagnostic rendering" `Quick test_lint_diagnostic_rendering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "observation fingerprints" `Quick test_fingerprints;
          Alcotest.test_case "trace diff" `Quick test_diff_equal_and_divergent;
          Alcotest.test_case "seeded scenario is deterministic" `Quick
            test_check_spec_deterministic;
          Alcotest.test_case "shared state across runs detected" `Quick
            test_collector_catches_shared_state;
        ] );
    ]
