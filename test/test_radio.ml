(* Tests for the radio substrate: propagation models and channel
   resolution with carrier sensing. *)

let check_float = Alcotest.(check (float 1e-9))
let point = Point.make

(* --- Propagation ------------------------------------------------------ *)

let test_disk_power () =
  let prop = Propagation.disk_linf 4.0 in
  check_float "in range" 1.0
    (Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point 4.0 4.0));
  check_float "out of range" 0.0
    (Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point 4.1 0.0));
  let l2 = Propagation.disk_l2 4.0 in
  check_float "l2 disk excludes corner" 0.0
    (Propagation.received_power l2 ~src:(point 0.0 0.0) ~dst:(point 4.0 4.0))

let test_friis_power () =
  let prop = Propagation.friis 4.0 in
  check_float "power 1 at rx range"
    1.0
    (Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point 4.0 0.0));
  check_float "inverse square" 4.0
    (Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point 2.0 0.0));
  Alcotest.(check bool) "infinite at zero distance" true
    (Propagation.received_power prop ~src:(point 1.0 1.0) ~dst:(point 1.0 1.0) = infinity)

let test_friis_sense_threshold () =
  let prop = Propagation.friis ~sense_factor:2.0 4.0 in
  check_float "rx range" 4.0 (Propagation.rx_range prop);
  check_float "sense range" 8.0 (Propagation.sense_range prop);
  (* Power at the sense range must equal the sense threshold. *)
  check_float "threshold consistency"
    (Propagation.sense_threshold prop)
    (Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point 8.0 0.0))

let test_disk_ranges () =
  let prop = Propagation.disk_l2 3.0 in
  check_float "rx = sense for disks" (Propagation.rx_range prop) (Propagation.sense_range prop);
  Alcotest.(check bool) "disk sense threshold below full power" true
    (Propagation.sense_threshold prop < 1.0)

let prop_friis_monotonic =
  QCheck.Test.make ~name:"friis power decreases with distance" ~count:200
    QCheck.(pair (float_range 0.5 10.0) (float_range 0.1 20.0))
    (fun (r, d) ->
      let prop = Propagation.friis r in
      let p1 = Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point d 0.0) in
      let p2 = Propagation.received_power prop ~src:(point 0.0 0.0) ~dst:(point (d +. 1.0) 0.0) in
      p1 > p2)

(* --- Channel ----------------------------------------------------------- *)

let obs_testable =
  Alcotest.testable (Channel.pp Format.pp_print_int) (Channel.equal Int.equal)

let resolve ?rng params txs = Channel.resolve ?rng params ~sense_threshold:0.3 txs

let test_channel_silence () =
  Alcotest.check obs_testable "no tx" Channel.Silence (resolve Channel.ideal []);
  Alcotest.check obs_testable "below sense floor" Channel.Silence
    (resolve Channel.ideal [ { Channel.power = 0.2; payload = 1 } ])

let test_channel_clear () =
  Alcotest.check obs_testable "single decodable" (Channel.Clear 7)
    (resolve Channel.ideal [ { Channel.power = 1.5; payload = 7 } ])

let test_channel_busy_collision () =
  Alcotest.check obs_testable "two decodable, no capture" Channel.Busy
    (resolve Channel.ideal
       [ { Channel.power = 1.0; payload = 1 }; { Channel.power = 1.0; payload = 2 } ])

let test_channel_busy_weak () =
  Alcotest.check obs_testable "sensed but undecodable" Channel.Busy
    (resolve Channel.ideal [ { Channel.power = 0.5; payload = 1 } ])

let test_channel_weak_interference_ideal () =
  (* The ideal (no capture) channel treats any co-channel energy as a
     collision. *)
  Alcotest.check obs_testable "weak interferer corrupts" Channel.Busy
    (resolve Channel.ideal
       [ { Channel.power = 5.0; payload = 1 }; { Channel.power = 0.4; payload = 2 } ])

let test_channel_capture () =
  let params = { Channel.capture_ratio = 3.0; loss_prob = 0.0 } in
  Alcotest.check obs_testable "strong signal captured" (Channel.Clear 1)
    (resolve params [ { Channel.power = 3.0; payload = 1 }; { Channel.power = 0.9; payload = 2 } ]);
  Alcotest.check obs_testable "not strong enough" Channel.Busy
    (resolve params [ { Channel.power = 2.0; payload = 1 }; { Channel.power = 0.9; payload = 2 } ])

let test_channel_loss () =
  let rng = Rng.create 5 in
  let params = { Channel.capture_ratio = infinity; loss_prob = 1.0 } in
  Alcotest.check obs_testable "always-lost packet still sensed" Channel.Busy
    (resolve ~rng params [ { Channel.power = 2.0; payload = 1 } ])

let test_channel_loss_requires_rng () =
  let params = { Channel.capture_ratio = infinity; loss_prob = 0.5 } in
  Alcotest.(check bool) "missing rng raises" true
    (try
       ignore (resolve params [ { Channel.power = 2.0; payload = 1 } ]);
       false
     with Invalid_argument _ -> true)

let test_channel_is_activity () =
  Alcotest.(check bool) "silence" false (Channel.is_activity Channel.Silence);
  Alcotest.(check bool) "busy" true (Channel.is_activity Channel.Busy);
  Alcotest.(check bool) "clear" true (Channel.is_activity (Channel.Clear 0))

let prop_resolve_never_invents_payload =
  QCheck.Test.make ~name:"resolve only returns transmitted payloads" ~count:300
    QCheck.(small_list (pair (float_range 0.0 5.0) small_int))
    (fun txs ->
      let txs = List.map (fun (power, payload) -> { Channel.power; payload }) txs in
      match resolve Channel.ideal txs with
      | Channel.Clear payload -> List.exists (fun tx -> tx.Channel.payload = payload) txs
      | Channel.Silence | Channel.Busy -> true)

let prop_resolve_single_strong_is_clear =
  QCheck.Test.make ~name:"lone decodable signal is always decoded (ideal)" ~count:200
    QCheck.(float_range 1.0 100.0)
    (fun power ->
      resolve Channel.ideal [ { Channel.power; payload = 9 } ] = Channel.Clear 9)

(* The engine's packed fast path must be observation-equivalent to the
   variant [resolve] (fast paths included).  Rebuild the flat per-receiver
   aggregates the engine's fan-out keeps — same sense filter, same loss
   coin order — and check [resolve_packed] decodes to the same observation
   on the same RNG stream. *)
let prop_resolve_packed_agrees =
  QCheck.Test.make ~name:"packed resolution agrees with the variant channel" ~count:500
    QCheck.(triple (small_list (pair (float_range 0.0 5.0) small_int)) (int_range 0 10000) bool)
    (fun (raw, seed, lossy) ->
      let params =
        if lossy then { Channel.capture_ratio = 3.0; loss_prob = 0.25 } else Channel.ideal
      in
      let sense_threshold = 0.3 in
      let txs = List.map (fun (power, payload) -> { Channel.power; payload }) raw in
      let expected = Channel.resolve ~rng:(Rng.create seed) params ~sense_threshold txs in
      let rng = Rng.create seed in
      let sum = ref 0.0 and n_dec = ref 0 and best_pow = ref 0.0 and best = ref 0 in
      let sensed = ref 0 in
      List.iteri
        (fun slot tx ->
          if tx.Channel.power >= sense_threshold then begin
            incr sensed;
            sum := !sum +. tx.Channel.power;
            if
              tx.Channel.power >= 1.0
              && not
                   (params.Channel.loss_prob > 0.0
                   && Rng.bernoulli rng params.Channel.loss_prob)
            then begin
              incr n_dec;
              if tx.Channel.power > !best_pow then begin
                best_pow := tx.Channel.power;
                best := slot
              end
            end
          end)
        txs;
      let out = [| Channel.Packed.silence |] in
      if !sensed > 0 then
        Channel.resolve_packed params ~touched:[| 0 |] ~n_touched:1 ~sum_power:[| !sum |]
          ~n_decodable:[| !n_dec |] ~best_power:[| !best_pow |] ~best_slot:[| !best |] ~out;
      let got =
        let p = out.(0) in
        if p = Channel.Packed.silence then Channel.Silence
        else if Channel.Packed.is_clear p then
          Channel.Clear (List.nth txs (Channel.Packed.slot p)).Channel.payload
        else Channel.Busy
      in
      Channel.equal Int.equal expected got)

let qtests =
  [
    prop_friis_monotonic;
    prop_resolve_never_invents_payload;
    prop_resolve_single_strong_is_clear;
    prop_resolve_packed_agrees;
  ]

let () =
  Alcotest.run "radio"
    [
      ( "propagation",
        [
          Alcotest.test_case "disk power" `Quick test_disk_power;
          Alcotest.test_case "friis power" `Quick test_friis_power;
          Alcotest.test_case "friis sense threshold" `Quick test_friis_sense_threshold;
          Alcotest.test_case "disk ranges" `Quick test_disk_ranges;
        ] );
      ( "channel",
        [
          Alcotest.test_case "silence" `Quick test_channel_silence;
          Alcotest.test_case "clear" `Quick test_channel_clear;
          Alcotest.test_case "collision" `Quick test_channel_busy_collision;
          Alcotest.test_case "weak signal" `Quick test_channel_busy_weak;
          Alcotest.test_case "weak interference (ideal)" `Quick
            test_channel_weak_interference_ideal;
          Alcotest.test_case "capture effect" `Quick test_channel_capture;
          Alcotest.test_case "loss" `Quick test_channel_loss;
          Alcotest.test_case "loss requires rng" `Quick test_channel_loss_requires_rng;
          Alcotest.test_case "is_activity" `Quick test_channel_is_activity;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
