(* Deliberately racy pool task: every task increments a module-level
   counter, so the result of each task depends on scheduling.  This file is
   never compiled — it is the committed proof fixture that (a) Share_lint
   flags the capture statically (test_check) and (b) Pool.map_array
   ~sanitize catches the divergence dynamically (test_run).  The tree-wide
   `lint share` run suppresses it via an audited allowlist entry. *)

let hits = ref 0

let racy_sum specs =
  Pool.map_array ~jobs:4
    (fun spec ->
      hits := !hits + spec;
      !hits)
    specs
