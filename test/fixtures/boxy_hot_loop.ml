(* Fixture for the hot-path allocation analyzer (test_check): a fake
   round function whose per-cell work boxes floats on two lines, builds a
   closure and a throwaway list.  Linted under a custom root, never
   built. *)

let weight x y =
  let p = x *. y in
  p +. 1.0

let process_round cells =
  let scale = 2.0 in
  let boxed = List.map (fun c -> weight c scale) cells in
  List.length boxed

(* An old-style observation delivery path: one variant-shaped option per
   receiver, tuples for the (round, payload) pairs, a closure over the
   round and a throwaway list per call — the exact shape the engine's
   packed observation fast path replaced.  Kept as a regression tripwire:
   if the analyzer ever stops flagging this, the packed path has lost its
   guard. *)
let observe_boxy round codes payloads =
  let delivered = ref 0 in
  let obs =
    List.map
      (fun code ->
        if code = 0 then None
        else if code land 3 = 1 then Some (round, -1)
        else Some (round, List.nth payloads (code lsr 2)))
      codes
  in
  List.iter
    (function
      | Some (_, payload) when payload >= 0 -> delivered := !delivered + payload
      | Some _ | None -> ())
    obs;
  !delivered
