(* Fixture for the hot-path allocation analyzer (test_check): a fake
   round function whose per-cell work boxes floats on two lines, builds a
   closure and a throwaway list.  Linted under a custom root, never
   built. *)

let weight x y =
  let p = x *. y in
  p +. 1.0

let process_round cells =
  let scale = 2.0 in
  let boxed = List.map (fun c -> weight c scale) cells in
  List.length boxed
