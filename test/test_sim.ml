(* Tests for the simulator substrate: deployments, topology, schedules and
   the round engine (including its equivalence with the reference channel
   resolution). *)

let point = Point.make

(* --- Deployment --------------------------------------------------------- *)

let test_grid_deployment () =
  let d = Deployment.grid ~width:4 ~height:3 in
  Alcotest.(check int) "size" 12 (Deployment.size d);
  let n5 = d.Deployment.nodes.(5) in
  Alcotest.(check bool) "row-major positions" true (Point.equal n5.Node.pos (point 1.0 1.0));
  Alcotest.(check (option int)) "node_at" (Some 5) (Deployment.node_at d (point 1.0 1.0));
  Alcotest.(check (option int)) "node_at miss" None (Deployment.node_at d (point 0.5 0.5))

let test_uniform_deployment () =
  let rng = Rng.create 1 in
  let d = Deployment.uniform rng ~n:200 ~width:10.0 ~height:5.0 in
  Alcotest.(check int) "size" 200 (Deployment.size d);
  Array.iter
    (fun (node : Node.t) ->
      Alcotest.(check bool) "inside map" true
        (node.Node.pos.Point.x >= 0.0 && node.Node.pos.Point.x <= 10.0
        && node.Node.pos.Point.y >= 0.0 && node.Node.pos.Point.y <= 5.0))
    d.Deployment.nodes;
  Alcotest.(check (float 1e-9)) "density" 4.0 (Deployment.density d)

let test_clustered_deployment () =
  let rng = Rng.create 2 in
  let d = Deployment.clustered rng ~n:300 ~clusters:4 ~stddev:1.0 ~width:20.0 ~height:20.0 in
  Alcotest.(check int) "size" 300 (Deployment.size d);
  Array.iter
    (fun (node : Node.t) ->
      Alcotest.(check bool) "clamped to map" true
        (node.Node.pos.Point.x >= 0.0 && node.Node.pos.Point.x <= 20.0
        && node.Node.pos.Point.y >= 0.0 && node.Node.pos.Point.y <= 20.0))
    d.Deployment.nodes;
  (* Clustering produces markedly higher local concentration than uniform:
     the mean nearest-neighbour distance shrinks. *)
  let nn_dist (dep : Deployment.t) =
    let nodes = dep.Deployment.nodes in
    let dists =
      Array.to_list
        (Array.map
           (fun (a : Node.t) ->
             Array.fold_left
               (fun best (b : Node.t) ->
                 if a.Node.id = b.Node.id then best else min best (Point.dist_l2 a.pos b.pos))
               infinity nodes)
           nodes)
    in
    Stats.mean dists
  in
  let u = Deployment.uniform (Rng.create 3) ~n:300 ~width:20.0 ~height:20.0 in
  Alcotest.(check bool) "clustered is denser locally" true (nn_dist d < nn_dist u)

let test_center_node () =
  let d = Deployment.grid ~width:5 ~height:5 in
  Alcotest.(check int) "center of 5x5 grid" 12 (Deployment.center_node d)

let test_subset () =
  let d = Deployment.grid ~width:3 ~height:1 in
  let s = Deployment.subset d ~keep:(fun id -> id <> 1) in
  Alcotest.(check int) "two left" 2 (Deployment.size s);
  Alcotest.(check bool) "ids reassigned densely" true
    (s.Deployment.nodes.(1).Node.id = 1
    && Point.equal s.Deployment.nodes.(1).Node.pos (point 2.0 0.0))

(* --- Topology ------------------------------------------------------------ *)

let grid_topology ~side ~radius =
  Topology.build (Deployment.grid ~width:side ~height:side) (Propagation.disk_linf radius)

let test_topology_grid_neighbors () =
  let t = grid_topology ~side:7 ~radius:2.0 in
  let center = 24 (* (3,3) *) in
  Alcotest.(check int) "interior degree (2R+1)^2-1" 24 (Array.length (Topology.rx t).(center));
  Alcotest.(check int) "corner degree" 8 (Array.length (Topology.rx t).(0));
  Alcotest.(check bool) "disk: rx = sensed" true
    (Array.length (Topology.sensed t).(center) = Array.length (Topology.rx t).(center))

let test_topology_friis_sense_superset () =
  let d = Deployment.grid ~width:9 ~height:9 in
  let t = Topology.build d (Propagation.friis 2.0) in
  Array.iteri
    (fun i rx ->
      Alcotest.(check bool) "sensed includes rx" true
        (Array.length (Topology.sensed t).(i) >= Array.length rx))
    (Topology.rx t)

let test_topology_hops () =
  let t = grid_topology ~side:9 ~radius:2.0 in
  let hops = Topology.hops_from t 0 in
  Alcotest.(check int) "self" 0 hops.(0);
  Alcotest.(check int) "one hop" 1 hops.(2 + (9 * 2));
  (* corner to corner: L-inf distance 8, radius 2 -> 4 hops *)
  Alcotest.(check int) "far corner" 4 hops.((9 * 9) - 1);
  Alcotest.(check int) "diameter" 4 (Topology.hop_diameter_from t 0);
  Alcotest.(check int) "all reachable" 81 (Topology.reachable_from t 0)

let test_topology_disconnected () =
  (* Two nodes far beyond range. *)
  let d =
    {
      Deployment.width = 100.0;
      height = 1.0;
      nodes = [| Node.make 0 (point 0.0 0.0); Node.make 1 (point 99.0 0.0) |];
    }
  in
  let t = Topology.build d (Propagation.disk_l2 2.0) in
  let hops = Topology.hops_from t 0 in
  Alcotest.(check int) "unreachable marked" (-1) hops.(1);
  Alcotest.(check int) "reachable count" 1 (Topology.reachable_from t 0)

(* Regression: the spatial hash must floor coordinates into cells rather
   than truncate toward zero — truncation merges (-reach, 0) with
   [0, reach) into one double-width cell on each axis for deployments
   that extend into negative coordinates.  A pair straddling the y axis
   plus a brute-force check of the whole rx relation pins the binning. *)
let test_topology_negative_coords () =
  let prop = Propagation.disk_l2 2.0 in
  let rng = Rng.create 77 in
  let nodes =
    Array.init 40 (fun i ->
        Node.make i (point (Rng.float rng 16.0 -. 8.0) (Rng.float rng 16.0 -. 8.0)))
  in
  nodes.(0) <- Node.make 0 (point (-0.5) 3.0);
  nodes.(1) <- Node.make 1 (point 0.5 3.0);
  let d = { Deployment.width = 16.0; height = 16.0; nodes } in
  let t = Topology.build d prop in
  Alcotest.(check bool) "axis-straddling pair linked" true (Topology.can_decode t ~rx:0 ~tx:1);
  let n = Array.length nodes in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let expected =
          Propagation.received_power prop ~src:nodes.(j).Node.pos ~dst:nodes.(i).Node.pos >= 1.0
        in
        Alcotest.(check bool)
          (Printf.sprintf "link %d<-%d matches brute force" i j)
          expected
          (Topology.can_decode t ~rx:i ~tx:j)
      end
    done
  done

let test_topology_can_decode () =
  let t = grid_topology ~side:5 ~radius:1.0 in
  Alcotest.(check bool) "adjacent" true (Topology.can_decode t ~rx:0 ~tx:1);
  Alcotest.(check bool) "far" false (Topology.can_decode t ~rx:0 ~tx:4)

(* Regression for the sorted link rows: [rx] and [sensed] are sorted by
   peer id, and the binary-searching [can_decode] agrees with brute-force
   power computation over every pair of a random deployment. *)
let test_topology_sorted_rows_and_lookup () =
  let prop = Propagation.friis 3.0 in
  let d = Deployment.uniform (Rng.create 11) ~n:120 ~width:15.0 ~height:15.0 in
  let t = Topology.build d prop in
  let ascending len get label =
    for k = 0 to len - 2 do
      Alcotest.(check bool) label true (get k < get (k + 1))
    done
  in
  Array.iteri
    (fun i row ->
      ascending (Array.length row) (fun k -> row.(k)) (Printf.sprintf "rx.(%d) sorted" i))
    (Topology.rx t);
  Array.iteri
    (fun i row ->
      ascending (Array.length row)
        (fun k -> row.(k).Topology.peer)
        (Printf.sprintf "sensed.(%d) sorted" i))
    (Topology.sensed t);
  let n = Deployment.size d in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let expected =
          Propagation.received_power prop ~src:(Topology.position t j)
            ~dst:(Topology.position t i)
          >= 1.0
        in
        Alcotest.(check bool)
          (Printf.sprintf "can_decode %d<-%d" i j)
          expected
          (Topology.can_decode t ~rx:i ~tx:j)
      end
    done
  done

(* --- Schedule ------------------------------------------------------------- *)

let test_schedule_phases () =
  Alcotest.(check int) "rounds per interval" 6 Schedule.rounds_per_interval;
  Alcotest.(check int) "interval" 2 (Schedule.interval_of_round 13);
  Alcotest.(check int) "phase" 1 (Schedule.phase_of_round 13)

let test_schedule_squares () =
  let squares = Squares.make ~side:1.0 ~width:12.0 ~height:12.0 in
  let s = Schedule.for_squares squares ~radius:2.0 in
  Alcotest.(check bool) "cycle is k^2+1" true (Schedule.cycle s > 1);
  (* Slot 0 is reserved for the source. *)
  for id = 0 to Squares.count squares - 1 do
    Alcotest.(check bool) "squares never use slot 0" true (Schedule.slot_of s id > 0)
  done;
  (* Adjacent squares never share a slot. *)
  for id = 0 to Squares.count squares - 1 do
    List.iter
      (fun nb ->
        Alcotest.(check bool) "adjacent differ" true
          (Schedule.slot_of s nb <> Schedule.slot_of s id))
      (Squares.neighbors squares id)
  done

let test_schedule_squares_reuse_distance () =
  let radius = 2.0 in
  let side = 1.0 in
  let squares = Squares.make ~side ~width:20.0 ~height:20.0 in
  let s = Schedule.for_squares squares ~radius in
  (* Same-slot squares must be farther apart than 3R at their closest. *)
  let n = Squares.count squares in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Schedule.slot_of s a = Schedule.slot_of s b then begin
        let ax, ay = Squares.coords squares a and bx, by = Squares.coords squares b in
        let gap_cells = max (abs (ax - bx)) (abs (ay - by)) - 1 in
        Alcotest.(check bool) "closest points beyond 3R" true
          (float_of_int gap_cells *. side >= 3.0 *. radius)
      end
    done
  done

let test_schedule_nodes () =
  let d = Deployment.grid ~width:8 ~height:8 in
  let t = Topology.build d (Propagation.disk_l2 2.0) in
  let s = Schedule.for_nodes t ~conflict_range:4.0 ~source:10 in
  Alcotest.(check int) "source owns slot 0" 0 (Schedule.slot_of s 10);
  let n = Deployment.size d in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "slots within cycle" true (Schedule.slot_of s i < Schedule.cycle s);
    if i <> 10 then Alcotest.(check bool) "others never slot 0" true (Schedule.slot_of s i > 0)
  done;
  (* Conflicting nodes (within the conflict range) get distinct slots. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let pi = d.Deployment.nodes.(i).Node.pos and pj = d.Deployment.nodes.(j).Node.pos in
      if Point.dist_l2 pi pj <= 4.0 && i <> 10 && j <> 10 then
        Alcotest.(check bool) "conflicts differ" true (Schedule.slot_of s i <> Schedule.slot_of s j)
    done
  done

(* Regression for the spatial-hash cell function: int_of_float truncates
   toward zero, which merged the two cells either side of each axis into
   one double-width cell for deployments straddling the origin.  With
   Float.floor every cell is exactly [conflict_range] wide, so the 3x3
   neighbour scan sees every conflicting pair — including pairs whose
   members sit on opposite sides of an axis. *)
let test_schedule_nodes_negative_coords () =
  let conflict_range = 2.0 in
  let positions =
    [|
      (-0.5, 0.3); (0.5, 0.3); (-0.2, -1.0); (0.4, 1.2); (-1.8, -1.7); (1.9, -1.9);
      (-3.9, 0.1); (3.8, -0.2); (0.0, 0.0); (-0.1, 3.9); (0.2, -3.8); (-2.1, 2.2);
    |]
  in
  let nodes = Array.mapi (fun i (x, y) -> Node.make i (point x y)) positions in
  let d = { Deployment.width = 8.0; height = 8.0; nodes } in
  let t = Topology.build d (Propagation.disk_l2 conflict_range) in
  let source = 8 in
  let s = Schedule.for_nodes t ~conflict_range ~source in
  Alcotest.(check int) "source owns slot 0" 0 (Schedule.slot_of s source);
  let n = Array.length nodes in
  (* The axis-straddling pair in particular conflicts (distance 1.0). *)
  Alcotest.(check bool) "straddling pair separated" true
    (Schedule.slot_of s 0 <> Schedule.slot_of s 1);
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if i <> source && j <> source then begin
        let pi = nodes.(i).Node.pos and pj = nodes.(j).Node.pos in
        if Point.dist_l2 pi pj <= conflict_range then
          Alcotest.(check bool)
            (Printf.sprintf "conflicting pair %d/%d separated" i j)
            true
            (Schedule.slot_of s i <> Schedule.slot_of s j)
      end
    done
  done

(* next_relevant_round against the obvious reference: scan forward round
   by round until a relevant interval. *)
let test_schedule_next_relevant () =
  let squares = Squares.make ~side:1.0 ~width:4.0 ~height:4.0 in
  let s = Schedule.for_squares squares ~radius:1.0 in
  let c = Schedule.cycle s in
  let reference relevant r =
    let horizon = Schedule.first_round_of_interval (Schedule.interval_of_round r + c + 1) in
    let rec scan q =
      if q >= horizon then max_int
      else if relevant.(Schedule.interval_of_round q mod c) then q
      else scan (q + 1)
    in
    scan r
  in
  let cases =
    [
      Array.init c (fun i -> i = 0);
      Array.init c (fun i -> i = c - 1);
      Array.init c (fun i -> i = 2 || i = 5);
      Array.init c (fun i -> i mod 3 = 1);
      Array.make c true;
    ]
  in
  List.iteri
    (fun case relevant ->
      let next = Schedule.next_relevant_round s ~relevant in
      for r = 0 to Schedule.first_round_of_interval (3 * c) do
        Alcotest.(check int)
          (Printf.sprintf "case %d, round %d" case r)
          (reference relevant r) (next r)
      done)
    cases;
  (* No relevant slot at all: the machine never wakes. *)
  let never = Schedule.next_relevant_round s ~relevant:(Array.make c false) in
  Alcotest.(check int) "all-false never wakes" max_int (never 0);
  Alcotest.(check bool) "wrong arity rejected" true
    (try
       let (_ : int -> int) = Schedule.next_relevant_round s ~relevant:[| true |] in
       false
     with Invalid_argument _ -> true)

let test_schedule_active_slot () =
  let squares = Squares.make ~side:1.0 ~width:4.0 ~height:4.0 in
  let s = Schedule.for_squares squares ~radius:1.0 in
  Alcotest.(check int) "wraps" (Schedule.active_slot s ~interval:0)
    (Schedule.active_slot s ~interval:(Schedule.cycle s))

(* --- Engine ----------------------------------------------------------------- *)

let line_topology n spacing radius =
  let nodes = Array.init n (fun i -> Node.make i (point (float_of_int i *. spacing) 0.0)) in
  let d = { Deployment.width = float_of_int (n - 1) *. spacing; height = 1.0; nodes } in
  Topology.build d (Propagation.disk_l2 radius)

let tx_once_machine payload =
  {
    Engine.act = (fun round -> if round = 0 then Engine.Transmit payload else Engine.Silent);
    observe = (fun _ _ -> ());
    observe_packed = None;
    delivered = (fun () -> None);
    next_active = Engine.always_active;
  }

let recorder () =
  let log = ref [] in
  let machine =
    {
      Engine.act = (fun _ -> Engine.Silent);
      observe = (fun round obs -> log := (round, obs) :: !log);
      observe_packed = None;
      delivered = (fun () -> None);
      (* The log expects an observation every round, so opt out of the
         sparse engine's skipping. *)
      next_active = Engine.always_active;
    }
  in
  (machine, log)

let obs_at log round =
  match List.assoc_opt round !log with Some o -> o | None -> Alcotest.fail "round not observed"

let test_engine_single_tx () =
  let topology = line_topology 3 1.0 1.5 in
  let rx0, log0 = recorder () in
  let rx2, log2 = recorder () in
  let machines = [| rx0; tx_once_machine 42; rx2 |] in
  (* Nobody delivers, so the run executes exactly [cap] rounds. *)
  let waiters = Array.make 3 true in
  let result = Engine.run ~topology ~machines ~waiters ~cap:1 () in
  Alcotest.(check bool) "neighbour hears it" true (obs_at log0 0 = Channel.Clear 42);
  Alcotest.(check bool) "other side hears it" true (obs_at log2 0 = Channel.Clear 42);
  Alcotest.(check (array int)) "broadcast counted" [| 0; 1; 0 |] result.Engine.broadcasts

let test_engine_collision () =
  let topology = line_topology 3 1.0 1.5 in
  let rx, log = recorder () in
  let machines = [| tx_once_machine 1; rx; tx_once_machine 2 |] in
  let waiters = Array.make 3 true in
  ignore (Engine.run ~topology ~machines ~waiters ~cap:1 ());
  Alcotest.(check bool) "middle observes collision" true (obs_at log 0 = Channel.Busy)

let test_engine_out_of_range_silence () =
  let topology = line_topology 3 2.0 1.5 in
  (* spacing 2.0 > radius: nobody hears anybody *)
  let rx, log = recorder () in
  let machines = [| tx_once_machine 1; rx; Engine.silent_machine |] in
  let waiters = Array.make 3 true in
  ignore (Engine.run ~topology ~machines ~waiters ~cap:1 ());
  Alcotest.(check bool) "silence" true (obs_at log 0 = Channel.Silence)

let test_engine_waiters_stop () =
  let topology = line_topology 2 1.0 1.5 in
  let delivered = ref None in
  let receiver =
    {
      Engine.act = (fun _ -> Engine.Silent);
      observe =
        (fun _ obs ->
          match obs with
          | Channel.Clear _ -> delivered := Some (Bitvec.of_string "1")
          | Channel.Silence | Channel.Busy -> ());
      observe_packed = None;
      delivered = (fun () -> !delivered);
      next_active = Engine.always_active;
    }
  in
  let sender =
    {
      Engine.act = (fun _ -> Engine.Transmit 0);
      observe = (fun _ _ -> ());
      observe_packed = None;
      delivered = (fun () -> Some (Bitvec.of_string "1"));
      next_active = Engine.always_active;
    }
  in
  let result =
    Engine.run ~topology ~machines:[| sender; receiver |] ~waiters:[| false; true |] ~cap:1000 ()
  in
  Alcotest.(check int) "stops right after delivery" 1 result.Engine.rounds_used;
  Alcotest.(check bool) "no cap hit" false result.Engine.hit_cap;
  Alcotest.(check int) "completion round recorded" 0 result.Engine.completion_round.(1)

let test_engine_idle_stop () =
  let topology = line_topology 2 1.0 1.5 in
  let machines = [| Engine.silent_machine; Engine.silent_machine |] in
  let result =
    Engine.run ~idle_stop:50 ~topology ~machines ~waiters:[| true; true |] ~cap:100000 ()
  in
  Alcotest.(check int) "stopped by idleness" 50 result.Engine.rounds_used

let test_engine_cap () =
  let topology = line_topology 2 1.0 1.5 in
  let chatty =
    {
      Engine.act = (fun _ -> Engine.Transmit 0);
      observe = (fun _ _ -> ());
      observe_packed = None;
      delivered = (fun () -> None);
      next_active = Engine.always_active;
    }
  in
  let result =
    Engine.run ~topology ~machines:[| chatty; Engine.silent_machine |] ~waiters:[| true; true |]
      ~cap:77 ()
  in
  Alcotest.(check int) "capped" 77 result.Engine.rounds_used;
  Alcotest.(check bool) "hit_cap" true result.Engine.hit_cap

let test_engine_stop_when () =
  let topology = line_topology 2 1.0 1.5 in
  let machines = [| Engine.silent_machine; Engine.silent_machine |] in
  let calls = ref 0 in
  let stop_when () =
    incr calls;
    !calls >= 3
  in
  let result =
    Engine.run ~stop_when ~topology ~machines ~waiters:[| true; true |] ~cap:100000 ()
  in
  (* stop_when is polled every 96 rounds. *)
  Alcotest.(check int) "stopped at third poll" 192 result.Engine.rounds_used

let test_engine_stop_stride () =
  let topology = line_topology 2 1.0 1.5 in
  let machines = [| Engine.silent_machine; Engine.silent_machine |] in
  let calls = ref 0 in
  let stop_when () =
    incr calls;
    !calls >= 2
  in
  let result =
    Engine.run ~stop_when ~stop_stride:7 ~topology ~machines ~waiters:[| true; true |]
      ~cap:100000 ()
  in
  Alcotest.(check int) "custom stride honoured" 7 result.Engine.rounds_used

(* The point of the sparse loop: a machine with a periodic wakeup contract
   is polled only in the rounds it declared, and a contract-silent
   listener is woken only when a transmission actually reaches it — yet
   the externally visible result matches the dense reference. *)
let test_engine_sparse_skips_idle_rounds () =
  let run mode =
    let topology = line_topology 2 1.0 1.5 in
    let acts = ref 0 in
    let tx =
      {
        Engine.act =
          (fun r ->
            incr acts;
            if r mod 10 = 0 then Engine.Transmit r else Engine.Silent);
        observe = (fun _ _ -> ());
        observe_packed = None;
        delivered = (fun () -> None);
        next_active = (fun r -> (r + 9) / 10 * 10);
      }
    in
    let observations = ref [] in
    let rx =
      {
        Engine.act = (fun _ -> Engine.Silent);
        observe = (fun r obs -> observations := (r, obs) :: !observations);
        observe_packed = None;
        delivered = (fun () -> None);
        next_active = Engine.never_active;
      }
    in
    let result =
      Engine.run ~mode ~topology ~machines:[| tx; rx |] ~waiters:[| false; true |] ~cap:100 ()
    in
    (result, !acts, List.rev !observations)
  in
  let sparse, sparse_acts, sparse_obs = run `Sparse in
  let dense, dense_acts, dense_obs = run `Dense in
  Alcotest.(check int) "runs to the cap" 100 sparse.Engine.rounds_used;
  Alcotest.(check bool) "hit_cap" true sparse.Engine.hit_cap;
  Alcotest.(check int) "same rounds as dense" dense.Engine.rounds_used sparse.Engine.rounds_used;
  Alcotest.(check (array int)) "same broadcasts as dense" dense.Engine.broadcasts
    sparse.Engine.broadcasts;
  Alcotest.(check int) "ten transmissions" 10 sparse.Engine.broadcasts.(0);
  (* Dense polls the transmitter all 100 rounds; sparse only at its ten
     declared wakeups. *)
  Alcotest.(check int) "dense polls every round" 100 dense_acts;
  Alcotest.(check int) "sparse polls only scheduled rounds" 10 sparse_acts;
  (* The listener is woken exactly by the ten receptions, and sees the
     same payloads the dense run delivered (whose other 90 observations
     are the implied silence). *)
  let clear_obs obs =
    List.filter_map
      (fun (r, o) -> match o with Channel.Clear p -> Some (r, p) | _ -> None)
      obs
  in
  Alcotest.(check int) "listener woken per reception" 10 (List.length sparse_obs);
  Alcotest.(check int) "every wakeup decoded" 10 (List.length (clear_obs sparse_obs));
  Alcotest.(check bool) "receptions match dense" true
    (clear_obs sparse_obs = clear_obs dense_obs);
  Alcotest.(check bool) "skipped observations were silence" true
    (List.for_all
       (fun (_, o) -> match o with Channel.Clear _ -> true | o -> o = Channel.Silence)
       dense_obs)

(* The engine's flat-aggregate channel resolution must agree with the
   reference Channel.resolve on arbitrary receiver configurations. *)
let prop_engine_matches_reference =
  QCheck.Test.make ~name:"engine resolution = Channel.resolve" ~count:300
    QCheck.(pair (int_bound 10_000) (int_range 0 6))
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let prop = Propagation.friis 4.0 in
      (* Receiver at the origin, k transmitters at random distances. *)
      let nodes =
        Array.init (k + 1) (fun i ->
            if i = 0 then Node.make 0 (point 0.0 0.0)
            else begin
              let d = 0.5 +. Rng.float rng 9.0 in
              let angle = Rng.float rng 6.28318 in
              Node.make i (point (d *. cos angle) (d *. sin angle))
            end)
      in
      (* Positions may be negative; shift into a positive frame. *)
      let nodes =
        Array.map
          (fun (n : Node.t) ->
            Node.make n.Node.id (point (n.Node.pos.Point.x +. 20.0) (n.Node.pos.Point.y +. 20.0)))
          nodes
      in
      let d = { Deployment.width = 40.0; height = 40.0; nodes } in
      let topology = Topology.build d prop in
      let observed = ref None in
      let rx =
        {
          Engine.act = (fun _ -> Engine.Silent);
          observe = (fun _ obs -> observed := Some obs);
          observe_packed = None;
          delivered = (fun () -> None);
          next_active = Engine.always_active;
        }
      in
      let machines = Array.init (k + 1) (fun i -> if i = 0 then rx else tx_once_machine i) in
      ignore (Engine.run ~topology ~machines ~waiters:(Array.make (k + 1) true) ~cap:1 ());
      let txs =
        Array.to_list (Topology.sensed topology).(0)
        |> List.map (fun { Topology.peer; power } -> { Channel.power; payload = peer })
      in
      let expected = Channel.resolve Channel.ideal ~sense_threshold:(Propagation.sense_threshold prop) txs in
      match (!observed, expected) with
      | Some got, want -> Channel.equal Int.equal got want
      | None, _ -> false)

let qtests = [ prop_engine_matches_reference ]

let () =
  Alcotest.run "sim"
    [
      ( "deployment",
        [
          Alcotest.test_case "grid" `Quick test_grid_deployment;
          Alcotest.test_case "uniform" `Quick test_uniform_deployment;
          Alcotest.test_case "clustered" `Quick test_clustered_deployment;
          Alcotest.test_case "center node" `Quick test_center_node;
          Alcotest.test_case "subset" `Quick test_subset;
        ] );
      ( "topology",
        [
          Alcotest.test_case "grid neighbours" `Quick test_topology_grid_neighbors;
          Alcotest.test_case "friis sense superset" `Quick test_topology_friis_sense_superset;
          Alcotest.test_case "hops and diameter" `Quick test_topology_hops;
          Alcotest.test_case "disconnected" `Quick test_topology_disconnected;
          Alcotest.test_case "negative coordinates" `Quick test_topology_negative_coords;
          Alcotest.test_case "can_decode" `Quick test_topology_can_decode;
          Alcotest.test_case "sorted rows and lookup" `Quick test_topology_sorted_rows_and_lookup;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "phases" `Quick test_schedule_phases;
          Alcotest.test_case "squares" `Quick test_schedule_squares;
          Alcotest.test_case "square reuse distance" `Quick test_schedule_squares_reuse_distance;
          Alcotest.test_case "nodes" `Quick test_schedule_nodes;
          Alcotest.test_case "nodes straddling the origin" `Quick
            test_schedule_nodes_negative_coords;
          Alcotest.test_case "next relevant round" `Quick test_schedule_next_relevant;
          Alcotest.test_case "active slot wraps" `Quick test_schedule_active_slot;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single tx" `Quick test_engine_single_tx;
          Alcotest.test_case "collision" `Quick test_engine_collision;
          Alcotest.test_case "out of range" `Quick test_engine_out_of_range_silence;
          Alcotest.test_case "waiters stop" `Quick test_engine_waiters_stop;
          Alcotest.test_case "idle stop" `Quick test_engine_idle_stop;
          Alcotest.test_case "round cap" `Quick test_engine_cap;
          Alcotest.test_case "stop_when polling" `Quick test_engine_stop_when;
          Alcotest.test_case "stop_when custom stride" `Quick test_engine_stop_stride;
          Alcotest.test_case "sparse mode skips idle rounds" `Quick
            test_engine_sparse_skips_idle_rounds;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
