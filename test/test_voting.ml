(* Tests for the MultiPathRB voting rule: distinct-origin counting and the
   common-neighbourhood (2R-window) quorum test. *)

let item ?(value = true) origin points = { Voting.origin; value; points }
let p = Point.make

let test_distinct_origins () =
  let items =
    [
      item (0, 0) [ p 0.0 0.0 ];
      item (0, 0) [ p 0.1 0.1 ];
      item (1, 0) [ p 1.0 0.0 ];
      item ~value:false (2, 0) [ p 2.0 0.0 ];
    ]
  in
  Alcotest.(check int) "duplicates merge" 2 (Voting.distinct_origins ~value:true items);
  Alcotest.(check int) "per value" 1 (Voting.distinct_origins ~value:false items)

let test_quorum_needs_distinct_origins () =
  let same_origin = List.init 5 (fun i -> item (7, 7) [ p (float_of_int i /. 10.0) 0.0 ]) in
  Alcotest.(check bool) "five copies of one origin are one vote" false
    (Voting.quorum ~radius:4.0 ~need:2 ~value:true same_origin);
  Alcotest.(check bool) "but satisfy need 1" true
    (Voting.quorum ~radius:4.0 ~need:1 ~value:true same_origin)

let test_quorum_within_ball () =
  let items = List.init 4 (fun i -> item (i, 0) [ p (float_of_int i) 0.0 ]) in
  Alcotest.(check bool) "four origins in a tight cluster" true
    (Voting.quorum ~radius:2.0 ~need:4 ~value:true items);
  Alcotest.(check bool) "need more than available" false
    (Voting.quorum ~radius:2.0 ~need:5 ~value:true items)

let test_quorum_spread_too_wide () =
  (* Three origins, pairwise closer than 2R, but no single 2R window holds
     all three. *)
  let items =
    [ item (0, 0) [ p 0.0 0.0 ]; item (1, 0) [ p 3.5 0.0 ]; item (2, 0) [ p 7.0 0.0 ] ]
  in
  Alcotest.(check bool) "any two fit" true (Voting.quorum ~radius:2.0 ~need:2 ~value:true items);
  Alcotest.(check bool) "all three do not" false
    (Voting.quorum ~radius:2.0 ~need:3 ~value:true items)

let test_quorum_window_boundary () =
  let items = [ item (0, 0) [ p 0.0 0.0 ]; item (1, 0) [ p 4.0 4.0 ] ] in
  Alcotest.(check bool) "exactly 2R apart fits" true
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true items);
  let items' = [ item (0, 0) [ p 0.0 0.0 ]; item (1, 0) [ p 4.01 0.0 ] ] in
  Alcotest.(check bool) "just beyond does not" false
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true items')

let test_quorum_values_do_not_mix () =
  let items =
    [
      item ~value:true (0, 0) [ p 0.0 0.0 ];
      item ~value:false (1, 0) [ p 1.0 0.0 ];
      item ~value:true (2, 0) [ p 2.0 0.0 ];
    ]
  in
  Alcotest.(check bool) "two for true" true (Voting.quorum ~radius:4.0 ~need:2 ~value:true items);
  Alcotest.(check bool) "not three for true" false
    (Voting.quorum ~radius:4.0 ~need:3 ~value:true items);
  Alcotest.(check bool) "one for false" true
    (Voting.quorum ~radius:4.0 ~need:1 ~value:false items)

let test_quorum_heard_needs_both_points () =
  (* HEARD evidence carries both the witness and the cause; the whole pair
     must fit the window. *)
  let witness_far = [ item (0, 0) [ p 0.0 0.0; p 10.0 0.0 ]; item (1, 0) [ p 1.0 0.0 ] ] in
  Alcotest.(check bool) "distant witness disqualifies its item" false
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true witness_far);
  let witness_near = [ item (0, 0) [ p 0.0 0.0; p 2.0 0.0 ]; item (1, 0) [ p 1.0 0.0 ] ] in
  Alcotest.(check bool) "near witness is fine" true
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true witness_near)

let test_quorum_trivial_cases () =
  Alcotest.(check bool) "need 0 is vacuous" true (Voting.quorum ~radius:1.0 ~need:0 ~value:true []);
  Alcotest.(check bool) "empty evidence fails need 1" false
    (Voting.quorum ~radius:1.0 ~need:1 ~value:true [])

let prop_clustered_origins_always_quorum =
  QCheck.Test.make ~name:"n distinct origins inside one R-ball always reach quorum n" ~count:200
    QCheck.(pair (int_range 1 10) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let radius = 2.0 +. Rng.float rng 4.0 in
      let cx = Rng.float rng 10.0 and cy = Rng.float rng 10.0 in
      let items =
        List.init n (fun i ->
            let dx = Rng.float rng (2.0 *. radius) -. radius in
            let dy = Rng.float rng (2.0 *. radius) -. radius in
            item (i, i) [ p (cx +. dx) (cy +. dy) ])
      in
      Voting.quorum ~radius ~need:n ~value:true items)

let prop_quorum_monotone_in_need =
  QCheck.Test.make ~name:"quorum is monotone: success at need k implies success at k-1"
    ~count:200
    QCheck.(pair (int_range 1 8) (int_bound 10_000))
    (fun (need, seed) ->
      let rng = Rng.create seed in
      let items =
        List.init 12 (fun i ->
            item (i mod 8, 0) [ p (Rng.float rng 15.0) (Rng.float rng 15.0) ])
      in
      (not (Voting.quorum ~radius:3.0 ~need ~value:true items))
      || Voting.quorum ~radius:3.0 ~need:(need - 1) ~value:true items)

let qtests = [ prop_clustered_origins_always_quorum; prop_quorum_monotone_in_need ]

let () =
  Alcotest.run "voting"
    [
      ( "quorum",
        [
          Alcotest.test_case "distinct origins" `Quick test_distinct_origins;
          Alcotest.test_case "needs distinct origins" `Quick test_quorum_needs_distinct_origins;
          Alcotest.test_case "within ball" `Quick test_quorum_within_ball;
          Alcotest.test_case "spread too wide" `Quick test_quorum_spread_too_wide;
          Alcotest.test_case "window boundary" `Quick test_quorum_window_boundary;
          Alcotest.test_case "values do not mix" `Quick test_quorum_values_do_not_mix;
          Alcotest.test_case "heard needs both points" `Quick test_quorum_heard_needs_both_points;
          Alcotest.test_case "trivial cases" `Quick test_quorum_trivial_cases;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
