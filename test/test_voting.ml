(* Tests for the MultiPathRB voting rule: distinct-origin counting and the
   common-neighbourhood (2R-window) quorum test. *)

let item ?(value = true) origin points = { Voting.origin; value; points }
let p = Point.make

let test_distinct_origins () =
  let items =
    [
      item (0, 0) [ p 0.0 0.0 ];
      item (0, 0) [ p 0.1 0.1 ];
      item (1, 0) [ p 1.0 0.0 ];
      item ~value:false (2, 0) [ p 2.0 0.0 ];
    ]
  in
  Alcotest.(check int) "duplicates merge" 2 (Voting.distinct_origins ~value:true items);
  Alcotest.(check int) "per value" 1 (Voting.distinct_origins ~value:false items)

let test_quorum_needs_distinct_origins () =
  let same_origin = List.init 5 (fun i -> item (7, 7) [ p (float_of_int i /. 10.0) 0.0 ]) in
  Alcotest.(check bool) "five copies of one origin are one vote" false
    (Voting.quorum ~radius:4.0 ~need:2 ~value:true same_origin);
  Alcotest.(check bool) "but satisfy need 1" true
    (Voting.quorum ~radius:4.0 ~need:1 ~value:true same_origin)

let test_quorum_within_ball () =
  let items = List.init 4 (fun i -> item (i, 0) [ p (float_of_int i) 0.0 ]) in
  Alcotest.(check bool) "four origins in a tight cluster" true
    (Voting.quorum ~radius:2.0 ~need:4 ~value:true items);
  Alcotest.(check bool) "need more than available" false
    (Voting.quorum ~radius:2.0 ~need:5 ~value:true items)

let test_quorum_spread_too_wide () =
  (* Three origins, pairwise closer than 2R, but no single 2R window holds
     all three. *)
  let items =
    [ item (0, 0) [ p 0.0 0.0 ]; item (1, 0) [ p 3.5 0.0 ]; item (2, 0) [ p 7.0 0.0 ] ]
  in
  Alcotest.(check bool) "any two fit" true (Voting.quorum ~radius:2.0 ~need:2 ~value:true items);
  Alcotest.(check bool) "all three do not" false
    (Voting.quorum ~radius:2.0 ~need:3 ~value:true items)

let test_quorum_window_boundary () =
  let items = [ item (0, 0) [ p 0.0 0.0 ]; item (1, 0) [ p 4.0 4.0 ] ] in
  Alcotest.(check bool) "exactly 2R apart fits" true
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true items);
  let items' = [ item (0, 0) [ p 0.0 0.0 ]; item (1, 0) [ p 4.01 0.0 ] ] in
  Alcotest.(check bool) "just beyond does not" false
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true items')

let test_quorum_values_do_not_mix () =
  let items =
    [
      item ~value:true (0, 0) [ p 0.0 0.0 ];
      item ~value:false (1, 0) [ p 1.0 0.0 ];
      item ~value:true (2, 0) [ p 2.0 0.0 ];
    ]
  in
  Alcotest.(check bool) "two for true" true (Voting.quorum ~radius:4.0 ~need:2 ~value:true items);
  Alcotest.(check bool) "not three for true" false
    (Voting.quorum ~radius:4.0 ~need:3 ~value:true items);
  Alcotest.(check bool) "one for false" true
    (Voting.quorum ~radius:4.0 ~need:1 ~value:false items)

let test_quorum_heard_needs_both_points () =
  (* HEARD evidence carries both the witness and the cause; the whole pair
     must fit the window. *)
  let witness_far = [ item (0, 0) [ p 0.0 0.0; p 10.0 0.0 ]; item (1, 0) [ p 1.0 0.0 ] ] in
  Alcotest.(check bool) "distant witness disqualifies its item" false
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true witness_far);
  let witness_near = [ item (0, 0) [ p 0.0 0.0; p 2.0 0.0 ]; item (1, 0) [ p 1.0 0.0 ] ] in
  Alcotest.(check bool) "near witness is fine" true
    (Voting.quorum ~radius:2.0 ~need:2 ~value:true witness_near)

let test_quorum_trivial_cases () =
  Alcotest.(check bool) "need 0 is vacuous" true (Voting.quorum ~radius:1.0 ~need:0 ~value:true []);
  Alcotest.(check bool) "empty evidence fails need 1" false
    (Voting.quorum ~radius:1.0 ~need:1 ~value:true [])

let prop_clustered_origins_always_quorum =
  QCheck.Test.make ~name:"n distinct origins inside one R-ball always reach quorum n" ~count:200
    QCheck.(pair (int_range 1 10) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let radius = 2.0 +. Rng.float rng 4.0 in
      let cx = Rng.float rng 10.0 and cy = Rng.float rng 10.0 in
      let items =
        List.init n (fun i ->
            let dx = Rng.float rng (2.0 *. radius) -. radius in
            let dy = Rng.float rng (2.0 *. radius) -. radius in
            item (i, i) [ p (cx +. dx) (cy +. dy) ])
      in
      Voting.quorum ~radius ~need:n ~value:true items)

let prop_quorum_monotone_in_need =
  QCheck.Test.make ~name:"quorum is monotone: success at need k implies success at k-1"
    ~count:200
    QCheck.(pair (int_range 1 8) (int_bound 10_000))
    (fun (need, seed) ->
      let rng = Rng.create seed in
      let items =
        List.init 12 (fun i ->
            item (i mod 8, 0) [ p (Rng.float rng 15.0) (Rng.float rng 15.0) ])
      in
      (not (Voting.quorum ~radius:3.0 ~need ~value:true items))
      || Voting.quorum ~radius:3.0 ~need:(need - 1) ~value:true items)

(* --- Tally and the incremental Index ------------------------------------ *)

let test_tally () =
  let t = Voting.Tally.create () in
  Alcotest.(check int) "fresh pro" 0 (Voting.Tally.count t ~value:true);
  Voting.Tally.add t true;
  Voting.Tally.add t true;
  Voting.Tally.add t false;
  Alcotest.(check int) "pro" 2 (Voting.Tally.count t ~value:true);
  Alcotest.(check int) "con" 1 (Voting.Tally.count t ~value:false);
  Voting.Tally.reset t;
  Alcotest.(check int) "reset pro" 0 (Voting.Tally.count t ~value:true);
  Alcotest.(check int) "reset con" 0 (Voting.Tally.count t ~value:false)

let test_index_dirty_and_replays () =
  let index = Voting.Index.create () in
  Alcotest.(check bool) "fresh index is clean" false (Voting.Index.dirty index);
  let it = item (1, 2) [ p 1.0 2.0 ] in
  Voting.Index.add index it;
  Alcotest.(check bool) "fresh evidence marks dirty" true (Voting.Index.dirty index);
  Voting.Index.clear_dirty index;
  (* A Byzantine replay (structurally identical item) must neither re-dirty
     the index nor add a duplicate. *)
  Voting.Index.add index it;
  Alcotest.(check bool) "replay leaves it clean" false (Voting.Index.dirty index);
  Alcotest.(check int) "replay not stored twice" 1
    (List.length (Voting.Index.all_items index));
  (* Same origin voting the other value is genuinely new evidence. *)
  Voting.Index.add index (item ~value:false (1, 2) [ p 1.0 2.0 ]);
  Alcotest.(check bool) "other value is fresh" true (Voting.Index.dirty index);
  Alcotest.(check int) "one origin for true" 1 (Voting.Index.votes index ~value:true);
  Alcotest.(check int) "one origin for false" 1 (Voting.Index.votes index ~value:false);
  (* A second item from a known origin is stored but adds no vote. *)
  Voting.Index.add index (item (1, 2) [ p 3.0 2.0 ]);
  Alcotest.(check int) "known origin adds no vote" 1 (Voting.Index.votes index ~value:true);
  Alcotest.(check int) "but its points are kept" 2
    (List.length (Voting.Index.items index ~value:true))

(* The incremental index must be extensionally equal to the reference
   full-scan quorum on randomized traces that include Byzantine replays,
   duplicate origins, mixed values and multi-point (HEARD) items. *)
let prop_index_matches_reference =
  QCheck.Test.make ~name:"Index.decide/votes = reference quorum on Byzantine traces"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let radius = 1.0 +. Rng.float rng 3.0 in
      let index = Voting.Index.create () in
      let trace = ref [] in
      let ok = ref true in
      for _ = 1 to 30 do
        let next =
          match !trace with
          | old :: _ when Rng.bernoulli rng 0.3 ->
            (* Byzantine replay: resend some earlier item verbatim. *)
            ignore old;
            List.nth !trace (Rng.int rng (List.length !trace))
          | _ ->
            let origin = (Rng.int rng 5, Rng.int rng 5) in
            let value = Rng.bool rng in
            let points =
              List.init (1 + Rng.int rng 2) (fun _ ->
                  p (Rng.float rng 12.0) (Rng.float rng 12.0))
            in
            { Voting.origin; value; points }
        in
        trace := next :: !trace;
        Voting.Index.add index next;
        List.iter
          (fun value ->
            if Voting.Index.votes index ~value <> Voting.distinct_origins ~value !trace then
              ok := false;
            List.iter
              (fun need ->
                let reference = Voting.quorum ~radius ~need ~value !trace in
                if Voting.Index.decide index ~radius ~need ~value <> reference then ok := false;
                (* The independently written dual-space quorum (anchor-box
                   intersection, used by the vote checker as its oracle)
                   must agree with the point-anchored window scan too. *)
                if Voting.Reference.quorum ~radius ~need ~value !trace <> reference then
                  ok := false;
                (* While the index is clean, skipping the re-scan is sound:
                   the last computed answer still matches the reference. *)
                Voting.Index.clear_dirty index;
                if Voting.Index.decide index ~radius ~need ~value <> reference then ok := false)
              [ 0; 1; 2; 3 ])
          [ true; false ]
      done;
      !ok)

let qtests =
  [
    prop_clustered_origins_always_quorum;
    prop_quorum_monotone_in_need;
    prop_index_matches_reference;
  ]

let () =
  Alcotest.run "voting"
    [
      ( "quorum",
        [
          Alcotest.test_case "distinct origins" `Quick test_distinct_origins;
          Alcotest.test_case "needs distinct origins" `Quick test_quorum_needs_distinct_origins;
          Alcotest.test_case "within ball" `Quick test_quorum_within_ball;
          Alcotest.test_case "spread too wide" `Quick test_quorum_spread_too_wide;
          Alcotest.test_case "window boundary" `Quick test_quorum_window_boundary;
          Alcotest.test_case "values do not mix" `Quick test_quorum_values_do_not_mix;
          Alcotest.test_case "heard needs both points" `Quick test_quorum_heard_needs_both_points;
          Alcotest.test_case "trivial cases" `Quick test_quorum_trivial_cases;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "tally counts" `Quick test_tally;
          Alcotest.test_case "dirty bit and replays" `Quick test_index_dirty_and_replays;
        ] );
      ("properties", List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qtests);
    ]
